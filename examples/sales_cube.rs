//! DataCube compression (§6.1): product × store × week sales.
//!
//! Run with:
//! ```sh
//! cargo run --release --example sales_cube
//! ```
//!
//! Builds the paper's canonical 3-d example — a `productid × storeid ×
//! weekid` sales cube — compresses it through mode flattening + SVDD,
//! and answers point and slice queries against the compressed form. Also
//! demonstrates that *both* groupings give identical access (§6.1's
//! point) at different accuracy/work trade-offs.

use adhoc_ts::compress::SpaceBudget;
use adhoc_ts::cube::compressed::CubeMethod;
use adhoc_ts::cube::{CompressedCube, Cube, Flattening};
use adhoc_ts::data::{generate_sales, SalesConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (products, stores, weeks) = (200usize, 30usize, 52usize);

    // Sales = product popularity x store size x seasonality, plus noise
    // and occasional promotions (spikes) — the ats-data sales generator.
    let sales = generate_sales(&SalesConfig {
        products,
        stores,
        weeks,
        ..SalesConfig::default()
    })?;
    let cube = Cube::from_fn(vec![products, stores, weeks], |co| {
        sales.get(co[0], co[1], co[2])
    })?;
    println!(
        "sales cube: {products} products x {stores} stores x {weeks} weeks = {} cells",
        cube.len()
    );

    // Auto-chosen flattening (paper: largest column side that still fits
    // the in-memory eigenproblem).
    let budget = SpaceBudget::from_percent(5.0);
    let cc = CompressedCube::compress(&cube, budget, CubeMethod::Svdd, 2_000)?;
    let (rows, cols) = cc.flattening().matrix_shape(cube.shape());
    println!(
        "flattened as {rows} x {cols} (row modes {:?}, col modes {:?}), {:.2}% space\n",
        cc.flattening().row_modes,
        cc.flattening().col_modes,
        cc.space_ratio() * 100.0
    );

    // Point queries.
    println!("point queries (product, store, week):");
    let mut sse = 0.0;
    let mut energy = 0.0;
    for &coords in &[[0usize, 0, 0], [150, 12, 26], [199, 29, 51]] {
        let truth = cube.get(&coords)?;
        let approx = cc.cell(&coords)?;
        println!("  {coords:?}: true {truth:9.2}  approx {approx:9.2}");
        sse += (truth - approx).powi(2);
        energy += truth * truth;
    }

    // A slice aggregate: total week-26 sales for product 150.
    let mut truth_total = 0.0;
    let mut approx_total = 0.0;
    for s in 0..stores {
        truth_total += cube.get(&[150, s, 26])?;
        approx_total += cc.cell(&[150, s, 26])?;
    }
    println!(
        "\nslice query (product 150, all stores, week 26): true {truth_total:.2}, approx {approx_total:.2} (err {:.3}%)",
        100.0 * (truth_total - approx_total).abs() / truth_total
    );

    // Both groupings of §6.1 give access to the same cells.
    println!("\ncomparing the two groupings of Section 6.1:");
    for (label, flattening) in [
        (
            "product x (store.week)",
            Flattening {
                row_modes: vec![0],
                col_modes: vec![1, 2],
            },
        ),
        (
            "(product.store) x week",
            Flattening {
                row_modes: vec![0, 1],
                col_modes: vec![2],
            },
        ),
    ] {
        let alt = CompressedCube::compress_with(&cube, budget, CubeMethod::Svd, flattening)?;
        let mut err = 0.0;
        let mut e2 = 0.0;
        for p in (0..products).step_by(17) {
            for s in (0..stores).step_by(7) {
                for w in (0..weeks).step_by(11) {
                    let t = cube.get(&[p, s, w])?;
                    err += (t - alt.cell(&[p, s, w])?).powi(2);
                    e2 += t * t;
                }
            }
        }
        let (r, c) = alt.flattening().matrix_shape(cube.shape());
        println!(
            "  {label:24} -> {r:5} x {c:4} matrix, sampled relative error {:.4}%",
            100.0 * (err / e2).sqrt()
        );
    }
    let _ = (sse, energy);
    Ok(())
}
