//! Visual data exploration in SVD space (Appendix A).
//!
//! Run with:
//! ```sh
//! cargo run --release --example stock_explorer
//! ```
//!
//! Reproduces the paper's Fig. 11 analysis on the synthetic `stocks` and
//! `phone` datasets: project every sequence onto the first two principal
//! components, render ASCII scatter plots, and flag outlier sequences —
//! "a financial analyst should examine those exceptional stocks whose
//! points are away from the horizontal axis".

use adhoc_ts::compress::SpaceBudget;
use adhoc_ts::core::store::{Method, SequenceStore};
use adhoc_ts::core::viz::{ascii_scatter, outliers_by_residual, project_2d};
use adhoc_ts::data::{generate_phone, generate_stocks, PhoneConfig, StocksConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------- stocks ------
    let stocks = generate_stocks(&StocksConfig::paper());
    println!("stocks: {} series x {} days", stocks.rows(), stocks.cols());
    let pts = project_2d(stocks.matrix())?;
    println!("\nSVD-space scatter (PC1 horizontal, PC2 vertical):\n");
    println!("{}", ascii_scatter(&pts, 72, 20));
    println!(
        "most points hug the horizontal axis — they follow the market\n\
         factor (paper Appendix A), which is why SVD compresses stocks so well.\n"
    );

    // Which stocks deviate most from the market pattern?
    let outliers = outliers_by_residual(stocks.matrix(), 1, 5)?;
    println!("stocks least explained by the market factor (rank-1 residual):");
    for (rank, (row, resid)) in outliers.iter().enumerate() {
        println!("  #{:<2} stock {:3}  residual {:8.2}", rank + 1, row, resid);
    }

    // How cheap is it to keep them queryable?
    let store = SequenceStore::builder()
        .method(Method::Svdd)
        .budget(SpaceBudget::from_percent(10.0))
        .build(stocks.matrix())?;
    let report = store.error_report(stocks.matrix())?;
    println!(
        "\nSVDD at 10% space: RMSPE {:.2}%, worst cell {:.1}% of sigma\n",
        report.rmspe * 100.0,
        report.max_normalized_error * 100.0
    );

    // ----------------------------------------------------- phone ------
    let phone = generate_phone(&PhoneConfig {
        customers: 2_000,
        days: 366,
        ..PhoneConfig::default()
    });
    println!(
        "phone2000: {} customers x {} days",
        phone.rows(),
        phone.cols()
    );
    let pts = project_2d(phone.matrix())?;
    println!("\nSVD-space scatter:\n");
    println!("{}", ascii_scatter(&pts, 72, 20));
    println!(
        "most customers cluster near the origin with a Zipf tail of huge\n\
         accounts — the skew a marketing analyst would drill into (Fig. 11 left)."
    );

    // Compression consequence of the skew: a handful of deltas fix the
    // worst cells.
    let store = SequenceStore::builder()
        .method(Method::Svdd)
        .budget(SpaceBudget::from_percent(10.0))
        .build(phone.matrix())?;
    let report = store.error_report(phone.matrix())?;
    println!(
        "\nSVDD at 10% space on phone2000: RMSPE {:.2}%, worst cell {:.1}% of sigma",
        report.rmspe * 100.0,
        report.max_normalized_error * 100.0
    );
    println!(
        "storage: {} KB of {} KB raw",
        store.storage_bytes() / 1024,
        phone.uncompressed_bytes(8) / 1024
    );
    Ok(())
}
