//! Quickstart: compress a time-sequence dataset, query it, check errors.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's whole pipeline on a small synthetic calling-pattern
//! dataset: compress with SVDD at a 10% space budget, answer the two
//! query classes of §1 (cell + aggregate), compare against ground truth,
//! and reproduce the Table 1 / Eq. 5 toy decomposition.

use adhoc_ts::compress::SpaceBudget;
use adhoc_ts::core::store::{Method, SequenceStore};
use adhoc_ts::data::{generate_phone, PhoneConfig};
use adhoc_ts::linalg::{Matrix, Svd, SvdOptions};
use adhoc_ts::query::engine::{aggregate_exact, AggregateFn};
use adhoc_ts::query::selection::{Axis, Selection};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("adhoc-ts v{} — quickstart\n", adhoc_ts::VERSION);

    // ------------------------------------------------ 1. a dataset ----
    let dataset = generate_phone(&PhoneConfig {
        customers: 1_000,
        days: 120,
        ..PhoneConfig::default()
    });
    println!(
        "dataset {}: {} customers x {} days ({} KB uncompressed)",
        dataset.name(),
        dataset.rows(),
        dataset.cols(),
        dataset.uncompressed_bytes(8) / 1024
    );

    // ------------------------------------- 2. compress with SVDD ------
    let store = SequenceStore::builder()
        .method(Method::Svdd)
        .budget(SpaceBudget::from_percent(10.0))
        .threads(4) // parallel build passes and aggregate-query scans
        .build(dataset.matrix())?;
    println!(
        "compressed with {} to {:.2}% of original ({} KB)\n",
        store.method().name(),
        store.space_ratio() * 100.0,
        store.storage_bytes() / 1024
    );

    // ------------------------------------------- 3. cell queries ------
    // "what was the amount of sales to customer 42 on day 17?"
    let truth = dataset.matrix()[(42, 17)];
    let approx = store.cell(42, 17)?;
    println!("cell (42, 17): true {truth:10.2}   reconstructed {approx:10.2}");

    // -------------------------------------- 4. aggregate queries ------
    // "average spend of customers 100..200 on the first 30 days"
    let sel = Selection {
        rows: Axis::Range(100, 200),
        cols: Axis::Range(0, 30),
    };
    let exact = aggregate_exact(dataset.matrix(), &sel, AggregateFn::Avg)?;
    let est = store.aggregate(&sel, AggregateFn::Avg)?;
    println!(
        "avg over 100 customers x 30 days: true {exact:10.4}  approx {est:10.4}  (Q_err {:.4}%)",
        100.0 * (exact - est).abs() / exact.abs()
    );

    // -------------------------------------------- 5. error report -----
    let report = store.error_report(dataset.matrix())?;
    println!(
        "\nerror report: RMSPE {:.2}%   worst cell {:.1}% of sigma   median << mean",
        report.rmspe * 100.0,
        report.max_normalized_error * 100.0
    );

    // -------------------------- 6. the paper's Table 1 toy matrix -----
    println!("\nTable 1 toy matrix (paper Eq. 5):");
    let toy = Matrix::from_rows(vec![
        vec![1., 1., 1., 0., 0.],
        vec![2., 2., 2., 0., 0.],
        vec![1., 1., 1., 0., 0.],
        vec![5., 5., 5., 0., 0.],
        vec![0., 0., 0., 2., 2.],
        vec![0., 0., 0., 3., 3.],
        vec![0., 0., 0., 1., 1.],
    ])?;
    let svd = Svd::compute(&toy, SvdOptions::default())?;
    println!(
        "  rank = {} (two 'blobs': weekday + weekend patterns)",
        svd.rank()
    );
    println!(
        "  singular values: {:.2}, {:.2}  (paper: 9.64, 5.29)",
        svd.sigma()[0],
        svd.sigma()[1]
    );

    // SVDD round-trip sanity: every stored value is queryable.
    let mut max_err: f64 = 0.0;
    for i in 0..dataset.rows() {
        for j in [0usize, dataset.cols() / 2, dataset.cols() - 1] {
            let e = (store.cell(i, j)? - dataset.matrix()[(i, j)]).abs();
            max_err = max_err.max(e);
        }
    }
    println!("\nsampled worst absolute error: {max_err:.2}");
    println!("done.");
    Ok(())
}
