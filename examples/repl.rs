//! An interactive ad hoc query shell over a compressed store.
//!
//! Run with:
//! ```sh
//! cargo run --release --example repl
//! # or non-interactively:
//! echo "avg rows 0..100 cols all" | cargo run --release --example repl
//! ```
//!
//! Compresses a synthetic phone dataset with SVDD at 10% space, then
//! reads queries from stdin in the `ats-query` mini-language:
//!
//! ```text
//! cell <row> <col>
//! <sum|avg|count|min|max|stddev> rows <all|a..b|i,j,k> cols <…>
//! truth <row> <col>          -- the uncompressed value, for comparison
//! ```

use adhoc_ts::compress::SpaceBudget;
use adhoc_ts::core::store::{Method, SequenceStore};
use adhoc_ts::data::{generate_phone, PhoneConfig};
use adhoc_ts::query::engine::QueryEngine;
use adhoc_ts::query::parse::run_query;
use std::io::BufRead;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = generate_phone(&PhoneConfig {
        customers: 2_000,
        days: 180,
        ..PhoneConfig::default()
    });
    eprintln!(
        "compressing {} ({} x {}) with SVDD @ 10%…",
        dataset.name(),
        dataset.rows(),
        dataset.cols()
    );
    let store = SequenceStore::builder()
        .method(Method::Svdd)
        .budget(SpaceBudget::from_percent(10.0))
        .build(dataset.matrix())?;
    eprintln!(
        "ready: {:.1} KB compressed from {:.1} KB. Type queries, e.g.:",
        store.storage_bytes() as f64 / 1024.0,
        dataset.uncompressed_bytes(8) as f64 / 1024.0
    );
    eprintln!("  cell 42 17");
    eprintln!("  avg rows 0..500 cols all");
    eprintln!("  sum rows 1,5,9 cols 0..30");
    eprintln!("  truth 42 17          (uncompressed value)");
    eprintln!("  quit");

    let engine = QueryEngine::new(store.compressed());
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "quit" || trimmed == "exit" {
            break;
        }
        // `truth i j`: bypass compression for comparison.
        let toks: Vec<&str> = trimmed.split_whitespace().collect();
        if let ["truth", i, j] = toks.as_slice() {
            match (i.parse::<usize>(), j.parse::<usize>()) {
                (Ok(i), Ok(j)) if i < dataset.rows() && j < dataset.cols() => {
                    println!("{}", dataset.matrix()[(i, j)]);
                }
                _ => eprintln!("error: truth needs two in-range numbers"),
            }
            continue;
        }
        match run_query(&engine, trimmed) {
            Ok(v) => println!("{v}"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
    Ok(())
}
