//! A warehouse-style deployment: compress once to disk, serve queries
//! with one disk access per cell (the paper's §4.1 architecture).
//!
//! Run with:
//! ```sh
//! cargo run --release --example phone_warehouse
//! ```
//!
//! Simulates the paper's motivating setting — customer calling volumes
//! too large to keep uncompressed — end to end:
//!
//! 1. stream the raw dataset to a row-major `.atsm` file (the "tape");
//! 2. build an SVDD store from the *file* in exactly three sequential
//!    passes (Fig. 5), never holding the matrix in memory;
//! 3. persist `U`/`Λ`/`V`/deltas; reopen as a [`DiskStore`] with `V`, `Λ`
//!    and the delta hash table pinned in memory and `U` paged from disk;
//! 4. run decision-support queries and print the measured disk-access
//!    counts next to the paper's claim.

use adhoc_ts::compress::{CompressedMatrix, SpaceBudget, SvddCompressed, SvddOptions};
use adhoc_ts::core::disk::{save_svdd, DiskStore};
use adhoc_ts::data::{generate_phone, PhoneConfig};
use adhoc_ts::query::engine::{AggregateFn, QueryEngine};
use adhoc_ts::query::selection::{Axis, Selection};
use adhoc_ts::storage::MatrixFile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("adhoc-ts-warehouse");
    std::fs::create_dir_all(&dir)?;

    // 1. the raw "warehouse extract" on disk
    let dataset = generate_phone(&PhoneConfig {
        customers: 5_000,
        days: 180,
        ..PhoneConfig::default()
    });
    let raw_path = dir.join("phone5000.atsm");
    dataset.save(&raw_path)?;
    println!(
        "raw extract: {} ({:.1} MB)",
        raw_path.display(),
        std::fs::metadata(&raw_path)?.len() as f64 / 1e6
    );

    // 2. three-pass SVDD build straight from the file
    let raw = MatrixFile::open(&raw_path)?;
    let mut opts = SvddOptions::new(SpaceBudget::from_percent(10.0));
    opts.threads = 4;
    let t0 = std::time::Instant::now();
    let svdd = SvddCompressed::compress(&raw, &opts)?;
    println!(
        "SVDD build: k_opt = {}, {} deltas, {:.2}% space, {:?} ({} row reads = 3 passes x N)",
        svdd.k_opt(),
        svdd.num_deltas(),
        svdd.space_ratio() * 100.0,
        t0.elapsed(),
        raw.stats().logical_reads(),
    );

    // 3. persist + reopen as the serving store
    let store_dir = dir.join("store");
    save_svdd(&store_dir, &svdd)?;
    let store = DiskStore::open(&store_dir, 512)?;
    println!(
        "disk store: k = {}, {} deltas, U paged from disk, V+lambda pinned\n",
        store.k(),
        store.num_deltas()
    );

    // 4. decision support queries
    let engine = QueryEngine::new(&store);

    // (a) spot checks on individual customer-days
    store.io_stats().reset();
    println!("cell queries (customer, day) -> value  [one disk access each]:");
    for &(i, j) in &[(17usize, 3usize), (1234, 90), (4999, 179), (42, 0)] {
        let v = engine.cell(i, j)?;
        let truth = dataset.matrix()[(i, j)];
        println!("  ({i:5}, {j:3})  approx {v:9.2}   true {truth:9.2}");
    }
    println!(
        "  -> physical disk reads: {} for 4 cold queries (paper: 'a single disk access')\n",
        store.io_stats().physical_reads()
    );

    // (b) an aggregate: total weekday spend of a customer segment
    let sel = Selection {
        rows: Axis::Range(1000, 2000),
        cols: Axis::Range(0, 90),
    };
    let total = engine.aggregate(&sel, AggregateFn::Sum)?;
    let avg = engine.aggregate(&sel, AggregateFn::Avg)?;
    println!("segment query: 1000 customers x 90 days  sum = {total:.0}, avg = {avg:.2}");

    // (c) top-spender scan via reconstructed rows
    let mut best = (0usize, f64::MIN);
    let mut row = vec![0.0; store.cols()];
    for i in (0..store.rows()).step_by(50) {
        store.row_into(i, &mut row)?;
        let s: f64 = row.iter().sum();
        if s > best.1 {
            best = (i, s);
        }
    }
    println!(
        "largest sampled customer: #{} with reconstructed annual volume {:.0}",
        best.0, best.1
    );

    println!(
        "\ncache behaviour: {} logical reads, {} physical, {:.1}% hit rate",
        store.io_stats().logical_reads(),
        store.io_stats().physical_reads(),
        store.io_stats().hit_ratio() * 100.0
    );
    Ok(())
}
