//! Golden corpus for the lint rules.
//!
//! Every fixture in `tests/fixtures/` is named `<rule>_tp*.rs` (must
//! trip exactly that rule) or `<rule>_tn*.rs` (must not trip it), with
//! underscores standing in for the rule name's dashes. The first line
//! carries a `//# lint-path: <path>` directive giving the virtual
//! workspace-relative path the file is linted under — that is how a
//! fixture opts into path-scoped rules (untrusted surfaces, float hot
//! files) without living at those paths.
//!
//! Two guarantees, both asserted by name: each fixture behaves as its
//! name claims, and each of the nine rules in [`rules::RULES`] has at
//! least one true-positive and one true-negative fixture.

use std::collections::BTreeSet;
use std::path::PathBuf;
use xtask::rules::{self, lint_source};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// `(fixture file name, rule name, is true positive, source text)`.
fn corpus() -> Vec<(String, String, bool, String)> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(fixtures_dir()).expect("fixtures dir");
    for entry in entries {
        let path = entry.expect("fixture entry").path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("fixture name")
            .to_string();
        if !name.ends_with(".rs") {
            continue;
        }
        let stem = name.trim_end_matches(".rs");
        let (rule_part, tp) = if let Some(r) = stem.split_once("_tp").map(|(r, _)| r) {
            (r, true)
        } else if let Some(r) = stem.split_once("_tn").map(|(r, _)| r) {
            (r, false)
        } else {
            panic!("fixture {name} is neither a _tp nor a _tn case");
        };
        let rule = rule_part.replace('_', "-");
        assert!(
            rules::RULES.iter().any(|&(n, _)| n == rule),
            "fixture {name} names unknown rule {rule:?}"
        );
        let src = std::fs::read_to_string(&path).expect("read fixture");
        out.push((name, rule, tp, src));
    }
    assert!(!out.is_empty(), "fixture corpus is empty");
    out
}

/// The virtual path the fixture is linted under.
fn lint_path(name: &str, src: &str) -> String {
    src.lines()
        .next()
        .and_then(|l| l.strip_prefix("//# lint-path:"))
        .unwrap_or_else(|| panic!("{name}: first line must be `//# lint-path: <path>`"))
        .trim()
        .to_string()
}

#[test]
fn every_fixture_behaves_as_its_name_claims() {
    for (name, rule, tp, src) in corpus() {
        let path = lint_path(&name, &src);
        let findings = lint_source(&path, &src);
        let hits: Vec<_> = findings.iter().filter(|f| f.rule == rule).collect();
        if tp {
            assert!(
                !hits.is_empty(),
                "{name}: expected a {rule} finding, got {findings:?}"
            );
        } else {
            assert!(
                hits.is_empty(),
                "{name}: expected no {rule} findings, got {hits:?}"
            );
        }
    }
}

#[test]
fn true_positive_fixtures_trip_only_their_own_rule() {
    // A TP fixture that also trips unrelated rules is demonstrating the
    // wrong thing; keep each one a minimal reproduction.
    for (name, rule, tp, src) in corpus() {
        if !tp {
            continue;
        }
        let findings = lint_source(&lint_path(&name, &src), &src);
        let others: Vec<_> = findings.iter().filter(|f| f.rule != rule).collect();
        assert!(others.is_empty(), "{name}: unrelated findings {others:?}");
    }
}

#[test]
fn true_negative_fixtures_are_fully_clean() {
    for (name, _, tp, src) in corpus() {
        if tp {
            continue;
        }
        let findings = lint_source(&lint_path(&name, &src), &src);
        assert!(findings.is_empty(), "{name}: {findings:?}");
    }
}

#[test]
fn every_rule_has_a_tp_and_a_tn_fixture() {
    let mut tps = BTreeSet::new();
    let mut tns = BTreeSet::new();
    for (_, rule, tp, _) in corpus() {
        if tp {
            tps.insert(rule);
        } else {
            tns.insert(rule);
        }
    }
    for &(rule, _) in rules::RULES {
        assert!(
            tps.contains(rule),
            "rule {rule} has no true-positive fixture"
        );
        assert!(
            tns.contains(rule),
            "rule {rule} has no true-negative fixture"
        );
    }
}
