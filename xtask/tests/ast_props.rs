//! Property tests for the block parser: [`Ast::parse`] is *total* — any
//! token stream, however mangled, yields a balanced block tree rather
//! than a panic. The generator leans heavily on the characters that
//! stress the parser (braces, `fn`/`let`/`impl` keywords, comment and
//! string openers) so failing inputs stay readable.

use proptest::prelude::*;
use xtask::ast::{Ast, ROOT_BLOCK};
use xtask::lexer::{lex, strip_cfg_test};

/// Fragments the generator splices together: every parser code path
/// (items, patterns, initializers, attributes) plus raw punctuation
/// soup that never occurs in real Rust.
const FRAGMENTS: &[&str] = &[
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    "=",
    ",",
    "<",
    ">",
    "#",
    "!",
    ":",
    "fn",
    "let",
    "impl",
    "mod",
    "pub",
    "mut",
    "else",
    "return",
    "f",
    "x",
    "Some",
    "0",
    "1.5",
    "'a",
    "\"s\"",
    "// c\n",
    "/* b */",
    "\n",
    "#[cfg(test)]",
    "->",
    "::",
    "&",
    ".",
    "lock",
    "drop",
];

fn token_soup() -> impl Strategy<Value = String> {
    collection::vec(0usize..FRAGMENTS.len(), 0..64).prop_map(|picks| {
        picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Parsing never panics, and every block span is well-formed:
    /// `open < close <= len`, parents enclose children, and every
    /// token's innermost block actually contains it.
    #[test]
    fn parse_is_total_and_spans_balance(src in token_soup()) {
        let (all_toks, _comments) = lex(&src);
        for toks in [&all_toks, &strip_cfg_test(&all_toks)] {
            let ast = Ast::parse(toks);
            prop_assert_eq!(ast.blocks[ROOT_BLOCK].close, toks.len());
            for (id, b) in ast.blocks.iter().enumerate() {
                prop_assert!(b.close <= toks.len());
                if id != ROOT_BLOCK {
                    prop_assert!(b.open < b.close, "block {} open {} close {}", id, b.open, b.close);
                    prop_assert!(b.parent < id, "parents precede children in the arena");
                    let p = &ast.blocks[b.parent];
                    prop_assert!(p.open == usize::MAX || p.open < b.open);
                    prop_assert!(b.close <= p.close, "child ends inside its parent");
                }
            }
            for i in 0..toks.len() {
                let b = &ast.blocks[ast.enclosing_block(i)];
                prop_assert!(b.open == usize::MAX || b.open <= i);
                prop_assert!(i < b.close);
            }
            for l in &ast.lets {
                prop_assert!(l.init.0 <= l.init.1 && l.init.1 <= toks.len());
                prop_assert!(l.block < ast.blocks.len());
            }
            for f in &ast.fns {
                if let Some(body) = f.body {
                    prop_assert!(body < ast.blocks.len());
                }
            }
        }
    }

    /// Raw arbitrary bytes (not token soup): the lexer plus parser still
    /// never panic, whatever text arrives.
    #[test]
    fn parse_survives_arbitrary_text(bytes in collection::vec(any::<u8>(), 0..200)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let (toks, _comments) = lex(&src);
        let ast = Ast::parse(&toks);
        prop_assert_eq!(ast.blocks[ROOT_BLOCK].close, toks.len());
        for b in ast.blocks.iter().skip(1) {
            prop_assert!(b.open < b.close && b.close <= toks.len());
        }
    }
}
