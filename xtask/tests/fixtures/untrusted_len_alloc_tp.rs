//# lint-path: crates/storage/src/format.rs
// True positive: the allocation is sized straight from a decoded header
// field — eight hostile bytes pre-allocate gigabytes.
pub fn read_header(hdr: [u8; 8]) -> Vec<u64> {
    let count = u64::from_le_bytes(hdr);
    let count = usize::try_from(count).unwrap_or(0);
    Vec::with_capacity(count)
}
