//# lint-path: crates/compress/src/gram.rs
// True negative: the accumulation routes through the canonical
// `vecops::fmadd`, so every build contracts (or doesn't) identically.
pub fn dot_canonical(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc = ats_linalg::vecops::fmadd(*x, *y, acc);
    }
    acc
}
