//# lint-path: crates/query/src/fixture.rs
// True negative: the workspace error type on the public surface.
pub fn parse_knob(s: &str) -> Result<u32, ats_common::AtsError> {
    s.parse()
        .map_err(|_| ats_common::AtsError::Parse("bad knob".to_string()))
}
