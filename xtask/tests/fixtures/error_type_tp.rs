//# lint-path: crates/query/src/fixture.rs
// True positive: a public fallible API leaking a `String` error instead
// of `AtsError`.
pub fn parse_knob(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| "bad knob".to_string())
}
