//# lint-path: crates/query/src/fixture.rs
// True positive: a crate-level lint attribute drifting away from the
// single `[workspace.lints]` table.
#![warn(dead_code)]

pub fn noop() {}
