//# lint-path: crates/storage/src/format.rs
// True negative: the decoded count is clamped before it sizes anything,
// so a hostile header cannot force a large allocation.
pub fn read_header(hdr: [u8; 8]) -> Vec<u64> {
    let count = u64::from_le_bytes(hdr);
    let count = usize::try_from(count).unwrap_or(0).min(4096);
    Vec::with_capacity(count)
}
