//# lint-path: crates/query/src/fixture.rs
// True positive: `.unwrap()` in library code panics on the serving path.
pub fn first(v: &[u8]) -> u8 {
    v.first().copied().unwrap()
}
