//# lint-path: crates/compress/src/gram.rs
// True positive: raw fused-shape accumulation in a numeric hot file —
// an FMA build would change the rounding of this sum.
pub fn dot_naive(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}
