//# lint-path: crates/query/src/fixture.rs
// True negative: a well-formed, justified annotation that suppresses a
// real finding on the next line.
pub fn boot_table() -> u8 {
    // ats-lint: allow(no-panic) — startup-only path, validated at build time
    *BAKED_TABLE.first().unwrap()
}
