//# lint-path: crates/storage/src/format.rs
// True positive: `[]` indexing on an untrusted surface panics on a
// truncated buffer.
pub fn head(v: &[u8]) -> u8 {
    v[0]
}
