//# lint-path: crates/query/src/fixture.rs
// True negative: total methods (`unwrap_or`) are fine; only the
// panicking family is banned.
pub fn first(v: &[u8]) -> u8 {
    v.first().copied().unwrap_or(0)
}
