//# lint-path: crates/storage/src/format.rs
// True negative: checked conversion — the failure is visible, not lossy.
pub fn widen(n: u64) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}
