//# lint-path: crates/query/src/fixture.rs
// True negative: the guard lives in its own inner block, so the join
// happens lock-free.
use std::sync::Mutex;
use std::thread::JoinHandle;

pub fn drain(m: &Mutex<Vec<u64>>, h: JoinHandle<()>) {
    {
        let Ok(guard) = m.lock() else { return };
        let _ = guard.len();
    }
    let _ = h.join();
}
