//# lint-path: crates/query/src/fixture.rs
// True positive: the annotation names a rule that does not exist.
// ats-lint: allow(not-a-rule) — this rule name is not in the table
pub fn noop() {}
