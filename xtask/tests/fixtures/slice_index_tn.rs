//# lint-path: crates/storage/src/format.rs
// True negative: `.get()` turns a truncated buffer into a value, not
// a panic.
pub fn head(v: &[u8]) -> u8 {
    v.first().copied().unwrap_or(0)
}
