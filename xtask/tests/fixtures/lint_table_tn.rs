//# lint-path: crates/query/src/fixture.rs
// True negative: no crate-level lint attributes; the workspace table
// owns lint policy.
pub fn noop() {}
