//# lint-path: crates/query/src/fixture.rs
// True positive: joining a thread while a mutex guard is live in the
// same block — the joined thread may need that lock, and the join
// blocks every other contender for the guard's whole scope.
use std::sync::Mutex;
use std::thread::JoinHandle;

pub fn drain(m: &Mutex<Vec<u64>>, h: JoinHandle<()>) {
    let Ok(guard) = m.lock() else { return };
    let _ = guard.len();
    let _ = h.join();
}
