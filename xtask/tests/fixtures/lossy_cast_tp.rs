//# lint-path: crates/storage/src/format.rs
// True positive: `as usize` on an untrusted surface silently truncates
// a hostile 64-bit length on 32-bit targets.
pub fn widen(n: u64) -> usize {
    n as usize
}
