//! The cross-file lock-acquisition-order graph.
//!
//! Nodes are the named `Mutex`/`RwLock` fields of the daemon and pool
//! files ([`crate::rules::LOCK_GRAPH_FILES`]); an edge `A → B` is
//! recorded whenever some function acquires lock `B` while a guard on
//! lock `A` is live. A cycle means two threads can acquire the same
//! pair of locks in opposite orders — the classic static deadlock — so
//! a cyclic graph fails the lint. The graph itself is emitted in
//! `--format json` output so reviewers can see the daemon's lock
//! hierarchy at a glance.

use crate::rules::{lock_edges, lock_fields, Finding};

/// One acquired-while-holding edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// The lock already held.
    pub held: String,
    /// The lock acquired while holding it.
    pub acquired: String,
    /// File the nesting occurs in (workspace-relative).
    pub file: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
}

/// The assembled lock-order graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Named lock fields, as `file:name`-unique `(name, file, line)`.
    pub nodes: Vec<(String, String, u32)>,
    /// Acquired-while-holding edges between *named* locks.
    pub edges: Vec<LockEdge>,
}

/// Build the graph from `(workspace-relative path, source)` pairs and
/// check it for cycles. Only edges whose endpoints are both named lock
/// fields survive — a guard on a local variable the analysis cannot
/// attribute does not constrain the order.
pub fn build_lock_graph(files: &[(String, String)]) -> (LockGraph, Vec<Finding>) {
    let mut g = LockGraph::default();
    for (path, src) in files {
        for (name, line) in lock_fields(src) {
            g.nodes.push((name, path.clone(), line));
        }
    }
    let names: Vec<&str> = g.nodes.iter().map(|(n, _, _)| n.as_str()).collect();
    for (path, src) in files {
        for (held, acquired, line) in lock_edges(src) {
            if held != acquired
                && names.contains(&held.as_str())
                && names.contains(&acquired.as_str())
            {
                let e = LockEdge {
                    held,
                    acquired,
                    file: path.clone(),
                    line,
                };
                if !g.edges.contains(&e) {
                    g.edges.push(e);
                }
            }
        }
    }
    let findings = check_acyclic(&g);
    (g, findings)
}

/// Depth-first cycle check over the edge set; a cycle is reported as a
/// `lock-discipline` finding naming the full path.
fn check_acyclic(g: &LockGraph) -> Vec<Finding> {
    let mut nodes: Vec<&str> = g
        .edges
        .iter()
        .flat_map(|e| [e.held.as_str(), e.acquired.as_str()])
        .collect();
    nodes.sort_unstable();
    nodes.dedup();
    // Colors: 0 unvisited, 1 on stack, 2 done.
    let mut color = vec![0u8; nodes.len()];
    let idx = |n: &str| nodes.iter().position(|&m| m == n);
    let mut findings = Vec::new();
    for start in 0..nodes.len() {
        if color[start] != 0 {
            continue;
        }
        // Iterative DFS with an explicit path stack.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        let mut path = vec![start];
        while let Some(&(u, next)) = stack.last() {
            let succs: Vec<usize> = g
                .edges
                .iter()
                .filter(|e| idx(&e.held) == Some(u))
                .filter_map(|e| idx(&e.acquired))
                .collect();
            if next < succs.len() {
                let v = succs[next];
                if let Some(top) = stack.last_mut() {
                    top.1 += 1;
                }
                match color[v] {
                    0 => {
                        color[v] = 1;
                        stack.push((v, 0));
                        path.push(v);
                    }
                    1 => {
                        // Cycle: slice the current path from v to u.
                        let from = path.iter().position(|&p| p == v).unwrap_or(0);
                        let mut cyc: Vec<&str> = path[from..].iter().map(|&p| nodes[p]).collect();
                        cyc.push(nodes[v]);
                        let file = g
                            .edges
                            .iter()
                            .find(|e| e.acquired == nodes[v])
                            .map_or_else(String::new, |e| e.file.clone());
                        let line = g
                            .edges
                            .iter()
                            .find(|e| e.acquired == nodes[v])
                            .map_or(1, |e| e.line);
                        findings.push(Finding {
                            file,
                            line,
                            rule: "lock-discipline",
                            message: format!(
                                "lock-order cycle: {} — two threads taking these locks in \
                                 different orders can deadlock; pick one global order",
                                cyc.join(" -> ")
                            ),
                        });
                    }
                    _ => {}
                }
            } else {
                color[u] = 2;
                stack.pop();
                path.pop();
            }
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> (String, String) {
        (path.to_string(), src.to_string())
    }

    #[test]
    fn nodes_and_edges_are_extracted() {
        let src = "\
struct Shared { queue: Mutex<Vec<u8>>, metrics: Mutex<Stats> }
impl Shared {
    fn f(&self) {
        let q = self.queue.lock();
        let m = self.metrics.lock();
        drop(m);
        drop(q);
    }
}
";
        let (g, findings) = build_lock_graph(&[file("a.rs", src)]);
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].held, "queue");
        assert_eq!(g.edges[0].acquired, "metrics");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn opposite_orders_are_a_cycle() {
        let src = "\
struct S { a: Mutex<u8>, b: Mutex<u8> }
impl S {
    fn f(&self) { let g = self.a.lock(); let h = self.b.lock(); }
    fn g(&self) { let g = self.b.lock(); let h = self.a.lock(); }
}
";
        let (g, findings) = build_lock_graph(&[file("a.rs", src)]);
        assert_eq!(g.edges.len(), 2);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "lock-discipline");
        assert!(findings[0].message.contains("cycle"), "{findings:?}");
    }

    #[test]
    fn unnamed_guards_do_not_constrain_the_graph() {
        let src = "\
struct S { a: Mutex<u8> }
fn f(m: &Mutex<u8>) { let g = m.lock(); let h = g.clone(); }
";
        let (g, findings) = build_lock_graph(&[file("a.rs", src)]);
        assert_eq!(g.nodes.len(), 1);
        assert!(g.edges.is_empty());
        assert!(findings.is_empty());
    }
}
