//! The lint rules and the per-file analysis driver.
//!
//! Each rule produces [`Finding`]s; a finding is suppressed by an
//! explicit escape hatch written on the same line or the line above:
//!
//! ```text
//! // ats-lint: allow(<rule>) — <reason>
//! ```
//!
//! The reason is mandatory (≥ 8 characters) and the rule name must be
//! real; a malformed or unused annotation is itself a finding
//! (`bad-allow`), so the escape hatch cannot rot into decoration.

use crate::ast::{Ast, LetStmt};
use crate::lexer::{lex, strip_cfg_test, Tok, Token};
use std::collections::BTreeMap;

/// Every rule the linter knows, by kebab-case name.
pub const RULES: &[(&str, &str)] = &[
    (
        "no-panic",
        "no unwrap/expect/panic!/unreachable!/todo!/unimplemented! in library code; \
         on untrusted surfaces assert!/assert_eq!/assert_ne! count too",
    ),
    (
        "lossy-cast",
        "no `as <integer>` casts in untrusted-input files; use try_from/checked helpers",
    ),
    (
        "slice-index",
        "no `[]` indexing in untrusted-input files; use .get()/checked slicing",
    ),
    (
        "error-type",
        "public fallible APIs must return ats_common::AtsError",
    ),
    (
        "lint-table",
        "crate-level lint attributes belong in [workspace.lints]",
    ),
    (
        "bad-allow",
        "malformed, unknown, or unused `ats-lint: allow` annotation",
    ),
    (
        "lock-discipline",
        "no thread join, channel send/recv, socket I/O, or second lock acquisition while a \
         guard is live in the enclosing block; the cross-file lock-order graph must be acyclic",
    ),
    (
        "float-determinism",
        "in numeric hot files, fused-shape accumulation (`acc += a * b`) must route through \
         vecops::{fmadd, axpy, dot} so the canonical accumulation order is machine-enforced",
    ),
    (
        "untrusted-len-alloc",
        "on untrusted surfaces, Vec::with_capacity/vec![_; n]/.reserve(n) sized by a \
         decoded/parsed value needs an intervening bound check (min/comparison guard)",
    ),
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule name (kebab-case, from [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Files whose bytes or text arrive from outside the process — disk
/// formats, CLI arguments, query text. The `lossy-cast` and
/// `slice-index` rules apply only here: a lossy cast or unchecked index
/// on attacker-controllable lengths is exactly the `read_deltas`
/// corrupt-count bug class. The reconstruction kernels are held to the
/// same standard: they run over caller-shaped buffers on the hot serving
/// path, where an unchecked index would turn a length bug into UB-adjacent
/// panics instead of an error.
pub const UNTRUSTED_SURFACES: &[&str] = &[
    "crates/common/src/codec.rs",
    "crates/storage/src/format.rs",
    "crates/storage/src/store_dir.rs",
    "crates/storage/src/file.rs",
    "crates/storage/src/pool.rs",
    "crates/storage/src/synopsis.rs",
    "crates/core/src/disk.rs",
    "crates/core/src/shard.rs",
    "crates/core/src/timeblock.rs",
    "crates/linalg/src/kernels.rs",
    "crates/query/src/parse.rs",
    "crates/query/src/metrics.rs",
    "crates/query/src/serve.rs",
    "crates/data/src/csv.rs",
    "src/bin/ats.rs",
];

/// Path prefixes exempt from `no-panic`: the bench crate is an offline
/// experiment harness whose binaries may abort on I/O errors — it is
/// not part of the serving path the panic-free policy protects.
pub const NO_PANIC_EXEMPT_PREFIXES: &[&str] = &["crates/bench/"];

/// Numeric hot files where accumulation order is a correctness contract
/// (DESIGN.md §5f/§5g: shard/thread/batch results are bitwise identical
/// to the serial scalar path). Raw fused-shape accumulation here must
/// route through `vecops::{fmadd, axpy, dot}` — the `float-determinism`
/// rule enforces it. `vecops.rs` itself is excluded: it *is* the
/// canonical implementation.
pub const FLOAT_HOT_FILES: &[&str] = &[
    "crates/linalg/src/kernels.rs",
    "crates/linalg/src/svd.rs",
    "crates/compress/src/gram.rs",
    "crates/compress/src/svd.rs",
    "crates/compress/src/svdd.rs",
    "crates/compress/src/append.rs",
    "crates/core/src/disk.rs",
    "crates/core/src/shard.rs",
];

/// Files whose named `Mutex`/`RwLock` fields form the nodes of the
/// cross-file lock-acquisition-order graph (the long-lived daemon and
/// the shared page pool it serves from).
pub const LOCK_GRAPH_FILES: &[&str] = &[
    "crates/query/src/serve.rs",
    "crates/query/src/metrics.rs",
    "crates/query/src/engine.rs",
    "crates/storage/src/pool.rs",
];

/// Tokens whose presence in an initializer marks the binding as derived
/// from decoded/parsed external bytes (the `read_deltas` corrupt-count
/// bug class). Matched as whole identifiers followed by `(`, `<`, or `::`.
const DECODE_TOKENS: &[&str] = &[
    "from_be_bytes",
    "from_le_bytes",
    "from_ne_bytes",
    "read_u16",
    "read_u32",
    "read_u64",
    "read_varint",
    "decode_varint",
    "parse",
    "decode",
];

/// Method calls that block (or can block indefinitely) and therefore
/// must not run while a lock guard is live.
const BLOCKING_METHODS: &[&str] = &[
    "join",
    "send",
    "recv",
    "try_send",
    "try_recv",
    "recv_timeout",
    "accept",
    "connect",
];

/// Type names whose mere use while a guard is live signals socket I/O
/// under a lock.
const BLOCKING_TYPES: &[&str] = &["TcpStream", "TcpListener"];

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Asserts abort just like `panic!`, but they encode an invariant, so
/// they are tolerated in trusted library code where the invariant is
/// the library's own. On untrusted surfaces the "invariant" is someone
/// else's input — `error_report`'s old `assert_eq!(dims)` turned two
/// mismatched *files* into a process abort — so there they are flagged
/// like any other panic. `debug_assert*` are distinct names and stay
/// legal everywhere.
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

/// Keywords that may directly precede `[` without it being an index
/// expression (slice patterns, array types in odd spots).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "return", "match", "if", "else", "as", "mut", "ref", "move", "while", "loop",
    "for", "where", "impl", "fn", "pub", "use", "mod", "struct", "enum", "const", "static",
    "break", "continue", "dyn", "type", "box", "yield",
];

/// A parsed `ats-lint: allow(rule)` annotation.
struct Allow {
    line: u32,
    rule: String,
    used: std::cell::Cell<bool>,
}

/// Parse annotations out of the file's line comments, recording
/// malformed ones as `bad-allow` findings immediately.
fn parse_allows(
    file: &str,
    comments: &[crate::lexer::Comment],
    findings: &mut Vec<Finding>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find("ats-lint:") else {
            continue;
        };
        let rest = c.text[pos + "ats-lint:".len()..].trim_start();
        let bad = |msg: String, findings: &mut Vec<Finding>| {
            findings.push(Finding {
                file: file.to_string(),
                line: c.line,
                rule: "bad-allow",
                message: msg,
            });
        };
        let Some(rest) = rest.strip_prefix("allow(") else {
            bad(
                "annotation must be `ats-lint: allow(<rule>) — <reason>`".to_string(),
                findings,
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("unclosed `allow(`".to_string(), findings);
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !RULES.iter().any(|&(name, _)| name == rule) {
            bad(
                format!("unknown rule {rule:?} in allow annotation"),
                findings,
            );
            continue;
        }
        // Everything after `)` must be a separator plus a real reason.
        let tail = rest[close + 1..].trim_start();
        let reason = tail.trim_start_matches(['—', '–', '-', ':']).trim();
        if reason.len() < 8 {
            bad(
                format!(
                    "allow({rule}) needs a reason: `// ats-lint: allow({rule}) — <why this is safe>`"
                ),
                findings,
            );
            continue;
        }
        allows.push(Allow {
            line: c.line,
            rule,
            used: std::cell::Cell::new(false),
        });
    }
    allows
}

/// Lint one source file. `file` is the workspace-relative path used both
/// for reporting and for scoping path-dependent rules.
pub fn lint_source(file: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let (all_toks, comments) = lex(src);
    let toks = strip_cfg_test(&all_toks);
    let ast = Ast::parse(&toks);
    let allows = parse_allows(file, &comments, &mut findings);

    let untrusted = UNTRUSTED_SURFACES.contains(&file);
    let no_panic = !NO_PANIC_EXEMPT_PREFIXES
        .iter()
        .any(|&p| file.starts_with(p));

    let mut raw: Vec<Finding> = Vec::new();
    if no_panic {
        rule_no_panic(file, &toks, untrusted, &mut raw);
    }
    if untrusted {
        rule_lossy_cast(file, &toks, &mut raw);
        rule_slice_index(file, &toks, &mut raw);
        rule_untrusted_len_alloc(file, &toks, &ast, &mut raw);
    }
    if FLOAT_HOT_FILES.contains(&file) {
        rule_float_determinism(file, &toks, &mut raw);
    }
    rule_lock_discipline(file, &toks, &ast, &mut raw);
    rule_error_type(file, &toks, &mut raw);
    rule_lint_header(file, &toks, &mut raw);

    // Apply the escape hatch: an annotation suppresses findings of its
    // rule on its own line and the following line.
    for f in raw {
        let suppressed = allows.iter().any(|a| {
            a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) && {
                a.used.set(true);
                true
            }
        });
        if !suppressed {
            findings.push(f);
        }
    }
    for a in &allows {
        if !a.used.get() {
            findings.push(Finding {
                file: file.to_string(),
                line: a.line,
                rule: "bad-allow",
                message: format!(
                    "allow({}) suppresses nothing on this or the next line — remove it",
                    a.rule
                ),
            });
        }
    }
    findings.sort();
    findings
}

fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s.as_str()),
        Tok::Punct(_) => None,
    }
}

fn punct(t: &Token, c: char) -> bool {
    t.tok == Tok::Punct(c)
}

fn rule_no_panic(file: &str, toks: &[Token], untrusted: bool, out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let Some(word) = ident(&toks[i]) else {
            continue;
        };
        if PANIC_METHODS.contains(&word)
            && i > 0
            && punct(&toks[i - 1], '.')
            && toks.get(i + 1).is_some_and(|t| punct(t, '('))
        {
            out.push(Finding {
                file: file.to_string(),
                line: toks[i].line,
                rule: "no-panic",
                message: format!(
                    "`.{word}()` can panic; return Result<_, AtsError> instead \
                     (or annotate: `// ats-lint: allow(no-panic) — <reason>`)"
                ),
            });
        }
        if PANIC_MACROS.contains(&word) && toks.get(i + 1).is_some_and(|t| punct(t, '!')) {
            out.push(Finding {
                file: file.to_string(),
                line: toks[i].line,
                rule: "no-panic",
                message: format!(
                    "`{word}!` aborts the serving path; return Result<_, AtsError> instead \
                     (or annotate: `// ats-lint: allow(no-panic) — <reason>`)"
                ),
            });
        }
        if untrusted
            && ASSERT_MACROS.contains(&word)
            && toks.get(i + 1).is_some_and(|t| punct(t, '!'))
        {
            out.push(Finding {
                file: file.to_string(),
                line: toks[i].line,
                rule: "no-panic",
                message: format!(
                    "`{word}!` on an untrusted surface aborts on bad input; validate and \
                     return Result<_, AtsError> instead \
                     (or annotate: `// ats-lint: allow(no-panic) — <reason>`)"
                ),
            });
        }
    }
}

fn rule_lossy_cast(file: &str, toks: &[Token], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if ident(&toks[i]) != Some("as") {
            continue;
        }
        // `use x as y` renames are not casts: the token before a cast's
        // `as` is never the `use` path separator context — cheap check:
        // renames are followed by a plain identifier that is not a type
        // we police, so just test the target type.
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        let Some(ty) = ident(next) else { continue };
        if INT_TYPES.contains(&ty) {
            out.push(Finding {
                file: file.to_string(),
                line: toks[i].line,
                rule: "lossy-cast",
                message: format!(
                    "`as {ty}` on untrusted input; use {ty}::try_from / the checked codec \
                     helpers, or annotate with a proof the cast is lossless"
                ),
            });
        }
    }
}

fn rule_slice_index(file: &str, toks: &[Token], out: &mut Vec<Finding>) {
    for i in 1..toks.len() {
        if !punct(&toks[i], '[') {
            continue;
        }
        let prev = &toks[i - 1];
        let is_index_base = match &prev.tok {
            Tok::Ident(w) => !NON_INDEX_KEYWORDS.contains(&w.as_str()),
            Tok::Punct(c) => matches!(c, ')' | ']' | '?'),
        };
        if is_index_base {
            out.push(Finding {
                file: file.to_string(),
                line: toks[i].line,
                rule: "slice-index",
                message: "`[]` indexing on untrusted-length data can panic; use .get()/.get_mut() \
                          or checked slicing, or annotate with the bound that makes it safe"
                    .to_string(),
            });
        }
    }
}

/// Detect `pub fn … -> Result<…, NotAtsError>` and `pub fn … -> io::Result<…>`.
fn rule_error_type(file: &str, toks: &[Token], out: &mut Vec<Finding>) {
    // Binaries surface errors to the shell, not to library callers.
    if file.starts_with("src/bin/") || file.contains("/src/bin/") {
        return;
    }
    let mut i = 0usize;
    while i < toks.len() {
        if ident(&toks[i]) != Some("pub") {
            i += 1;
            continue;
        }
        // pub(crate)/pub(super)/pub(in …) are not public API.
        if toks.get(i + 1).is_some_and(|t| punct(t, '(')) {
            i += 2;
            continue;
        }
        // Allow qualifiers between `pub` and `fn`.
        let mut j = i + 1;
        while j < toks.len()
            && matches!(
                ident(&toks[j]),
                Some("const" | "async" | "unsafe" | "extern")
            )
        {
            j += 1;
        }
        if ident(&toks[j]).map(|_| ()).is_none() || ident(&toks[j]) != Some("fn") {
            i += 1;
            continue;
        }
        let fn_line = toks[j].line;
        let fn_name = ident(&toks[j + 1]).unwrap_or("?").to_string();
        // Find the parameter list: the first `(` at angle-depth 0,
        // treating `->`'s `>` as an arrow rather than a closing angle.
        let mut k = j + 2;
        let mut angle = 0i32;
        while k < toks.len() {
            match &toks[k].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') if !(k > 0 && punct(&toks[k - 1], '-')) => angle -= 1,
                Tok::Punct('(') if angle == 0 => break,
                Tok::Punct('{') | Tok::Punct(';') => break,
                _ => {}
            }
            k += 1;
        }
        if k >= toks.len() || !punct(&toks[k], '(') {
            i = j + 1;
            continue;
        }
        // Match the params to the closing `)`.
        let mut depth = 0i32;
        while k < toks.len() {
            match toks[k].tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        k += 1;
        // Return type?
        if !(toks.get(k).is_some_and(|t| punct(t, '-'))
            && toks.get(k + 1).is_some_and(|t| punct(t, '>')))
        {
            i = k;
            continue;
        }
        k += 2;
        let ret_start = k;
        let mut paren = 0i32;
        while k < toks.len() {
            match &toks[k].tok {
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => paren -= 1,
                Tok::Punct('{') | Tok::Punct(';') if paren == 0 => break,
                Tok::Ident(w) if w == "where" && paren == 0 => break,
                _ => {}
            }
            k += 1;
        }
        check_return_type(file, fn_line, &fn_name, &toks[ret_start..k], out);
        i = k;
    }
}

fn check_return_type(file: &str, line: u32, fn_name: &str, ret: &[Token], out: &mut Vec<Finding>) {
    let flat: String = ret
        .iter()
        .map(|t| match &t.tok {
            Tok::Ident(s) => format!("{s} "),
            Tok::Punct(c) => c.to_string(),
        })
        .collect();
    if flat.contains("io ::Result") {
        out.push(Finding {
            file: file.to_string(),
            line,
            rule: "error-type",
            message: format!(
                "pub fn {fn_name} returns io::Result; public fallible APIs return \
                 ats_common::Result (AtsError wraps the io::Error)"
            ),
        });
        return;
    }
    // Find `Result <` and split its top-level generic args on `,`.
    for i in 0..ret.len() {
        if ident(&ret[i]) != Some("Result") {
            continue;
        }
        if !ret.get(i + 1).is_some_and(|t| punct(t, '<')) {
            continue;
        }
        let mut angle = 0i32;
        let mut nest = 0i32; // parens/brackets: tuple and array commas don't count
        let mut last_comma: Option<usize> = None;
        let mut end = ret.len();
        for (k, t) in ret.iter().enumerate().skip(i + 1) {
            match t.tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => {
                    angle -= 1;
                    if angle == 0 {
                        end = k;
                        break;
                    }
                }
                Tok::Punct('(') | Tok::Punct('[') => nest += 1,
                Tok::Punct(')') | Tok::Punct(']') => nest -= 1,
                Tok::Punct(',') if angle == 1 && nest == 0 => last_comma = Some(k),
                _ => {}
            }
        }
        let Some(comma) = last_comma else { continue };
        let err_ty: String = ret[comma + 1..end]
            .iter()
            .map(|t| match &t.tok {
                Tok::Ident(s) => s.clone(),
                Tok::Punct(c) => c.to_string(),
            })
            .collect();
        if !err_ty.contains("AtsError") {
            out.push(Finding {
                file: file.to_string(),
                line,
                rule: "error-type",
                message: format!(
                    "pub fn {fn_name} returns Result<_, {err_ty}>; public fallible APIs \
                     return ats_common::Result<_> (error type AtsError)"
                ),
            });
        }
    }
}

/// Crate-level lint attributes (`#![warn(…)]` etc.) are unified under
/// `[workspace.lints]`; per-file copies drift and belong there.
fn rule_lint_header(file: &str, toks: &[Token], out: &mut Vec<Finding>) {
    for i in 0..toks.len().saturating_sub(3) {
        if punct(&toks[i], '#')
            && punct(&toks[i + 1], '!')
            && punct(&toks[i + 2], '[')
            && matches!(
                ident(&toks[i + 3]),
                Some("warn" | "deny" | "forbid" | "allow")
            )
        {
            out.push(Finding {
                file: file.to_string(),
                line: toks[i].line,
                rule: "lint-table",
                message: "crate-level lint attribute; declare it once in [workspace.lints] \
                          (Cargo.toml) instead"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// lock-discipline
// ---------------------------------------------------------------------

/// Is the token at `i` a lock acquisition? Recognized shapes:
/// `.lock()` / `.try_lock()` / `.read()` / `.write()` / `.try_read()` /
/// `.try_write()` with *empty* parens (RwLock/Mutex acquisitions take no
/// arguments, which keeps `io::Read::read(buf)` out), and the free
/// poison-recovering helper `lock(&…)` from serve.rs (any arity, but not
/// its own `fn lock` definition).
fn acquisition_at(toks: &[Token], i: usize) -> bool {
    let Some(w) = ident(&toks[i]) else {
        return false;
    };
    if !toks.get(i + 1).is_some_and(|t| punct(t, '(')) {
        return false;
    }
    let dotted = i > 0 && punct(&toks[i - 1], '.');
    match w {
        "lock" | "try_lock" | "read" | "write" | "try_read" | "try_write" if dotted => {
            toks.get(i + 2).is_some_and(|t| punct(t, ')'))
        }
        "lock" => i == 0 || ident(&toks[i - 1]) != Some("fn"),
        _ => false,
    }
}

/// Best-effort name of the lock a recognized acquisition targets: the
/// receiver field for `.lock()` (`self.inner.lock()` → `inner`), the
/// last path component of the argument for the free helper
/// (`lock(&shared.queue)` → `queue`).
fn acquisition_target(toks: &[Token], i: usize) -> Option<String> {
    if i > 0 && punct(&toks[i - 1], '.') {
        return toks
            .get(i.checked_sub(2)?)
            .and_then(ident)
            .map(str::to_string);
    }
    // Free helper: scan the parenthesized argument for its last ident.
    let mut j = i + 1;
    let mut depth = 0i64;
    let mut last = None;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Ident(w) if w != "self" && w != "mut" => last = Some(w.clone()),
            _ => {}
        }
        j += 1;
    }
    last
}

/// A binding whose initializer acquires a lock, live to the end of its
/// enclosing block (or an explicit `drop(name)`).
struct LiveGuard<'a> {
    stmt: &'a LetStmt,
    /// Best-effort name of the lock field this guard holds.
    field: Option<String>,
}

/// Find the guard bindings of one file: lets whose initializer contains
/// an acquisition at brace depth 0 *within the initializer* — an inner
/// `{ … }` block confines its temporaries, so `let v = { let g =
/// m.lock(); … };` does not make `v` a guard, while `let v =
/// take(&mut *lock(&m));` conservatively does (parens do not end
/// temporary lifetimes; the guard lives to the end of the statement and
/// Rust's temporary-extension rules can stretch it further).
fn guard_lets<'a>(toks: &[Token], ast: &'a Ast) -> Vec<LiveGuard<'a>> {
    let mut out = Vec::new();
    for l in &ast.lets {
        let (s, e) = l.init;
        let mut depth = 0i64;
        let mut j = s;
        while j < e.min(toks.len()) {
            match &toks[j].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => depth -= 1,
                _ if depth == 0 && acquisition_at(toks, j) => {
                    out.push(LiveGuard {
                        stmt: l,
                        field: acquisition_target(toks, j),
                    });
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
    out
}

/// Tokens `[start, end)` where a guard is live: from the end of its let
/// statement to the close of its enclosing block, cut short by an
/// explicit `drop(<name>)`.
fn guard_live_range(toks: &[Token], ast: &Ast, g: &LiveGuard<'_>) -> (usize, usize) {
    let start = g.stmt.init.1;
    let mut end = ast
        .blocks
        .get(g.stmt.block)
        .map_or(toks.len(), |b| b.close)
        .min(toks.len());
    let mut k = start;
    while k < end {
        if ident(&toks[k]) == Some("drop")
            && toks.get(k + 1).is_some_and(|t| punct(t, '('))
            && toks
                .get(k + 2)
                .and_then(ident)
                .is_some_and(|w| g.stmt.names.iter().any(|n| n == w))
        {
            end = k;
            break;
        }
        k += 1;
    }
    (start, end)
}

/// Within each function, flag blocking operations and second lock
/// acquisitions while a guard is live.
fn rule_lock_discipline(file: &str, toks: &[Token], ast: &Ast, out: &mut Vec<Finding>) {
    for g in guard_lets(toks, ast) {
        let gname = g.stmt.names.first().map_or("_", String::as_str);
        let (start, end) = guard_live_range(toks, ast, &g);
        let mut k = start;
        while k < end.min(toks.len()) {
            let line = toks[k].line;
            if acquisition_at(toks, k) {
                out.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: "lock-discipline",
                    message: format!(
                        "second lock acquisition while guard `{gname}` (line {}) is live; \
                         narrow the first guard's scope with an inner block, or annotate \
                         the nesting with its lock-order justification",
                        g.stmt.line
                    ),
                });
                k += 1;
                continue;
            }
            if let Some(w) = ident(&toks[k]) {
                let dotted_call = k > 0
                    && punct(&toks[k - 1], '.')
                    && toks.get(k + 1).is_some_and(|t| punct(t, '('));
                if dotted_call && BLOCKING_METHODS.contains(&w) {
                    out.push(Finding {
                        file: file.to_string(),
                        line,
                        rule: "lock-discipline",
                        message: format!(
                            "`.{w}()` can block while guard `{gname}` (line {}) is live; \
                             drop the guard (inner block or explicit drop) before blocking",
                            g.stmt.line
                        ),
                    });
                } else if BLOCKING_TYPES.contains(&w) {
                    out.push(Finding {
                        file: file.to_string(),
                        line,
                        rule: "lock-discipline",
                        message: format!(
                            "socket I/O (`{w}`) while guard `{gname}` (line {}) is live; \
                             drop the guard before touching the network",
                            g.stmt.line
                        ),
                    });
                }
            }
            k += 1;
        }
    }
}

/// Lock-acquisition-order edges of one file: `(held, acquired, line)`
/// whenever a second lock is acquired while a guard on a *named* lock is
/// live. Collected independently of `allow` suppression — an annotated
/// nesting still constrains the global order graph.
pub fn lock_edges(src: &str) -> Vec<(String, String, u32)> {
    let (all_toks, _) = lex(src);
    let toks = strip_cfg_test(&all_toks);
    let ast = Ast::parse(&toks);
    let mut out = Vec::new();
    for g in guard_lets(&toks, &ast) {
        let Some(held) = g.field.clone() else {
            continue;
        };
        let (start, end) = guard_live_range(&toks, &ast, &g);
        for k in start..end.min(toks.len()) {
            if acquisition_at(&toks, k) {
                if let Some(acquired) = acquisition_target(&toks, k) {
                    out.push((held.clone(), acquired, toks[k].line));
                }
            }
        }
    }
    out
}

/// Named `Mutex`/`RwLock` fields declared in one file — the pattern
/// `name : Mutex <` / `name : RwLock <` (type position only; struct
/// literal initializers like `queue: Mutex::new(…)` do not match).
pub fn lock_fields(src: &str) -> Vec<(String, u32)> {
    let (all_toks, _) = lex(src);
    let toks = strip_cfg_test(&all_toks);
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(3) {
        let Some(name) = ident(&toks[i]) else {
            continue;
        };
        if punct(&toks[i + 1], ':')
            && matches!(ident(&toks[i + 2]), Some("Mutex" | "RwLock"))
            && punct(&toks[i + 3], '<')
        {
            out.push((name.to_string(), toks[i].line));
        }
    }
    out
}

// ---------------------------------------------------------------------
// float-determinism
// ---------------------------------------------------------------------

/// `*` is multiplication (not a deref or glob) when the previous token
/// can end an operand.
fn span_has_mult(toks: &[Token]) -> bool {
    for i in 1..toks.len() {
        if punct(&toks[i], '*') {
            let prev_ends_operand = match &toks[i - 1].tok {
                Tok::Ident(_) => true,
                Tok::Punct(c) => matches!(c, ')' | ']'),
            };
            // `*=` is a compound assign, not a product inside the rhs.
            let next_is_eq = toks.get(i + 1).is_some_and(|t| punct(t, '='));
            if prev_ends_operand && !next_is_eq {
                return true;
            }
        }
    }
    false
}

/// Statement span from `start` to the `;` (exclusive) at nesting depth 0.
fn stmt_end(toks: &[Token], start: usize) -> usize {
    let mut depth = 0i64;
    let mut k = start;
    while k < toks.len() {
        match &toks[k].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                if depth == 0 {
                    return k;
                }
                depth -= 1;
            }
            Tok::Punct(';') if depth == 0 => return k,
            _ => {}
        }
        k += 1;
    }
    k
}

/// Flag `acc += a * b` and `acc = acc + a * b` shapes in the designated
/// numeric hot files — the canonical path is `vecops::fmadd(a, b, acc)`
/// (or `dot`/`axpy` for whole slices), which keeps the accumulation
/// order bitwise identical across the scalar/blocked/batched paths.
fn rule_float_determinism(file: &str, toks: &[Token], out: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < toks.len() {
        let Some(name) = ident(&toks[i]) else {
            i += 1;
            continue;
        };
        // `acc += <expr containing a product>`
        if toks.get(i + 1).is_some_and(|t| punct(t, '+'))
            && toks.get(i + 2).is_some_and(|t| punct(t, '='))
        {
            let end = stmt_end(toks, i + 3);
            if span_has_mult(&toks[i + 3..end.min(toks.len())]) {
                out.push(Finding {
                    file: file.to_string(),
                    line: toks[i].line,
                    rule: "float-determinism",
                    message: format!(
                        "raw fused accumulation into `{name}`; use vecops::fmadd(a, b, {name}) \
                         (or dot/axpy over the whole slice) so the canonical accumulation \
                         order is preserved"
                    ),
                });
            }
            i = end;
            continue;
        }
        // `acc = acc + <expr containing a product>`
        if toks.get(i + 1).is_some_and(|t| punct(t, '='))
            && !toks.get(i + 2).is_some_and(|t| punct(t, '='))
            && toks.get(i + 2).and_then(ident) == Some(name)
            && toks.get(i + 3).is_some_and(|t| punct(t, '+'))
        {
            let end = stmt_end(toks, i + 4);
            if span_has_mult(&toks[i + 4..end.min(toks.len())]) {
                out.push(Finding {
                    file: file.to_string(),
                    line: toks[i].line,
                    rule: "float-determinism",
                    message: format!(
                        "raw fused accumulation into `{name}`; use vecops::fmadd(a, b, {name}) \
                         (or dot/axpy over the whole slice) so the canonical accumulation \
                         order is preserved"
                    ),
                });
            }
            i = end;
            continue;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// untrusted-len-alloc
// ---------------------------------------------------------------------

/// Does this span contain a size-sanitizing call: `.min(`, `.clamp(`,
/// `min(`, or `.len(` (a length of data actually in memory is a safe
/// capacity)?
fn span_sanitized(toks: &[Token]) -> bool {
    for i in 0..toks.len() {
        let Some(w) = ident(&toks[i]) else { continue };
        let called = toks.get(i + 1).is_some_and(|t| punct(t, '('));
        if !called {
            continue;
        }
        let dotted = i > 0 && punct(&toks[i - 1], '.');
        match w {
            "min" | "clamp" => return true,
            "len" if dotted => return true,
            _ => {}
        }
    }
    false
}

/// Does this span contain a decode/parse call (`from_be_bytes(`,
/// `parse::<…>`, …)?
fn span_has_decode(toks: &[Token]) -> bool {
    for i in 0..toks.len() {
        let Some(w) = ident(&toks[i]) else { continue };
        if !DECODE_TOKENS.contains(&w) {
            continue;
        }
        if toks
            .get(i + 1)
            .is_some_and(|t| punct(t, '(') || punct(t, '<') || punct(t, ':'))
        {
            return true;
        }
    }
    false
}

/// Was `name` bound-checked between tokens `from` and `to`? A check is
/// the ident adjacent (within two tokens) to a `<`/`>` comparison, or
/// directly followed by `.min(`/`.clamp(`.
fn is_bound_checked(toks: &[Token], name: &str, from: usize, to: usize) -> bool {
    let to = to.min(toks.len());
    for k in from..to {
        if ident(&toks[k]) != Some(name) {
            continue;
        }
        let lo = k.saturating_sub(2);
        let hi = (k + 3).min(toks.len());
        if toks[lo..hi].iter().any(|t| punct(t, '<') || punct(t, '>')) {
            return true;
        }
        if punct_at(toks, k + 1, '.')
            && matches!(toks.get(k + 2).and_then(ident), Some("min" | "clamp"))
        {
            return true;
        }
    }
    false
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| punct(t, c))
}

/// One allocation site: the token index of the pattern and the size
/// expression's token span.
fn alloc_sites(toks: &[Token]) -> Vec<(usize, (usize, usize))> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let Some(w) = ident(&toks[i]) else { continue };
        match w {
            "with_capacity" if punct_at(toks, i + 1, '(') => {
                out.push((i, paren_span(toks, i + 1)));
            }
            "reserve" | "reserve_exact"
                if i > 0 && punct(&toks[i - 1], '.') && punct_at(toks, i + 1, '(') =>
            {
                out.push((i, paren_span(toks, i + 1)));
            }
            "vec" if punct_at(toks, i + 1, '!') && punct_at(toks, i + 2, '[') => {
                // `vec![elem; n]` — the size is everything after the `;`.
                let (s, e) = bracket_span(toks, i + 2);
                let mut depth = 0i64;
                for (k, t) in toks.iter().enumerate().take(e).skip(s) {
                    match &t.tok {
                        Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                        Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                        Tok::Punct(';') if depth == 0 => {
                            out.push((i, (k + 1, e)));
                            break;
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Span of the tokens inside the `(` at `open` (exclusive of the parens).
fn paren_span(toks: &[Token], open: usize) -> (usize, usize) {
    let mut depth = 0i64;
    let mut k = open;
    while k < toks.len() {
        match &toks[k].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return (open + 1, k);
                }
            }
            _ => {}
        }
        k += 1;
    }
    (open + 1, k)
}

/// Span of the tokens inside the `[` at `open` (exclusive of the brackets).
fn bracket_span(toks: &[Token], open: usize) -> (usize, usize) {
    let mut depth = 0i64;
    let mut k = open;
    while k < toks.len() {
        match &toks[k].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (open + 1, k);
                }
            }
            _ => {}
        }
        k += 1;
    }
    (open + 1, k)
}

/// On untrusted surfaces: an allocation whose size expression contains a
/// decode call, or a local binding tainted by one, without an
/// intervening bound check, is the `read_deltas` bug recurring.
fn rule_untrusted_len_alloc(file: &str, toks: &[Token], ast: &Ast, out: &mut Vec<Finding>) {
    // Per-function taint: binding name -> (def token index, def line).
    // Taint flows through local let chains only; a sanitized initializer
    // (`.min(`, `.len(`) or a bound check between def and use clears it.
    for f in &ast.fns {
        let Some(body) = f.body else { continue };
        let Some(b) = ast.blocks.get(body) else {
            continue;
        };
        let (bs, be) = (b.open.min(toks.len()), b.close.min(toks.len()));
        let mut tainted: Vec<(String, usize, u32)> = Vec::new();
        for l in &ast.lets {
            if l.let_idx < bs || l.let_idx >= be {
                continue;
            }
            let init = &toks[l.init.0.min(toks.len())..l.init.1.min(toks.len())];
            let sanitized = span_sanitized(init);
            let direct = !sanitized && span_has_decode(init);
            let via_chain = !sanitized
                && tainted.iter().any(|(name, def, _)| {
                    init.iter().any(|t| ident(t) == Some(name.as_str()))
                        && !is_bound_checked(toks, name, *def, l.let_idx)
                });
            // Shadowing: this `let` replaces any earlier binding of the
            // same names, so stale taint must not outlive it — a
            // sanitized (or simply clean) re-bind clears the name.
            tainted.retain(|(name, _, _)| !l.names.contains(name));
            if direct || via_chain {
                for n in &l.names {
                    tainted.push((n.clone(), l.init.1, l.line));
                }
            }
        }
        for (at, (s, e)) in alloc_sites(&toks[bs..be]) {
            let (at, s, e) = (bs + at, bs + s, bs + e);
            let size = &toks[s.min(toks.len())..e.min(toks.len())];
            if span_sanitized(size) {
                continue;
            }
            if span_has_decode(size) {
                out.push(Finding {
                    file: file.to_string(),
                    line: toks[at].line,
                    rule: "untrusted-len-alloc",
                    message: "allocation sized directly by a decoded value; bound it first \
                              (`.min(cap)` or an explicit comparison guard)"
                        .to_string(),
                });
                continue;
            }
            for (name, def, dline) in &tainted {
                let used = size.iter().any(|t| ident(t) == Some(name.as_str()));
                if used && !is_bound_checked(toks, name, *def, at) {
                    out.push(Finding {
                        file: file.to_string(),
                        line: toks[at].line,
                        rule: "untrusted-len-alloc",
                        message: format!(
                            "allocation sized by `{name}` (decoded at line {dline}) without an \
                             intervening bound check; compare it against a limit or `.min(cap)` \
                             it first"
                        ),
                    });
                    break;
                }
            }
        }
    }
}

/// Check one member crate's `Cargo.toml` opts into the workspace lint
/// table (`[lints] workspace = true`).
pub fn lint_member_manifest(rel_path: &str, text: &str) -> Vec<Finding> {
    let mut in_lints = false;
    let mut ok = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
        } else if in_lints && line.replace(' ', "") == "workspace=true" {
            ok = true;
        }
    }
    if ok {
        Vec::new()
    } else {
        vec![Finding {
            file: rel_path.to_string(),
            line: 1,
            rule: "lint-table",
            message: "missing `[lints] workspace = true`; every member crate inherits the \
                      workspace lint table"
                .to_string(),
        }]
    }
}

/// Check the workspace root manifest declares the shared lint table with
/// the two non-negotiable entries.
pub fn lint_workspace_manifest(text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut in_rust = false;
    let mut keys: BTreeMap<String, String> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_rust = line == "[workspace.lints.rust]";
        } else if in_rust {
            if let Some((k, v)) = line.split_once('=') {
                keys.insert(k.trim().to_string(), v.trim().trim_matches('"').to_string());
            }
        }
    }
    let mut require = |key: &str, value: &str| {
        if keys.get(key).map(String::as_str) != Some(value) {
            out.push(Finding {
                file: "Cargo.toml".to_string(),
                line: 1,
                rule: "lint-table",
                message: format!("[workspace.lints.rust] must set `{key} = \"{value}\"`"),
            });
        }
    };
    require("unsafe_code", "deny");
    require("missing_docs", "warn");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_unwrap_is_reported_with_file_line_and_rule() {
        // The acceptance-criteria scenario: a deliberately planted
        // `unwrap()` in a library crate must be reported with file, line,
        // and rule name.
        let src = "//! doc\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let findings = lint_source("crates/query/src/engine.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.file, "crates/query/src/engine.rs");
        assert_eq!(f.line, 3);
        assert_eq!(f.rule, "no-panic");
        assert_eq!(
            f.to_string().split(':').take(3).collect::<Vec<_>>(),
            vec!["crates/query/src/engine.rs", "3", " no-panic"]
        );
    }

    #[test]
    fn panic_macros_reported() {
        for mac in [
            "panic!(\"x\")",
            "unreachable!()",
            "todo!()",
            "unimplemented!()",
        ] {
            let src = format!("fn f() {{ {mac}; }}");
            let findings = lint_source("crates/core/src/store.rs", &src);
            assert_eq!(findings.len(), 1, "{mac}: {findings:?}");
            assert_eq!(findings[0].rule, "no-panic");
        }
    }

    #[test]
    fn asserts_flagged_only_on_untrusted_surfaces() {
        // The metrics.rs bug class: an assert on externally supplied
        // dimensions aborts the process instead of returning AtsError.
        for mac in ["assert!(a == b)", "assert_eq!(a, b)", "assert_ne!(a, b)"] {
            let src = format!("pub fn f(a: usize, b: usize) {{ {mac}; }}");
            let untrusted = lint_source("crates/query/src/metrics.rs", &src);
            assert_eq!(untrusted.len(), 1, "{mac}: {untrusted:?}");
            assert_eq!(untrusted[0].rule, "no-panic");
            assert!(untrusted[0].message.contains("untrusted"), "{untrusted:?}");
            // Trusted library code may assert its own invariants.
            let trusted = lint_source("crates/linalg/src/matrix.rs", &src);
            assert!(trusted.is_empty(), "{mac}: {trusted:?}");
        }
    }

    #[test]
    fn debug_asserts_and_test_asserts_are_fine_everywhere() {
        let src = "pub fn f(a: usize) { debug_assert!(a > 0); debug_assert_eq!(a, a); }\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert_eq!(1, 1); }\n}\n";
        assert!(lint_source("crates/query/src/serve.rs", src).is_empty());
    }

    #[test]
    fn unwrap_inside_cfg_test_is_fine() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(lint_source("crates/core/src/store.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_string_or_comment_is_fine() {
        let src = "pub fn f() -> &'static str {\n    // .unwrap() in prose\n    \"call .unwrap() later\"\n}\n";
        assert!(lint_source("crates/core/src/store.rs", src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // ats-lint: allow(no-panic) — x is Some by construction two lines up\n    x.unwrap()\n}\n";
        assert!(lint_source("crates/core/src/store.rs", src).is_empty());
    }

    #[test]
    fn trailing_allow_on_same_line_suppresses() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // ats-lint: allow(no-panic) — checked above, cannot be None\n}\n";
        assert!(lint_source("crates/core/src/store.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    // ats-lint: allow(no-panic)\n    x.unwrap()\n}\n";
        let findings = lint_source("crates/core/src/store.rs", src);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "bad-allow" && f.message.contains("reason")),
            "{findings:?}"
        );
        // …and the unwrap is still reported: a reasonless allow suppresses nothing.
        assert!(
            findings.iter().any(|f| f.rule == "no-panic"),
            "{findings:?}"
        );
    }

    #[test]
    fn allow_with_unknown_rule_is_rejected() {
        let src = "// ats-lint: allow(no-such-rule) — because I said so\nfn f() {}\n";
        let findings = lint_source("crates/core/src/store.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "bad-allow");
        assert!(findings[0].message.contains("no-such-rule"));
    }

    #[test]
    fn unused_allow_is_rejected() {
        let src = "// ats-lint: allow(no-panic) — left over from a refactor long ago\nfn f() {}\n";
        let findings = lint_source("crates/core/src/store.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "bad-allow");
        assert!(findings[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn integer_casts_flagged_only_in_untrusted_files() {
        let src = "pub fn f(v: u64) -> usize { v as usize }\n";
        let untrusted = lint_source("crates/storage/src/format.rs", src);
        assert_eq!(untrusted.len(), 1, "{untrusted:?}");
        assert_eq!(untrusted[0].rule, "lossy-cast");
        let trusted = lint_source("crates/linalg/src/matrix.rs", src);
        assert!(trusted.is_empty(), "{trusted:?}");
    }

    #[test]
    fn float_casts_are_not_flagged() {
        let src = "pub fn f(v: usize) -> f64 { v as f64 }\n";
        assert!(lint_source("crates/storage/src/format.rs", src).is_empty());
    }

    #[test]
    fn slice_index_flagged_in_untrusted_files() {
        let src = "pub fn f(buf: &[u8]) -> u8 { buf[0] }\n";
        let findings = lint_source("crates/core/src/disk.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "slice-index");
        // Array literals, attributes, and slice patterns are not indexing.
        let ok = "#[derive(Debug)]\npub struct S;\npub fn g() -> [u8; 2] { let [a, b] = [1u8, 2]; [a, b] }\n";
        assert!(lint_source("crates/core/src/disk.rs", ok).is_empty());
    }

    #[test]
    fn error_type_rule_catches_string_and_io_results() {
        let bad1 = "pub fn f() -> Result<u32, String> { Ok(1) }\n";
        let f1 = lint_source("crates/query/src/workload.rs", bad1);
        assert_eq!(f1.len(), 1, "{f1:?}");
        assert_eq!(f1[0].rule, "error-type");
        let bad2 = "pub fn g(p: &Path) -> std::io::Result<Vec<u8>> { std::fs::read(p) }\n";
        let f2 = lint_source("crates/query/src/workload.rs", bad2);
        assert_eq!(f2.len(), 1, "{f2:?}");
        assert!(f2[0].message.contains("io::Result"));
        let good = "pub fn h() -> Result<u32> { Ok(1) }\npub fn k() -> Result<u32, AtsError> { Ok(1) }\npub fn tup() -> Result<(u64, usize)> { Ok((0, 0)) }\n";
        assert!(lint_source("crates/query/src/workload.rs", good).is_empty());
    }

    #[test]
    fn error_type_ignores_private_and_bin_fns() {
        let private = "fn f() -> Result<u32, String> { Ok(1) }\n";
        assert!(lint_source("crates/query/src/workload.rs", private).is_empty());
        let in_bin = "pub fn f() -> Result<u32, String> { Ok(1) }\n";
        assert!(lint_source("src/bin/ats.rs", in_bin).is_empty());
    }

    #[test]
    fn crate_level_lint_attr_flagged() {
        let src = "#![warn(missing_docs)]\npub fn f() {}\n";
        let findings = lint_source("crates/cube/src/lib.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "lint-table");
    }

    #[test]
    fn member_manifest_check() {
        assert!(lint_member_manifest(
            "crates/x/Cargo.toml",
            "[package]\nname = \"x\"\n\n[lints]\nworkspace = true\n"
        )
        .is_empty());
        let missing = lint_member_manifest("crates/x/Cargo.toml", "[package]\nname = \"x\"\n");
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].rule, "lint-table");
    }

    #[test]
    fn workspace_manifest_check() {
        let good = "[workspace]\n[workspace.lints.rust]\nunsafe_code = \"deny\"\nmissing_docs = \"warn\"\n";
        assert!(lint_workspace_manifest(good).is_empty());
        let bad = "[workspace]\n";
        assert_eq!(lint_workspace_manifest(bad).len(), 2);
    }

    #[test]
    fn rule_names_are_unique() {
        let mut names: Vec<&str> = RULES.iter().map(|&(n, _)| n).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), RULES.len());
    }
}
