//! Workspace invariant linter: lexer, block-scoped AST, rules, and the
//! cross-file lock-order graph.
//!
//! The binary (`cargo xtask lint`) drives these modules over the live
//! tree; the library surface exists so the fixture corpus
//! (`xtask/tests/fixtures.rs`) and the parser proptest
//! (`xtask/tests/ast_props.rs`) can exercise the exact same code paths
//! against controlled inputs.

pub mod ast;
pub mod graph;
pub mod lexer;
pub mod output;
pub mod rules;
