//! Report rendering: plain text, machine-readable JSON, and GitHub
//! workflow annotations.
//!
//! The JSON writer is hand-rolled (xtask stays dependency-free); the
//! schema is small and stable: `findings[]`, `lock_graph{nodes,edges}`,
//! `files_scanned`, `wall_ms`.

use crate::graph::LockGraph;
use crate::rules::Finding;

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the full lint report as a JSON document.
pub fn render_json(
    findings: &[Finding],
    graph: &LockGraph,
    files_scanned: usize,
    wall_ms: u128,
) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            json_escape(f.rule),
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"lock_graph\": {\n    \"nodes\": [");
    for (i, (name, file, line)) in graph.nodes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n      {{\"name\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
            json_escape(name),
            json_escape(file),
            line
        ));
    }
    if !graph.nodes.is_empty() {
        s.push_str("\n    ");
    }
    s.push_str("],\n    \"edges\": [");
    for (i, e) in graph.edges.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n      {{\"held\": \"{}\", \"acquired\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
            json_escape(&e.held),
            json_escape(&e.acquired),
            json_escape(&e.file),
            e.line
        ));
    }
    if !graph.edges.is_empty() {
        s.push_str("\n    ");
    }
    s.push_str(&format!(
        "]\n  }},\n  \"files_scanned\": {files_scanned},\n  \"wall_ms\": {wall_ms}\n}}\n"
    ));
    s
}

/// Render findings as GitHub workflow commands, one `::error` per
/// finding, so CI annotates them onto the PR diff.
pub fn render_github(findings: &[Finding]) -> String {
    let mut s = String::new();
    for f in findings {
        // The workflow-command grammar escapes %, CR, LF in messages.
        let msg = f
            .message
            .replace('%', "%25")
            .replace('\r', "%0D")
            .replace('\n', "%0A");
        s.push_str(&format!(
            "::error file={},line={},title={}::{}\n",
            f.file, f.line, f.rule, msg
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LockEdge;

    fn finding() -> Finding {
        Finding {
            file: "crates/query/src/serve.rs".to_string(),
            line: 42,
            rule: "lock-discipline",
            message: "a \"quoted\" message\nwith a newline".to_string(),
        }
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let g = LockGraph {
            nodes: vec![("queue".into(), "crates/query/src/serve.rs".into(), 10)],
            edges: vec![LockEdge {
                held: "queue".into(),
                acquired: "metrics".into(),
                file: "crates/query/src/serve.rs".into(),
                line: 20,
            }],
        };
        let j = render_json(&[finding()], &g, 7, 123);
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"files_scanned\": 7"));
        assert!(j.contains("\"wall_ms\": 123"));
        assert!(j.contains("\"held\": \"queue\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn github_annotations_escape_newlines() {
        let out = render_github(&[finding()]);
        assert!(out.starts_with("::error file=crates/query/src/serve.rs,line=42,"));
        assert!(out.contains("%0A"));
        assert!(!out.trim_end().contains('\n') || out.lines().count() == 1);
    }

    #[test]
    fn empty_report_is_still_valid() {
        let j = render_json(&[], &LockGraph::default(), 0, 0);
        assert!(j.contains("\"findings\": []"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
