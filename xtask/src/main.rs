//! Workspace automation for the ad-hoc time-sequence store.
//!
//! `cargo xtask lint` (or `cargo run -p xtask -- lint`) walks every
//! workspace crate and enforces the repo-specific invariants described
//! in DESIGN.md §"Error-handling and invariants": panic-free library
//! code, checked conversions on untrusted input, `AtsError` on public
//! fallible APIs, a single workspace-level lint table, and (since the
//! block-scoped pass) lock discipline in the daemon, canonical float
//! accumulation in the numeric hot files, and bound-checked allocations
//! on untrusted surfaces.
//!
//! Output formats: `--format text` (default), `--format json` (full
//! report including the lock-order graph), `--format github` (workflow
//! annotations for PR diffs). `--json-out PATH` writes the JSON report
//! alongside whichever format is printed.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;
use xtask::graph::{build_lock_graph, LockGraph};
use xtask::output::{render_github, render_json};
use xtask::rules::{self, Finding};

/// Source roots scanned for `.rs` files, relative to the workspace root.
const SOURCE_ROOTS: &[&str] = &["crates", "src"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("rules") if args.len() == 1 => {
            for (name, what) in rules::RULES {
                println!("{name:<20} {what}");
            }
            ExitCode::SUCCESS
        }
        Some("bench-report") => run_bench_report(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask <lint [--format text|json|github] [--json-out PATH] \
                 | rules | bench-report [--quick] [--out PATH]>"
            );
            ExitCode::from(2)
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the workspace root is our parent.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().unwrap_or(manifest).to_path_buf()
}

/// The full workspace lint pass: per-file rules, manifest checks, and
/// the cross-file lock-order graph. Returns findings sorted and deduped.
fn lint_workspace(root: &Path) -> Result<(Vec<Finding>, LockGraph, usize), String> {
    let mut findings = Vec::new();
    let mut files = Vec::new();
    for src_root in SOURCE_ROOTS {
        collect_rs_files(&root.join(src_root), &mut files);
    }
    files.sort();
    let mut scanned = 0usize;
    let mut graph_sources: Vec<(String, String)> = Vec::new();
    for path in &files {
        let rel = rel_path(root, path);
        // Test trees exercise panics on purpose; xtask polices, it is
        // not itself part of the serving path.
        if rel.contains("/tests/") || rel.starts_with("xtask/") {
            continue;
        }
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {rel}: {e}"))?;
        scanned += 1;
        findings.extend(rules::lint_source(&rel, &src));
        if rules::LOCK_GRAPH_FILES.contains(&rel.as_str()) {
            graph_sources.push((rel, src));
        }
    }

    // Cross-file pass: assemble the lock-order graph and reject cycles.
    let (graph, graph_findings) = build_lock_graph(&graph_sources);
    findings.extend(graph_findings);

    // Manifest checks: workspace lint table + member opt-in.
    let text = std::fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| format!("cannot read Cargo.toml: {e}"))?;
    findings.extend(rules::lint_workspace_manifest(&text));
    let mut manifests = Vec::new();
    collect_member_manifests(root, &mut manifests);
    for m in manifests {
        let rel = rel_path(root, &m);
        let text = std::fs::read_to_string(&m).map_err(|e| format!("cannot read {rel}: {e}"))?;
        findings.extend(rules::lint_member_manifest(&rel, &text));
    }

    findings.sort();
    findings.dedup();
    Ok((findings, graph, scanned))
}

fn run_lint(flags: &[String]) -> ExitCode {
    let format = flags
        .iter()
        .position(|a| a == "--format")
        .and_then(|i| flags.get(i + 1))
        .map_or("text", String::as_str);
    if !matches!(format, "text" | "json" | "github") {
        eprintln!("xtask lint: unknown --format {format:?} (text|json|github)");
        return ExitCode::from(2);
    }
    let json_out = flags
        .iter()
        .position(|a| a == "--json-out")
        .and_then(|i| flags.get(i + 1));

    let root = workspace_root();
    let t0 = Instant::now();
    let (findings, graph, scanned) = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };
    let wall_ms = t0.elapsed().as_millis();

    if let Some(out_path) = json_out {
        let json = render_json(&findings, &graph, scanned, wall_ms);
        let p = PathBuf::from(out_path);
        let p = if p.is_absolute() { p } else { root.join(p) };
        if let Err(e) = std::fs::write(&p, json) {
            eprintln!("xtask: cannot write {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }

    match format {
        "json" => print!("{}", render_json(&findings, &graph, scanned, wall_ms)),
        "github" => {
            print!("{}", render_github(&findings));
            eprintln!(
                "xtask lint: {} finding(s) in {scanned} files ({} lock nodes, {} edges)",
                findings.len(),
                graph.nodes.len(),
                graph.edges.len()
            );
        }
        _ => {
            for f in &findings {
                println!("{f}");
            }
        }
    }
    if findings.is_empty() {
        if format == "text" {
            eprintln!(
                "xtask lint: {scanned} files clean ({} lock nodes, {} edges, {wall_ms} ms)",
                graph.nodes.len(),
                graph.edges.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        if format == "text" {
            eprintln!(
                "xtask lint: {} finding(s) in {scanned} files",
                findings.len()
            );
        }
        ExitCode::FAILURE
    }
}

/// Fields every perf-trajectory report must carry; `bench-report` fails
/// the run if any is missing, so CI catches a silently degraded suite.
const BENCH_REQUIRED_FIELDS: &[&str] = &[
    "\"schema\"",
    "\"machine\"",
    "\"build_phone2000\"",
    "\"batch_cells\"",
    "\"aggregate_scan\"",
    "\"kernels\"",
    "\"ladder_build\"",
    "\"peak_rss_bytes\"",
    "\"serve_throughput\"",
    "\"range_query\"",
    "\"predicate_scan\"",
    "\"lint_wall_ms\"",
    "\"notes\"",
];

/// Whole-workspace lint must stay interactive-fast; CI fails past this.
const LINT_WALL_BUDGET_MS: u128 = 2000;

/// Run the pinned perf suite (`crates/bench/src/bin/bench_report.rs`),
/// time the in-process whole-workspace lint pass, inject the result as
/// `lint_wall_ms`, and validate the emitted JSON. Flags are forwarded:
/// `--quick` for the CI smoke sizes, `--out PATH` to redirect the report.
fn run_bench_report(flags: &[String]) -> ExitCode {
    let root = workspace_root();
    let out_path = flags
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| flags.get(i + 1))
        .map(|p| {
            // The suite runs with the workspace root as CWD, so resolve
            // a relative --out the same way before reading it back.
            let p = PathBuf::from(p);
            if p.is_absolute() {
                p
            } else {
                root.join(p)
            }
        })
        .unwrap_or_else(|| root.join("BENCH_010.json"));

    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut cmd = std::process::Command::new(cargo);
    cmd.current_dir(&root)
        .args([
            "run",
            "--offline",
            "--release",
            "-p",
            "ats-bench",
            "--bin",
            "bench_report",
            "--",
        ])
        .args(flags);
    if !flags.iter().any(|a| a == "--out") {
        cmd.arg("--out").arg(&out_path);
    }
    match cmd.status() {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("xtask: bench_report exited with {s}");
            return ExitCode::from(1);
        }
        Err(e) => {
            eprintln!("xtask: cannot run bench_report: {e}");
            return ExitCode::from(2);
        }
    }

    // Time the lint pass in-process and pin it into the report: a linter
    // slow enough to annoy (`> 2 s`) is a linter people stop running.
    let t0 = Instant::now();
    let lint_ok = lint_workspace(&root);
    let lint_wall_ms = t0.elapsed().as_millis();
    if let Err(e) = lint_ok {
        eprintln!("xtask: lint pass failed during bench-report: {e}");
        return ExitCode::from(1);
    }
    if lint_wall_ms > LINT_WALL_BUDGET_MS {
        eprintln!(
            "bench-report: lint wall time {lint_wall_ms} ms exceeds the \
             {LINT_WALL_BUDGET_MS} ms budget"
        );
        return ExitCode::from(1);
    }

    let text = match std::fs::read_to_string(&out_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask: cannot read {}: {e}", out_path.display());
            return ExitCode::from(1);
        }
    };
    // Inject lint_wall_ms before the final closing brace.
    let text = match inject_lint_wall_ms(&text, lint_wall_ms) {
        Some(t) => t,
        None => {
            eprintln!(
                "bench-report: {} is not a JSON object; cannot inject lint_wall_ms",
                out_path.display()
            );
            return ExitCode::from(1);
        }
    };
    if let Err(e) = std::fs::write(&out_path, &text) {
        eprintln!("xtask: cannot write {}: {e}", out_path.display());
        return ExitCode::from(1);
    }

    let missing: Vec<&str> = BENCH_REQUIRED_FIELDS
        .iter()
        .filter(|f| !text.contains(*f))
        .copied()
        .collect();
    if missing.is_empty() {
        println!(
            "bench-report: {} valid ({} bytes, all {} required fields present, \
             lint_wall_ms={lint_wall_ms})",
            out_path.display(),
            text.len(),
            BENCH_REQUIRED_FIELDS.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench-report: {} is missing required fields: {}",
            out_path.display(),
            missing.join(", ")
        );
        ExitCode::from(1)
    }
}

/// Splice `"lint_wall_ms": N` into a JSON object's top level, before the
/// final `}`. Returns `None` when the text does not end with one.
fn inject_lint_wall_ms(text: &str, ms: u128) -> Option<String> {
    if text.contains("\"lint_wall_ms\"") {
        return Some(text.to_string());
    }
    let end = text.rfind('}')?;
    let head = text[..end].trim_end();
    let sep = if head.ends_with('{') { "" } else { "," };
    Some(format!(
        "{head}{sep}\n  \"lint_wall_ms\": {ms}\n{}",
        &text[end..]
    ))
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn collect_member_manifests(root: &Path, out: &mut Vec<PathBuf>) {
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        return;
    };
    for entry in entries.flatten() {
        let manifest = entry.path().join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    let xtask = root.join("xtask/Cargo.toml");
    if xtask.is_file() {
        out.push(xtask);
    }
    out.sort();
}
