//! Workspace automation for the ad-hoc time-sequence store.
//!
//! `cargo xtask lint` (or `cargo run -p xtask -- lint`) walks every
//! workspace crate and enforces the repo-specific invariants described
//! in DESIGN.md §"Error-handling and invariants": panic-free library
//! code, checked conversions on untrusted input, `AtsError` on public
//! fallible APIs, and a single workspace-level lint table.

mod lexer;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Source roots scanned for `.rs` files, relative to the workspace root.
const SOURCE_ROOTS: &[&str] = &["crates", "src"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") if args.len() == 1 => run_lint(),
        Some("rules") if args.len() == 1 => {
            for (name, what) in rules::RULES {
                println!("{name:<12} {what}");
            }
            ExitCode::SUCCESS
        }
        Some("bench-report") => run_bench_report(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask <lint|rules|bench-report [--quick] [--out PATH]>");
            ExitCode::from(2)
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the workspace root is our parent.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().unwrap_or(manifest).to_path_buf()
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let mut findings = Vec::new();
    let mut files = Vec::new();
    for src_root in SOURCE_ROOTS {
        collect_rs_files(&root.join(src_root), &mut files);
    }
    files.sort();
    let mut scanned = 0usize;
    for path in &files {
        let rel = rel_path(&root, path);
        // Test trees exercise panics on purpose; xtask polices, it is
        // not itself part of the serving path.
        if rel.contains("/tests/") || rel.starts_with("xtask/") {
            continue;
        }
        match std::fs::read_to_string(path) {
            Ok(src) => {
                scanned += 1;
                findings.extend(rules::lint_source(&rel, &src));
            }
            Err(e) => {
                eprintln!("xtask: cannot read {rel}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // Manifest checks: workspace lint table + member opt-in.
    match std::fs::read_to_string(root.join("Cargo.toml")) {
        Ok(text) => findings.extend(rules::lint_workspace_manifest(&text)),
        Err(e) => {
            eprintln!("xtask: cannot read Cargo.toml: {e}");
            return ExitCode::from(2);
        }
    }
    let mut manifests = Vec::new();
    collect_member_manifests(&root, &mut manifests);
    for m in manifests {
        let rel = rel_path(&root, &m);
        match std::fs::read_to_string(&m) {
            Ok(text) => findings.extend(rules::lint_member_manifest(&rel, &text)),
            Err(e) => {
                eprintln!("xtask: cannot read {rel}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    findings.sort();
    findings.dedup();
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("xtask lint: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask lint: {} finding(s) in {scanned} files",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

/// Fields every perf-trajectory report must carry; `bench-report` fails
/// the run if any is missing, so CI catches a silently degraded suite.
const BENCH_REQUIRED_FIELDS: &[&str] = &[
    "\"schema\"",
    "\"machine\"",
    "\"build_phone2000\"",
    "\"batch_cells\"",
    "\"aggregate_scan\"",
    "\"kernels\"",
    "\"ladder_build\"",
    "\"peak_rss_bytes\"",
    "\"serve_throughput\"",
    "\"notes\"",
];

/// Run the pinned perf suite (`crates/bench/src/bin/bench_report.rs`)
/// and validate the emitted JSON. Flags are forwarded: `--quick` for the
/// CI smoke sizes, `--out PATH` to redirect the report.
fn run_bench_report(flags: &[String]) -> ExitCode {
    let root = workspace_root();
    let out_path = flags
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| flags.get(i + 1))
        .map(|p| {
            // The suite runs with the workspace root as CWD, so resolve
            // a relative --out the same way before reading it back.
            let p = PathBuf::from(p);
            if p.is_absolute() {
                p
            } else {
                root.join(p)
            }
        })
        .unwrap_or_else(|| root.join("BENCH_007.json"));

    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut cmd = std::process::Command::new(cargo);
    cmd.current_dir(&root)
        .args([
            "run",
            "--offline",
            "--release",
            "-p",
            "ats-bench",
            "--bin",
            "bench_report",
            "--",
        ])
        .args(flags);
    if !flags.iter().any(|a| a == "--out") {
        cmd.arg("--out").arg(&out_path);
    }
    match cmd.status() {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("xtask: bench_report exited with {s}");
            return ExitCode::from(1);
        }
        Err(e) => {
            eprintln!("xtask: cannot run bench_report: {e}");
            return ExitCode::from(2);
        }
    }

    let text = match std::fs::read_to_string(&out_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask: cannot read {}: {e}", out_path.display());
            return ExitCode::from(1);
        }
    };
    let missing: Vec<&str> = BENCH_REQUIRED_FIELDS
        .iter()
        .filter(|f| !text.contains(*f))
        .copied()
        .collect();
    if missing.is_empty() {
        println!(
            "bench-report: {} valid ({} bytes, all {} required fields present)",
            out_path.display(),
            text.len(),
            BENCH_REQUIRED_FIELDS.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench-report: {} is missing required fields: {}",
            out_path.display(),
            missing.join(", ")
        );
        ExitCode::from(1)
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn collect_member_manifests(root: &Path, out: &mut Vec<PathBuf>) {
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        return;
    };
    for entry in entries.flatten() {
        let manifest = entry.path().join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    let xtask = root.join("xtask/Cargo.toml");
    if xtask.is_file() {
        out.push(xtask);
    }
    out.sort();
}
