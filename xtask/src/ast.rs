//! A block-scoped item model over the token stream.
//!
//! The flat lexer in [`crate::lexer`] is enough for pattern rules
//! (`.unwrap(`, `as usize`), but the concurrency and allocation rules
//! need *structure*: which function a token lives in, which block a
//! `let` binding's scope ends at, and what each binding's initializer
//! contains. This module recovers exactly that — and no more — from the
//! token stream: a brace-matched block tree, `fn` items with their body
//! blocks and leading attributes, and `let` statements with binding
//! names and initializer token spans. It is not a Rust parser; it is a
//! deliberately forgiving structural scan that never fails (mangled
//! input yields a smaller, still-balanced tree — see the proptest in
//! `xtask/tests/ast_props.rs`).
//!
//! Same constraints as the lexer: pure Rust, no dependencies, offline.

use crate::lexer::{Tok, Token};

/// Index of the virtual root block that spans the whole file.
pub const ROOT_BLOCK: usize = 0;

/// What introduced a block — decided by scanning backwards from its `{`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockKind {
    /// The virtual whole-file block.
    Root,
    /// The body of a `fn`.
    FnBody,
    /// The body of an `impl`.
    ImplBody,
    /// The body of an inline `mod`.
    ModBody,
    /// Anything else: control flow, match arms, struct literals,
    /// expression blocks. The tree shape is what matters, not the label.
    Other,
}

/// One brace-matched block. `open`/`close` are token indices of the
/// `{` / `}`; an unclosed block is closed at the end of the stream.
#[derive(Debug, Clone)]
pub struct Block {
    /// Token index of the opening `{` (`usize::MAX` for the root).
    pub open: usize,
    /// Token index one past the matching `}` (exclusive end).
    pub close: usize,
    /// Arena index of the parent block (the root is its own parent).
    pub parent: usize,
    /// What introduced the block.
    pub kind: BlockKind,
}

/// A `fn` item: name, location, and the arena index of its body block.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name (`?` if the stream is too mangled to tell).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Arena index of the body block, if the item has one (trait method
    /// declarations do not).
    pub body: Option<usize>,
    /// Raw identifier text of the attributes directly above the item
    /// (`#[inline]` contributes `inline`), for cfg-aware rules.
    pub attrs: Vec<String>,
}

/// A `let` statement: binding names, initializer span, enclosing block.
#[derive(Debug, Clone)]
pub struct LetStmt {
    /// Lower-case binding names from the pattern (`let (a, b) = …` yields
    /// both; enum variants and types are filtered out by case).
    pub names: Vec<String>,
    /// 1-based line of the `let` keyword.
    pub line: u32,
    /// Token span `[start, end)` of the initializer expression (empty
    /// for `let x;`).
    pub init: (usize, usize),
    /// Arena index of the innermost block containing the `let`.
    pub block: usize,
    /// Token index of the `let` keyword.
    pub let_idx: usize,
}

/// The recovered structure of one file.
#[derive(Debug)]
pub struct Ast {
    /// Block arena; `blocks[ROOT_BLOCK]` spans the whole file.
    pub blocks: Vec<Block>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Every `let` statement, in source order.
    pub lets: Vec<LetStmt>,
    /// Innermost enclosing block per token index.
    block_of: Vec<usize>,
}

fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s.as_str()),
        Tok::Punct(_) => None,
    }
}

fn is_punct(t: &Token, c: char) -> bool {
    t.tok == Tok::Punct(c)
}

impl Ast {
    /// Build the block tree and item/let tables for a token stream.
    /// Total: mangled input degrades the tree, never panics.
    pub fn parse(toks: &[Token]) -> Ast {
        let (blocks, block_of) = build_blocks(toks);
        let mut ast = Ast {
            blocks,
            fns: Vec::new(),
            lets: Vec::new(),
            block_of,
        };
        ast.collect_fns(toks);
        ast.collect_lets(toks);
        ast
    }

    /// Innermost block containing token `i` (the root for out-of-range).
    pub fn enclosing_block(&self, i: usize) -> usize {
        self.block_of.get(i).copied().unwrap_or(ROOT_BLOCK)
    }

    /// The function whose body block contains token `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        let mut b = self.enclosing_block(i);
        loop {
            if let Some(f) = self.fns.iter().find(|f| f.body == Some(b)) {
                return Some(f);
            }
            let parent = self.blocks.get(b)?.parent;
            if parent == b {
                return None;
            }
            b = parent;
        }
    }

    /// Whether block `inner` is `outer` or nested anywhere inside it.
    pub fn block_within(&self, mut inner: usize, outer: usize) -> bool {
        loop {
            if inner == outer {
                return true;
            }
            let Some(b) = self.blocks.get(inner) else {
                return false;
            };
            if b.parent == inner {
                return false;
            }
            inner = b.parent;
        }
    }

    fn collect_fns(&mut self, toks: &[Token]) {
        let mut open_to_block = vec![usize::MAX; toks.len()];
        for (id, b) in self.blocks.iter().enumerate() {
            if b.open < toks.len() {
                open_to_block[b.open] = id;
            }
        }
        let mut i = 0usize;
        while i < toks.len() {
            if ident(&toks[i]) != Some("fn") {
                i += 1;
                continue;
            }
            let name = toks.get(i + 1).and_then(ident).unwrap_or("?").to_string();
            // Attributes directly above: walk back over `#[…]` groups.
            let attrs = attrs_before(toks, i);
            // The body is the first `{` after the signature at paren
            // depth 0; a `;` first means a bodyless declaration.
            let mut j = i + 1;
            let mut paren = 0i64;
            let mut body = None;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('(') | Tok::Punct('[') => paren += 1,
                    Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
                    Tok::Punct(';') if paren <= 0 => break,
                    Tok::Punct('{') if paren <= 0 => {
                        let id = open_to_block.get(j).copied().unwrap_or(usize::MAX);
                        if id != usize::MAX {
                            body = Some(id);
                        }
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            self.fns.push(FnItem {
                name,
                line: toks[i].line,
                fn_idx: i,
                body,
                attrs,
            });
            i += 1;
        }
    }

    fn collect_lets(&mut self, toks: &[Token]) {
        let mut i = 0usize;
        while i < toks.len() {
            if ident(&toks[i]) != Some("let") {
                i += 1;
                continue;
            }
            let let_idx = i;
            let line = toks[i].line;
            // Pattern: idents up to `:` (type annotation) or `=` at
            // nesting depth 0. Lower-case names are bindings; type and
            // variant names start upper-case and are skipped.
            let mut names = Vec::new();
            let mut j = i + 1;
            let mut depth = 0i64;
            let mut saw_eq = false;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('>') => depth -= 1,
                    Tok::Punct(':') if depth <= 0 => {
                        // Skip the type annotation to the `=` (or the
                        // statement end if there is no initializer).
                        j = skip_type_to_eq(toks, j + 1);
                        saw_eq = j < toks.len() && is_punct(&toks[j], '=');
                        break;
                    }
                    Tok::Punct('=') if depth <= 0 => {
                        saw_eq = true;
                        break;
                    }
                    Tok::Punct(';') | Tok::Punct('{') if depth <= 0 => break,
                    Tok::Ident(w) => {
                        let keyword = matches!(w.as_str(), "mut" | "ref" | "box" | "_");
                        let upper = w.starts_with(|c: char| c.is_ascii_uppercase());
                        let numeric = w.starts_with(|c: char| c.is_ascii_digit());
                        if !keyword && !upper && !numeric {
                            names.push(w.clone());
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if !saw_eq {
                i = j.max(i + 1);
                continue;
            }
            // Initializer: from past the `=` to the `;` at depth 0
            // (parens, brackets, and braces all nest — a struct literal
            // or match expression stays inside the span).
            let init_start = j + 1;
            let mut k = init_start;
            let mut d = 0i64;
            while k < toks.len() {
                match &toks[k].tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => d += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                        if d == 0 {
                            break; // unbalanced close: end the statement
                        }
                        d -= 1;
                    }
                    Tok::Punct(';') if d <= 0 => break,
                    _ => {}
                }
                k += 1;
            }
            self.lets.push(LetStmt {
                names,
                line,
                init: (init_start, k),
                block: self.enclosing_block(let_idx),
                let_idx,
            });
            i = init_start;
        }
    }
}

/// Raw attribute idents from the `#[…]` groups directly above token `i`.
fn attrs_before(toks: &[Token], i: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut end = i;
    // Allow visibility/qualifier tokens between the attrs and `fn`.
    while end > 0
        && (matches!(
            ident(&toks[end - 1]),
            Some("pub" | "const" | "async" | "unsafe" | "extern" | "crate" | "super" | "in")
        ) || is_punct(&toks[end - 1], ')')
            || is_punct(&toks[end - 1], '('))
    {
        end -= 1;
    }
    while end >= 2 && is_punct(&toks[end - 1], ']') {
        // Walk back to the matching `[`, then expect `#`.
        let mut depth = 0i64;
        let mut j = end - 1;
        loop {
            match &toks[j].tok {
                Tok::Punct(']') => depth += 1,
                Tok::Punct('[') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                break;
            }
            j -= 1;
        }
        if j == 0 || !is_punct(&toks[j - 1], '#') {
            break;
        }
        let text: Vec<String> = toks[j..end - 1]
            .iter()
            .filter_map(|t| ident(t).map(str::to_string))
            .collect();
        out.push(text.join(" "));
        end = j - 1;
    }
    out.reverse();
    out
}

/// After a `:` in a let pattern, skip the type to the `=` (returns its
/// index), or to the statement end.
fn skip_type_to_eq(toks: &[Token], mut j: usize) -> usize {
    let mut angle = 0i64;
    let mut paren = 0i64;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
            Tok::Punct('=') if angle <= 0 && paren <= 0 => {
                // `==` would be a bug in a type position; accept `=`.
                return j;
            }
            Tok::Punct(';') | Tok::Punct('{') if angle <= 0 && paren <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Brace-matching pass: build the block arena and the per-token
/// innermost-block table.
fn build_blocks(toks: &[Token]) -> (Vec<Block>, Vec<usize>) {
    let mut blocks = vec![Block {
        open: usize::MAX,
        close: toks.len(),
        parent: ROOT_BLOCK,
        kind: BlockKind::Root,
    }];
    let mut block_of = vec![ROOT_BLOCK; toks.len()];
    let mut stack = vec![ROOT_BLOCK];
    for (i, t) in toks.iter().enumerate() {
        let top = *stack.last().unwrap_or(&ROOT_BLOCK);
        match &t.tok {
            Tok::Punct('{') => {
                // The `{` itself belongs to the parent block.
                block_of[i] = top;
                let kind = classify_block(toks, i);
                blocks.push(Block {
                    open: i,
                    close: toks.len(),
                    parent: top,
                    kind,
                });
                stack.push(blocks.len() - 1);
            }
            Tok::Punct('}') => {
                block_of[i] = top;
                if stack.len() > 1 {
                    if let Some(id) = stack.pop() {
                        if let Some(b) = blocks.get_mut(id) {
                            b.close = i + 1;
                        }
                    }
                }
                // A stray `}` at the root is ignored: still balanced.
            }
            _ => {
                block_of[i] = top;
            }
        }
    }
    (blocks, block_of)
}

/// Decide what introduced the block opening at token `open` by scanning
/// back to the previous statement boundary at the same level.
fn classify_block(toks: &[Token], open: usize) -> BlockKind {
    let mut j = open;
    let mut depth = 0i64;
    while j > 0 {
        j -= 1;
        match &toks[j].tok {
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('>') => depth += 1,
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => depth -= 1,
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') if depth <= 0 => {
                j += 1;
                break;
            }
            _ => {}
        }
    }
    let mut kind = BlockKind::Other;
    for t in &toks[j..open] {
        match ident(t) {
            Some("fn") => kind = BlockKind::FnBody,
            Some("impl") if kind == BlockKind::Other => kind = BlockKind::ImplBody,
            Some("mod") if kind == BlockKind::Other => kind = BlockKind::ModBody,
            _ => {}
        }
    }
    kind
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Vec<Token>, Ast) {
        let (toks, _) = lex(src);
        let ast = Ast::parse(&toks);
        (toks, ast)
    }

    #[test]
    fn fn_items_and_bodies_are_found() {
        let (_, ast) = parse(
            "impl S {\n    #[inline]\n    pub fn a(&self) -> u32 { 1 }\n    fn b();\n}\nfn c() {}\n",
        );
        let names: Vec<&str> = ast.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(ast.fns[0].body.is_some());
        assert_eq!(ast.fns[0].attrs, vec!["inline".to_string()]);
        assert!(ast.fns[1].body.is_none(), "declaration has no body");
        assert!(ast.fns[2].body.is_some());
        let a_body = ast.fns[0].body.unwrap();
        assert_eq!(ast.blocks[a_body].kind, BlockKind::FnBody);
        assert_eq!(
            ast.blocks[ast.blocks[a_body].parent].kind,
            BlockKind::ImplBody
        );
    }

    #[test]
    fn let_bindings_with_types_and_tuples() {
        let (toks, ast) = parse(
            "fn f() {\n    let x: Vec<u8> = make();\n    let (a, b) = pair();\n    let Some(v) = opt else { return };\n    let _ = x;\n}\n",
        );
        assert!(ast.lets.len() >= 3, "{:?}", ast.lets);
        assert_eq!(ast.lets[0].names, vec!["x"]);
        let init: Vec<&str> = toks[ast.lets[0].init.0..ast.lets[0].init.1]
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                Tok::Punct(_) => None,
            })
            .collect();
        assert_eq!(init, vec!["make"]);
        assert_eq!(ast.lets[1].names, vec!["a", "b"]);
        assert_eq!(ast.lets[2].names, vec!["v"], "Some is filtered by case");
    }

    #[test]
    fn enclosing_fn_and_block_scoping() {
        let src = "fn outer() {\n    let g = acquire();\n    {\n        let h = 1;\n    }\n    use_it(g);\n}\n";
        let (toks, ast) = parse(src);
        let g = &ast.lets[0];
        let h = &ast.lets[1];
        assert_ne!(g.block, h.block);
        assert!(ast.block_within(h.block, g.block));
        assert!(!ast.block_within(g.block, h.block));
        let use_idx = toks
            .iter()
            .position(|t| t.tok == Tok::Ident("use_it".into()))
            .unwrap();
        assert_eq!(ast.enclosing_fn(use_idx).unwrap().name, "outer");
        // `use_it` is in g's block but outside h's.
        assert!(ast.block_within(ast.enclosing_block(use_idx), g.block));
        assert!(!ast.block_within(ast.enclosing_block(use_idx), h.block));
    }

    #[test]
    fn mangled_input_stays_balanced() {
        for src in [
            "}}}{{{",
            "fn",
            "fn {",
            "let = ;",
            "let x = {",
            "impl } fn a(",
            "{ fn b(} ) {",
        ] {
            let (toks, ast) = parse(src);
            for b in &ast.blocks {
                assert!(b.close <= toks.len());
                if b.open != usize::MAX {
                    assert!(b.open < b.close, "{src:?}");
                }
            }
        }
    }

    #[test]
    fn struct_literal_in_initializer_does_not_split_the_let() {
        let (toks, ast) = parse("fn f() { let s = S { a: 1, b: 2 }; let t = 3; }");
        assert_eq!(ast.lets.len(), 2);
        let (s, e) = ast.lets[0].init;
        let span: Vec<&str> = toks[s..e]
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(w) => Some(w.as_str()),
                _ => None,
            })
            .collect();
        assert!(span.contains(&"S") && span.contains(&"b"), "{span:?}");
    }
}
