//! A minimal, dependency-free Rust token scanner.
//!
//! The linter does not need a full parse tree — only a token stream with
//! line numbers, with comments, strings, char literals, and lifetimes
//! correctly skipped so that rule patterns (`.unwrap(`, `as usize`,
//! `panic!`) never match inside text that is not code. The scanner
//! handles line and nested block comments, plain/byte/raw strings,
//! char-literal-vs-lifetime disambiguation, and `#[cfg(test)]`-gated
//! items (which the caller usually filters out).

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier, keyword, or numeric literal.
    Ident(String),
    /// A single punctuation character.
    Punct(char),
}

/// A token together with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// 1-based line number.
    pub line: u32,
    /// The token itself.
    pub tok: Tok,
}

/// A `//` line comment (text after the slashes) with its line number.
/// Block comments are skipped without being recorded — the `ats-lint:`
/// escape hatch is line-comment only, by design.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line number.
    pub line: u32,
    /// Comment text, without the leading `//`.
    pub text: String,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into (tokens, line comments).
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && b.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < b.len() && b[j] != '\n' {
                j += 1;
            }
            comments.push(Comment {
                line,
                text: b[start..j].iter().collect(),
            });
            i = j;
        } else if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if b[j] == '/' && b.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && b.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
        } else if c == '"' {
            i = skip_string(&b, i, &mut line);
        } else if c == '\'' {
            i = skip_char_or_lifetime(&b, i, &mut line);
        } else if is_ident_start(c) {
            let start = i;
            let mut j = i;
            while j < b.len() && is_ident_continue(b[j]) {
                j += 1;
            }
            let word: String = b[start..j].iter().collect();
            // Raw / byte string prefixes: r"", r#""#, br"", b"", c"".
            let raw = matches!(word.as_str(), "r" | "br" | "cr");
            let bytes = matches!(word.as_str(), "b" | "c");
            if raw {
                let mut hashes = 0usize;
                while b.get(j + hashes) == Some(&'#') {
                    hashes += 1;
                }
                if b.get(j + hashes) == Some(&'"') {
                    i = skip_raw_string(&b, j + hashes, hashes, &mut line);
                    continue;
                }
            }
            if bytes && b.get(j) == Some(&'"') {
                i = skip_string(&b, j, &mut line);
                continue;
            }
            if bytes && b.get(j) == Some(&'\'') {
                i = skip_char_or_lifetime(&b, j, &mut line);
                continue;
            }
            toks.push(Token {
                line,
                tok: Tok::Ident(word),
            });
            i = j;
        } else {
            toks.push(Token {
                line,
                tok: Tok::Punct(c),
            });
            i += 1;
        }
    }
    (toks, comments)
}

/// Skip a `"…"` string starting at the opening quote; returns the index
/// one past the closing quote.
fn skip_string(b: &[char], open: usize, line: &mut u32) -> usize {
    let mut j = open + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Skip a raw string whose opening quote is at `open` with `hashes`
/// leading `#`s; returns the index past the closing `"###…`.
fn skip_raw_string(b: &[char], open: usize, hashes: usize, line: &mut u32) -> usize {
    let mut j = open + 1;
    while j < b.len() {
        if b[j] == '\n' {
            *line += 1;
            j += 1;
        } else if b[j] == '"' && (1..=hashes).all(|h| b.get(j + h) == Some(&'#')) {
            return j + 1 + hashes;
        } else {
            j += 1;
        }
    }
    j
}

/// At a `'`, decide between a char literal (skipped) and a lifetime
/// (skipped as `'ident`); returns the index past whichever it was.
fn skip_char_or_lifetime(b: &[char], open: usize, line: &mut u32) -> usize {
    match b.get(open + 1) {
        Some('\\') => {
            // Char literal with an escape: scan to the closing quote.
            let mut j = open + 2;
            while j < b.len() {
                match b[j] {
                    '\\' => j += 2,
                    '\'' => return j + 1,
                    '\n' => {
                        *line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            j
        }
        Some(&c) if b.get(open + 2) == Some(&'\'') => {
            // 'x' — a one-char literal (including '(' , '"' etc.).
            let _ = c;
            open + 3
        }
        Some(&c) if is_ident_start(c) => {
            // A lifetime: consume the identifier, no closing quote.
            let mut j = open + 1;
            while j < b.len() && is_ident_continue(b[j]) {
                j += 1;
            }
            j
        }
        _ => open + 1,
    }
}

/// Drop every token inside a `#[cfg(test)]`-gated item (attribute
/// included), so lint rules only see production code.
pub fn strip_cfg_test(toks: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(after_attr) = match_cfg_test_attr(toks, i) {
            // Skip any further attributes, then the gated item itself.
            let mut j = after_attr;
            while j < toks.len() && toks[j].tok == Tok::Punct('#') {
                j = skip_attr(toks, j);
            }
            // The item runs to its first top-level `{` (brace-matched) or
            // to a `;` (e.g. `mod tests;`), whichever comes first.
            let mut depth = 0usize;
            while j < toks.len() {
                match toks[j].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    Tok::Punct(';') if depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
        } else {
            out.push(toks[i].clone());
            i += 1;
        }
    }
    out
}

/// If tokens at `i` start a `#[cfg(… test …)]` attribute, return the
/// index one past its closing `]`.
fn match_cfg_test_attr(toks: &[Token], i: usize) -> Option<usize> {
    if toks.get(i)?.tok != Tok::Punct('#') || toks.get(i + 1)?.tok != Tok::Punct('[') {
        return None;
    }
    if toks.get(i + 2)?.tok != Tok::Ident("cfg".to_string()) {
        return None;
    }
    let end = skip_attr(toks, i);
    let has_test = toks[i..end]
        .iter()
        .any(|t| t.tok == Tok::Ident("test".to_string()));
    if has_test {
        Some(end)
    } else {
        None
    }
}

/// Given `#` at `i`, return the index one past the attribute's `]`.
fn skip_attr(toks: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if toks.get(j).map(|t| &t.tok) == Some(&Tok::Punct('!')) {
        j += 1;
    }
    if toks.get(j).map(|t| &t.tok) != Some(&Tok::Punct('[')) {
        return j;
    }
    let mut depth = 0usize;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                Tok::Punct(_) => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_tokens() {
        let src = r##"let x = "unwrap()"; // .unwrap() here too
        /* panic!() */ let y = r#"todo!()"#;"##;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"todo".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let (_, comments) = lex("let a = 1;\n// ats-lint: allow(no-panic) — reason\nlet b;\n");
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 2);
        assert!(comments[0].text.contains("ats-lint"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let p = '(';");
        assert!(ids.contains(&"str".to_string()));
        // The trailing code after the char literals still lexes.
        assert!(ids.contains(&"p".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"line1\nline2\";\nlet t = 1;\n";
        let (toks, _) = lex(src);
        let t = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("t".into()))
            .expect("t token");
        assert_eq!(t.line, 3);
    }

    #[test]
    fn cfg_test_blocks_are_stripped() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn after() {}";
        let (toks, _) = lex(src);
        let stripped = strip_cfg_test(&toks);
        let ids: Vec<String> = stripped
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                Tok::Punct(_) => None,
            })
            .collect();
        assert!(ids.contains(&"real".to_string()));
        assert!(ids.contains(&"after".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn non_test_cfg_attrs_are_kept() {
        let src = "#[cfg(unix)]\nfn unix_only() { body(); }";
        let (toks, _) = lex(src);
        let stripped = strip_cfg_test(&toks);
        assert!(stripped
            .iter()
            .any(|t| t.tok == Tok::Ident("body".to_string())));
    }
}
