//! Offline stand-in for the `rand` crate.
//!
//! This container has no network access, so the workspace patches
//! `rand` to this minimal, dependency-free implementation of the API
//! surface the repo actually uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_bool, gen_range}`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — high
//! quality, fast, and fully deterministic, which is all the workspace
//! needs (every consumer seeds explicitly via `seed_from_u64`). Streams
//! are NOT bit-compatible with the real `rand::rngs::StdRng` (ChaCha12);
//! no test or artifact in this repo depends on the upstream stream.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

/// Element types drawable uniformly from a range (mirrors the real
/// crate's `SampleUniform` so `gen_range(0..7)` infers the element type
/// from the call site's expected type).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as u64)
                    .wrapping_sub(lo as u64)
                    .wrapping_add(inclusive as u64);
                if span == 0 {
                    // Inclusive draw over the full u64 domain.
                    return rng.next_u64() as $t;
                }
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64
                // per draw, far below anything this workspace observes.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _incl: bool) -> Self {
        // The closed upper endpoint has measure ~0; continuous draws
        // treat both range forms identically.
        lo + (hi - lo) * rng.next_f64()
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _incl: bool) -> Self {
        lo + (hi - lo) * rng.next_f64() as f32
    }
}

/// Ranges usable with [`Rng::gen_range`], generic over the element type
/// so integer literals unify with the expected output type.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_range(rng, lo, hi, true)
    }
}

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of an inferred type (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (offline stand-in for the
    /// upstream ChaCha12-based `StdRng`; not stream-compatible).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0..4.0);
            assert!((-2.0..4.0).contains(&f));
            let i = r.gen_range(0..=5);
            assert!((0..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn mean_of_unit_uniform_is_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
