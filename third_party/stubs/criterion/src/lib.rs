//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! `Criterion::{bench_function, benchmark_group}`, `BenchmarkGroup`
//! with `sample_size`/`throughput`/`bench_function`/`bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — as a plain wall-clock
//! harness: each benchmark runs a short warmup, then a measured batch,
//! and prints `name ... median per-iter time` to stdout. There is no
//! statistical analysis, HTML report, or baseline comparison; per-PR
//! trajectory numbers come from `cargo xtask bench-report` instead.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measured-loop driver handed to benchmark closures.
pub struct Bencher {
    /// Median per-iteration time of the measured batch.
    last: Option<Duration>,
    /// Target measured iterations (from `sample_size`).
    samples: usize,
}

impl Bencher {
    /// Run `f` repeatedly and record its median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: run once to size the batch.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        // Aim for batches that are measurable but bounded (~200ms total,
        // capped at `samples` iterations).
        let budget = Duration::from_millis(200);
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, self.samples as u128) as usize;

        let mut times: Vec<Duration> = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            black_box(f());
            times.push(t.elapsed());
        }
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Accepted by group bench entry points: a `BenchmarkId` or any string.
pub trait IntoBenchmarkId {
    /// Render to the printed identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation (recorded, echoed in the printed line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the measured-iteration cap for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record a throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.parent
            .run_one(&full, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.parent
            .run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (no-op; printed incrementally).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        samples: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut b = Bencher {
            last: None,
            samples,
        };
        f(&mut b);
        match b.last {
            Some(d) => {
                let tp = match throughput {
                    Some(Throughput::Bytes(n)) => {
                        let gib = n as f64 / d.as_secs_f64() / (1u64 << 30) as f64;
                        format!("  [{gib:.3} GiB/s]")
                    }
                    Some(Throughput::Elements(n)) => {
                        let me = n as f64 / d.as_secs_f64() / 1.0e6;
                        format!("  [{me:.3} Melem/s]")
                    }
                    None => String::new(),
                };
                println!("bench {name:<56} {:>12.3?}/iter{tp}", d);
            }
            None => println!("bench {name:<56} (no measurement)"),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, 100, None, |b| f(b));
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }
}

/// Define a bench group entry point (criterion-compatible shape).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function(BenchmarkId::from_parameter(4), |b| {
            b.iter(|| black_box((0..100u64).sum::<u64>()))
        });
        let input = vec![1u8; 16];
        g.bench_with_input(BenchmarkId::new("sum", 16), &input, |b, v| {
            b.iter(|| v.iter().map(|&x| x as u64).sum::<u64>())
        });
        g.finish();
    }
}
