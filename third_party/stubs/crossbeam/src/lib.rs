//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides exactly the `crossbeam::thread::scope` / `Scope::spawn` /
//! `ScopedJoinHandle::join` surface the workspace uses. Execution is
//! **sequential**: `spawn` runs the closure immediately on the calling
//! thread (inside `catch_unwind`, so a panicking "worker" still surfaces
//! as `Err` at `join`, matching crossbeam's error contract).
//!
//! This container is single-CPU and has no network access; the
//! workspace's thread-count equivalence tests assert *determinism*
//! across thread counts, which holds trivially here. Real thread
//! scaling must be measured on multi-core hardware with the upstream
//! crate.

/// Scoped-thread API (sequential stand-in).
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handed to [`scope`]'s closure; `spawn` runs work eagerly.
    pub struct Scope<'env> {
        _marker: std::marker::PhantomData<&'env ()>,
    }

    /// Handle to a "spawned" closure whose result is already computed.
    pub struct ScopedJoinHandle<T> {
        result: std::thread::Result<T>,
    }

    impl<T> ScopedJoinHandle<T> {
        /// Return the closure's result (or the panic payload as `Err`).
        pub fn join(self) -> std::thread::Result<T> {
            self.result
        }
    }

    impl<'env> Scope<'env> {
        /// Run `f` immediately on the current thread; panics are caught
        /// and reported at [`ScopedJoinHandle::join`].
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<T>
        where
            F: FnOnce(&Scope<'env>) -> T,
        {
            ScopedJoinHandle {
                result: catch_unwind(AssertUnwindSafe(|| f(self))),
            }
        }
    }

    /// Create a scope in which spawned closures run sequentially.
    ///
    /// Returns `Err` only if `f` itself panics, matching crossbeam's
    /// behavior of propagating unhandled scope panics.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let scope = Scope {
            _marker: std::marker::PhantomData,
        };
        catch_unwind(AssertUnwindSafe(|| f(&scope)))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn spawn_and_join_returns_values() {
        let total: i32 = thread::scope(|s| {
            let hs: Vec<_> = (0..4).map(|i| s.spawn(move |_| i * 10)).collect();
            hs.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 60);
    }

    #[test]
    fn worker_panic_surfaces_at_join() {
        let r = thread::scope(|s| {
            let h = s.spawn(|_| -> i32 { panic!("worker died") });
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
