//! Offline stand-in for the `serde` crate.
//!
//! Declared in `[workspace.dependencies]` but no member crate uses it;
//! the store format is a hand-written binary codec and BENCH_*.json is
//! emitted by hand. Present only so dependency resolution succeeds
//! offline. The `derive` feature exists and is empty.
