//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace uses — the `proptest!` macro,
//! `prop_assert*`, range/tuple/`Just`/`collection::vec`/`any` strategies
//! with `prop_map`/`prop_flat_map` — as plain deterministic random
//! testing. Each `#[test]` runs `ProptestConfig::cases` generated cases
//! from an RNG seeded by the test's module path, so failures reproduce
//! across runs. There is no shrinking and no regression-file persistence
//! (`proptest-regressions` files are ignored); a failing case panics
//! with the assertion message like a normal test.

#[doc(hidden)]
pub use rand as __rand;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived
        /// from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Keep only values satisfying `pred` (rejection sampling,
        /// bounded retries).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter: 1000 rejections at {}", self.whence);
        }
    }

    /// Always produce a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Types with a default "any value" strategy (the `Arbitrary` of
    /// the real crate, reduced to the primitives the workspace needs).
    pub trait ArbitraryStub: Sized {
        /// Draw one unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryStub for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rand::Rng::gen::<u64>(rng) as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryStub for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rand::Rng::gen::<bool>(rng)
        }
    }

    impl ArbitraryStub for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Finite, wide-range values; the workspace's float proptests
            // constrain ranges explicitly, so `any::<f64>()` only needs
            // plausible coverage, not NaN/Inf fuzzing.
            let mag: f64 = rand::Rng::gen_range(rng, -1.0e12..1.0e12);
            mag
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: ArbitraryStub> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `proptest::prelude::any::<T>()` entry point.
    pub fn any<T: ArbitraryStub>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Acceptable size arguments for [`vec`]: an exact `usize` or a
    /// `Range<usize>`.
    pub trait IntoSizeRange {
        /// Draw a concrete length.
        fn pick_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick_len(&self, rng: &mut StdRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut StdRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    /// Strategy producing `Vec<S::Value>` with a length drawn from the
    /// size argument.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    //! Per-test configuration and deterministic seeding.

    /// Subset of the real `ProptestConfig`: only `cases` matters here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream default is 256; 48 keeps the workspace's heavier
            // property suites (full SVD builds per case) fast on the
            // single-CPU container while still exploring broadly.
            ProptestConfig { cases: 48 }
        }
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// FNV-1a hash of the test path — a stable per-test RNG seed so
    /// failures reproduce run-to-run.
    pub fn seed_for(test_path: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    //! The glob-imported surface: `use proptest::prelude::*;`.
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Run deterministic generated test cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] test items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__cfg.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                )+
                // Mirror the real proptest body contract: the body may
                // `return Ok(())` early; assertion macros panic instead
                // of returning `Err`, so the result is always `Ok`.
                let __result: ::core::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(__e) = __result {
                    panic!("proptest case failed: {__e}");
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(n in 1usize..20, v in collection::vec(0u64..100, 0..32)) {
            prop_assert!(n >= 1 && n < 20);
            prop_assert!(v.len() < 32);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_and_map(m in (2usize..6).prop_flat_map(|n| {
            collection::vec(-1.0f64..1.0, n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(m.0, m.1.len());
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<u8>()) {
            let widened = x as u16;
            prop_assert!(widened < 256);
        }
    }
}
