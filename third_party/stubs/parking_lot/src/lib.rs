//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface the workspace uses: `Mutex` / `RwLock` with
//! non-poisoning `lock()` / `read()` / `write()` that return guards
//! directly (parking_lot semantics — a poisoned std lock is recovered
//! via `into_inner`).

use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex (std-backed).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (parking_lot-style: no poison result).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock (std-backed).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
