//! Offline stand-in for the `bytes` crate.
//!
//! `ats-storage` declares the dependency but does not use it (plain
//! `Vec<u8>` buffers throughout), so this stub only needs to exist and
//! compile. If real `bytes` APIs are ever needed, drop the dependency
//! or extend this stub.
