//! `ats` — command-line front end for adhoc-ts.
//!
//! ```text
//! ats generate phone --rows 2000 --cols 366 --out data.atsm
//! ats generate stocks --out stocks.atsm
//! ats info data.atsm                  # matrix file header
//! ats info store/                     # validated store manifest
//! ats compress data.atsm --out store/ --percent 10 [--method svdd] [--threads 4]
//! ats save data.atsm --out store/ --shards 4
//! ats append store/ more-rows.atsm    # new rows land in a fresh shard
//! ats query store/ "cell 42 17"
//! ats query store/ "avg rows 0..100 cols all"
//! ats query store/ --batch-file cells.txt
//! ats query store/ --batch-file cells.txt --threads 4
//! ats verify data.atsm store/         # RMSPE / worst-case report
//! ```
//!
//! The store directory is the paper's §4.1 layout scaled out to
//! row-range shards (format v3): `v.atsm`/`lambda.atsm` pinned at open,
//! each shard's `u.atsm` paged from disk on first touch. Legacy v2
//! directories open as a single shard.
//!
//! Exit codes: 0 on success, 1 on a runtime failure (I/O, corrupt store,
//! failed compression), 2 on a usage error (unknown subcommand or flag,
//! missing argument, malformed flag value).

use adhoc_ts::compress::delta::DELTA_BYTES;
use adhoc_ts::compress::method::BYTES_PER_NUMBER;
use adhoc_ts::compress::{SpaceBudget, SvddCompressed, SvddOptions};
use adhoc_ts::core::disk::{save_svd, save_svdd};
use adhoc_ts::core::shard::append_rows;
use adhoc_ts::core::store::{method_by_name, SequenceStore};
use adhoc_ts::core::timeblock::{
    append_time_block, retrain_flags, TimeBlockedStore, RETRAIN_SSE_FACTOR,
};
use adhoc_ts::data::{
    generate_phone, generate_stocks, PhoneConfig, StocksConfig, StreamingPhone, StreamingStocks,
};
use adhoc_ts::query::engine::QueryEngine;
use adhoc_ts::query::metrics::error_report;
use adhoc_ts::query::parse::{parse_batch_file, run_query};
use adhoc_ts::query::serve::{serve, ServeConfig};
use adhoc_ts::storage::file::write_source;
use adhoc_ts::storage::store_dir::{validate_timeblocked_store_dir, TIMEBLOCKED_STORE_VERSION};
use adhoc_ts::storage::MatrixFile;
use adhoc_ts::storage::RowSource;
use adhoc_ts::storage::{ShardSynopsis, SYNOPSIS_FILE};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
ats — ad hoc queries over compressed time sequences (SIGMOD '97 SVDD)

USAGE:
  ats generate <phone|stocks> [--rows N] [--cols M] [--seed S] --out FILE
                                 rows stream straight to FILE in O(cols)
                                 memory, so N can exceed RAM (the 10M-row
                                 scale ladder); --summary materializes the
                                 dataset in memory first and prints cell
                                 statistics (mean/std dev) — small N only
  ats info <FILE|DIR>            matrix-file header, or the validated
                                 manifest of a store directory (format
                                 version, shards, row ranges; for a
                                 time-blocked v4 store the block table:
                                 column ranges, k, reconstruction SSE,
                                 delta counts, and a RETRAIN flag on
                                 blocks whose per-cell SSE exceeds the
                                 threshold) without paging any U data;
                                 each shard's zone-map synopsis is
                                 summarized (tiles, bytes, avg bound
                                 width vs the store's value spread —
                                 `synopsis none` on legacy stores)
  ats compress FILE --out DIR [--percent P] [--method svd|svdd] [--threads T]
  ats save FILE --out DIR [--percent P] [--method svd|svdd] [--threads T]
                                 build a SequenceStore and persist it
                                 crash-safely (sharded format v3);
                                 --shards R splits the build and the
                                 store into R row-range shards (results
                                 are bit-identical for any R);
                                 --time-blocks B partitions the *time*
                                 axis into B column blocks, each with its
                                 own decomposition (format v4) so range
                                 queries read only overlapping blocks;
                                 --no-bloom to drop the delta Bloom
                                 filter
  ats save --generate <phone|stocks> [--rows N] [--cols M] [--seed S] --out DIR
                                 build straight from the streaming
                                 generator — no intermediate .atsm file,
                                 O(cols) memory per pass; bit-identical
                                 to generating the file and saving it
  ats append DIR FILE            append FILE's rows to a sharded store:
                                 they land in a fresh shard under the
                                 frozen global factors, with the batch's
                                 reconstruction SSE recorded
  ats append DIR FILE --time [--percent P]
                                 append FILE's *columns* as new time
                                 points to a time-blocked (v4) store:
                                 they become a fresh block with its own
                                 decomposition (never a projection under
                                 a frozen V), published atomically
  ats open DIR [--pool-pages N]  validate and summarize a saved store
  ats query DIR \"<query>\"       e.g. \"cell 42 17\", \"avg rows 0..100 cols all\",
                                 \"sum rows all in time [30..90]\" — a
                                 time-range aggregate reads only the
                                 blocks overlapping [t1..t2); a `where`
                                 clause (\"count rows all where value >
                                 450\", \"avg rows 0..100 where value <=
                                 1.5 in time [30..90]\") filters cells by
                                 their reconstructed value, pruning
                                 whole tiles through the store's
                                 zone-map synopses before touching U
  ats query DIR --batch-file F [--threads T]
                                 answer a file of cell queries (`cell i j`
                                 or bare `i j`, one per line, `#` comments)
                                 in one batched pass: results print one per
                                 line in input order; each distinct row's
                                 U vector is fetched exactly once per shard
  ats serve DIR [--addr A] [--threads T] [--window-ms W] [--batch-max B]
                [--pool-pages N] [--max-frame F] [--pending-max P]
                                 long-lived TCP query daemon over one
                                 shared store/page pool: length-prefixed
                                 frames carrying query lines (plus PING,
                                 STATS, SHUTDOWN verbs); concurrently
                                 arriving cell queries coalesce into one
                                 batched run per admission window (W ms
                                 or B cells). Each connection may keep P
                                 cell queries waiting in the batcher
                                 (default 64); past that depth it gets
                                 `ERR busy` replies. --addr defaults to
                                 127.0.0.1:7878 (port 0 picks a free
                                 port). Shuts down on the SHUTDOWN verb
                                 or stdin EOF / a `quit` line, draining
                                 in-flight batches first
  ats verify FILE DIR            compare a store against the original data
  ats help                       print this message
";

/// The one-line usage hint printed with every usage error (exit code 2).
const USAGE_LINE: &str =
    "usage: ats <generate|info|compress|save|append|open|query|serve|verify|help> — run `ats help` for details";

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["no-bloom", "summary", "time"];

/// A CLI failure, split by whose fault it is: bad invocation (exit 2)
/// versus a runtime error in a well-formed command (exit 1).
enum CliError {
    Usage(String),
    Runtime(String),
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn rt(e: impl std::fmt::Display) -> CliError {
    CliError::Runtime(e.to_string())
}

/// Split args into positionals and `--flag value` pairs. A value-taking
/// flag with nothing after it is a usage error, not an empty default.
fn parse_flags(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), CliError> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = if BOOL_FLAGS.contains(&name) {
                String::new()
            } else {
                it.next()
                    .cloned()
                    .ok_or_else(|| usage(format!("--{name} expects a value")))?
            };
            if flags.insert(name.to_string(), value).is_some() {
                return Err(usage(format!("--{name} given more than once")));
            }
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

/// Reject any flag the subcommand does not define.
fn check_flags(
    cmd: &str,
    flags: &HashMap<String, String>,
    allowed: &[&str],
) -> Result<(), CliError> {
    for k in flags.keys() {
        if !allowed.contains(&k.as_str()) {
            return Err(usage(format!("unknown flag --{k} for `ats {cmd}`")));
        }
    }
    Ok(())
}

fn flag_usize(
    flags: &HashMap<String, String>,
    key: &str,
    default: usize,
) -> Result<usize, CliError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| usage(format!("--{key} expects a number, got {v:?}"))),
    }
}

fn flag_u64(flags: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, CliError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| usage(format!("--{key} expects a number, got {v:?}"))),
    }
}

fn flag_f64(flags: &HashMap<String, String>, key: &str, default: f64) -> Result<f64, CliError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| usage(format!("--{key} expects a number, got {v:?}"))),
    }
}

/// Facts about one shard's zone-map synopsis for the `ats info` table,
/// read from `synopsis.bin` alone — `info` never serves a U page.
struct SynopsisInfo {
    tiles: usize,
    bytes: usize,
    /// Sum of per-tile `max - min` over tiles with finite bounds, and
    /// how many such tiles there are (NaN-poisoned tiles are skipped).
    width_sum: f64,
    bounded: usize,
    /// Extremes over the same tiles, pooled into the store-wide spread.
    lo: f64,
    hi: f64,
}

fn read_synopsis(dir: &std::path::Path) -> Result<SynopsisInfo, CliError> {
    let bytes = std::fs::read(dir.join(SYNOPSIS_FILE)).map_err(rt)?;
    let syn = ShardSynopsis::decode(&bytes).map_err(rt)?;
    let mut info = SynopsisInfo {
        tiles: syn.tiles().len(),
        bytes: syn.storage_bytes(),
        width_sum: 0.0,
        bounded: 0,
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
    };
    for t in syn.tiles() {
        if t.min.is_nan() || t.max.is_nan() {
            continue;
        }
        info.width_sum += t.max - t.min;
        info.bounded += 1;
        info.lo = info.lo.min(t.min);
        info.hi = info.hi.max(t.max);
    }
    Ok(info)
}

/// Render one `synopsis …` cell: tile count, footprint, and the mean
/// tile bound width as a fraction of the store-wide value spread — the
/// number that says how often predicate pruning can prove a tile in or
/// out without reconstructing it. Legacy shards print `synopsis none`.
fn synopsis_cell(info: Option<&SynopsisInfo>, spread: f64) -> String {
    let Some(s) = info else {
        return "synopsis none".to_string();
    };
    let avg = if s.bounded > 0 {
        s.width_sum / s.bounded as f64
    } else {
        f64::NAN
    };
    if spread > 0.0 && avg.is_finite() {
        format!(
            "synopsis {} tiles, {} B, avg bound width {:.3} ({:.1}% of store spread)",
            s.tiles,
            s.bytes,
            avg,
            100.0 * avg / spread
        )
    } else {
        format!(
            "synopsis {} tiles, {} B, avg bound width {avg:.3}",
            s.tiles, s.bytes
        )
    }
}

/// Per-block, per-shard synopsis facts (`None` for legacy shards).
type SynopsisGrid = Vec<Vec<Option<SynopsisInfo>>>;

/// Read every shard's synopsis across all blocks up front: the
/// bound-width column is reported relative to the *store-wide* value
/// spread, which needs every tile before any line prints. Returns the
/// per-block, per-shard facts plus that spread.
fn collect_synopses(
    base: &std::path::Path,
    top: &adhoc_ts::storage::store_dir::TimeBlockedManifest,
    nested: &[adhoc_ts::storage::store_dir::ShardedManifest],
) -> Result<(SynopsisGrid, f64), CliError> {
    let mut per_block = Vec::new();
    for (i, n) in nested.iter().enumerate() {
        let bdir = top.block_dir(base, i);
        let mut per_shard = Vec::new();
        for (s, entry) in n.shards.iter().enumerate() {
            per_shard.push(match entry.crc_synopsis {
                Some(_) => Some(read_synopsis(&n.shard_dir(&bdir, s))?),
                None => None,
            });
        }
        per_block.push(per_shard);
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in per_block.iter().flatten().flatten() {
        lo = lo.min(s.lo);
        hi = hi.max(s.hi);
    }
    Ok((per_block, hi - lo))
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return Ok(());
    }
    let (pos, flags) = parse_flags(&args)?;
    match pos.first().map(String::as_str) {
        Some("generate") => {
            check_flags(
                "generate",
                &flags,
                &["rows", "cols", "seed", "out", "summary"],
            )?;
            let kind = pos
                .get(1)
                .ok_or_else(|| usage("generate needs phone|stocks"))?;
            let out = flags
                .get("out")
                .ok_or_else(|| usage("generate needs --out FILE"))?;
            let seed = flag_u64(&flags, "seed", 42)?;
            let summary = flags.contains_key("summary");
            // Rows stream straight into the file writer — the dataset is
            // never materialized, so N is bounded by disk, not RAM. The
            // in-memory generators produce bit-identical rows; --summary
            // uses them to also report cell statistics (small N only).
            let (name, src): (String, Box<dyn RowSource>) = match kind.as_str() {
                "phone" => {
                    let cfg = PhoneConfig {
                        customers: flag_usize(&flags, "rows", 2_000)?,
                        days: flag_usize(&flags, "cols", 366)?,
                        seed,
                        ..PhoneConfig::default()
                    };
                    (
                        format!("phone{}", cfg.customers),
                        Box::new(StreamingPhone::new(cfg)),
                    )
                }
                "stocks" => {
                    let cfg = StocksConfig {
                        stocks: flag_usize(&flags, "rows", 381)?,
                        days: flag_usize(&flags, "cols", 128)?,
                        seed,
                        ..StocksConfig::default()
                    };
                    ("stocks".to_string(), Box::new(StreamingStocks::new(cfg)))
                }
                other => return Err(usage(format!("unknown generator {other:?}"))),
            };
            let (rows, cols) = (src.rows(), src.cols());
            if summary {
                let dataset = match kind.as_str() {
                    "phone" => generate_phone(&PhoneConfig {
                        customers: rows,
                        days: cols,
                        seed,
                        ..PhoneConfig::default()
                    }),
                    _ => generate_stocks(&StocksConfig {
                        stocks: rows,
                        days: cols,
                        seed,
                        ..StocksConfig::default()
                    }),
                };
                dataset.save(out).map_err(rt)?;
                let stats = dataset.cell_stats();
                println!(
                    "wrote {name} ({rows} x {cols}, {:.1} MB) to {out}  mean {:.3}  std {:.3}",
                    (rows * cols * 8) as f64 / 1e6,
                    stats.mean(),
                    stats.population_std_dev()
                );
            } else {
                write_source(out, src.as_ref()).map_err(rt)?;
                println!(
                    "wrote {name} ({rows} x {cols}, {:.1} MB, streamed) to {out}",
                    (rows * cols * 8) as f64 / 1e6
                );
            }
            Ok(())
        }
        Some("info") => {
            check_flags("info", &flags, &[])?;
            let path = pos
                .get(1)
                .ok_or_else(|| usage("info needs FILE or store DIR"))?;
            if std::path::Path::new(path).is_dir() {
                // A store directory: print the validated manifest — every
                // component CRC is checked, but no U page is served.
                let (top, nested) = validate_timeblocked_store_dir(path).map_err(rt)?;
                let (syn, spread) = collect_synopses(std::path::Path::new(path), &top, &nested)?;
                if top.source_version == TIMEBLOCKED_STORE_VERSION {
                    let total: usize = nested
                        .iter()
                        .map(|b| {
                            (b.rows * b.k + b.k + b.cols * b.k) * BYTES_PER_NUMBER
                                + b.deltas * DELTA_BYTES
                        })
                        .sum();
                    let deltas: usize = nested.iter().map(|b| b.deltas).sum();
                    println!(
                        "{path}: format v4, {} store, {} x {}, {} deltas, bloom={}, {} time blocks, {:.2} MB compressed",
                        top.method,
                        top.rows,
                        top.cols,
                        deltas,
                        top.bloom,
                        top.blocks.len(),
                        total as f64 / 1e6
                    );
                    let flags = retrain_flags(&top.blocks, top.rows, RETRAIN_SSE_FACTOR);
                    for (i, ((b, n), flagged)) in
                        top.blocks.iter().zip(&nested).zip(&flags).enumerate()
                    {
                        let sse = b
                            .sse
                            .map_or("sse n/a".to_string(), |s| format!("sse {s:.4}"));
                        let mark = if *flagged { "  RETRAIN" } else { "" };
                        println!(
                            "  tblock {i}: cols {}..{}, k={}, {} deltas, {} shards, {sse}{mark}",
                            b.start,
                            b.end,
                            n.k,
                            n.deltas,
                            n.shards.len(),
                        );
                        let block_syn = syn.get(i).map(Vec::as_slice).unwrap_or(&[]);
                        for (s, (entry, info)) in n.shards.iter().zip(block_syn).enumerate() {
                            println!(
                                "    shard {s}: rows {}..{}, {}",
                                entry.start,
                                entry.end,
                                synopsis_cell(info.as_ref(), spread)
                            );
                        }
                    }
                } else if let Some(m) = nested.first() {
                    let total = (m.rows * m.k + m.k + m.cols * m.k) * BYTES_PER_NUMBER
                        + m.deltas * DELTA_BYTES;
                    println!(
                        "{path}: format v{}, {} store, {} x {}, k={}, {} deltas, bloom={}, {} shards, {:.2} MB compressed",
                        m.source_version,
                        m.method,
                        m.rows,
                        m.cols,
                        m.k,
                        m.deltas,
                        m.bloom,
                        m.shards.len(),
                        total as f64 / 1e6
                    );
                    let block_syn = syn.first().map(Vec::as_slice).unwrap_or(&[]);
                    for (i, (s, info)) in m.shards.iter().zip(block_syn).enumerate() {
                        let cell = synopsis_cell(info.as_ref(), spread);
                        match s.append_sse {
                            Some(sse) => println!(
                                "  shard {i}: rows {}..{}, {} deltas, append sse {sse:.4}, {cell}",
                                s.start, s.end, s.deltas
                            ),
                            None => println!(
                                "  shard {i}: rows {}..{}, {} deltas, {cell}",
                                s.start, s.end, s.deltas
                            ),
                        }
                    }
                }
            } else {
                let f = MatrixFile::open(path).map_err(rt)?;
                println!(
                    "{path}: {} rows x {} cols, cell {} bytes, data {:.1} MB",
                    f.rows(),
                    f.cols(),
                    f.header().cell_bytes(),
                    (f.rows() * f.header().row_bytes()) as f64 / 1e6
                );
            }
            Ok(())
        }
        Some("compress") => {
            check_flags("compress", &flags, &["out", "percent", "method", "threads"])?;
            let input = pos.get(1).ok_or_else(|| usage("compress needs FILE"))?;
            let out = flags
                .get("out")
                .ok_or_else(|| usage("compress needs --out DIR"))?;
            let pct = flag_f64(&flags, "percent", 10.0)?;
            let threads = flag_usize(&flags, "threads", 1)?;
            let method = flags.get("method").map(String::as_str).unwrap_or("svdd");
            let source = MatrixFile::open(input).map_err(rt)?;
            let budget = SpaceBudget::from_percent(pct);
            let t0 = std::time::Instant::now();
            match method {
                "svdd" => {
                    let mut opts = SvddOptions::new(budget);
                    opts.threads = threads;
                    let c = SvddCompressed::compress(&source, &opts).map_err(rt)?;
                    save_svdd(out, &c).map_err(rt)?;
                    println!(
                        "svdd: k_opt={}, {} deltas, {:.2}% space, {:.1}s -> {out}",
                        c.k_opt(),
                        c.num_deltas(),
                        100.0 * adhoc_ts::compress::CompressedMatrix::space_ratio(&c),
                        t0.elapsed().as_secs_f64()
                    );
                }
                "svd" => {
                    let c = adhoc_ts::compress::SvdCompressed::compress_budget(
                        &source, budget, threads,
                    )
                    .map_err(rt)?;
                    save_svd(out, &c).map_err(rt)?;
                    println!(
                        "svd: k={}, {:.2}% space, {:.1}s -> {out}",
                        c.k(),
                        100.0 * adhoc_ts::compress::CompressedMatrix::space_ratio(&c),
                        t0.elapsed().as_secs_f64()
                    );
                }
                other => return Err(usage(format!("unknown method {other:?} (svd|svdd)"))),
            }
            Ok(())
        }
        Some("save") => {
            check_flags(
                "save",
                &flags,
                &[
                    "out",
                    "percent",
                    "method",
                    "threads",
                    "shards",
                    "time-blocks",
                    "no-bloom",
                    "generate",
                    "rows",
                    "cols",
                    "seed",
                ],
            )?;
            let out = flags
                .get("out")
                .ok_or_else(|| usage("save needs --out DIR"))?;
            let pct = flag_f64(&flags, "percent", 10.0)?;
            let threads = flag_usize(&flags, "threads", 1)?;
            let method = flags.get("method").map(String::as_str).unwrap_or("svdd");
            let method = method_by_name(method).map_err(rt)?;
            // The build pass reads any RowSource: a matrix file, or the
            // streaming generator itself — no intermediate .atsm round
            // trip (closes the PR 6 leftover).
            let source: Box<dyn RowSource> = match (flags.get("generate"), pos.get(1)) {
                (Some(_), Some(_)) => {
                    return Err(usage("save takes either FILE or --generate, not both"))
                }
                (None, None) => return Err(usage("save needs FILE or --generate phone|stocks")),
                (None, Some(input)) => {
                    for k in ["rows", "cols", "seed"] {
                        if flags.contains_key(k) {
                            return Err(usage(format!("--{k} only applies with --generate")));
                        }
                    }
                    Box::new(MatrixFile::open(input).map_err(rt)?)
                }
                (Some(kind), None) => {
                    let seed = flag_u64(&flags, "seed", 42)?;
                    match kind.as_str() {
                        "phone" => Box::new(StreamingPhone::new(PhoneConfig {
                            customers: flag_usize(&flags, "rows", 2_000)?,
                            days: flag_usize(&flags, "cols", 366)?,
                            seed,
                            ..PhoneConfig::default()
                        })),
                        "stocks" => Box::new(StreamingStocks::new(StocksConfig {
                            stocks: flag_usize(&flags, "rows", 381)?,
                            days: flag_usize(&flags, "cols", 128)?,
                            seed,
                            ..StocksConfig::default()
                        })),
                        other => return Err(usage(format!("unknown generator {other:?}"))),
                    }
                }
            };
            let t0 = std::time::Instant::now();
            let mut builder = SequenceStore::builder()
                .method(method)
                .budget(SpaceBudget::from_percent(pct))
                .threads(threads)
                .bloom(!flags.contains_key("no-bloom"));
            if flags.contains_key("shards") {
                builder = builder.shards(flag_usize(&flags, "shards", 1)?);
            }
            if flags.contains_key("time-blocks") {
                builder = builder.time_blocks(flag_usize(&flags, "time-blocks", 1)?);
            }
            let store = builder.build(source.as_ref()).map_err(rt)?;
            store.save(out).map_err(rt)?;
            println!(
                "{}: {} x {}, {} shards, {} time blocks, {:.2}% space, {:.1}s -> {out}",
                store.method().name(),
                store.rows(),
                store.cols(),
                store.shards(),
                store.time_blocks(),
                100.0 * store.space_ratio(),
                t0.elapsed().as_secs_f64()
            );
            Ok(())
        }
        Some("append") => {
            check_flags("append", &flags, &["threads", "time", "percent"])?;
            let dir = pos.get(1).ok_or_else(|| usage("append needs DIR FILE"))?;
            let input = pos.get(2).ok_or_else(|| usage("append needs DIR FILE"))?;
            let threads = flag_usize(&flags, "threads", 1)?;
            let batch = MatrixFile::open(input).map_err(rt)?;
            if flags.contains_key("time") {
                // New *time points*: a fresh block with its own
                // decomposition, never a projection under a frozen V.
                let budget = SpaceBudget::from_percent(flag_f64(&flags, "percent", 10.0)?);
                let report = append_time_block(dir, &batch, budget, threads).map_err(rt)?;
                println!(
                    "appended {} time points as block {} of {dir} (block sse {:.4})",
                    report.cols, report.block_index, report.sse
                );
            } else {
                if flags.contains_key("percent") {
                    return Err(usage("--percent only applies with --time"));
                }
                let report = append_rows(dir, &batch, threads, None).map_err(rt)?;
                println!(
                    "appended {} rows into shard {} of {dir} (frozen-V sse {:.4})",
                    report.rows, report.shard_index, report.sse
                );
            }
            Ok(())
        }
        Some("open") => {
            check_flags("open", &flags, &["pool-pages"])?;
            let dir = pos.get(1).ok_or_else(|| usage("open needs DIR"))?;
            let pool = flag_usize(&flags, "pool-pages", 1024)?;
            let store = TimeBlockedStore::open(dir, pool).map_err(rt)?;
            let m = store.manifest();
            let shards: usize = store
                .nested_manifests()
                .iter()
                .map(|n| n.shards.len())
                .sum();
            println!(
                "{dir}: {} store, {} x {}, {} deltas, bloom={}, {} time blocks, {} shards, {:.2} MB compressed",
                m.method,
                m.rows,
                m.cols,
                store.num_deltas(),
                m.bloom,
                store.block_count(),
                shards,
                adhoc_ts::compress::CompressedMatrix::storage_bytes(&store) as f64 / 1e6
            );
            Ok(())
        }
        Some("query") => {
            check_flags("query", &flags, &["batch-file", "threads"])?;
            let dir = pos.get(1).ok_or_else(|| usage("query needs DIR"))?;
            let threads = flag_usize(&flags, "threads", 1)?;
            match (flags.get("batch-file"), pos.get(2)) {
                (Some(_), Some(_)) => Err(usage(
                    "query takes either a query string or --batch-file, not both",
                )),
                (None, None) => Err(usage("query needs a query string or --batch-file FILE")),
                (None, Some(q)) => {
                    let store = TimeBlockedStore::open(dir, 1024).map_err(rt)?;
                    let engine = QueryEngine::new(&store).with_threads(threads);
                    let v = run_query(&engine, q).map_err(rt)?;
                    println!("{v}");
                    Ok(())
                }
                (Some(file), None) => {
                    let text = std::fs::read_to_string(file)
                        .map_err(|e| rt(format!("cannot read batch file {file}: {e}")))?;
                    let req = parse_batch_file(&text).map_err(rt)?;
                    let store = TimeBlockedStore::open(dir, 1024).map_err(rt)?;
                    let engine = QueryEngine::new(&store).with_threads(threads);
                    let res = engine.batch_cells(&req).map_err(rt)?;
                    let mut out = String::new();
                    for v in res.values() {
                        out.push_str(&format!("{v}\n"));
                    }
                    print!("{out}");
                    Ok(())
                }
            }
        }
        Some("serve") => {
            check_flags(
                "serve",
                &flags,
                &[
                    "addr",
                    "threads",
                    "window-ms",
                    "batch-max",
                    "pool-pages",
                    "max-frame",
                    "pending-max",
                ],
            )?;
            let dir = pos.get(1).ok_or_else(|| usage("serve needs DIR"))?;
            let pool = flag_usize(&flags, "pool-pages", 1024)?;
            let cfg = ServeConfig {
                addr: flags
                    .get("addr")
                    .cloned()
                    .unwrap_or_else(|| "127.0.0.1:7878".to_string()),
                threads: flag_usize(&flags, "threads", 1)?,
                window: Duration::from_millis(flag_u64(&flags, "window-ms", 2)?),
                batch_max: flag_usize(&flags, "batch-max", 64)?,
                max_frame: flag_usize(&flags, "max-frame", 1 << 20)?,
                pending_max: flag_usize(&flags, "pending-max", 64)?,
            };
            // One store, one page pool: every connection and every batch
            // shares the same Arc'd store through a 'static engine.
            let store = Arc::new(TimeBlockedStore::open(dir, pool).map_err(rt)?);
            let io_store = Arc::clone(&store);
            let engine = QueryEngine::shared(store).with_threads(cfg.threads);
            let handle = serve(
                engine,
                cfg,
                Some(Box::new(move || io_store.shard_io_snapshots())),
            )
            .map_err(rt)?;
            println!("listening on {}", handle.addr());
            use std::io::Write as _;
            std::io::stdout().flush().ok();
            // No signal machinery exists in safe std, so shutdown rides on
            // the SHUTDOWN verb or the controlling terminal: EOF or a
            // quit/exit/shutdown line on stdin trips the switch.
            let switch = handle.shutdown_switch();
            std::thread::spawn(move || {
                let stdin = std::io::stdin();
                let mut line = String::new();
                loop {
                    line.clear();
                    match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {
                            let word = line.trim().to_ascii_lowercase();
                            if matches!(word.as_str(), "quit" | "exit" | "shutdown") {
                                break;
                            }
                        }
                    }
                }
                switch.trigger();
            });
            while !handle.is_shutdown() {
                std::thread::sleep(Duration::from_millis(50));
            }
            let m = handle.join().map_err(rt)?;
            println!(
                "served {} queries ({} cells in {} batches, {} aggregates), {} errors, {} connections",
                m.queries, m.cells, m.batches, m.aggregates, m.errors, m.connections
            );
            Ok(())
        }
        Some("verify") => {
            check_flags("verify", &flags, &[])?;
            let data = pos.get(1).ok_or_else(|| usage("verify needs FILE DIR"))?;
            let dir = pos.get(2).ok_or_else(|| usage("verify needs FILE DIR"))?;
            let source = MatrixFile::open(data).map_err(rt)?;
            let store = TimeBlockedStore::open(dir, 1024).map_err(rt)?;
            let r = error_report(&source, &store).map_err(rt)?;
            println!(
                "cells {}  rmspe {:.3}%  worst_abs {:.4}  worst/sigma {:.2}%  mean_abs {:.5}",
                r.cells,
                r.rmspe * 100.0,
                r.max_abs_error,
                r.max_normalized_error * 100.0,
                r.mean_abs_error
            );
            Ok(())
        }
        Some("help") => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(usage(format!("unknown subcommand {other:?}"))),
        None => Err(usage("missing subcommand")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE_LINE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
