//! `ats` — command-line front end for adhoc-ts.
//!
//! ```text
//! ats generate phone --rows 2000 --cols 366 --out data.atsm
//! ats generate stocks --out stocks.atsm
//! ats info data.atsm
//! ats compress data.atsm --out store/ --percent 10 [--method svdd] [--threads 4]
//! ats query store/ "cell 42 17"
//! ats query store/ "avg rows 0..100 cols all"
//! ats verify data.atsm store/         # RMSPE / worst-case report
//! ```
//!
//! The store directory is the paper's §4.1 layout (`u.atsm` paged from
//! disk; `v.atsm`, `lambda.atsm`, `deltas.bin` pinned at open).

use adhoc_ts::compress::{SpaceBudget, SvddCompressed, SvddOptions};
use adhoc_ts::core::disk::{save_svd, save_svdd, DiskStore};
use adhoc_ts::core::store::{method_by_name, SequenceStore};
use adhoc_ts::data::{generate_phone, generate_stocks, Dataset, PhoneConfig, StocksConfig};
use adhoc_ts::query::engine::QueryEngine;
use adhoc_ts::query::metrics::error_report;
use adhoc_ts::query::parse::run_query;
use adhoc_ts::storage::MatrixFile;
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
ats — ad hoc queries over compressed time sequences (SIGMOD '97 SVDD)

USAGE:
  ats generate <phone|stocks> [--rows N] [--cols M] [--seed S] --out FILE
  ats info FILE
  ats compress FILE --out DIR [--percent P] [--method svd|svdd] [--threads T]
  ats save FILE --out DIR [--percent P] [--method svd|svdd] [--threads T]
                                 build a SequenceStore and persist it
                                 crash-safely (format v2); --no-bloom to
                                 drop the delta Bloom filter
  ats open DIR [--pool-pages N]  validate and summarize a saved store
  ats query DIR \"<query>\"       e.g. \"cell 42 17\", \"avg rows 0..100 cols all\"
  ats verify FILE DIR            compare a store against the original data
";

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["no-bloom"];

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = if BOOL_FLAGS.contains(&name) {
                String::new()
            } else {
                it.next().cloned().unwrap_or_default()
            };
            flags.insert(name.to_string(), value);
        } else {
            positional.push(a.clone());
        }
    }
    (positional, flags)
}

fn flag_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects a number, got {v:?}")),
    }
}

fn flag_f64(flags: &HashMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects a number, got {v:?}")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (pos, flags) = parse_flags(&args);
    match pos.first().map(String::as_str) {
        Some("generate") => {
            let kind = pos.get(1).ok_or("generate needs phone|stocks")?;
            let out = flags.get("out").ok_or("generate needs --out FILE")?;
            let seed = flag_usize(&flags, "seed", 42)? as u64;
            let dataset: Dataset = match kind.as_str() {
                "phone" => generate_phone(&PhoneConfig {
                    customers: flag_usize(&flags, "rows", 2_000)?,
                    days: flag_usize(&flags, "cols", 366)?,
                    seed,
                    ..PhoneConfig::default()
                }),
                "stocks" => generate_stocks(&StocksConfig {
                    stocks: flag_usize(&flags, "rows", 381)?,
                    days: flag_usize(&flags, "cols", 128)?,
                    seed,
                    ..StocksConfig::default()
                }),
                other => return Err(format!("unknown generator {other:?}")),
            };
            dataset.save(out).map_err(|e| e.to_string())?;
            println!(
                "wrote {} ({} x {}, {:.1} MB) to {out}",
                dataset.name(),
                dataset.rows(),
                dataset.cols(),
                dataset.uncompressed_bytes(8) as f64 / 1e6
            );
            Ok(())
        }
        Some("info") => {
            let path = pos.get(1).ok_or("info needs FILE")?;
            let f = MatrixFile::open(path).map_err(|e| e.to_string())?;
            println!(
                "{path}: {} rows x {} cols, cell {} bytes, data {:.1} MB",
                f.rows(),
                f.cols(),
                f.header().cell_bytes(),
                (f.rows() * f.header().row_bytes()) as f64 / 1e6
            );
            Ok(())
        }
        Some("compress") => {
            let input = pos.get(1).ok_or("compress needs FILE")?;
            let out = flags.get("out").ok_or("compress needs --out DIR")?;
            let pct = flag_f64(&flags, "percent", 10.0)?;
            let threads = flag_usize(&flags, "threads", 1)?;
            let method = flags.get("method").map(String::as_str).unwrap_or("svdd");
            let source = MatrixFile::open(input).map_err(|e| e.to_string())?;
            let budget = SpaceBudget::from_percent(pct);
            let t0 = std::time::Instant::now();
            match method {
                "svdd" => {
                    let mut opts = SvddOptions::new(budget);
                    opts.threads = threads;
                    let c = SvddCompressed::compress(&source, &opts).map_err(|e| e.to_string())?;
                    save_svdd(out, &c).map_err(|e| e.to_string())?;
                    println!(
                        "svdd: k_opt={}, {} deltas, {:.2}% space, {:.1}s -> {out}",
                        c.k_opt(),
                        c.num_deltas(),
                        100.0 * adhoc_ts::compress::CompressedMatrix::space_ratio(&c),
                        t0.elapsed().as_secs_f64()
                    );
                }
                "svd" => {
                    let c = adhoc_ts::compress::SvdCompressed::compress_budget(
                        &source, budget, threads,
                    )
                    .map_err(|e| e.to_string())?;
                    save_svd(out, &c).map_err(|e| e.to_string())?;
                    println!(
                        "svd: k={}, {:.2}% space, {:.1}s -> {out}",
                        c.k(),
                        100.0 * adhoc_ts::compress::CompressedMatrix::space_ratio(&c),
                        t0.elapsed().as_secs_f64()
                    );
                }
                other => return Err(format!("unknown method {other:?} (svd|svdd)")),
            }
            Ok(())
        }
        Some("save") => {
            let input = pos.get(1).ok_or("save needs FILE")?;
            let out = flags.get("out").ok_or("save needs --out DIR")?;
            let pct = flag_f64(&flags, "percent", 10.0)?;
            let threads = flag_usize(&flags, "threads", 1)?;
            let method = flags.get("method").map(String::as_str).unwrap_or("svdd");
            let method = method_by_name(method).map_err(|e| e.to_string())?;
            let source = MatrixFile::open(input).map_err(|e| e.to_string())?;
            let t0 = std::time::Instant::now();
            let store = SequenceStore::builder()
                .method(method)
                .budget(SpaceBudget::from_percent(pct))
                .threads(threads)
                .bloom(!flags.contains_key("no-bloom"))
                .build(&source)
                .map_err(|e| e.to_string())?;
            store.save(out).map_err(|e| e.to_string())?;
            println!(
                "{}: {} x {}, {:.2}% space, {:.1}s -> {out}",
                store.method().name(),
                store.rows(),
                store.cols(),
                100.0 * store.space_ratio(),
                t0.elapsed().as_secs_f64()
            );
            Ok(())
        }
        Some("open") => {
            let dir = pos.get(1).ok_or("open needs DIR")?;
            let pool = flag_usize(&flags, "pool-pages", 1024)?;
            let disk = DiskStore::open(dir, pool).map_err(|e| e.to_string())?;
            let m = disk.manifest();
            println!(
                "{dir}: {} store, {} x {}, k={}, {} deltas, bloom={}, {:.2} MB compressed",
                m.method,
                m.rows,
                m.cols,
                m.k,
                m.deltas,
                m.bloom,
                adhoc_ts::compress::CompressedMatrix::storage_bytes(&disk) as f64 / 1e6
            );
            Ok(())
        }
        Some("query") => {
            let dir = pos.get(1).ok_or("query needs DIR")?;
            let q = pos.get(2).ok_or("query needs a query string")?;
            let store = DiskStore::open(dir, 1024).map_err(|e| e.to_string())?;
            let engine = QueryEngine::new(&store);
            let v = run_query(&engine, q).map_err(|e| e.to_string())?;
            println!("{v}");
            Ok(())
        }
        Some("verify") => {
            let data = pos.get(1).ok_or("verify needs FILE DIR")?;
            let dir = pos.get(2).ok_or("verify needs FILE DIR")?;
            let source = MatrixFile::open(data).map_err(|e| e.to_string())?;
            let store = DiskStore::open(dir, 1024).map_err(|e| e.to_string())?;
            let r = error_report(&source, &store).map_err(|e| e.to_string())?;
            println!(
                "cells {}  rmspe {:.3}%  worst_abs {:.4}  worst/sigma {:.2}%  mean_abs {:.5}",
                r.cells,
                r.rmspe * 100.0,
                r.max_abs_error,
                r.max_normalized_error * 100.0,
                r.mean_abs_error
            );
            Ok(())
        }
        _ => {
            eprint!("{USAGE}");
            Err("missing or unknown subcommand".into())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
