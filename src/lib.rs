//! # adhoc-ts
//!
//! Ad hoc queries over compressed time-sequence datasets — a full Rust
//! reproduction of Korn, Jagadish & Faloutsos, *"Efficiently Supporting
//! Ad Hoc Queries in Large Datasets of Time Sequences"* (SIGMOD 1997).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! - [`core`] (`ats-core`) — [`core::SequenceStore`] (build/query) and
//!   [`core::DiskStore`] (the §4.1 one-disk-access serving architecture);
//! - [`compress`] (`ats-compress`) — SVD, SVDD, DCT, clustering, LZ,
//!   sampling, all behind [`compress::CompressedMatrix`];
//! - [`query`] (`ats-query`) — cell/aggregate queries and the paper's
//!   error metrics (RMSPE, worst-case, `Q_err`);
//! - [`data`] (`ats-data`) — the synthetic `phone*`/`stocks` datasets;
//! - [`linalg`] (`ats-linalg`) — matrices, eigensolvers, SVD;
//! - [`storage`] (`ats-storage`) — matrix files, passes, buffer pool;
//! - [`cube`] (`ats-cube`) — §6.1 DataCube flattening;
//! - [`common`] (`ats-common`) — Bloom filter, bounded heaps, stats.
//!
//! See `examples/quickstart.rs` for a five-minute tour and
//! `crates/bench/src/bin/` for the paper's experiments.

pub use ats_common as common;
pub use ats_compress as compress;
pub use ats_core as core;
pub use ats_cube as cube;
pub use ats_data as data;
pub use ats_linalg as linalg;
pub use ats_query as query;
pub use ats_storage as storage;

/// Workspace version, for examples that print a banner.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
