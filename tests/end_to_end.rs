//! End-to-end integration: the full paper pipeline across every crate.
//!
//! raw data → `.atsm` file → 3-pass out-of-core SVDD → persisted store →
//! `DiskStore` serving cell + aggregate queries with one disk access.

use adhoc_ts::compress::{CompressedMatrix, SpaceBudget, SvddCompressed, SvddOptions};
use adhoc_ts::core::disk::{save_svdd, DiskStore};
use adhoc_ts::data::{generate_phone, PhoneConfig};
use adhoc_ts::query::engine::{aggregate_exact, AggregateFn, QueryEngine};
use adhoc_ts::query::metrics::error_report;
use adhoc_ts::query::selection::{Axis, Selection};
use adhoc_ts::storage::MatrixFile;

fn workdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("adhoc-ts-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn full_pipeline_from_disk_to_disk() {
    let dir = workdir("pipeline");
    let dataset = generate_phone(&PhoneConfig {
        customers: 800,
        days: 84,
        ..PhoneConfig::default()
    });
    let raw_path = dir.join("raw.atsm");
    dataset.save(&raw_path).unwrap();

    // Out-of-core 3-pass SVDD build.
    let raw = MatrixFile::open(&raw_path).unwrap();
    let budget = SpaceBudget::from_percent(10.0);
    let svdd = SvddCompressed::compress(&raw, &SvddOptions::new(budget)).unwrap();
    assert_eq!(
        raw.stats().logical_reads(),
        3 * 800,
        "exactly three sequential passes (Fig. 5)"
    );
    assert!(svdd.storage_bytes() <= budget.bytes(800, 84));

    // Persist, reopen, serve.
    let store_dir = dir.join("store");
    save_svdd(&store_dir, &svdd).unwrap();
    let store = DiskStore::open(&store_dir, 256).unwrap();

    // Disk store answers identically to the in-memory compressed form.
    for i in (0..800).step_by(97) {
        for j in (0..84).step_by(13) {
            let a = store.cell(i, j).unwrap();
            let b = svdd.cell(i, j).unwrap();
            assert!((a - b).abs() < 1e-9, "({i},{j})");
        }
    }

    // At most one disk access per cell query (§4.1), measured. (Rows 0
    // and 97 were cached by the earlier spot checks, so they hit.)
    store.io_stats().reset();
    for i in 0..100 {
        store.cell(i, i % 84).unwrap();
    }
    assert_eq!(store.io_stats().logical_reads(), 100);
    assert_eq!(
        store.io_stats().physical_reads() + store.io_stats().cache_hits(),
        100,
        "every query served by exactly one page (fetched or resident)"
    );
    assert!(store.io_stats().physical_reads() >= 98);

    // Accuracy: RMSPE under 15% at 10% space on phone-like data.
    let report = error_report(dataset.matrix(), &store).unwrap();
    assert!(report.rmspe < 0.15, "rmspe {}", report.rmspe);

    // Aggregate queries much more accurate than single cells (§5.2).
    let engine = QueryEngine::new(&store);
    let sel = Selection {
        rows: Axis::Range(100, 500),
        cols: Axis::Range(0, 42),
    };
    // (Zipf-skewed data: the mean is small relative to the std dev, so
    // the relative aggregate error is looser than RMSPE suggests; the
    // paper-style aggregate experiment lives in exp_fig9.)
    let exact = aggregate_exact(dataset.matrix(), &sel, AggregateFn::Avg).unwrap();
    let approx = engine.aggregate(&sel, AggregateFn::Avg).unwrap();
    let q_err = (exact - approx).abs() / exact.abs();
    assert!(q_err < 0.10, "aggregate error {q_err}");
}

#[test]
fn subsets_mirror_paper_scaleup_protocol() {
    // phone1000-style prefixes of one generated dataset behave
    // consistently: error roughly flat across N (Fig. 10's observation).
    let full = generate_phone(&PhoneConfig {
        customers: 1_200,
        days: 60,
        ..PhoneConfig::default()
    });
    let budget = SpaceBudget::from_percent(10.0);
    let mut rmspes = Vec::new();
    for n in [300usize, 600, 1200] {
        let sub = full.subset(n).unwrap();
        let svdd = SvddCompressed::compress(sub.matrix(), &SvddOptions::new(budget)).unwrap();
        let report = error_report(sub.matrix(), &svdd).unwrap();
        rmspes.push(report.rmspe);
    }
    for w in rmspes.windows(2) {
        let ratio = w[1] / w[0].max(1e-12);
        assert!(
            (0.3..3.0).contains(&ratio),
            "error should be roughly insensitive to N: {rmspes:?}"
        );
    }
}

#[test]
fn zero_customers_reconstruct_to_zero() {
    // §6.2's practical issue: all-zero customers should come back ~0.
    let dataset = generate_phone(&PhoneConfig {
        customers: 400,
        days: 56,
        zero_fraction: 0.1,
        ..PhoneConfig::default()
    });
    let svdd = SvddCompressed::compress(
        dataset.matrix(),
        &SvddOptions::new(SpaceBudget::from_percent(15.0)),
    )
    .unwrap();
    for i in 0..400 {
        if dataset.matrix().row(i).iter().all(|&v| v == 0.0) {
            for j in (0..56).step_by(7) {
                let v = svdd.cell(i, j).unwrap();
                assert!(v.abs() < 1e-6, "zero customer {i} reconstructed {v}");
            }
        }
    }
}
