//! Integration tests for ad hoc time-range queries over time-blocked
//! (v4) stores: `[t1..t2)` aggregates must read only the blocks that
//! overlap the range (per-block IoStats-asserted), answer exactly the
//! block-order merge of per-block baselines, degrade to clean errors on
//! empty/out-of-range inputs, and — when confined to one block — match a
//! standalone store over that column slice bitwise.

use adhoc_ts::compress::method::block_budget;
use adhoc_ts::compress::SpaceBudget;
use adhoc_ts::core::store::SequenceStore;
use adhoc_ts::core::timeblock::{time_block_ranges, TimeBlockedStore};
use adhoc_ts::linalg::Matrix;
use adhoc_ts::query::engine::{AggregateFn, QueryEngine};
use adhoc_ts::query::selection::{Axis, Selection};
use adhoc_ts::storage::ColumnSlice;
use ats_common::{AtsError, OnlineStats, TestDir};
use proptest::prelude::*;

/// Structured but not perfectly low-rank data, seeded so every case is
/// deterministic.
fn wavy(n: usize, m: usize, seed: u64) -> Matrix {
    Matrix::from_fn(n, m, |i, j| {
        let s = seed as usize % 7 + 1;
        ((i % 5) + 1) as f64 * if (j + s) % 7 < 5 { 2.0 } else { 0.3 }
            + ((i * 7 + j * 13 + s) % 11) as f64 * 0.05
    })
}

#[test]
fn range_aggregates_and_batches_prune_cold_blocks() {
    // 4 blocks of 9 columns; a range and a cell batch confined to block
    // 2 must leave blocks 0, 1, 3 with zero I/O — the paper's O(k) cell
    // cost argument extended to the time axis.
    let x = wavy(120, 36, 3);
    let tmp = TestDir::new("ats-trange");
    let dir = tmp.file("store");
    SequenceStore::builder()
        .budget(SpaceBudget::from_percent(15.0))
        .shards(2)
        .time_blocks(4)
        .build(&x)
        .unwrap()
        .save(&dir)
        .unwrap();

    let store = TimeBlockedStore::open(&dir, 128).unwrap();
    let engine = QueryEngine::new(&store);
    let sel = Selection::time_range(Axis::All, 19, 26); // inside 18..27
    let v = engine.aggregate(&sel, AggregateFn::Avg).unwrap();
    assert!(v.is_finite());
    let per_block = store.block_io_snapshots();
    assert_eq!(per_block.len(), 4);
    assert!(per_block[2].physical_reads > 0);
    for (b, snap) in per_block.iter().enumerate() {
        if b != 2 {
            assert_eq!(snap.physical_reads, 0, "block {b} cold after aggregate");
            assert_eq!(snap.logical_reads, 0, "block {b} cold after aggregate");
        }
    }

    // batch_cells through a fresh store: same confinement.
    let store = TimeBlockedStore::open(&dir, 128).unwrap();
    let engine = QueryEngine::new(&store);
    let req = adhoc_ts::query::BatchRequest::new(vec![(5, 20), (80, 25), (5, 22), (117, 18)]);
    let res = engine.batch_cells(&req).unwrap();
    assert_eq!(res.values().len(), 4);
    let per_block = store.block_io_snapshots();
    assert!(per_block[2].physical_reads > 0);
    for (b, snap) in per_block.iter().enumerate() {
        if b != 2 {
            assert_eq!(snap.physical_reads, 0, "block {b} cold after batch");
        }
    }

    // A block-edge-spanning range touches exactly the two overlapped
    // blocks.
    let store = TimeBlockedStore::open(&dir, 128).unwrap();
    let engine = QueryEngine::new(&store);
    engine
        .aggregate(&Selection::time_range(Axis::All, 8, 12), AggregateFn::Sum)
        .unwrap();
    let per_block = store.block_io_snapshots();
    assert!(per_block[0].physical_reads > 0);
    assert!(per_block[1].physical_reads > 0);
    assert_eq!(per_block[2].physical_reads, 0);
    assert_eq!(per_block[3].physical_reads, 0);
}

#[test]
fn block_local_range_aggregates_bitwise_match_standalone_slice_store() {
    // The tentpole invariant at the query layer: an aggregate confined
    // to one block answers bit-for-bit what a standalone store built
    // over that column slice (same per-block budget) answers.
    let x = wavy(100, 24, 9);
    let pct = SpaceBudget::from_percent(15.0);
    let blocked = SequenceStore::builder()
        .budget(pct)
        .time_blocks(3)
        .build(&x)
        .unwrap();
    let (c0, c1) = (8usize, 16usize); // block 1 of [0..8, 8..16, 16..24]
    let slice = ColumnSlice::new(&x, c0, c1).unwrap();
    // Pinned to one block: this store IS the single-block baseline.
    let standalone = SequenceStore::builder()
        .budget(block_budget(pct, 100, c1 - c0))
        .time_blocks(1)
        .build(&slice)
        .unwrap();
    for rows in [Axis::All, Axis::Range(10, 60), Axis::set(vec![0, 7, 99])] {
        let a = blocked
            .aggregate_all(&Selection::time_range(rows.clone(), c0, c1))
            .unwrap();
        let b = standalone
            .aggregate_all(&Selection::time_range(rows, 0, c1 - c0))
            .unwrap();
        assert_eq!(a.sum.to_bits(), b.sum.to_bits());
        assert_eq!(a.count, b.count);
        assert_eq!(a.min.to_bits(), b.min.to_bits());
        assert_eq!(a.max.to_bits(), b.max.to_bits());
        assert_eq!(a.avg.to_bits(), b.avg.to_bits());
        assert_eq!(a.stddev.to_bits(), b.stddev.to_bits());
    }
}

#[test]
fn boundary_ranges_error_cleanly_or_answer_exactly() {
    let x = wavy(40, 18, 5);
    let store = SequenceStore::builder()
        .budget(SpaceBudget::from_percent(20.0))
        .time_blocks(3)
        .build(&x)
        .unwrap();
    // Empty range: InvalidArgument from every aggregate, never a panic.
    for f in AggregateFn::ALL {
        let err = store
            .aggregate(&Selection::time_range(Axis::All, 7, 7), f)
            .unwrap_err();
        assert!(matches!(err, AtsError::InvalidArgument(_)), "{err}");
    }
    // Backwards and past-the-end ranges are refused.
    assert!(store
        .aggregate(&Selection::time_range(Axis::All, 9, 4), AggregateFn::Sum)
        .is_err());
    assert!(store
        .aggregate(&Selection::time_range(Axis::All, 10, 19), AggregateFn::Sum)
        .is_err());
    // A single-column range answers the column exactly (count) and the
    // min/max of reconstructed cells bitwise.
    let sel = Selection::time_range(Axis::All, 11, 12);
    assert_eq!(store.aggregate(&sel, AggregateFn::Count).unwrap(), 40.0);
    let mut stats = OnlineStats::new();
    for i in 0..40 {
        stats.push(store.cell(i, 11).unwrap());
    }
    assert_eq!(
        store.aggregate(&sel, AggregateFn::Min).unwrap().to_bits(),
        stats.min().to_bits()
    );
    assert_eq!(
        store.aggregate(&sel, AggregateFn::Max).unwrap().to_bits(),
        stats.max().to_bits()
    );
    // A range ending exactly on a block edge (cols 0..6 of blocks
    // [0..6, 6..12, 12..18]) answers and equals the per-cell fold.
    let sel = Selection::time_range(Axis::All, 0, 6);
    let got = store.aggregate(&sel, AggregateFn::Sum).unwrap();
    let mut expect = OnlineStats::new();
    for i in 0..40 {
        for j in 0..6 {
            expect.push(store.cell(i, j).unwrap());
        }
    }
    assert!((got - expect.sum()).abs() <= 1e-9 * expect.sum().abs().max(1.0));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// An arbitrary `[t1..t2)` range aggregate over arbitrary
    /// (rows, cols, B, shards, threads) equals the block-order merge of
    /// per-block exact baselines — each baseline folded from the
    /// store's own reconstructed cells, restricted to the block's slice
    /// of the range, merged in ascending block order.
    #[test]
    fn range_aggregates_equal_block_order_merge(
        rows in 8usize..28,
        cols in 4usize..22,
        braw in 1usize..6,
        shards in 1usize..4,
        threads in 1usize..4,
        seed in 0u64..1000,
        t in 0usize..1000,
        w in 1usize..1000,
        r in 0usize..1000,
    ) {
        let t1 = t % cols;
        let t2 = t1 + 1 + w % (cols - t1);
        // Blocks at least 4 columns wide so every block's share of the
        // budget holds at least one principal component.
        let b = 1 + braw % (cols / 4).max(1);
        let x = wavy(rows, cols, seed);
        let store = SequenceStore::builder()
            .budget(SpaceBudget::from_percent(60.0))
            .time_blocks(b)
            .shards(shards)
            .threads(threads)
            .build(&x)
            .unwrap();
        // A row restriction rides along: either everything or a range.
        let r1 = r % rows;
        let row_axis = if r % 2 == 0 { Axis::All } else { Axis::Range(r1, rows) };
        let row_list: Vec<usize> = row_axis.to_vec(rows);

        let mut expect = OnlineStats::new();
        for (s, e) in time_block_ranges(cols, b) {
            let (lo, hi) = (t1.max(s), t2.min(e));
            if lo >= hi {
                continue; // block outside the range: contributes nothing
            }
            let mut part = OnlineStats::new();
            for &i in &row_list {
                for j in lo..hi {
                    part.push(store.cell(i, j).unwrap());
                }
            }
            expect.merge(&part);
        }

        let got = store
            .aggregate_all(&Selection::time_range(row_axis, t1, t2))
            .unwrap();
        prop_assert_eq!(got.count, expect.count());
        prop_assert_eq!(got.min.to_bits(), expect.min().to_bits());
        prop_assert_eq!(got.max.to_bits(), expect.max().to_bits());
        let tol = |a: f64| 1e-9 * a.abs().max(1.0);
        prop_assert!((got.sum - expect.sum()).abs() <= tol(expect.sum()),
            "sum {} vs {}", got.sum, expect.sum());
        prop_assert!((got.avg - expect.mean()).abs() <= tol(expect.mean()),
            "avg {} vs {}", got.avg, expect.mean());
        prop_assert!(
            (got.stddev - expect.population_std_dev()).abs()
                <= tol(expect.population_std_dev()),
            "stddev {} vs {}", got.stddev, expect.population_std_dev());
    }
}
