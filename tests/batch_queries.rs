//! Cross-crate tests for the batched query execution path: batched cell
//! queries must be bitwise identical to the per-cell loop on every method,
//! shard layout, and thread count; the blocked multi-row kernels must be
//! bitwise identical to the scalar reconstruction on cells, rows, and all
//! aggregates; and a batch over a paged store must perform exactly one
//! `U`-row fetch per distinct requested row per shard.

use adhoc_ts::compress::{CompressedMatrix, SpaceBudget};
use adhoc_ts::core::shard::ShardedStore;
use adhoc_ts::core::store::{method_by_name, SequenceStore};
use adhoc_ts::data::{generate_phone, PhoneConfig};
use adhoc_ts::linalg::Matrix;
use adhoc_ts::query::engine::{AggregateFn, QueryEngine};
use adhoc_ts::query::selection::{Axis, Selection};
use adhoc_ts::query::BatchRequest;
use ats_common::{Result, TestDir};
use proptest::prelude::*;

/// A wrapper that forwards only the *required* trait methods (plus the
/// shard layout, so the engine takes the same fan-out path), leaving every
/// batch entry point on its default per-cell implementation. This is the
/// scalar baseline the vectorized kernels must match bit for bit.
struct ScalarOnly<'a>(&'a dyn CompressedMatrix);

impl CompressedMatrix for ScalarOnly<'_> {
    fn rows(&self) -> usize {
        self.0.rows()
    }
    fn cols(&self) -> usize {
        self.0.cols()
    }
    fn cell(&self, i: usize, j: usize) -> Result<f64> {
        self.0.cell(i, j)
    }
    fn storage_bytes(&self) -> usize {
        self.0.storage_bytes()
    }
    fn method_name(&self) -> &'static str {
        self.0.method_name()
    }
    fn shard_starts(&self) -> Vec<usize> {
        self.0.shard_starts()
    }
}

fn phone(rows: usize, cols: usize, seed: u64) -> Matrix {
    generate_phone(&PhoneConfig {
        customers: rows,
        days: cols,
        seed,
        ..PhoneConfig::default()
    })
    .matrix()
    .clone()
}

/// Unsorted, duplicated cell requests crossing every shard of a 90-row
/// matrix split into up to 4 shards.
fn scattered_cells() -> Vec<(usize, usize)> {
    vec![
        (89, 23),
        (0, 0),
        (45, 11),
        (45, 11),
        (2, 23),
        (88, 0),
        (30, 5),
        (0, 1),
        (45, 0),
        (89, 23),
        (61, 7),
    ]
}

#[test]
fn batch_matches_per_cell_loop_bitwise_across_methods_shards_threads() {
    let x = phone(90, 24, 11);
    let req = BatchRequest::new(scattered_cells());
    for method in ["svd", "svdd"] {
        for shards in [1usize, 2, 4] {
            let store = SequenceStore::builder()
                .method(method_by_name(method).unwrap())
                .budget(SpaceBudget::from_percent(20.0))
                .shards(shards)
                .build(&x)
                .unwrap();
            for threads in [1usize, 3] {
                let engine = QueryEngine::new(store.compressed()).with_threads(threads);
                let res = engine.batch_cells(&req).unwrap();
                assert_eq!(res.distinct_rows(), 7, "{method} shards={shards}");
                for (&(i, j), &got) in req.cells().iter().zip(res.values()) {
                    assert_eq!(
                        got.to_bits(),
                        engine.cell(i, j).unwrap().to_bits(),
                        "{method} shards={shards} threads={threads} cell ({i},{j})"
                    );
                }
            }
        }
    }
}

#[test]
fn store_level_batch_matches_cells() {
    let x = phone(60, 20, 3);
    let store = SequenceStore::builder()
        .budget(SpaceBudget::from_percent(20.0))
        .shards(2)
        .build(&x)
        .unwrap();
    let cells = vec![(59, 0), (0, 19), (31, 4), (31, 4), (12, 12)];
    let got = store.batch_cells(&cells).unwrap();
    for (&(i, j), &v) in cells.iter().zip(&got) {
        assert_eq!(v.to_bits(), store.cell(i, j).unwrap().to_bits());
    }
}

#[test]
fn saved_store_batch_fetches_each_distinct_row_once_per_shard() {
    let dir = TestDir::new("ats-batch");
    let x = phone(120, 24, 5);
    // Pinned to one time block: this test opens the v3 sharded layout
    // directly to count per-shard fetches.
    SequenceStore::builder()
        .budget(SpaceBudget::from_percent(15.0))
        .shards(3)
        .time_blocks(1)
        .build(&x)
        .unwrap()
        .save(dir.file("store"))
        .unwrap();
    let store = ShardedStore::open(dir.file("store"), 256).unwrap();

    // Distinct rows {3, 7, 50, 119} spread over shards 0, 1, 2 (rows
    // 0..40, 40..80, 80..120), with heavy duplication within each row.
    let req = BatchRequest::new(vec![
        (119, 0),
        (3, 5),
        (50, 1),
        (3, 20),
        (7, 7),
        (3, 5),
        (119, 23),
        (50, 1),
        (7, 0),
        (119, 11),
    ]);
    let engine = QueryEngine::new(&store);
    let res = engine.batch_cells(&req).unwrap();
    assert_eq!(res.distinct_rows(), 4);

    // The acceptance bound: one U-row fetch per distinct requested row
    // per shard — cold, so logical and physical reads agree.
    let snaps = store.shard_io_snapshots();
    let expect = [2u64, 1, 1]; // rows {3,7} | {50} | {119}
    assert_eq!(snaps.len(), 3);
    for (idx, (snap, &want)) in snaps.iter().zip(&expect).enumerate() {
        assert_eq!(snap.logical_reads, want, "shard {idx} logical");
        assert_eq!(snap.physical_reads, want, "shard {idx} physical");
    }

    // Re-running the same batch fetches the same rows logically but hits
    // the buffer pool: no new physical reads.
    engine.batch_cells(&req).unwrap();
    let again = store.shard_io_snapshots();
    for (idx, (snap, &want)) in again.iter().zip(&expect).enumerate() {
        assert_eq!(snap.logical_reads, 2 * want, "shard {idx} logical (warm)");
        assert_eq!(snap.physical_reads, want, "shard {idx} physical (warm)");
        assert_eq!(snap.cache_hits, want, "shard {idx} cache hits");
    }

    // And the values still equal the per-cell loop bit for bit.
    for (&(i, j), &got) in req.cells().iter().zip(res.values()) {
        assert_eq!(got.to_bits(), engine.cell(i, j).unwrap().to_bits());
    }
}

#[test]
fn out_of_range_batch_does_no_io() {
    let dir = TestDir::new("ats-batch");
    let x = phone(50, 16, 9);
    SequenceStore::builder()
        .budget(SpaceBudget::from_percent(20.0))
        .shards(2)
        .time_blocks(1)
        .build(&x)
        .unwrap()
        .save(dir.file("store"))
        .unwrap();
    let store = ShardedStore::open(dir.file("store"), 64).unwrap();
    let engine = QueryEngine::new(&store);

    // One bad row (and, separately, one bad column) poisons the whole
    // batch up front: no shard is touched, no partial work happens.
    for bad in [vec![(0, 0), (50, 0)], vec![(0, 16), (49, 0)]] {
        assert!(engine.batch_cells(&BatchRequest::new(bad)).is_err());
    }
    for (idx, snap) in store.shard_io_snapshots().iter().enumerate() {
        assert_eq!(snap.logical_reads, 0, "shard {idx}");
        assert_eq!(snap.physical_reads, 0, "shard {idx}");
    }
}

#[test]
fn blocked_kernels_match_scalar_baseline_bitwise() {
    // In-memory SVD and SVDD stores plus a disk-paged sharded store: the
    // overridden batch entry points must be bitwise identical to the
    // default per-cell implementations on rows, selected cells, and
    // multi-row blocks (including duplicated, unsorted indices).
    let dir = TestDir::new("ats-batch");
    let x = phone(70, 18, 21);
    let svd = SequenceStore::builder()
        .method(method_by_name("svd").unwrap())
        .budget(SpaceBudget::from_percent(25.0))
        .build(&x)
        .unwrap();
    let svdd = SequenceStore::builder()
        .budget(SpaceBudget::from_percent(25.0))
        .time_blocks(1)
        .build(&x)
        .unwrap();
    svdd.save(dir.file("store")).unwrap();
    let sharded = ShardedStore::open(dir.file("store"), 128).unwrap();

    let mats: [(&str, &dyn CompressedMatrix); 3] = [
        ("svd", svd.compressed()),
        ("svdd", svdd.compressed()),
        ("sharded", &sharded),
    ];
    let rows = [4usize, 69, 0, 4, 33, 17, 18, 19, 20, 21];
    let cols = [17usize, 0, 9, 9, 3];
    for (name, m) in mats {
        let scalar = ScalarOnly(m);
        let width = m.cols();

        let mut a = vec![0.0; width];
        let mut b = vec![0.0; width];
        for i in [0, 33, 69] {
            m.row_into(i, &mut a).unwrap();
            scalar.row_into(i, &mut b).unwrap();
            assert_bits_eq(&a, &b, &format!("{name} row {i}"));
        }

        let mut a = vec![0.0; cols.len()];
        let mut b = vec![0.0; cols.len()];
        m.cells_in_row(33, &cols, &mut a).unwrap();
        scalar.cells_in_row(33, &cols, &mut b).unwrap();
        assert_bits_eq(&a, &b, &format!("{name} cells_in_row"));

        let mut a = vec![0.0; rows.len() * width];
        let mut b = vec![0.0; rows.len() * width];
        m.rows_into(&rows, &mut a).unwrap();
        scalar.rows_into(&rows, &mut b).unwrap();
        assert_bits_eq(&a, &b, &format!("{name} rows_into"));
    }
}

#[test]
fn blocked_aggregates_match_scalar_baseline_bitwise() {
    // Same engine, same shard layout, same thread count — the only
    // difference is blocked kernels versus the default per-cell scan, so
    // every aggregate must agree bit for bit.
    let dir = TestDir::new("ats-batch");
    let x = phone(97, 17, 13);
    let store = SequenceStore::builder()
        .budget(SpaceBudget::from_percent(20.0))
        .shards(3)
        .time_blocks(1)
        .build(&x)
        .unwrap();
    store.save(dir.file("store")).unwrap();
    let sharded = ShardedStore::open(dir.file("store"), 256).unwrap();

    let selections = [
        Selection::all(),
        Selection {
            rows: Axis::Range(3, 90),
            cols: Axis::Range(0, 17),
        },
        Selection {
            rows: Axis::set(vec![0, 7, 13, 14, 15, 40, 96]),
            cols: Axis::set(vec![0, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 16]),
        },
    ];
    let mats: [(&str, &dyn CompressedMatrix); 2] =
        [("in-memory", store.compressed()), ("sharded", &sharded)];
    for (name, m) in mats {
        let scalar = ScalarOnly(m);
        for threads in [1usize, 3] {
            let fast = QueryEngine::new(m).with_threads(threads);
            let base = QueryEngine::new(&scalar).with_threads(threads);
            for sel in &selections {
                for f in AggregateFn::ALL {
                    let a = fast.aggregate(sel, f).unwrap();
                    let b = base.aggregate(sel, f).unwrap();
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{name} threads={threads} {}: {a} vs {b}",
                        f.name()
                    );
                }
            }
        }
    }
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}");
    for (t, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what} [{t}]: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_batches_match_per_cell_loop(
        seed in 0u64..1000,
        raw in proptest::collection::vec((0usize..48, 0usize..14), 1..40),
        shards in 1usize..4,
        threads in 1usize..4,
    ) {
        let x = phone(48, 14, seed);
        let store = SequenceStore::builder()
            .budget(SpaceBudget::from_percent(25.0))
            .shards(shards)
            .build(&x)
            .unwrap();
        let engine = QueryEngine::new(store.compressed()).with_threads(threads);
        let req = BatchRequest::new(raw.clone());
        let res = engine.batch_cells(&req).unwrap();
        let mut distinct: Vec<usize> = raw.iter().map(|&(i, _)| i).collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(res.distinct_rows(), distinct.len());
        for (&(i, j), &got) in raw.iter().zip(res.values()) {
            prop_assert_eq!(got.to_bits(), engine.cell(i, j).unwrap().to_bits());
        }
    }
}
