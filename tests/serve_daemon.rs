//! End-to-end tests for the `ats serve` daemon over a real TCP socket:
//! concurrent clients must get bitwise-identical answers to a serial
//! per-query loop at every shard × thread count; concurrently arriving
//! cell queries for the same row must coalesce into one `U`-row fetch
//! per shard (IoStats-asserted); a client killed mid-conversation must
//! not disturb the server; and `SHUTDOWN` must drain, not tear.

use adhoc_ts::compress::SpaceBudget;
use adhoc_ts::core::shard::ShardedStore;
use adhoc_ts::core::store::SequenceStore;
use adhoc_ts::data::{generate_phone, PhoneConfig};
use adhoc_ts::linalg::Matrix;
use adhoc_ts::query::engine::QueryEngine;
use adhoc_ts::query::parse::run_query;
use adhoc_ts::query::serve::{client, serve, ServeConfig, ServerHandle};
use ats_common::TestDir;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn phone(rows: usize, cols: usize, seed: u64) -> Matrix {
    generate_phone(&PhoneConfig {
        customers: rows,
        days: cols,
        seed,
        ..PhoneConfig::default()
    })
    .matrix()
    .clone()
}

/// Build, save, and reopen a paged store with the given shard count.
fn saved_store(dir: &TestDir, x: &Matrix, shards: usize) -> Arc<ShardedStore> {
    // Pinned to one time block: the daemon fixture opens the v3 sharded
    // layout directly (time-blocked serving is covered separately below).
    SequenceStore::builder()
        .budget(SpaceBudget::from_percent(15.0))
        .shards(shards)
        .time_blocks(1)
        .build(x)
        .unwrap()
        .save(dir.file("store"))
        .unwrap();
    Arc::new(ShardedStore::open(dir.file("store"), 256).unwrap())
}

/// Start a daemon over `store` with the given knobs; port 0 picks a free
/// port so parallel tests never collide.
fn start(store: &Arc<ShardedStore>, threads: usize, cfg: ServeConfig) -> ServerHandle {
    let io = Arc::clone(store);
    serve(
        QueryEngine::shared(store.clone()).with_threads(threads),
        cfg,
        Some(Box::new(move || io.shard_io_snapshots())),
    )
    .unwrap()
}

/// The serial baseline: the same shared engine the daemon wraps, asked
/// directly, one query at a time.
fn baseline(store: &Arc<ShardedStore>) -> QueryEngine<'static> {
    QueryEngine::shared(store.clone())
}

fn connect(handle: &ServerHandle) -> TcpStream {
    TcpStream::connect(handle.addr()).unwrap()
}

/// Parse an `OK <f64>` response back to bits. f64's `Display` is the
/// shortest round-trip form, so this is lossless.
fn ok_value(resp: &str) -> f64 {
    resp.strip_prefix("OK ")
        .unwrap_or_else(|| panic!("expected OK, got {resp:?}"))
        .parse()
        .unwrap()
}

/// All six aggregate queries over one rectangle, as wire text.
fn aggregate_queries() -> Vec<String> {
    ["sum", "avg", "count", "min", "max", "stddev"]
        .iter()
        .map(|f| format!("{f} rows 10..38 cols 3..14"))
        .collect()
}

#[test]
fn concurrent_clients_match_serial_loop_bitwise_across_shards_and_threads() {
    let x = phone(90, 24, 31);
    for shards in [1usize, 3] {
        let dir = TestDir::new("ats-serve");
        let store = saved_store(&dir, &x, shards);
        for threads in [1usize, 4] {
            let handle = start(&store, threads, ServeConfig::default());

            let engine = baseline(&store);
            let cells: Vec<(usize, usize)> =
                vec![(0, 0), (89, 23), (45, 11), (30, 5), (61, 7), (2, 19)];
            let mut questions: Vec<String> = cells
                .iter()
                .map(|&(i, j)| format!("cell {i} {j}"))
                .collect();
            questions.extend(aggregate_queries());
            let expect: Vec<u64> = questions
                .iter()
                .map(|q| run_query(&engine, q).unwrap().to_bits())
                .collect();

            // Six concurrent clients each run the full question list.
            let workers: Vec<_> = (0..6)
                .map(|_| {
                    let addr = handle.addr();
                    let questions = questions.clone();
                    std::thread::spawn(move || {
                        let mut s = TcpStream::connect(addr).unwrap();
                        questions
                            .iter()
                            .map(|q| ok_value(&client::round_trip(&mut s, q).unwrap()).to_bits())
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            for w in workers {
                let got = w.join().unwrap();
                assert_eq!(got, expect, "shards={shards} threads={threads}");
            }
            handle.join().unwrap();
        }
    }
}

#[test]
fn coalesced_same_row_queries_do_one_u_fetch_per_shard() {
    const K: usize = 5;
    let dir = TestDir::new("ats-serve");
    let x = phone(120, 24, 7);
    let store = saved_store(&dir, &x, 3);
    // A huge window with batch_max = K: the batcher must wait for all K
    // cells and fire exactly once — deterministically, not racily.
    let handle = start(
        &store,
        1,
        ServeConfig {
            window: Duration::from_secs(30),
            batch_max: K,
            ..ServeConfig::default()
        },
    );

    // The store was never queried, so every I/O counter starts at 0.
    for snap in store.shard_io_snapshots() {
        assert_eq!(snap.logical_reads, 0);
    }

    // K clients ask for K different columns of the SAME row (row 50 →
    // shard 1 of rows 0..40 | 40..80 | 80..120).
    let row = 50usize;
    let workers: Vec<_> = (0..K)
        .map(|col| {
            let addr = handle.addr();
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                ok_value(&client::round_trip(&mut s, &format!("cell {row} {col}")).unwrap())
            })
        })
        .collect();
    let answers: Vec<f64> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    // The acceptance bound: K concurrent clients on one row = one batch,
    // one U-row fetch, in exactly the owning shard.
    let m = handle.metrics();
    assert_eq!(m.batches, 1, "{m:?}");
    assert_eq!(m.coalesced_cells, K as u64, "{m:?}");
    let per_shard: Vec<u64> = store
        .shard_io_snapshots()
        .iter()
        .map(|s| s.logical_reads)
        .collect();
    assert_eq!(per_shard, vec![0, 1, 0]);

    // And each client's answer equals the serial loop bit for bit.
    let engine = baseline(&store);
    for (col, got) in answers.into_iter().enumerate() {
        assert_eq!(got.to_bits(), engine.cell(row, col).unwrap().to_bits());
    }
    handle.join().unwrap();
}

#[test]
fn killed_client_mid_conversation_leaves_server_healthy() {
    let dir = TestDir::new("ats-serve");
    let x = phone(40, 16, 3);
    let store = saved_store(&dir, &x, 2);
    let handle = start(&store, 1, ServeConfig::default());

    // Client A sends a request and vanishes without reading the answer;
    // client B abandons a half-written frame (header only) mid-stream.
    {
        let mut a = connect(&handle);
        client::send(&mut a, "cell 1 1").unwrap();
        drop(a);
        let mut b = connect(&handle);
        use std::io::Write as _;
        b.write_all(&[0, 0]).unwrap();
        drop(b);
    }

    // The server must still answer new clients correctly.
    let engine = baseline(&store);
    let mut c = connect(&handle);
    let got = ok_value(&client::round_trip(&mut c, "cell 7 3").unwrap());
    assert_eq!(got.to_bits(), engine.cell(7, 3).unwrap().to_bits());
    let pong = client::round_trip(&mut c, "PING").unwrap();
    assert_eq!(pong, "OK pong");
    drop(c);
    handle.join().unwrap();
}

#[test]
fn stats_verb_reports_server_connection_and_io_counters() {
    let dir = TestDir::new("ats-serve");
    let x = phone(40, 16, 13);
    let store = saved_store(&dir, &x, 2);
    let handle = start(&store, 1, ServeConfig::default());

    let mut s = connect(&handle);
    client::round_trip(&mut s, "cell 3 2").unwrap();
    client::round_trip(&mut s, "sum rows all cols all").unwrap();
    let err = client::round_trip(&mut s, "cell 99 0").unwrap();
    assert!(err.starts_with("ERR "), "{err}");
    let resp = client::round_trip(&mut s, "STATS").unwrap();
    let stats = resp.strip_prefix("OK ").unwrap();
    assert!(stats.starts_with("stats\n"), "{stats}");
    assert!(stats.contains("server connections=1"), "{stats}");
    assert!(stats.contains("cells=1 aggregates=1 errors=1"), "{stats}");
    assert!(stats.contains("conn queries=2 errors=1"), "{stats}");
    // The IoStats hook is wired: per-shard lines plus the merged total.
    assert!(stats.contains("io shard=0 "), "{stats}");
    assert!(stats.contains("io shard=1 "), "{stats}");
    assert!(stats.contains("io total "), "{stats}");
    drop(s);
    handle.join().unwrap();
}

/// Process peak RSS in bytes (`VmHWM`); the daemon runs in-process, so
/// this high-water mark covers the server's buffers too.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[test]
fn flooding_client_gets_err_busy_and_cannot_grow_server_rss() {
    const FLOOD: usize = 3_000;
    const PENDING_MAX: usize = 8;
    let dir = TestDir::new("ats-serve");
    let x = phone(120, 24, 41);
    let store = saved_store(&dir, &x, 2);
    // A deliberately slow drain — admitted cells sit in the batcher for
    // the full 10 ms window — so a flooder saturates its `pending_max`
    // in-flight slots almost immediately and cells past them come back
    // `ERR busy` instead of queueing. (Past 2×`pending_max` queued
    // replies the server stops reading the flooder's frames entirely, so
    // the steady state is ~half admitted, ~half bounced per window.)
    let handle = start(
        &store,
        1,
        ServeConfig {
            window: Duration::from_millis(10),
            batch_max: 1 << 20,
            pending_max: PENDING_MAX,
            ..ServeConfig::default()
        },
    );

    let hwm_before = peak_rss_bytes();

    // The flooder pipelines FLOOD cell frames from one thread while a
    // second thread drains the replies (so TCP backpressure never stalls
    // the writes), tallying OK vs busy.
    let flood_addr = handle.addr();
    let flooder = std::thread::spawn(move || {
        let mut wr = TcpStream::connect(flood_addr).unwrap();
        let mut rd = wr.try_clone().unwrap();
        let reader = std::thread::spawn(move || {
            let (mut ok, mut busy) = (0usize, 0usize);
            for _ in 0..FLOOD {
                let resp = client::recv(&mut rd).unwrap();
                if resp.starts_with("OK ") {
                    ok += 1;
                } else {
                    assert!(resp.starts_with("ERR busy"), "{resp}");
                    busy += 1;
                }
            }
            (ok, busy)
        });
        for _ in 0..FLOOD {
            client::send(&mut wr, "cell 1 1").unwrap();
        }
        reader.join().unwrap()
    });

    // While the flood runs, a well-behaved connection keeps getting
    // correct answers: verbs, aggregates, and batched cells alike.
    let engine = baseline(&store);
    let mut healthy = connect(&handle);
    for _ in 0..10 {
        assert_eq!(client::round_trip(&mut healthy, "PING").unwrap(), "OK pong");
        let agg = ok_value(&client::round_trip(&mut healthy, "sum rows 0..20 cols all").unwrap());
        assert_eq!(
            agg.to_bits(),
            run_query(&engine, "sum rows 0..20 cols all")
                .unwrap()
                .to_bits()
        );
        let got = ok_value(&client::round_trip(&mut healthy, "cell 7 3").unwrap());
        assert_eq!(got.to_bits(), engine.cell(7, 3).unwrap().to_bits());
    }

    let (ok, busy) = flooder.join().unwrap();
    assert_eq!(ok + busy, FLOOD);
    assert!(ok > 0, "some flooded cells must still be answered");
    assert!(
        busy > FLOOD / 4,
        "a flood outpacing the window must largely bounce: ok={ok} busy={busy}"
    );

    // Refusal is bounded memory: FLOOD pipelined frames moved through the
    // server without its queues (or this process) growing materially.
    if let (Some(before), Some(after)) = (hwm_before, peak_rss_bytes()) {
        assert!(
            after - before < 32 * 1024 * 1024,
            "flood grew peak RSS by {} bytes",
            after - before
        );
    }

    let m = handle.metrics();
    assert_eq!(m.busy, busy as u64, "{m:?}");
    drop(healthy);
    handle.join().unwrap();
}

#[test]
fn shutdown_verb_acknowledges_then_drains() {
    let dir = TestDir::new("ats-serve");
    let x = phone(40, 16, 23);
    let store = saved_store(&dir, &x, 1);
    let handle = start(&store, 1, ServeConfig::default());

    let mut s = connect(&handle);
    let engine = baseline(&store);
    let got = ok_value(&client::round_trip(&mut s, "cell 5 5").unwrap());
    assert_eq!(got.to_bits(), engine.cell(5, 5).unwrap().to_bits());
    let ack = client::round_trip(&mut s, "SHUTDOWN").unwrap();
    assert_eq!(ack, "OK shutting down");
    drop(s);
    let m = handle.join().unwrap();
    assert_eq!(m.queries, 1);
}

#[test]
fn coalesced_range_aggregates_share_one_block_scan() {
    use adhoc_ts::core::timeblock::TimeBlockedStore;

    // A time-blocked (v4) store: 4 blocks of 8 columns each.
    let x = phone(80, 32, 77);
    let dir = TestDir::new("ats-serve");
    SequenceStore::builder()
        .budget(SpaceBudget::from_percent(15.0))
        .shards(2)
        .time_blocks(4)
        .build(&x)
        .unwrap()
        .save(dir.file("store"))
        .unwrap();
    let store = Arc::new(TimeBlockedStore::open(dir.file("store"), 256).unwrap());
    assert_eq!(store.block_count(), 4);

    // A long window with batch_max = 5: the five concurrent requests
    // below land in one admission window and fire it by count.
    let io = Arc::clone(&store);
    let handle = serve(
        QueryEngine::shared(store.clone()).with_threads(1),
        ServeConfig {
            window: Duration::from_millis(5_000),
            batch_max: 5,
            ..ServeConfig::default()
        },
        Some(Box::new(move || io.shard_io_snapshots())),
    )
    .unwrap();

    // Five clients ask the identical range aggregate confined to block 1
    // (columns 10..14 of blocks [0..8, 8..16, 16..24, 24..32]).
    let q = "avg rows all in time [10..14]";
    let mut clients: Vec<TcpStream> = (0..5).map(|_| connect(&handle)).collect();
    for c in &mut clients {
        client::send(c, q).unwrap();
    }
    let replies: Vec<f64> = clients
        .iter_mut()
        .map(|c| ok_value(&client::recv(c).unwrap()))
        .collect();
    for w in replies.windows(2) {
        assert_eq!(w[0].to_bits(), w[1].to_bits());
    }

    // IoStats: the five requests shared ONE scan, and that scan touched
    // only the overlapping block — every other block stayed cold.
    let per_block = store.block_io_snapshots();
    assert_eq!(per_block.len(), 4);
    assert!(per_block[1].physical_reads > 0, "block 1 must have served");
    for (b, snap) in per_block.iter().enumerate() {
        if b != 1 {
            assert_eq!(snap.physical_reads, 0, "block {b} must stay cold");
            assert_eq!(snap.logical_reads, 0, "block {b} must stay cold");
        }
    }
    let scan_reads = per_block[1].physical_reads;

    handle.begin_shutdown();
    let m = handle.join().unwrap();
    assert_eq!(m.aggregates, 5);
    assert_eq!(m.coalesced_aggs, 5);
    assert_eq!(m.agg_scans, 1, "five identical aggregates, one scan");

    // The answer matches a direct engine ask bitwise, and a second,
    // uncoalesced run of the same scan on a fresh store does the same
    // physical I/O — so sharing saved 4 of the 5 scans' worth.
    let fresh = Arc::new(TimeBlockedStore::open(dir.file("store"), 256).unwrap());
    let engine = QueryEngine::shared(fresh.clone());
    let want = run_query(&engine, q).unwrap();
    assert_eq!(want.to_bits(), replies[0].to_bits());
    assert_eq!(fresh.block_io_snapshots()[1].physical_reads, scan_reads);
}
