//! Integration tests for the `ats` command-line tool: the full
//! generate → info → compress → query → verify flow, plus the
//! crash-safe save → open lifecycle, driven through the actual binary.

use ats_common::TestDir;
use std::process::Command;

fn ats() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ats"));
    // These tests assert exact on-disk layouts and exit codes, so the
    // workspace-wide store-shape knobs must not leak into the binary;
    // shard and time-block counts are always passed explicitly here.
    cmd.env_remove("ATS_TEST_SHARDS");
    cmd.env_remove("ATS_TEST_TBLOCKS");
    cmd
}

#[test]
fn full_cli_flow() {
    let dir = TestDir::new("ats-cli");
    let data = dir.file("data.atsm");
    let store = dir.file("store");

    // generate
    let out = ats()
        .args([
            "generate",
            "phone",
            "--rows",
            "300",
            "--cols",
            "60",
            "--out",
            data.to_str().unwrap(),
        ])
        .output()
        .expect("run ats");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // info
    let out = ats()
        .args(["info", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("300 rows x 60 cols"), "{text}");

    // compress
    let out = ats()
        .args([
            "compress",
            data.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--percent",
            "15",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("svdd"));
    assert!(store.join("u.atsm").exists());
    assert!(store.join("deltas.bin").exists());

    // query: a cell and an aggregate both parse to numbers
    for q in [
        "cell 42 17",
        "avg rows 0..100 cols all",
        "sum rows 1,5 cols 0..10",
    ] {
        let out = ats()
            .args(["query", store.to_str().unwrap(), q])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "query {q}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let val: f64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();
        assert!(val.is_finite());
    }

    // verify reports a small error
    let out = ats()
        .args(["verify", data.to_str().unwrap(), store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rmspe"), "{text}");
}

#[test]
fn cli_errors_are_clean() {
    // unknown subcommand
    let out = ats().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    // query against a missing store
    let out = ats()
        .args(["query", "/nonexistent/store", "cell 0 0"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // bad query text against a real store is rejected by the parser
    let dir = TestDir::new("ats-cli");
    let data = dir.file("d.atsm");
    let store = dir.file("s");
    ats()
        .args([
            "generate",
            "stocks",
            "--rows",
            "50",
            "--cols",
            "32",
            "--out",
            data.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    ats()
        .args([
            "compress",
            data.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--percent",
            "20",
        ])
        .status()
        .unwrap();
    let out = ats()
        .args(["query", store.to_str().unwrap(), "median rows all cols all"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown aggregate"));
}

#[test]
fn cli_svd_method() {
    let dir = TestDir::new("ats-cli");
    let data = dir.file("svd-data.atsm");
    let store = dir.file("svd-store");
    assert!(ats()
        .args([
            "generate",
            "phone",
            "--rows",
            "200",
            "--cols",
            "40",
            "--out",
            data.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());
    let out = ats()
        .args([
            "compress",
            data.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--percent",
            "20",
            "--method",
            "svd",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("svd:"));
    // the svd store opens and serves queries (its deltas.bin is empty)
    let out = ats()
        .args(["query", store.to_str().unwrap(), "cell 0 0"])
        .output()
        .unwrap();
    assert!(out.status.success());
}

#[test]
fn cli_save_open_flow() {
    let dir = TestDir::new("ats-cli");
    let data = dir.file("data.atsm");
    let store = dir.file("store");

    assert!(ats()
        .args([
            "generate",
            "phone",
            "--rows",
            "250",
            "--cols",
            "50",
            "--out",
            data.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());

    // save builds a SequenceStore and persists it in the sharded v3
    // layout: shared factors at the top level, U and deltas per shard
    let out = ats()
        .args([
            "save",
            data.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--percent",
            "15",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("svdd"));
    for f in [
        "manifest.txt",
        "v.atsm",
        "lambda.atsm",
        "shard-0000/u.atsm",
        "shard-0000/deltas.bin",
    ] {
        assert!(store.join(f).exists(), "missing {f}");
    }

    // open validates the manifest and summarizes the store
    let out = ats()
        .args(["open", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("svdd store"), "{text}");
    assert!(text.contains("250 x 50"), "{text}");
    assert!(text.contains("bloom=true"), "{text}");

    // the saved store serves queries
    let out = ats()
        .args(["query", store.to_str().unwrap(), "avg rows 0..50 cols all"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let val: f64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();
    assert!(val.is_finite());

    // corrupting a component makes open fail cleanly, not crash
    let u = store.join("shard-0000").join("u.atsm");
    let mut bytes = std::fs::read(&u).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&u, &bytes).unwrap();
    let out = ats()
        .args(["open", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error"), "{err}");
}

#[test]
fn cli_batch_query_flow() {
    let dir = TestDir::new("ats-cli");
    let data = dir.file("data.atsm");
    let store = dir.file("store");
    let batch = dir.file("cells.txt");

    assert!(ats()
        .args([
            "generate",
            "phone",
            "--rows",
            "120",
            "--cols",
            "30",
            "--out",
            data.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    assert!(ats()
        .args([
            "save",
            data.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--percent",
            "15",
            "--shards",
            "3",
        ])
        .status()
        .unwrap()
        .success());

    // mixed spellings, comments, duplicates, unsorted rows across shards
    let cells = [(97usize, 3usize), (5, 12), (97, 3), (40, 0), (5, 29)];
    std::fs::write(
        &batch,
        "# exploratory cells\ncell 97 3\n5 12\n\ncell 97 3\n40 0\n  5 29\n",
    )
    .unwrap();
    let out = ats()
        .args([
            "query",
            store.to_str().unwrap(),
            "--batch-file",
            batch.to_str().unwrap(),
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got: Vec<String> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(got.len(), cells.len());

    // each printed value matches the corresponding single-cell query exactly
    for ((i, j), line) in cells.iter().zip(&got) {
        let one = ats()
            .args(["query", store.to_str().unwrap(), &format!("cell {i} {j}")])
            .output()
            .unwrap();
        assert!(one.status.success());
        assert_eq!(
            String::from_utf8_lossy(&one.stdout).trim(),
            line.as_str(),
            "cell {i} {j}"
        );
    }

    // a malformed line is a runtime failure (exit 1) naming the line
    std::fs::write(&batch, "cell 1 2\nsum rows all cols all\n").unwrap();
    let out = ats()
        .args([
            "query",
            store.to_str().unwrap(),
            "--batch-file",
            batch.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));

    // a query string AND --batch-file together is a usage error (exit 2)
    let out = ats()
        .args([
            "query",
            store.to_str().unwrap(),
            "cell 0 0",
            "--batch-file",
            batch.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // an out-of-range cell in an otherwise valid batch is exit 1
    std::fs::write(&batch, "cell 0 0\ncell 4000 0\n").unwrap();
    let out = ats()
        .args([
            "query",
            store.to_str().unwrap(),
            "--batch-file",
            batch.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn cli_sharded_save_info_append_flow() {
    let dir = TestDir::new("ats-cli");
    let data = dir.file("data.atsm");
    let more = dir.file("more.atsm");
    let store = dir.file("store");

    for (path, rows) in [(&data, "200"), (&more, "30")] {
        assert!(ats()
            .args([
                "generate",
                "phone",
                "--rows",
                rows,
                "--cols",
                "40",
                "--out",
                path.to_str().unwrap(),
            ])
            .status()
            .unwrap()
            .success());
    }

    // save with an explicit shard count
    let out = ats()
        .args([
            "save",
            data.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--percent",
            "15",
            "--shards",
            "4",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("4 shards"));
    for i in 0..4 {
        assert!(store.join(format!("shard-{i:04}/u.atsm")).exists());
    }

    // info on the store directory prints the validated manifest
    let out = ats()
        .args(["info", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("format v3"), "{text}");
    assert!(text.contains("svdd store"), "{text}");
    assert!(text.contains("200 x 40"), "{text}");
    assert!(text.contains("4 shards"), "{text}");
    assert!(text.contains("shard 0: rows 0.."), "{text}");
    assert!(text.contains("shard 3: rows "), "{text}");

    // open reports the shard count too
    let out = ats()
        .args(["open", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("4 shards"));

    // a query spanning every shard still answers
    let out = ats()
        .args(["query", store.to_str().unwrap(), "avg rows all cols all"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let val: f64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();
    assert!(val.is_finite());

    // append lands the new rows in a fresh shard, visible to info
    let out = ats()
        .args(["append", store.to_str().unwrap(), more.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("shard 4"));
    let out = ats()
        .args(["info", store.to_str().unwrap()])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("230 x 40"), "{text}");
    assert!(text.contains("5 shards"), "{text}");
    assert!(text.contains("append sse"), "{text}");

    // the appended rows are queryable
    let out = ats()
        .args(["query", store.to_str().unwrap(), "cell 229 0"])
        .output()
        .unwrap();
    assert!(out.status.success());

    // info on a corrupt store exits 1 with a corruption message
    let u = store.join("shard-0002").join("u.atsm");
    let mut bytes = std::fs::read(&u).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&u, &bytes).unwrap();
    let out = ats()
        .args(["info", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error"), "{err}");
    assert!(err.contains("shard 2") || err.contains("checksum"), "{err}");
}

#[test]
fn cli_timeblocked_save_info_query_append_flow() {
    let dir = TestDir::new("ats-cli");
    let data = dir.file("data.atsm");
    let more = dir.file("more.atsm");
    let store = dir.file("store");

    // 160 sequences of 48 points, plus a 12-point extension batch.
    for (path, cols) in [(&data, "48"), (&more, "12")] {
        assert!(ats()
            .args([
                "generate",
                "phone",
                "--rows",
                "160",
                "--cols",
                cols,
                "--out",
                path.to_str().unwrap(),
            ])
            .status()
            .unwrap()
            .success());
    }

    // save with time blocks AND row shards: the v4 grid on disk.
    let out = ats()
        .args([
            "save",
            data.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--percent",
            "15",
            "--shards",
            "2",
            "--time-blocks",
            "3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 shards"), "{text}");
    assert!(text.contains("3 time blocks"), "{text}");
    for b in 0..3 {
        assert!(store
            .join(format!("tblock-{b:04}/shard-0001/u.atsm"))
            .exists());
    }

    // info prints the validated block table: ranges, k, SSE, deltas.
    let out = ats()
        .args(["info", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("format v4"), "{text}");
    assert!(text.contains("160 x 48"), "{text}");
    assert!(text.contains("3 time blocks"), "{text}");
    assert!(text.contains("tblock 0: cols 0..16"), "{text}");
    assert!(text.contains("tblock 2: cols 32..48"), "{text}");
    assert!(text.contains("k="), "{text}");
    assert!(text.contains("sse "), "{text}");
    assert!(text.contains("deltas"), "{text}");

    // open serves the v4 directory.
    let out = ats()
        .args(["open", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("3 time blocks"), "{text}");

    // A time-range aggregate answers, as do plain queries and cells.
    for q in [
        "avg rows all in time [10..30]",
        "sum rows 0..40 in time [16..32]",
        "avg rows all cols all",
        "cell 7 20",
    ] {
        let out = ats()
            .args(["query", store.to_str().unwrap(), q])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{q}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let val: f64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();
        assert!(val.is_finite(), "{q}");
    }

    // An empty time range is a usage-level runtime error, not a panic.
    let out = ats()
        .args([
            "query",
            store.to_str().unwrap(),
            "avg rows all in time [9..9]",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));

    // verify runs the error report against the original file.
    let out = ats()
        .args(["verify", data.to_str().unwrap(), store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("rmspe"));

    // append --time grows the time axis with a fresh block…
    let out = ats()
        .args([
            "append",
            store.to_str().unwrap(),
            more.to_str().unwrap(),
            "--time",
            "--percent",
            "15",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("12 time points"), "{text}");
    assert!(text.contains("block 3"), "{text}");

    // …visible to info and queryable end to end.
    let out = ats()
        .args(["info", store.to_str().unwrap()])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("160 x 60"), "{text}");
    assert!(text.contains("4 time blocks"), "{text}");
    assert!(text.contains("tblock 3: cols 48..60"), "{text}");
    let out = ats()
        .args([
            "query",
            store.to_str().unwrap(),
            "avg rows all in time [48..60]",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --time on a legacy (v3) store is refused with the re-save hint.
    let v3 = dir.file("v3store");
    assert!(ats()
        .args([
            "save",
            data.to_str().unwrap(),
            "--out",
            v3.to_str().unwrap(),
            "--percent",
            "15",
        ])
        .status()
        .unwrap()
        .success());
    let out = ats()
        .args([
            "append",
            v3.to_str().unwrap(),
            more.to_str().unwrap(),
            "--time",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--time-blocks"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --percent without --time is a usage error (exit 2).
    let out = ats()
        .args([
            "append",
            store.to_str().unwrap(),
            more.to_str().unwrap(),
            "--percent",
            "15",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Tampering with a nested block manifest is caught by info (exit 1).
    let nested = store.join("tblock-0001").join("manifest.txt");
    let mut bytes = std::fs::read(&nested).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&nested, &bytes).unwrap();
    let out = ats()
        .args(["info", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("checksum") || err.contains("manifest") || err.contains("block"),
        "{err}"
    );
}
