//! Integration tests for the `ats` command-line tool: the full
//! generate → info → compress → query → verify flow, plus the
//! crash-safe save → open lifecycle, driven through the actual binary.

use ats_common::TestDir;
use std::process::Command;

fn ats() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ats"))
}

#[test]
fn full_cli_flow() {
    let dir = TestDir::new("ats-cli");
    let data = dir.file("data.atsm");
    let store = dir.file("store");

    // generate
    let out = ats()
        .args([
            "generate",
            "phone",
            "--rows",
            "300",
            "--cols",
            "60",
            "--out",
            data.to_str().unwrap(),
        ])
        .output()
        .expect("run ats");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // info
    let out = ats()
        .args(["info", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("300 rows x 60 cols"), "{text}");

    // compress
    let out = ats()
        .args([
            "compress",
            data.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--percent",
            "15",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("svdd"));
    assert!(store.join("u.atsm").exists());
    assert!(store.join("deltas.bin").exists());

    // query: a cell and an aggregate both parse to numbers
    for q in [
        "cell 42 17",
        "avg rows 0..100 cols all",
        "sum rows 1,5 cols 0..10",
    ] {
        let out = ats()
            .args(["query", store.to_str().unwrap(), q])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "query {q}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let val: f64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();
        assert!(val.is_finite());
    }

    // verify reports a small error
    let out = ats()
        .args(["verify", data.to_str().unwrap(), store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rmspe"), "{text}");
}

#[test]
fn cli_errors_are_clean() {
    // unknown subcommand
    let out = ats().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    // query against a missing store
    let out = ats()
        .args(["query", "/nonexistent/store", "cell 0 0"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // bad query text against a real store is rejected by the parser
    let dir = TestDir::new("ats-cli");
    let data = dir.file("d.atsm");
    let store = dir.file("s");
    ats()
        .args([
            "generate",
            "stocks",
            "--rows",
            "50",
            "--cols",
            "32",
            "--out",
            data.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    ats()
        .args([
            "compress",
            data.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--percent",
            "20",
        ])
        .status()
        .unwrap();
    let out = ats()
        .args(["query", store.to_str().unwrap(), "median rows all cols all"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown aggregate"));
}

#[test]
fn cli_svd_method() {
    let dir = TestDir::new("ats-cli");
    let data = dir.file("svd-data.atsm");
    let store = dir.file("svd-store");
    assert!(ats()
        .args([
            "generate",
            "phone",
            "--rows",
            "200",
            "--cols",
            "40",
            "--out",
            data.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());
    let out = ats()
        .args([
            "compress",
            data.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--percent",
            "20",
            "--method",
            "svd",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("svd:"));
    // the svd store opens and serves queries (its deltas.bin is empty)
    let out = ats()
        .args(["query", store.to_str().unwrap(), "cell 0 0"])
        .output()
        .unwrap();
    assert!(out.status.success());
}

#[test]
fn cli_save_open_flow() {
    let dir = TestDir::new("ats-cli");
    let data = dir.file("data.atsm");
    let store = dir.file("store");

    assert!(ats()
        .args([
            "generate",
            "phone",
            "--rows",
            "250",
            "--cols",
            "50",
            "--out",
            data.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());

    // save builds a SequenceStore and persists it in the v2 layout
    let out = ats()
        .args([
            "save",
            data.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--percent",
            "15",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("svdd"));
    for f in [
        "manifest.txt",
        "u.atsm",
        "v.atsm",
        "lambda.atsm",
        "deltas.bin",
    ] {
        assert!(store.join(f).exists(), "missing {f}");
    }

    // open validates the manifest and summarizes the store
    let out = ats()
        .args(["open", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("svdd store"), "{text}");
    assert!(text.contains("250 x 50"), "{text}");
    assert!(text.contains("bloom=true"), "{text}");

    // the saved store serves queries
    let out = ats()
        .args(["query", store.to_str().unwrap(), "avg rows 0..50 cols all"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let val: f64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();
    assert!(val.is_finite());

    // corrupting a component makes open fail cleanly, not crash
    let u = store.join("u.atsm");
    let mut bytes = std::fs::read(&u).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&u, &bytes).unwrap();
    let out = ats()
        .args(["open", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error"), "{err}");
}
