//! Integration tests for predicate pushdown (`where value > x`) over
//! saved stores: pruned scans must answer bitwise what the exact scan
//! answers at any shards × time-blocks × threads combination, agree
//! with a per-cell baseline, and — on a store whose zone-map synopses
//! prove most tiles out — touch only the straddling tiles' U pages
//! (IoStats-asserted). Appended shards emit synopses too, so pruning
//! keeps working after growth.
//!
//! Every engine here pins `.with_synopsis(..)` explicitly: the tests
//! must assert the same thing whether or not the CI leg exporting
//! `ATS_TEST_SYNOPSIS=off` is running.

use adhoc_ts::compress::{CompressedMatrix, SpaceBudget};
use adhoc_ts::core::shard::append_rows;
use adhoc_ts::core::store::SequenceStore;
use adhoc_ts::core::timeblock::TimeBlockedStore;
use adhoc_ts::linalg::Matrix;
use adhoc_ts::query::engine::{AggregateFn, QueryEngine};
use adhoc_ts::query::predicate::{CmpOp, Predicate};
use adhoc_ts::query::selection::{Axis, Selection};
use ats_common::{OnlineStats, TestDir};
use proptest::prelude::*;

/// Structured but not perfectly low-rank data, seeded so every case is
/// deterministic.
fn wavy(n: usize, m: usize, seed: u64) -> Matrix {
    Matrix::from_fn(n, m, |i, j| {
        let s = seed as usize % 7 + 1;
        ((i % 5) + 1) as f64 * if (j + s) % 7 < 5 { 2.0 } else { 0.3 }
            + ((i * 7 + j * 13 + s) % 11) as f64 * 0.05
    })
}

/// Sum the per-shard U physical/logical reads of an opened store.
fn u_reads(store: &TimeBlockedStore) -> (u64, u64) {
    let mut phys = 0;
    let mut logi = 0;
    for s in store.shard_io_snapshots() {
        phys += s.physical_reads;
        logi += s.logical_reads;
    }
    (phys, logi)
}

#[test]
fn selective_where_touches_only_straddling_tiles_u_pages() {
    // 64 x 64, one shard, one block: an 8x4 = 32-tile grid. One spiked
    // cell (an svdd delta, so the synopsis bounds it exactly) makes a
    // `> 500` predicate ~0.02% selective: every tile except the spike's
    // proves False, so the pruned scan may touch only that tile's band
    // of U rows — all other rows cost zero I/O.
    let base = wavy(64, 64, 11);
    let x = Matrix::from_fn(64, 64, |i, j| {
        if (i, j) == (20, 10) {
            1000.0
        } else {
            base.get(i, j).unwrap()
        }
    });
    let tmp = TestDir::new("ats-predpush");
    let dir = tmp.file("store");
    SequenceStore::builder()
        .budget(SpaceBudget::from_percent(15.0))
        .build(&x)
        .unwrap()
        .save(&dir)
        .unwrap();

    let pred = Predicate::new(CmpOp::Gt, 500.0).unwrap();
    let sel = Selection {
        rows: Axis::All,
        cols: Axis::All,
    };

    // Exact scan (pruning off): reads every U page the selection spans.
    let store = TimeBlockedStore::open(&dir, 128).unwrap();
    let engine = QueryEngine::new(&store).with_synopsis(false);
    let exact_count = engine
        .aggregate_where(&sel, AggregateFn::Count, &pred)
        .unwrap();
    let exact_sum = engine
        .aggregate_where(&sel, AggregateFn::Sum, &pred)
        .unwrap();
    let (exact_phys, exact_logi) = u_reads(&store);
    assert_eq!(exact_count, 1.0, "only the spiked cell passes");
    assert!(exact_phys > 0);

    // Pruned scan: bitwise-equal answers, strictly fewer U pages — and
    // no more than the straddling band's share (8 of 64 rows, +1 page
    // for a band that straddles a page boundary).
    let store = TimeBlockedStore::open(&dir, 128).unwrap();
    let engine = QueryEngine::new(&store).with_synopsis(true);
    let pruned_count = engine
        .aggregate_where(&sel, AggregateFn::Count, &pred)
        .unwrap();
    let pruned_sum = engine
        .aggregate_where(&sel, AggregateFn::Sum, &pred)
        .unwrap();
    let (pruned_phys, pruned_logi) = u_reads(&store);
    assert_eq!(pruned_count.to_bits(), exact_count.to_bits());
    assert_eq!(pruned_sum.to_bits(), exact_sum.to_bits());
    assert!(
        pruned_phys < exact_phys,
        "pruned {pruned_phys} pages vs exact {exact_phys}"
    );
    assert!(
        pruned_phys <= exact_phys / 8 + 1,
        "pruned scan read {pruned_phys} pages; the straddling band is 1/8 \
         of {exact_phys}"
    );
    assert!(pruned_logi < exact_logi);

    // A predicate no cell can satisfy proves every tile False: the
    // pruned scan answers count = 0 with ZERO U I/O.
    let store = TimeBlockedStore::open(&dir, 128).unwrap();
    let engine = QueryEngine::new(&store).with_synopsis(true);
    let none = Predicate::new(CmpOp::Gt, 2000.0).unwrap();
    let c = engine
        .aggregate_where(&sel, AggregateFn::Count, &none)
        .unwrap();
    assert_eq!(c, 0.0);
    let (phys, logi) = u_reads(&store);
    assert_eq!((phys, logi), (0, 0), "all-False scan must not touch U");
}

#[test]
fn appended_shards_emit_synopses_and_keep_pruning() {
    // Rows appended under the frozen factors land in a fresh shard with
    // its own synopsis: a selective `where` over the grown store still
    // answers bitwise against the exact scan, and the fresh shard's
    // entry carries a synopsis CRC.
    let x = wavy(40, 24, 7);
    let tmp = TestDir::new("ats-predpush-append");
    let dir = tmp.file("store");
    SequenceStore::builder()
        .budget(SpaceBudget::from_percent(20.0))
        .shards(2)
        .time_blocks(1) // row append only supports single-block stores
        .build(&x)
        .unwrap()
        .save(&dir)
        .unwrap();
    let batch = wavy(8, 24, 13);
    append_rows(&dir, &batch, 1, None).unwrap();

    let store = TimeBlockedStore::open(&dir, 128).unwrap();
    let manifests = store.nested_manifests();
    let shards = &manifests.first().unwrap().shards;
    assert_eq!(shards.len(), 3);
    assert!(
        shards.iter().all(|s| s.crc_synopsis.is_some()),
        "every shard, including the appended one, carries a synopsis"
    );

    let sel = Selection {
        rows: Axis::All,
        cols: Axis::All,
    };
    let pred = Predicate::new(CmpOp::Ge, 6.0).unwrap();
    let pruned = QueryEngine::new(&store).with_synopsis(true);
    let exact = QueryEngine::new(&store).with_synopsis(false);
    for f in AggregateFn::ALL {
        let a = pruned.aggregate_where(&sel, f, &pred).unwrap();
        let b = exact.aggregate_where(&sel, f, &pred).unwrap();
        assert_eq!(a.to_bits(), b.to_bits(), "{f:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Over arbitrary (rows, cols, time blocks, shards, threads) and an
    /// arbitrary predicate whose threshold is a served cell value (so
    /// selectivity actually varies and `=` sometimes matches), the
    /// pruned scan answers bitwise what the exact scan answers for every
    /// aggregate, and both agree with a per-cell baseline.
    #[test]
    fn where_aggregates_bitwise_equal_exact_scan(
        rows in 8usize..28,
        cols in 4usize..22,
        braw in 1usize..6,
        shards in 1usize..4,
        threads in 1usize..4,
        seed in 0u64..1000,
        opi in 0usize..5,
        qraw in 0usize..1000,
    ) {
        let b = 1 + braw % (cols / 4).max(1);
        let x = wavy(rows, cols, seed);
        let tmp = TestDir::new("ats-predpush-prop");
        let dir = tmp.file("store");
        SequenceStore::builder()
            .budget(SpaceBudget::from_percent(60.0))
            .time_blocks(b)
            .shards(shards)
            .build(&x)
            .unwrap()
            .save(&dir)
            .unwrap();
        let store = TimeBlockedStore::open(&dir, 128).unwrap();

        let ops = [CmpOp::Gt, CmpOp::Ge, CmpOp::Lt, CmpOp::Le, CmpOp::Eq];
        let (ti, tj) = (qraw % rows, (qraw / 7) % cols);
        let threshold = store.cell(ti, tj).unwrap();
        prop_assert!(threshold.is_finite());
        let pred = Predicate::new(ops[opi], threshold).unwrap();
        let sel = Selection { rows: Axis::All, cols: Axis::All };

        // Per-cell baseline over the store's own served values.
        let mut matched = OnlineStats::new();
        for i in 0..rows {
            for j in 0..cols {
                let v = store.cell(i, j).unwrap();
                if pred.eval(v) {
                    matched.push(v);
                }
            }
        }

        let pruned = QueryEngine::new(&store).with_threads(threads).with_synopsis(true);
        let exact = QueryEngine::new(&store).with_threads(threads).with_synopsis(false);
        for f in AggregateFn::ALL {
            let a = pruned.aggregate_where(&sel, f, &pred);
            let b = exact.aggregate_where(&sel, f, &pred);
            match (a, b) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a.to_bits(), b.to_bits(), "{:?}", f),
                (Err(_), Err(_)) => {} // zero matches: both refuse alike
                (a, b) => prop_assert!(false, "{:?}: pruned {:?} vs exact {:?}", f, a, b),
            }
        }

        // Count, min, max agree bitwise with the per-cell fold; sum is
        // merge-order sensitive, so it gets a tolerance.
        let n = matched.count() as f64;
        prop_assert_eq!(
            pruned.aggregate_where(&sel, AggregateFn::Count, &pred).unwrap().to_bits(),
            n.to_bits()
        );
        if matched.count() > 0 {
            prop_assert_eq!(
                pruned.aggregate_where(&sel, AggregateFn::Min, &pred).unwrap().to_bits(),
                matched.min().to_bits()
            );
            prop_assert_eq!(
                pruned.aggregate_where(&sel, AggregateFn::Max, &pred).unwrap().to_bits(),
                matched.max().to_bits()
            );
            let got = pruned.aggregate_where(&sel, AggregateFn::Sum, &pred).unwrap();
            prop_assert!(
                (got - matched.sum()).abs() <= 1e-9 * matched.sum().abs().max(1.0),
                "sum {} vs {}", got, matched.sum()
            );
        }
    }
}
