//! Cross-crate property-based tests: invariants that must hold for *any*
//! input, checked with proptest-generated matrices.

use adhoc_ts::common::TopK;
use adhoc_ts::compress::{
    lz, CompressedMatrix, SpaceBudget, SvdCompressed, SvddCompressed, SvddOptions,
};
use adhoc_ts::core::disk::{decode_deltas, encode_deltas};
use adhoc_ts::linalg::{sym_eigen, Matrix, Svd, SvdOptions};
use adhoc_ts::query::engine::{aggregate_exact, AggregateFn, ExactMatrix, QueryEngine};
use adhoc_ts::query::selection::{Axis, Selection};
use proptest::prelude::*;

/// Random matrix strategy: n×m in bounded ranges with bounded values.
fn matrix_strategy(max_n: usize, max_m: usize) -> impl Strategy<Value = Matrix> {
    (2usize..max_n, 2usize..max_m).prop_flat_map(|(n, m)| {
        proptest::collection::vec(-100.0f64..100.0, n * m)
            .prop_map(move |data| Matrix::from_vec(n, m, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn svd_reconstruction_error_bounded_by_tail(x in matrix_strategy(24, 10)) {
        // Eckart–Young across the whole pipeline: rank-k SSE equals the
        // tail eigenvalue mass. Singular *subspaces* are conditioned by
        // the spectral gap at the cut, so skip near-degenerate cuts where
        // the identity holds only to O(ε/gap).
        let svd = Svd::compute(&x, SvdOptions::default()).unwrap();
        let k = (svd.rank() / 2).max(1);
        if k >= svd.rank() {
            return Ok(());
        }
        let gap = svd.sigma()[k - 1] - svd.sigma()[k];
        if gap < 1e-3 * svd.sigma()[0] {
            return Ok(());
        }
        let mut t = svd.clone();
        t.truncate(k);
        let err = t.reconstruct().sub(&x).unwrap().frobenius_norm();
        let tail: f64 = svd.sigma()[k..].iter().map(|s| s * s).sum();
        prop_assert!(
            (err - tail.sqrt()).abs() < 1e-6 * (1.0 + err),
            "err {err}, tail {}, gap {gap}",
            tail.sqrt()
        );
    }

    #[test]
    fn gram_eigenvalues_nonnegative_and_trace_consistent(x in matrix_strategy(20, 8)) {
        let c = x.gram();
        let eig = sym_eigen(&c).unwrap();
        let trace: f64 = (0..c.rows()).map(|i| c[(i, i)]).sum();
        let sum: f64 = eig.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-6 * trace.abs().max(1.0));
        for &v in &eig.values {
            prop_assert!(v > -1e-7 * trace.abs().max(1.0));
        }
    }

    #[test]
    fn svdd_never_worse_than_svd_in_sse(x in matrix_strategy(30, 8)) {
        let (n, m) = x.shape();
        let budget = SpaceBudget::from_percent(40.0);
        if budget.max_svd_k(n, m) == 0 {
            return Ok(());
        }
        let svdd = SvddCompressed::compress(&x, &SvddOptions::new(budget)).unwrap();
        let svd = SvdCompressed::compress_budget(&x, budget, 1).unwrap();
        let sse = |c: &dyn CompressedMatrix| -> f64 {
            let mut total = 0.0;
            let mut row = vec![0.0; m];
            for i in 0..n {
                c.row_into(i, &mut row).unwrap();
                for (a, b) in row.iter().zip(x.row(i)) {
                    total += (a - b) * (a - b);
                }
            }
            total
        };
        prop_assert!(sse(&svdd) <= sse(&svd) * (1.0 + 1e-9) + 1e-9);
        prop_assert!(svdd.storage_bytes() <= budget.bytes(n, m));
    }

    #[test]
    fn aggregates_on_exact_matrix_are_exact(x in matrix_strategy(16, 8)) {
        let (n, m) = x.shape();
        let e = ExactMatrix(x.clone());
        let q = QueryEngine::new(&e);
        let sel = Selection {
            rows: Axis::Range(0, n / 2 + 1),
            cols: Axis::Range(0, m / 2 + 1),
        };
        for f in [AggregateFn::Sum, AggregateFn::Avg, AggregateFn::Min, AggregateFn::Max] {
            let got = q.aggregate(&sel, f).unwrap();
            let want = aggregate_exact(&x, &sel, f).unwrap();
            prop_assert!((got - want).abs() < 1e-9, "{}: {got} vs {want}", f.name());
        }
    }

    #[test]
    fn lz_roundtrips_matrix_bytes(x in matrix_strategy(12, 8)) {
        let bytes = ats_common_bytes(&x);
        let c = lz::compress(&bytes);
        prop_assert_eq!(lz::decompress(&c).unwrap(), bytes);
    }

    #[test]
    fn disk_roundtrip_preserves_cells(x in matrix_strategy(20, 6)) {
        let (n, m) = x.shape();
        let budget = SpaceBudget::from_percent(50.0);
        if budget.max_svd_k(n, m) == 0 {
            return Ok(());
        }
        let svdd = SvddCompressed::compress(&x, &SvddOptions::new(budget)).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "adhoc-ts-prop-{}-{n}x{m}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        adhoc_ts::core::disk::save_svdd(&dir, &svdd).unwrap();
        let store = adhoc_ts::core::disk::DiskStore::open(&dir, 8).unwrap();
        for i in (0..n).step_by(3) {
            for j in (0..m).step_by(2) {
                let a = store.cell(i, j).unwrap();
                let b = svdd.cell(i, j).unwrap();
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn delta_codec_roundtrips_arbitrary_triplets(
        cols in any::<u64>(),
        triplets in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), -1e12f64..1e12),
            0..64,
        ),
    ) {
        let buf = encode_deltas(cols, &triplets);
        let (got_cols, got) = decode_deltas(&buf).unwrap();
        prop_assert_eq!(got_cols, cols);
        prop_assert_eq!(got.len(), triplets.len());
        for (a, b) in got.iter().zip(&triplets) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1, b.1);
            prop_assert_eq!(a.2.to_bits(), b.2.to_bits());
        }
    }

    #[test]
    fn delta_decode_never_panics_on_mangled_input(
        cols in any::<u64>(),
        triplets in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), -1e12f64..1e12),
            0..32,
        ),
        cut_raw in any::<usize>(),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let buf = encode_deltas(cols, &triplets);
        // Every strict prefix is missing bytes the header promises, so
        // decode must report corruption rather than panic or misread.
        let cut = cut_raw % buf.len().max(1);
        prop_assert!(decode_deltas(&buf[..cut]).is_err());
        // Trailing garbage must be rejected too (exact-consumption check).
        if !garbage.is_empty() {
            let mut padded = buf.clone();
            padded.extend_from_slice(&garbage);
            prop_assert!(decode_deltas(&padded).is_err());
        }
        // Arbitrary byte soup: any outcome is fine except a panic.
        let _ = decode_deltas(&garbage);
    }

    #[test]
    fn topk_merge_equals_global_scan(
        items in proptest::collection::vec(-1e6f64..1e6, 0..200),
        capacity in 0usize..24,
        splits in proptest::collection::vec(any::<usize>(), 0..6),
    ) {
        // One queue fed every item...
        let mut global = TopK::new(capacity);
        for (i, &p) in items.iter().enumerate() {
            global.offer(p, i);
        }
        // ...versus per-shard queues over an arbitrary partition, merged.
        let mut cuts: Vec<usize> = splits.iter().map(|ix| ix % (items.len() + 1)).collect();
        cuts.push(0);
        cuts.push(items.len());
        cuts.sort_unstable();
        let mut merged = TopK::new(capacity);
        for w in cuts.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let mut shard = TopK::new(capacity);
            for (i, &p) in items.iter().enumerate().take(hi).skip(lo) {
                shard.offer(p, i);
            }
            merged.merge(shard);
        }
        // Ties at the boundary may retain different *items*, but the
        // multiset of retained priorities is fully determined.
        let sorted = |t: TopK<usize>| -> Vec<f64> {
            t.into_sorted_vec().into_iter().map(|(p, _)| p).collect()
        };
        prop_assert_eq!(sorted(global), sorted(merged));
    }
}

fn ats_common_bytes(x: &Matrix) -> Vec<u8> {
    ats_common_codec_encode(x.as_slice())
}

fn ats_common_codec_encode(vs: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vs.len() * 8);
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

#[test]
fn table1_matches_paper_exactly() {
    // The one ground-truth the paper prints in full (Eq. 5).
    let x = Matrix::from_rows(vec![
        vec![1., 1., 1., 0., 0.],
        vec![2., 2., 2., 0., 0.],
        vec![1., 1., 1., 0., 0.],
        vec![5., 5., 5., 0., 0.],
        vec![0., 0., 0., 2., 2.],
        vec![0., 0., 0., 3., 3.],
        vec![0., 0., 0., 1., 1.],
    ])
    .unwrap();
    let svd = Svd::compute(&x, SvdOptions::default()).unwrap();
    assert_eq!(svd.rank(), 2);
    assert!((svd.sigma()[0] - 9.64).abs() < 0.01);
    assert!((svd.sigma()[1] - 5.29).abs() < 0.01);
    // and the reconstruction is exact at full rank
    assert!(svd.reconstruct().approx_eq(&x, 1e-9));
}
