//! Integration tests for the beyond-the-paper extensions, composed the
//! way a downstream user would: batched appends through the Gram cache,
//! zero-customer flagging over an SVDD store, and quantized storage.

use adhoc_ts::compress::append::GramCache;
use adhoc_ts::compress::quantized::QuantizedSvd;
use adhoc_ts::compress::zeroflag::{ZeroAwareMatrix, ZeroRowIndex};
use adhoc_ts::compress::{
    CompressedMatrix, SpaceBudget, SvdCompressed, SvddCompressed, SvddOptions,
};
use adhoc_ts::data::{generate_phone, PhoneConfig};
use adhoc_ts::linalg::Matrix;
use adhoc_ts::query::metrics::error_report;

#[test]
fn nightly_append_workflow() {
    // Day 1: compress the initial extract, keep the Gram cache.
    let day1 = generate_phone(&PhoneConfig {
        customers: 400,
        days: 56,
        seed: 1,
        ..PhoneConfig::default()
    });
    let mut cache = GramCache::from_source(day1.matrix(), 1).unwrap();

    // Day 2: a new batch of customers arrives; ingest only the batch.
    let day2 = generate_phone(&PhoneConfig {
        customers: 100,
        days: 56,
        seed: 2,
        ..PhoneConfig::default()
    });
    cache.ingest(day2.matrix(), 1).unwrap();

    // Rebuild from the concatenation with ONE pass; must equal a
    // from-scratch 2-pass build.
    let mut rows: Vec<Vec<f64>> = day1.matrix().iter_rows().map(<[f64]>::to_vec).collect();
    rows.extend(day2.matrix().iter_rows().map(<[f64]>::to_vec));
    let full = Matrix::from_rows(rows).unwrap();
    let incremental = cache.compress(&full, 6).unwrap();
    let scratch = SvdCompressed::compress(&full, 6, 1).unwrap();
    for i in (0..500).step_by(41) {
        for j in (0..56).step_by(7) {
            assert!(
                (incremental.cell(i, j).unwrap() - scratch.cell(i, j).unwrap()).abs() < 1e-7,
                "({i},{j})"
            );
        }
    }

    // The cache itself survives a round trip to disk.
    let dir = std::env::temp_dir().join(format!("ats-ext-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gram.atsm");
    cache.save(&path).unwrap();
    let reloaded = GramCache::load(&path).unwrap();
    assert_eq!(reloaded.rows_seen(), 500);
}

#[test]
fn zeroflag_over_svdd_store() {
    let data = generate_phone(&PhoneConfig {
        customers: 500,
        days: 56,
        zero_fraction: 0.08,
        ..PhoneConfig::default()
    });
    let x = data.matrix();
    let svdd =
        SvddCompressed::compress(x, &SvddOptions::new(SpaceBudget::from_percent(10.0))).unwrap();
    let index = ZeroRowIndex::build(x).unwrap();
    assert!(index.len() > 10, "generator should produce zero customers");
    let wrapped = ZeroAwareMatrix::new(svdd, index);

    // Every all-zero customer reconstructs *exactly* zero through the
    // wrapper, and the overall error can only improve.
    for i in 0..500 {
        if x.row(i).iter().all(|&v| v == 0.0) {
            for j in (0..56).step_by(11) {
                assert_eq!(wrapped.cell(i, j).unwrap(), 0.0);
            }
        }
    }
    let wrapped_report = error_report(x, &wrapped).unwrap();
    let inner_report = error_report(x, wrapped.inner()).unwrap();
    assert!(wrapped_report.sse <= inner_report.sse + 1e-9);
}

#[test]
fn quantized_store_at_scale() {
    let data = generate_phone(&PhoneConfig {
        customers: 800,
        days: 91,
        ..PhoneConfig::default()
    });
    let x = data.matrix();
    let budget = SpaceBudget::from_percent(10.0);
    let q = QuantizedSvd::compress_budget(x, budget, 1).unwrap();
    let f = SvdCompressed::compress_budget(x, budget, 1).unwrap();
    let rq = error_report(x, &q).unwrap();
    let rf = error_report(x, &f).unwrap();
    // At equal bytes, the f32 variant holds ~2x the components and must
    // not be worse on genuinely multi-component data.
    assert!(q.storage_bytes() <= budget.bytes(800, 91));
    assert!(
        rq.rmspe <= rf.rmspe * 1.05,
        "quantized {} vs f64 {}",
        rq.rmspe,
        rf.rmspe
    );
}
