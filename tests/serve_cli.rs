//! CLI-level tests for the two new `ats` entry points: the `serve`
//! daemon driven through the actual binary over a real socket, and
//! `save --generate`, which must build a store bitwise identical to
//! generating the `.atsm` file first and saving that.

use adhoc_ts::query::serve::client;
use ats_common::TestDir;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::Duration;

fn ats() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ats"))
}

fn run_ok(args: &[&str]) -> String {
    let out = ats().args(args).output().expect("run ats");
    assert!(
        out.status.success(),
        "ats {args:?}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn serve_daemon_answers_over_a_socket_and_shuts_down_cleanly() {
    let dir = TestDir::new("ats-serve-cli");
    let data = dir.file("data.atsm");
    let store = dir.file("store");
    run_ok(&[
        "generate",
        "phone",
        "--rows",
        "80",
        "--cols",
        "24",
        "--out",
        data.to_str().unwrap(),
    ]);
    run_ok(&[
        "save",
        data.to_str().unwrap(),
        "--out",
        store.to_str().unwrap(),
        "--shards",
        "2",
    ]);
    // The daemon's answer must be bitwise identical to single-shot
    // `ats query` — same engine, same text rendering.
    let single_shot = run_ok(&["query", store.to_str().unwrap(), "cell 42 17"]);
    let single_agg = run_ok(&["query", store.to_str().unwrap(), "avg rows 0..80 cols all"]);

    let mut child = ats()
        .args([
            "serve",
            store.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--window-ms",
            "1",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ats serve");

    // The first stdout line announces the resolved address.
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_string();

    let mut s = TcpStream::connect(&addr).expect("connect to daemon");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    assert_eq!(client::round_trip(&mut s, "PING").unwrap(), "OK pong");
    let cell = client::round_trip(&mut s, "cell 42 17").unwrap();
    assert_eq!(cell, format!("OK {}", single_shot.trim()));
    let agg = client::round_trip(&mut s, "avg rows 0..80 cols all").unwrap();
    assert_eq!(agg, format!("OK {}", single_agg.trim()));
    let bad = client::round_trip(&mut s, "cell 9999 0").unwrap();
    assert!(bad.starts_with("ERR "), "{bad}");
    assert_eq!(
        client::round_trip(&mut s, "SHUTDOWN").unwrap(),
        "OK shutting down"
    );
    drop(s);

    let out = child.wait_with_output().expect("daemon exit");
    assert!(
        out.status.success(),
        "daemon exited {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("served "), "{rest}");
}

#[test]
fn serve_shuts_down_on_stdin_quit() {
    let dir = TestDir::new("ats-serve-cli");
    let data = dir.file("data.atsm");
    let store = dir.file("store");
    run_ok(&[
        "generate",
        "phone",
        "--rows",
        "30",
        "--cols",
        "12",
        "--out",
        data.to_str().unwrap(),
    ]);
    run_ok(&[
        "save",
        data.to_str().unwrap(),
        "--out",
        store.to_str().unwrap(),
        "--percent",
        "25",
    ]);
    let mut child = ats()
        .args(["serve", store.to_str().unwrap(), "--addr", "127.0.0.1:0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ats serve");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    assert!(line.starts_with("listening on "), "{line:?}");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"quit\n")
        .expect("write quit");
    let status = child.wait().expect("daemon exit");
    assert!(status.success(), "{status:?}");
}

#[test]
fn save_generate_is_bitwise_identical_to_file_then_save() {
    let dir = TestDir::new("ats-save-gen");
    let data = dir.file("data.atsm");
    let via_file = dir.file("via-file");
    let direct = dir.file("direct");

    // Path A: generate a .atsm, then save it.
    run_ok(&[
        "generate",
        "stocks",
        "--rows",
        "60",
        "--cols",
        "32",
        "--seed",
        "9",
        "--out",
        data.to_str().unwrap(),
    ]);
    run_ok(&[
        "save",
        data.to_str().unwrap(),
        "--out",
        via_file.to_str().unwrap(),
        "--shards",
        "2",
    ]);

    // Path B: stream the generator straight into the build.
    run_ok(&[
        "save",
        "--generate",
        "stocks",
        "--rows",
        "60",
        "--cols",
        "32",
        "--seed",
        "9",
        "--out",
        direct.to_str().unwrap(),
        "--shards",
        "2",
    ]);

    // Every store component must match byte for byte (the store is a
    // directory tree: manifest + per-shard subdirectories).
    fn walk(root: &std::path::Path, rel: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
        for e in std::fs::read_dir(root.join(rel)).unwrap() {
            let e = e.unwrap();
            let rel = rel.join(e.file_name());
            if e.file_type().unwrap().is_dir() {
                walk(root, &rel, out);
            } else {
                out.push(rel);
            }
        }
    }
    let mut names = Vec::new();
    walk(&via_file, std::path::Path::new(""), &mut names);
    names.sort();
    assert!(names.len() >= 3, "only found {names:?}");
    for name in &names {
        let a = std::fs::read(via_file.join(name)).unwrap();
        let b = std::fs::read(direct.join(name)).unwrap();
        assert_eq!(
            a,
            b,
            "{} differs between the two build paths",
            name.display()
        );
    }

    // And the direct store answers queries.
    let v = run_ok(&["query", direct.to_str().unwrap(), "cell 10 10"]);
    let w = run_ok(&["query", via_file.to_str().unwrap(), "cell 10 10"]);
    assert_eq!(v, w);
}

#[test]
fn save_flag_validation() {
    let dir = TestDir::new("ats-save-gen");
    // FILE and --generate together is a usage error (exit 2)…
    let out = ats()
        .args([
            "save",
            "x.atsm",
            "--generate",
            "phone",
            "--out",
            dir.file("s").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // …as is --rows without --generate, and neither FILE nor --generate.
    let out = ats()
        .args([
            "save",
            "x.atsm",
            "--rows",
            "5",
            "--out",
            dir.file("s").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = ats()
        .args(["save", "--out", dir.file("s").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
