//! Cross-method integration tests: the orderings the paper's Fig. 6/7
//! claims, verified on synthetic data at equal space budgets.

use adhoc_ts::compress::cluster::{ClusterAlgo, ClusterCompressed};
use adhoc_ts::compress::dct::DctCompressed;
use adhoc_ts::compress::{
    CompressedMatrix, SpaceBudget, SvdCompressed, SvddCompressed, SvddOptions,
};
use adhoc_ts::data::{generate_phone, generate_stocks, PhoneConfig, StocksConfig};
use adhoc_ts::query::metrics::error_report;

#[test]
fn svdd_dominates_on_phone_data() {
    // Fig. 6(a): SVDD best on calling-pattern data at equal space.
    let data = generate_phone(&PhoneConfig {
        customers: 600,
        days: 91,
        ..PhoneConfig::default()
    });
    let x = data.matrix();
    let budget = SpaceBudget::from_percent(10.0);

    let svdd = SvddCompressed::compress(x, &SvddOptions::new(budget)).unwrap();
    let svd = SvdCompressed::compress_budget(x, budget, 1).unwrap();
    let dct = DctCompressed::compress_budget(x, budget).unwrap();

    let e_svdd = error_report(x, &svdd).unwrap();
    let e_svd = error_report(x, &svd).unwrap();
    let e_dct = error_report(x, &dct).unwrap();

    assert!(
        e_svdd.rmspe <= e_svd.rmspe * 1.0001,
        "svdd {} vs svd {}",
        e_svdd.rmspe,
        e_svd.rmspe
    );
    assert!(
        e_svd.rmspe < e_dct.rmspe,
        "SVD (data-optimal basis) must beat DCT (fixed basis) on phone data: {} vs {}",
        e_svd.rmspe,
        e_dct.rmspe
    );
    // Fig. 7 / Table 3: SVDD's worst case is far below plain SVD's.
    assert!(
        e_svdd.max_normalized_error < e_svd.max_normalized_error * 0.8,
        "svdd worst {} vs svd worst {}",
        e_svdd.max_normalized_error,
        e_svd.max_normalized_error
    );
}

#[test]
fn dct_competitive_on_stocks() {
    // §5.1: "DCT performs better for the 'stocks' dataset" because
    // successive prices are highly correlated. It should land within a
    // small factor of SVD there (while being far worse on phone data).
    let stocks = generate_stocks(&StocksConfig::small());
    let x = stocks.matrix();
    let budget = SpaceBudget::from_percent(20.0);
    let svd = SvdCompressed::compress_budget(x, budget, 1).unwrap();
    let dct = DctCompressed::compress_budget(x, budget).unwrap();
    let e_svd = error_report(x, &svd).unwrap();
    let e_dct = error_report(x, &dct).unwrap();
    assert!(
        e_dct.rmspe < e_svd.rmspe * 25.0,
        "DCT should be in SVD's ballpark on random-walk data: {} vs {}",
        e_dct.rmspe,
        e_svd.rmspe
    );
}

#[test]
fn all_methods_respect_equal_budget() {
    let data = generate_phone(&PhoneConfig {
        customers: 400,
        days: 56,
        ..PhoneConfig::default()
    });
    let x = data.matrix();
    let budget = SpaceBudget::from_percent(15.0);
    let limit = budget.bytes(400, 56);

    let svdd = SvddCompressed::compress(x, &SvddOptions::new(budget)).unwrap();
    let svd = SvdCompressed::compress_budget(x, budget, 1).unwrap();
    let dct = DctCompressed::compress_budget(x, budget).unwrap();
    let hc = ClusterCompressed::compress_budget(x, budget, ClusterAlgo::Hierarchical).unwrap();

    for (name, bytes) in [
        ("svdd", svdd.storage_bytes()),
        ("svd", svd.storage_bytes()),
        ("dct", dct.storage_bytes()),
        ("cluster", hc.storage_bytes()),
    ] {
        assert!(bytes <= limit, "{name}: {bytes} > {limit}");
    }
}

#[test]
fn svdd_outlier_cells_exact_and_bounded() {
    // Table 3's shape: at 10%+ space the worst SVDD cell error stays
    // bounded while plain SVD's explodes on spiky data.
    let data = generate_phone(&PhoneConfig {
        customers: 500,
        days: 70,
        spike_prob: 0.01,
        ..PhoneConfig::default()
    });
    let x = data.matrix();
    for pct in [10.0, 20.0] {
        let budget = SpaceBudget::from_percent(pct);
        let svdd = SvddCompressed::compress(x, &SvddOptions::new(budget)).unwrap();
        let svd = SvdCompressed::compress_budget(x, budget, 1).unwrap();
        let e_svdd = error_report(x, &svdd).unwrap();
        let e_svd = error_report(x, &svd).unwrap();
        assert!(
            e_svdd.max_abs_error <= e_svd.max_abs_error,
            "{pct}%: {} vs {}",
            e_svdd.max_abs_error,
            e_svd.max_abs_error
        );
    }
}

#[test]
fn error_decreases_with_space_for_every_method() {
    // The basic Fig. 6 monotonicity: more space, less error.
    let data = generate_phone(&PhoneConfig {
        customers: 300,
        days: 56,
        ..PhoneConfig::default()
    });
    let x = data.matrix();
    let budgets = [5.0, 10.0, 20.0, 40.0];

    let mut prev_svdd = f64::INFINITY;
    let mut prev_dct = f64::INFINITY;
    for pct in budgets {
        let b = SpaceBudget::from_percent(pct);
        let svdd = SvddCompressed::compress(x, &SvddOptions::new(b)).unwrap();
        let e = error_report(x, &svdd).unwrap().rmspe;
        assert!(e <= prev_svdd * 1.05, "svdd error rose at {pct}%: {e}");
        prev_svdd = e;

        let dct = DctCompressed::compress_budget(x, b).unwrap();
        let e = error_report(x, &dct).unwrap().rmspe;
        assert!(e <= prev_dct * 1.05, "dct error rose at {pct}%: {e}");
        prev_dct = e;
    }
}
