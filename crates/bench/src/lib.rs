//! Experiment harness shared by the `exp_*` binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index). This library holds the shared
//! plumbing: the canonical experiment datasets, result tables that print
//! aligned to stdout *and* persist as CSV under `results/`, and small
//! measurement helpers.

use ats_data::{generate_phone, generate_stocks, Dataset, PhoneConfig, StocksConfig};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Canonical `phone2000` experiment dataset (N=2000, M=366, seeded).
pub fn phone2000() -> Dataset {
    generate_phone(&PhoneConfig {
        customers: 2_000,
        days: 366,
        ..PhoneConfig::default()
    })
}

/// A full `phoneN` dataset for the scale-up experiments. `n` is clamped
/// by the `ATS_MAX_N` environment variable (default 100 000).
pub fn phone_n(n: usize) -> Dataset {
    generate_phone(&PhoneConfig {
        customers: n,
        days: 366,
        ..PhoneConfig::default()
    })
}

/// Canonical `stocks` dataset (N=381, M=128, seeded).
pub fn stocks() -> Dataset {
    generate_stocks(&StocksConfig::paper())
}

/// Scale-up sizes honoured by `exp_fig10`/`exp_table4`, filtered by the
/// `ATS_MAX_N` env var (default 100 000 — the paper's full run; set it
/// lower for a quick pass).
pub fn scaleup_sizes() -> Vec<usize> {
    let cap: usize = std::env::var("ATS_MAX_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    [1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect()
}

/// Where result CSVs land (workspace `results/`, or `ATS_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(d) = std::env::var("ATS_RESULTS_DIR") {
        return PathBuf::from(d);
    }
    // crates/bench -> workspace root
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// A result table that renders aligned text and persists to CSV.
pub struct ResultTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (w, c) in widths.iter().zip(cells) {
                let _ = write!(out, "{c:>w$}  ");
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.headers);
        let rule: String = widths.iter().map(|w| "-".repeat(*w) + "  ").collect();
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Print to stdout and write `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let dir = results_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let mut csv = String::new();
            let _ = writeln!(csv, "{}", self.headers.join(","));
            for row in &self.rows {
                let _ = writeln!(csv, "{}", row.join(","));
            }
            let path = dir.join(format!("{name}.csv"));
            if std::fs::write(&path, csv).is_ok() {
                println!("[written {}]", path.display());
            }
        }
    }
}

/// Format a float with fixed decimals for table cells.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_aligns() {
        let mut t = ResultTable::new("demo", &["a", "longheader"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "2000".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("longheader"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn canonical_datasets_shaped() {
        let s = stocks();
        assert_eq!((s.rows(), s.cols()), (381, 128));
    }

    #[test]
    fn scaleup_respects_env() {
        // NOTE: env-var mutation is process-global; keep this the only
        // test touching ATS_MAX_N.
        std::env::set_var("ATS_MAX_N", "5000");
        let sizes = scaleup_sizes();
        assert_eq!(sizes, vec![1_000, 2_000, 5_000]);
        std::env::remove_var("ATS_MAX_N");
    }

    #[test]
    fn timing_helper() {
        let (v, secs) = timed(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(secs >= 0.0);
    }
}
