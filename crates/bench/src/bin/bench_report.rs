//! Pinned perf-trajectory suite: emits `BENCH_<issue>.json`.
//!
//! Unlike the Criterion benches (statistical, interactive), this binary
//! runs a small fixed set of workloads with pinned seeds and sizes and
//! writes one machine-readable JSON report, committed per PR so the
//! perf trajectory of the repo is inspectable from git history alone:
//!
//! 1. `build_phone2000` — SVDD build of the canonical phone2000 set;
//! 2. `batch_cells` — a 10 000-cell batch query against that store;
//! 3. `aggregate_scan` — full-matrix `avg` aggregate;
//! 4. `kernels` — dot/axpy vs their 8-wide variants (`dot8`/`axpy8`);
//! 5. `ladder_build` — streaming 200k-row build in a child process,
//!    reporting the child's true peak RSS (`VmHWM`);
//! 6. `serve_throughput` — an in-process `ats serve` daemon driven by
//!    concurrent socket clients, reporting query throughput and the
//!    observed coalescing factor;
//! 7. `range_query` — a `[t1..t2)` time-range aggregate against stores
//!    built with 1, 8, and 32 time blocks, vs the full scan on each —
//!    pinning the block-pruning payoff of the v4 layout;
//! 8. `predicate_scan` — `where value > x` aggregates at pinned
//!    selectivities (~0.1%, 1%, 10%, 100%) over the saved phone store,
//!    zone-map pruning on vs off: wall time and U pages actually read —
//!    pinning the synopsis layer's payoff.
//!
//! `--quick` shrinks every size (CI smoke); `--out PATH` overrides the
//! default `BENCH_010.json` in the workspace root. Timing is hand-rolled
//! (`Instant` + best-of-R) because Criterion is a dev-dependency only.

use ats_compress::{SpaceBudget, SvdCompressed, SvddCompressed, SvddOptions};
use ats_data::{generate_phone, PhoneConfig, StreamingPhone};
use ats_linalg::vecops;
use ats_query::{AggregateFn, BatchRequest, QueryEngine, Selection};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Report schema identifier; bump when fields change shape.
const SCHEMA: &str = "ats-bench-report/v1";
/// The PR issue this trajectory file belongs to.
const ISSUE: u32 = 10;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Child mode: run the ladder build and print its own peak RSS.
    if let Some(i) = args.iter().position(|a| a == "--ladder-child") {
        let n: usize = args[i + 1].parse().expect("ladder-child rows");
        let m: usize = args[i + 2].parse().expect("ladder-child cols");
        let k: usize = args[i + 3].parse().expect("ladder-child k");
        ladder_child(n, m, k);
        return;
    }

    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args[i + 1].clone())
        .unwrap_or_else(default_out_path);

    let mut suites = String::new();

    // 1 + 2 + 3: build once, query twice.
    let n = if quick { 500 } else { 2_000 };
    let ds = generate_phone(&PhoneConfig {
        customers: n,
        days: 366,
        ..PhoneConfig::default()
    });
    eprintln!("bench-report: building SVDD phone{n} …");
    let t0 = Instant::now();
    let svdd = SvddCompressed::compress(
        ds.matrix(),
        &SvddOptions::new(SpaceBudget::from_percent(10.0)),
    )
    .expect("svdd build");
    let build_secs = t0.elapsed().as_secs_f64();
    let rows_per_sec = n as f64 / build_secs;
    let _ = writeln!(
        suites,
        "    \"build_phone2000\": {{ \"rows\": {n}, \"cols\": 366, \
         \"budget_percent\": 10.0, \"k_opt\": {}, \"secs\": {build_secs:.4}, \
         \"rows_per_sec\": {rows_per_sec:.1} }},",
        svdd.k_opt(),
    );

    // Shared (Arc) shape: the same engine serves the direct batch and
    // aggregate timings and, later, the in-process daemon's clients.
    let svdd = std::sync::Arc::new(svdd);
    let engine = QueryEngine::shared(svdd.clone());

    let cells = if quick { 2_000 } else { 10_000 };
    let req = BatchRequest::new(
        (0..cells)
            .map(|i: usize| {
                // Deterministic scatter with repeated rows, the batch
                // path's favourable case (one U fetch per distinct row).
                let row = (i.wrapping_mul(2_654_435_761)) % n;
                let col = (i.wrapping_mul(40_503)) % 366;
                (row, col)
            })
            .collect(),
    );
    eprintln!("bench-report: batch of {cells} cells …");
    let t0 = Instant::now();
    let res = engine.batch_cells(&req).expect("batch query");
    let batch_secs = t0.elapsed().as_secs_f64();
    black_box(res.values());
    let _ = writeln!(
        suites,
        "    \"batch_cells\": {{ \"cells\": {cells}, \"distinct_rows\": {}, \
         \"secs\": {batch_secs:.6}, \"cells_per_sec\": {:.1} }},",
        res.distinct_rows(),
        cells as f64 / batch_secs,
    );

    eprintln!("bench-report: full aggregate scan …");
    let scan_cells = n * 366;
    let t0 = Instant::now();
    let avg = engine
        .aggregate(&Selection::all(), AggregateFn::Avg)
        .expect("aggregate scan");
    let scan_secs = t0.elapsed().as_secs_f64();
    black_box(avg);
    let _ = writeln!(
        suites,
        "    \"aggregate_scan\": {{ \"cells\": {scan_cells}, \"secs\": {scan_secs:.6}, \
         \"cells_per_sec\": {:.1} }},",
        scan_cells as f64 / scan_secs,
    );

    // 4: kernel micros.
    eprintln!("bench-report: kernel micros …");
    suites.push_str(&kernel_micros(quick));

    // 5: ladder build in a child process so VmHWM reflects it alone.
    let (lrows, lcols, lk) = if quick {
        (50_000, 64, 6)
    } else {
        (200_000, 64, 6)
    };
    eprintln!("bench-report: ladder child build {lrows}×{lcols} …");
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .args([
            "--ladder-child",
            &lrows.to_string(),
            &lcols.to_string(),
            &lk.to_string(),
        ])
        .output()
        .expect("spawn ladder child");
    assert!(
        out.status.success(),
        "ladder child failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let child = String::from_utf8_lossy(&out.stdout);
    let field = |key: &str| -> f64 {
        child
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{key}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("ladder child did not report {key}: {child}"))
    };
    let _ = writeln!(
        suites,
        "    \"ladder_build\": {{ \"rows\": {lrows}, \"cols\": {lcols}, \"k\": {lk}, \
         \"secs\": {:.4}, \"peak_rss_bytes\": {}, \"input_bytes\": {} }},",
        field("secs"),
        field("peak_rss_bytes") as u64,
        lrows * lcols * 8,
    );

    // 6: daemon throughput over a real socket, clients in-process.
    eprintln!("bench-report: serve throughput …");
    suites.push_str(&serve_throughput(
        QueryEngine::shared(svdd.clone()),
        n,
        quick,
    ));
    // 7: time-range aggregate vs full scan across block counts.
    eprintln!("bench-report: range query across time-block counts …");
    suites.push_str(&range_query(ds.matrix(), quick));
    // 8: predicate pushdown at pinned selectivities, pruned vs exact.
    eprintln!("bench-report: predicate scan across selectivities …");
    suites.push_str(&predicate_scan(ds.matrix(), quick));

    let json = render_report(quick, &suites);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");
}

/// Child-process entry: streaming SVD build, then self-report VmHWM.
fn ladder_child(n: usize, m: usize, k: usize) {
    let cfg = PhoneConfig {
        customers: n,
        days: m,
        ..PhoneConfig::default()
    };
    let src = StreamingPhone::new(cfg);
    let t0 = Instant::now();
    let svd = SvdCompressed::compress(&src, k, 1).expect("ladder build");
    let secs = t0.elapsed().as_secs_f64();
    black_box(svd.lambda());
    println!("secs={secs:.4}");
    println!("peak_rss_bytes={}", peak_rss_bytes().unwrap_or(0));
}

/// Peak resident set size of this process (`VmHWM`), in bytes.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Best-of-R wall time for `f`, in seconds.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Time the narrow kernels against their 8-wide variants on identical
/// data and report element throughput. On 1-CPU containers without FMA
/// the widened variants may only reach parity — the JSON `notes` field
/// documents that this is acceptable; the numbers still pin regressions.
fn kernel_micros(quick: bool) -> String {
    let len = 4096usize;
    let iters = if quick { 200 } else { 2_000 };
    let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin()).collect();
    let bs: Vec<Vec<f64>> = (0..8)
        .map(|l| {
            (0..len)
                .map(|i| ((i + l * 17) as f64 * 0.21).cos())
                .collect()
        })
        .collect();

    // dot: 8 sequential narrow calls vs one dot8 over the same lanes.
    let dot_secs = best_of(iters, || {
        let mut acc = 0.0;
        for b in &bs {
            acc += vecops::dot(black_box(&a), black_box(b));
        }
        acc
    });
    let dot8_secs = best_of(iters, || {
        let refs: [&[f64]; 8] = std::array::from_fn(|l| bs[l].as_slice());
        vecops::dot8(black_box(&a), refs)
    });

    // axpy: 8 narrow updates vs one axpy8 sharing the x sweep.
    let mut ys: Vec<Vec<f64>> = vec![vec![0.0; len]; 8];
    let alpha: [f64; 8] = std::array::from_fn(|l| 0.5 + l as f64 * 0.125);
    let axpy_secs = best_of(iters, || {
        for (l, y) in ys.iter_mut().enumerate() {
            vecops::axpy(alpha[l], black_box(&a), y);
        }
    });
    let axpy8_secs = best_of(iters, || {
        let mut it = ys.iter_mut();
        let mut refs: [&mut [f64]; 8] =
            std::array::from_fn(|_| it.next().map(|v| v.as_mut_slice()).expect("8 lanes"));
        vecops::axpy8(alpha, black_box(&a), &mut refs);
    });

    let elems = (8 * len) as f64;
    let melems = |secs: f64| elems / secs / 1e6;
    format!(
        "    \"kernels\": {{ \"len\": {len}, \"lanes\": 8, \"iters\": {iters}, \
         \"dot_melem_per_sec\": {:.1}, \"dot8_melem_per_sec\": {:.1}, \
         \"axpy_melem_per_sec\": {:.1}, \"axpy8_melem_per_sec\": {:.1}, \
         \"dot8_speedup\": {:.3}, \"axpy8_speedup\": {:.3} }},\n",
        melems(dot_secs),
        melems(dot8_secs),
        melems(axpy_secs),
        melems(axpy8_secs),
        dot_secs / dot8_secs,
        axpy_secs / axpy8_secs,
    )
}

/// Drive an in-process `ats serve` daemon with concurrent socket
/// clients, each issuing sequential cell queries; reports end-to-end
/// throughput (admission window included) and the coalescing factor
/// the batcher achieved.
fn serve_throughput(engine: QueryEngine<'static>, n: usize, quick: bool) -> String {
    use ats_query::serve::{client, serve, ServeConfig};
    let clients = 4usize;
    let per_client = if quick { 250usize } else { 2_000 };
    let cfg = ServeConfig {
        window: std::time::Duration::from_micros(200),
        ..ServeConfig::default()
    };
    let handle = serve(engine, cfg, None).expect("serve");
    let addr = handle.addr();
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut s = std::net::TcpStream::connect(addr).expect("connect");
                for i in 0..per_client {
                    let row = i.wrapping_mul(2_654_435_761).wrapping_add(c * 7_919) % n;
                    let col = i.wrapping_mul(40_503) % 366;
                    let resp = client::round_trip(&mut s, &format!("cell {row} {col}"))
                        .expect("round trip");
                    assert!(resp.starts_with("OK "), "{resp}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let secs = t0.elapsed().as_secs_f64();
    let m = handle.join().expect("server join");
    let total = clients * per_client;
    format!(
        "    \"serve_throughput\": {{ \"clients\": {clients}, \"queries\": {total}, \
         \"secs\": {secs:.4}, \"qps\": {:.1}, \"batches\": {}, \"coalesced_cells\": {}, \
         \"cells_per_batch\": {:.2} }},\n",
        total as f64 / secs,
        m.batches,
        m.coalesced_cells,
        m.coalesced_cells as f64 / m.batches.max(1) as f64,
    )
}

/// Time a `[t1..t2)` range aggregate against stores built with 1, 8,
/// and 32 time blocks, plus the full scan on each — the v4 layout's
/// payoff is the range/full ratio falling as B grows (only overlapping
/// blocks are reconstructed).
fn range_query(x: &ats_linalg::Matrix, quick: bool) -> String {
    use ats_core::store::SequenceStore;
    let cols = x.cols();
    // An eighth of the time axis, away from block edges.
    let (t1, t2) = (cols / 2, cols / 2 + cols / 8);
    let reps = if quick { 3 } else { 10 };
    let mut variants = String::new();
    for (i, blocks) in [1usize, 8, 32].into_iter().enumerate() {
        eprintln!("bench-report:   time_blocks={blocks} …");
        let t0 = Instant::now();
        let store = SequenceStore::builder()
            .budget(SpaceBudget::from_percent(10.0))
            .time_blocks(blocks)
            .build(x)
            .expect("time-blocked build");
        let build_secs = t0.elapsed().as_secs_f64();
        let range_sel = Selection::time_range(ats_query::selection::Axis::All, t1, t2);
        let range_secs = best_of(reps, || {
            store
                .aggregate(&range_sel, AggregateFn::Avg)
                .expect("range aggregate")
        });
        let full_secs = best_of(reps, || {
            store
                .aggregate(&Selection::all(), AggregateFn::Avg)
                .expect("full aggregate")
        });
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(
            variants,
            "{sep}{{ \"time_blocks\": {blocks}, \"build_secs\": {build_secs:.4}, \
             \"range_secs\": {range_secs:.6}, \"full_secs\": {full_secs:.6}, \
             \"range_over_full\": {:.4} }}",
            range_secs / full_secs,
        );
    }
    format!(
        "    \"range_query\": {{ \"rows\": {}, \"cols\": {cols}, \"t1\": {t1}, \"t2\": {t2}, \
         \"reps\": {reps}, \"variants\": [{variants}] }},\n",
        x.rows(),
    )
}

/// Time `sum … where value > x` at pinned selectivities over the phone
/// store saved to disk (zone-map synopses are a save-time artifact),
/// with pruning on vs off. Each variant reports wall time (best-of-R on
/// a warm pool — pruning also skips reconstruction, not just I/O) and
/// the U pages physically read by one cold scan of each mode.
fn predicate_scan(x: &ats_linalg::Matrix, quick: bool) -> String {
    use ats_compress::CompressedMatrix;
    use ats_core::store::SequenceStore;
    use ats_core::timeblock::TimeBlockedStore;
    use ats_query::{CmpOp, Predicate};

    let dir = std::env::temp_dir().join(format!("ats-bench-predscan-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    SequenceStore::builder()
        .budget(SpaceBudget::from_percent(10.0))
        .build(x)
        .expect("predicate-scan build")
        .save(&dir)
        .expect("predicate-scan save");

    let (rows, cols) = (x.rows(), x.cols());
    // Thresholds at pinned quantiles of the *served* values, so `> x`
    // hits the target selectivities regardless of dataset scale.
    let mut vals = Vec::with_capacity(rows * cols);
    {
        let store = TimeBlockedStore::open(&dir, 4096).expect("predicate-scan open");
        let mut buf = vec![0.0; cols];
        for i in 0..rows {
            store.row_into(i, &mut buf).expect("row");
            vals.extend_from_slice(&buf);
        }
    }
    vals.sort_by(f64::total_cmp);
    let quantile = |q: f64| {
        let idx = ((vals.len() - 1) as f64 * q) as usize;
        vals[idx.min(vals.len() - 1)]
    };
    let targets = [
        (0.001, quantile(0.999)),
        (0.01, quantile(0.99)),
        (0.10, quantile(0.90)),
        (1.0, quantile(0.0) - 1.0),
    ];

    let reps = if quick { 3 } else { 10 };
    let sel = Selection::all();
    let mut variants = String::new();
    for (i, (target, threshold)) in targets.into_iter().enumerate() {
        let pred = Predicate::new(CmpOp::Gt, threshold).expect("finite threshold");
        // One cold scan per mode for the page counts …
        let pages = |synopsis: bool| -> (u64, f64) {
            let store = TimeBlockedStore::open(&dir, 4096).expect("reopen");
            let engine = QueryEngine::new(&store).with_synopsis(synopsis);
            let matched = engine
                .aggregate_where(&sel, AggregateFn::Count, &pred)
                .expect("count");
            let phys: u64 = store
                .shard_io_snapshots()
                .iter()
                .map(|s| s.physical_reads)
                .sum();
            (phys, matched)
        };
        let (pruned_pages, matched) = pages(true);
        let (exact_pages, _) = pages(false);
        // … then warm-pool wall times for the value aggregate.
        let store = TimeBlockedStore::open(&dir, 4096).expect("reopen");
        let pruned_engine = QueryEngine::new(&store).with_synopsis(true);
        let exact_engine = QueryEngine::new(&store).with_synopsis(false);
        let pruned_secs = best_of(reps, || {
            pruned_engine
                .aggregate_where(&sel, AggregateFn::Sum, &pred)
                .expect("pruned sum")
        });
        let exact_secs = best_of(reps, || {
            exact_engine
                .aggregate_where(&sel, AggregateFn::Sum, &pred)
                .expect("exact sum")
        });
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(
            variants,
            "{sep}{{ \"selectivity_target\": {target}, \"threshold\": {threshold:.4}, \
             \"matched\": {matched}, \"pruned_secs\": {pruned_secs:.6}, \
             \"exact_secs\": {exact_secs:.6}, \"speedup\": {:.3}, \
             \"pruned_pages\": {pruned_pages}, \"exact_pages\": {exact_pages} }}",
            exact_secs / pruned_secs,
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    format!(
        "    \"predicate_scan\": {{ \"rows\": {rows}, \"cols\": {cols}, \"op\": \">\", \
         \"reps\": {reps}, \"variants\": [{variants}] }}\n"
    )
}

/// Workspace-root default output path: `BENCH_010.json`.
fn default_out_path() -> String {
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push(format!("BENCH_{ISSUE:03}.json"));
    p.to_string_lossy().into_owned()
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn render_report(quick: bool, suites: &str) -> String {
    let cpu = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into());
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(0);
    let mem_kb = std::fs::read_to_string("/proc/meminfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("MemTotal:"))
                .and_then(|l| l.split_whitespace().nth(1).map(str::to_string))
        })
        .unwrap_or_else(|| "0".into());
    let fma = cfg!(target_feature = "fma");
    let notes = "Pinned perf-trajectory suite (seeds and sizes fixed; see \
                 crates/bench/src/bin/bench_report.rs). On 1-CPU containers \
                 without FMA the 8-wide kernels may only reach parity with the \
                 narrow ones; parity is acceptable — the file exists to pin the \
                 trajectory, and deltas are judged against this machine block.";

    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"issue\": {ISSUE},\n  \"quick\": {quick},\n  \
         \"machine\": {{ \"cpu\": \"{}\", \"cpus\": {cpus}, \"mem_total_kb\": {mem_kb}, \
         \"os\": \"{}\", \"arch\": \"{}\", \"fma\": {fma}, \
         \"crate_version\": \"{}\" }},\n  \"suites\": {{\n{suites}  }},\n  \
         \"notes\": \"{}\"\n}}\n",
        json_escape(&cpu),
        std::env::consts::OS,
        std::env::consts::ARCH,
        env!("CARGO_PKG_VERSION"),
        json_escape(notes),
    )
}
