//! E5 — Figure 10: scale-up — SVDD's RMSPE vs space for dataset sizes
//! N = 1 000 … 100 000 (the `phone100K` prefixes).
//!
//! ```sh
//! cargo run -p ats-bench --release --bin exp_fig10          # full (N ≤ 100k)
//! ATS_MAX_N=20000 cargo run -p ats-bench --release --bin exp_fig10  # quicker
//! ```
//!
//! Expected shape (paper §5.3): the curves are "fairly homogeneous" —
//! error ≈2% at 10% space regardless of N.

use ats_bench::{fmt, phone_n, scaleup_sizes, timed, ResultTable};
use ats_compress::{SpaceBudget, SvddCompressed, SvddOptions};
use ats_query::metrics::error_report;

fn main() {
    println!("E5 / Figure 10: SVDD scale-up on phone100K prefixes\n");
    let sizes = scaleup_sizes();
    let budgets = [2.0, 5.0, 10.0, 15.0, 20.0];

    // One generation of the largest dataset; prefixes share its rows
    // (the paper's phoneN subsets are prefixes of phone100K).
    let max_n = *sizes.last().expect("at least one size");
    let (full, gen_secs) = timed(|| phone_n(max_n));
    println!(
        "generated phone{} ({} x {}) in {:.1}s\n",
        max_n,
        full.rows(),
        full.cols(),
        gen_secs
    );

    let mut header: Vec<String> = vec!["s%".to_string()];
    header.extend(sizes.iter().map(|n| format!("N={n}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = ResultTable::new("Fig. 10 — RMSPE% vs s%, per N", &header_refs);

    // errors[budget][size]
    let mut grid = vec![vec![String::from("-"); sizes.len()]; budgets.len()];
    for (si, &n) in sizes.iter().enumerate() {
        let sub = full.subset(n).expect("prefix");
        for (bi, &pct) in budgets.iter().enumerate() {
            let budget = SpaceBudget::from_percent(pct);
            let (result, secs) =
                timed(|| SvddCompressed::compress(sub.matrix(), &SvddOptions::new(budget)));
            match result {
                Ok(svdd) => {
                    let rmspe = error_report(sub.matrix(), &svdd).expect("report").rmspe;
                    grid[bi][si] = fmt(rmspe * 100.0, 3);
                    println!(
                        "  N={n:6} s={pct:4.1}%  k_opt={:3} deltas={:8}  rmspe={:7.3}%  ({secs:.1}s)",
                        svdd.k_opt(),
                        svdd.num_deltas(),
                        rmspe * 100.0
                    );
                }
                Err(e) => println!("  N={n:6} s={pct:4.1}%  infeasible: {e}"),
            }
        }
    }
    println!();
    for (bi, &pct) in budgets.iter().enumerate() {
        let mut row = vec![fmt(pct, 1)];
        row.extend(grid[bi].iter().cloned());
        table.row(row);
    }
    table.emit("fig10_scaleup");
    println!("expected: each row roughly flat across N; ~2% at s=10%.");
}
