//! E6 — Table 4: worst-case normalized error at 10% storage for
//! increasing dataset sizes, SVD vs SVDD.
//!
//! ```sh
//! cargo run -p ats-bench --release --bin exp_table4          # full (N ≤ 100k)
//! ATS_MAX_N=20000 cargo run -p ats-bench --release --bin exp_table4
//! ```
//!
//! Expected shape (paper §5.3): plain SVD's worst case *grows with N*
//! ("a greater likelihood of one bad outlier point"), from ~200% at
//! N=1000 to >5000% at N=100 000; SVDD stays approximately flat around
//! 7–11%.

use ats_bench::{fmt, phone_n, scaleup_sizes, ResultTable};
use ats_compress::{SpaceBudget, SvdCompressed, SvddCompressed, SvddOptions};
use ats_query::metrics::error_report;

fn main() {
    println!("E6 / Table 4: worst-case normalized error @ 10% storage vs N\n");
    let sizes = scaleup_sizes();
    let max_n = *sizes.last().expect("sizes");
    let full = phone_n(max_n);
    let budget = SpaceBudget::from_percent(10.0);

    let mut table = ResultTable::new(
        "Table 4 — worst-case normalized error @ 10%",
        &["dataset", "svd_norm%", "svdd_norm%"],
    );

    for &n in &sizes {
        let sub = full.subset(n).expect("prefix");
        let x = sub.matrix();
        let svd = SvdCompressed::compress_budget(x, budget, 1).expect("svd");
        let svdd = SvddCompressed::compress(x, &SvddOptions::new(budget)).expect("svdd");
        let r_svd = error_report(x, &svd).expect("report");
        let r_svdd = error_report(x, &svdd).expect("report");
        println!(
            "  phone{n:<6}  svd worst {:8.1}%   svdd worst {:6.2}%",
            r_svd.max_normalized_error * 100.0,
            r_svdd.max_normalized_error * 100.0
        );
        table.row(vec![
            format!("phone{n}"),
            fmt(r_svd.max_normalized_error * 100.0, 1),
            fmt(r_svdd.max_normalized_error * 100.0, 2),
        ]);
    }
    println!();
    table.emit("table4_scaleup_worstcase");
    println!(
        "expected: svd_norm% increasing with N (paper: 227% -> 5336%),\n\
         svdd_norm% roughly flat (paper: 7-11%)."
    );
}
