//! E9 — §5.2's sampling remark: "simple uniform sampling performed
//! poorly compared with SVDD for aggregate queries".
//!
//! ```sh
//! cargo run -p ats-bench --release --bin exp_sampling
//! ```
//!
//! Runs the same 50-query aggregate workload against SVDD and against a
//! uniform row sample of equal space, at several budgets; also shows the
//! cell-query comparison where sampling collapses entirely ("sampling is
//! not likely to be able to provide estimates of individual cell
//! values").

use ats_bench::{fmt, phone2000, ResultTable};
use ats_compress::sampling::SampleCompressed;
use ats_compress::{SpaceBudget, SvddCompressed, SvddOptions};
use ats_query::engine::{aggregate_exact, AggregateFn, QueryEngine};
use ats_query::metrics::{error_report, QueryError};
use ats_query::workload::{random_aggregate_queries, WorkloadConfig};

fn main() {
    println!("E9 / §5.2: SVDD vs uniform sampling at equal space, phone2000\n");
    let dataset = phone2000();
    let x = dataset.matrix();
    let (n, m) = x.shape();
    let queries = random_aggregate_queries(n, m, &WorkloadConfig::default()).expect("workload");

    let mut table = ResultTable::new(
        "aggregate avg-queries: mean Q_err% (50 queries, ~10% of cells each)",
        &["s%", "svdd", "sampling", "svdd_rmspe%", "sampling_rmspe%"],
    );

    for pct in [2.0, 5.0, 10.0, 20.0] {
        let budget = SpaceBudget::from_percent(pct);
        let svdd = SvddCompressed::compress(x, &SvddOptions::new(budget)).expect("svdd");
        let sample = SampleCompressed::compress_budget(x, budget, 777).expect("sample");

        let mean_qerr = |engine: &QueryEngine| -> f64 {
            queries
                .iter()
                .map(|q| {
                    let exact = aggregate_exact(x, q, AggregateFn::Avg).expect("exact");
                    let approx = engine.aggregate(q, AggregateFn::Avg).expect("approx");
                    QueryError::q_err(exact, approx)
                })
                .sum::<f64>()
                / queries.len() as f64
        };
        // For sampling, use its Horvitz–Thompson estimator (its honest
        // aggregate path) rather than cell-by-cell reconstruction.
        let sample_qerr = queries
            .iter()
            .map(|q| {
                let rows: Vec<usize> = q.rows.to_vec(n);
                let cols: Vec<usize> = q.cols.to_vec(m);
                let exact = aggregate_exact(x, q, AggregateFn::Avg).expect("exact");
                QueryError::q_err(exact, sample.estimate_avg(&rows, &cols))
            })
            .sum::<f64>()
            / queries.len() as f64;

        let e_svdd = QueryEngine::new(&svdd);
        table.row(vec![
            fmt(pct, 0),
            fmt(mean_qerr(&e_svdd) * 100.0, 4),
            fmt(sample_qerr * 100.0, 4),
            fmt(error_report(x, &svdd).expect("r").rmspe * 100.0, 3),
            fmt(error_report(x, &sample).expect("r").rmspe * 100.0, 3),
        ]);
    }
    table.emit("sampling_vs_svdd");

    // Cell queries: sampling has no answer for unsampled rows.
    let budget = SpaceBudget::from_percent(10.0);
    let svdd = SvddCompressed::compress(x, &SvddOptions::new(budget)).expect("svdd");
    let sample = SampleCompressed::compress_budget(x, budget, 777).expect("sample");
    let r_svdd = error_report(x, &svdd).expect("r");
    let r_sample = error_report(x, &sample).expect("r");
    println!(
        "cell queries @ 10% space: RMSPE svdd {:.2}% vs sampling {:.2}% —\n\
         sampling cannot reconstruct individual cells (§5.2), SVDD can.",
        r_svdd.rmspe * 100.0,
        r_sample.rmspe * 100.0
    );
}
