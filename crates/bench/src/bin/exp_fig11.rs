//! E7 — Figure 11: scatter plots of `phone2000` and `stocks` in
//! 2-d SVD space (Appendix A).
//!
//! ```sh
//! cargo run -p ats-bench --release --bin exp_fig11
//! ```
//!
//! Writes the scatter coordinates as CSV (for external plotting) and
//! renders terminal previews. Expected shape: phone points bunched near
//! the origin with a few huge-volume "distractions"; stock points strung
//! along the first principal axis.

use ats_bench::{phone2000, results_dir, stocks};
use ats_core::viz::{ascii_scatter, project_2d};
use std::fmt::Write as _;

fn emit(name: &str, pts: &[(f64, f64)]) {
    println!("-- {name}: {} points --", pts.len());
    println!("{}", ascii_scatter(pts, 76, 22));
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let mut csv = String::from("pc1,pc2\n");
    for (x, y) in pts {
        let _ = writeln!(csv, "{x},{y}");
    }
    let path = dir.join(format!("fig11_{name}.csv"));
    std::fs::write(&path, csv).expect("write csv");
    println!("[written {}]\n", path.display());
}

fn spread_stats(pts: &[(f64, f64)]) -> (f64, f64) {
    let sx: f64 = pts.iter().map(|p| p.0 * p.0).sum::<f64>().sqrt();
    let sy: f64 = pts.iter().map(|p| p.1 * p.1).sum::<f64>().sqrt();
    (sx, sy)
}

fn main() {
    println!("E7 / Figure 11: datasets in 2-d SVD space\n");

    let phone = phone2000();
    let pts = project_2d(phone.matrix()).expect("svd");
    emit("phone2000", &pts);

    let st = stocks();
    let pts2 = project_2d(st.matrix()).expect("svd");
    emit("stocks", &pts2);

    let (px, py) = spread_stats(&pts);
    let (sx, sy) = spread_stats(&pts2);
    println!("axis energy (||PC1|| vs ||PC2||):");
    println!(
        "  phone2000: {px:10.0} vs {py:10.0}  (ratio {:.1})",
        px / py.max(1e-9)
    );
    println!(
        "  stocks:    {sx:10.0} vs {sy:10.0}  (ratio {:.1})",
        sx / sy.max(1e-9)
    );
    println!(
        "\nexpected: stocks ratio ≫ phone ratio — 'most of the points are very\n\
         close to the horizontal axis' for stocks (Appendix A), while phone\n\
         has a dense near-origin mass plus Zipf outliers."
    );
}
