//! E3 — Figure 8: rank-ordered absolute cell-error distribution for
//! plain SVD on `phone2000` at 10% storage.
//!
//! ```sh
//! cargo run -p ats-bench --release --bin exp_fig8
//! ```
//!
//! Expected shape (paper §5.1): a steep initial drop on a log scale —
//! only a few cells suffer anywhere near the worst-case error, and the
//! median error is one or two orders of magnitude below the mean. That
//! tail is exactly what SVDD's deltas buy back.

use ats_bench::{fmt, phone2000, ResultTable};
use ats_common::Summary;
use ats_compress::{SpaceBudget, SvdCompressed};
use ats_query::metrics::{error_report, error_spectrum};

fn main() {
    println!("E3 / Figure 8: error distribution, plain SVD, phone2000 @ 10%\n");
    let dataset = phone2000();
    let x = dataset.matrix();
    let budget = SpaceBudget::from_percent(10.0);
    let svd = SvdCompressed::compress_budget(x, budget, 1).expect("svd");
    println!("k = {} principal components (paper: k = 31)\n", svd.k());

    let spectrum = error_spectrum(x, &svd, 50_000).expect("spectrum");

    let mut table = ResultTable::new(
        "Fig. 8 — absolute error by rank (log spacing)",
        &["rank", "abs_error"],
    );
    let mut rank = 1usize;
    while rank <= spectrum.len() {
        table.row(vec![rank.to_string(), fmt(spectrum[rank - 1], 6)]);
        rank = if rank < 10 {
            rank + 3
        } else {
            (rank as f64 * 1.8).round() as usize
        };
    }
    if let Some(last) = spectrum.last() {
        table.row(vec![spectrum.len().to_string(), fmt(*last, 6)]);
    }
    table.emit("fig8_spectrum");

    // The median-vs-mean observation under Fig. 8.
    let summary = Summary::from_values(spectrum.iter().copied());
    let report = error_report(x, &svd).expect("report");
    println!(
        "worst error {:.3}; among the top-50k cells: mean {:.4}, median {:.4}",
        report.max_abs_error,
        summary.mean(),
        summary.median()
    );
    println!(
        "mean abs error over ALL cells {:.5} — the tail is thin: {}x drop across\n\
         the first 1000 ranks (paper: 'steep initial drop ... only a few points\n\
         suffer an error anywhere close to the worst-case bound')",
        report.mean_abs_error,
        fmt(
            spectrum[0] / spectrum[999.min(spectrum.len() - 1)].max(1e-12),
            1
        ),
    );
}
