//! E2 — Table 3 + Figure 7: worst-case single-cell error vs storage,
//! SVD vs SVDD, on `phone2000`.
//!
//! ```sh
//! cargo run -p ats-bench --release --bin exp_table3_fig7
//! ```
//!
//! Expected shape (paper §5.1): plain SVD's worst-case normalized error
//! is enormous (hundreds of %) even where its RMSPE looks fine; SVDD
//! bounds it to a few %, "astoundingly" better.

use ats_bench::{fmt, phone2000, ResultTable};
use ats_compress::{SpaceBudget, SvdCompressed, SvddCompressed, SvddOptions};
use ats_query::metrics::error_report;

fn main() {
    println!("E2 / Table 3 + Fig. 7: worst-case error vs storage, phone2000\n");
    let dataset = phone2000();
    let x = dataset.matrix();

    let mut table = ResultTable::new(
        "Table 3 — worst-case error, phone2000",
        &["s%", "svd_abs", "svdd_abs", "svd_norm%", "svdd_norm%"],
    );

    for pct in [5.0, 10.0, 15.0, 20.0, 25.0] {
        let budget = SpaceBudget::from_percent(pct);
        let svd = SvdCompressed::compress_budget(x, budget, 1).expect("svd");
        let svdd = SvddCompressed::compress(x, &SvddOptions::new(budget)).expect("svdd");
        let r_svd = error_report(x, &svd).expect("report");
        let r_svdd = error_report(x, &svdd).expect("report");
        table.row(vec![
            fmt(pct, 0),
            fmt(r_svd.max_abs_error, 3),
            fmt(r_svdd.max_abs_error, 3),
            fmt(r_svd.max_normalized_error * 100.0, 1),
            fmt(r_svdd.max_normalized_error * 100.0, 2),
        ]);
    }
    table.emit("table3_fig7");
    println!(
        "paper's phone2000 row at 10%: SVD 328.9% vs SVDD 6.86% — check the\n\
         svd_norm%/svdd_norm% columns for the same two-orders-of-magnitude gap."
    );
}
