//! E4 — Figure 9: aggregate-query error vs space, SVDD, on `phone2000`.
//!
//! ```sh
//! cargo run -p ats-bench --release --bin exp_fig9
//! ```
//!
//! The paper's protocol (§5.2): 50 random `avg` queries whose row/column
//! selections cover ≈10% of the cells; report the mean normalized query
//! error `Q_err` (Eq. 14) per storage size, next to the single-cell
//! RMSPE for comparison. Expected shape: aggregate errors well below the
//! RMSPE curve (errors cancel), ≲0.5% at s=2%.

use ats_bench::{fmt, phone2000, ResultTable};
use ats_compress::{SpaceBudget, SvddCompressed, SvddOptions};
use ats_query::engine::{aggregate_exact, AggregateFn, QueryEngine};
use ats_query::metrics::{error_report, QueryError};
use ats_query::workload::{random_aggregate_queries, WorkloadConfig};

fn main() {
    println!("E4 / Figure 9: aggregate (avg) query error vs space, phone2000\n");
    let dataset = phone2000();
    let x = dataset.matrix();
    let (n, m) = x.shape();

    let queries = random_aggregate_queries(n, m, &WorkloadConfig::default()).expect("workload");
    println!(
        "{} random avg-queries, each covering ~10% of cells\n",
        queries.len()
    );

    let mut table = ResultTable::new(
        "Fig. 9 — mean Q_err vs space (SVDD)",
        &["s%", "qerr_avg%", "qerr_max%", "rmspe%"],
    );

    for pct in [1.0, 2.0, 3.0, 5.0, 7.5, 10.0, 15.0, 20.0] {
        let budget = SpaceBudget::from_percent(pct);
        let Ok(svdd) = SvddCompressed::compress(x, &SvddOptions::new(budget)) else {
            table.row(vec![fmt(pct, 1), "-".into(), "-".into(), "-".into()]);
            continue;
        };
        let engine = QueryEngine::new(&svdd);
        let mut total = 0.0;
        let mut worst = 0.0f64;
        for q in &queries {
            let exact = aggregate_exact(x, q, AggregateFn::Avg).expect("exact");
            let approx = engine.aggregate(q, AggregateFn::Avg).expect("approx");
            let e = QueryError::q_err(exact, approx);
            total += e;
            worst = worst.max(e);
        }
        let mean_qerr = total / queries.len() as f64;
        let rmspe = error_report(x, &svdd).expect("report").rmspe;
        table.row(vec![
            fmt(pct, 1),
            fmt(mean_qerr * 100.0, 4),
            fmt(worst * 100.0, 4),
            fmt(rmspe * 100.0, 3),
        ]);
    }
    table.emit("fig9_aggregate");
    println!(
        "expected: qerr_avg well under rmspe at every s (errors cancel when\n\
         cells are aggregated, §5.2), and well under 1% by s=2%."
    );
}
