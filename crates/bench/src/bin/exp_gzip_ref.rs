//! E8 — §5.1's lossless reference: "the Lempel-Ziv (gzip) algorithm had
//! a space requirement of s ≈ 25% for both datasets".
//!
//! ```sh
//! cargo run -p ats-bench --release --bin exp_gzip_ref
//! ```
//!
//! Compresses both experiment datasets with the from-scratch
//! LZSS+Huffman coder (`ats_compress::lz`), in the two representations a
//! warehouse would store: text (CSV, what the paper gzipped) and raw
//! binary doubles. Also verifies the round trip.

use ats_bench::{fmt, phone2000, stocks, ResultTable};
use ats_compress::lz;
use ats_data::Dataset;
use std::fmt::Write as _;

fn csv_bytes(d: &Dataset) -> Vec<u8> {
    let mut s = String::new();
    for row in d.matrix().iter_rows() {
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "{v}");
        }
        s.push('\n');
    }
    s.into_bytes()
}

fn f64_bytes(d: &Dataset) -> Vec<u8> {
    let mut out = Vec::with_capacity(d.rows() * d.cols() * 8);
    for v in d.matrix().as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn main() {
    println!("E8 / §5.1 gzip reference: lossless LZ space requirement\n");
    let mut table = ResultTable::new(
        "LZSS+Huffman space requirement",
        &["dataset", "form", "raw_KB", "lz_KB", "s%"],
    );

    for d in [phone2000(), stocks()] {
        for (form, bytes) in [("csv", csv_bytes(&d)), ("f64", f64_bytes(&d))] {
            let compressed = lz::compress(&bytes);
            assert_eq!(
                lz::decompress(&compressed).expect("roundtrip"),
                bytes,
                "lossless round trip must hold"
            );
            table.row(vec![
                d.name().to_string(),
                form.to_string(),
                (bytes.len() / 1024).to_string(),
                (compressed.len() / 1024).to_string(),
                fmt(100.0 * compressed.len() as f64 / bytes.len() as f64, 1),
            ]);
        }
    }
    table.emit("gzip_reference");
    println!(
        "paper: s ≈ 25% for gzip on both datasets; the csv rows are the\n\
         comparable representation. And unlike every other method here, a\n\
         single-cell read from this form requires decompressing everything —\n\
         which is §2.1's argument for lossy, random-access compression."
    );
}
