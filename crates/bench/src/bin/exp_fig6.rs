//! E1 — Figure 6: reconstruction error (RMSPE) vs disk storage (s%)
//! for clustering, DCT, SVD, and SVDD, on `phone2000` and `stocks`.
//!
//! ```sh
//! cargo run -p ats-bench --release --bin exp_fig6
//! ```
//!
//! Expected shape (paper §5.1): SVDD strictly best everywhere; DCT worst
//! on phone data but competitive on stocks; SVD ≈ clustering in between;
//! SVDD ≡ SVD at very small s (k_opt = k_max, no deltas).

use ats_bench::{fmt, phone2000, stocks, ResultTable};
use ats_compress::cluster::{ClusterAlgo, ClusterCompressed};
use ats_compress::dct::DctCompressed;
use ats_compress::{CompressedMatrix, SpaceBudget, SvdCompressed, SvddCompressed, SvddOptions};
use ats_data::Dataset;
use ats_query::metrics::error_report;

fn rmspe(x: &ats_linalg::Matrix, c: &dyn CompressedMatrix) -> f64 {
    error_report(x, c).expect("dims match").rmspe
}

fn run(dataset: &Dataset, csv_name: &str) {
    let x = dataset.matrix();
    let (n, m) = x.shape();
    println!(
        "\ndataset {}: N={n}, M={m}, sigma={:.2}",
        dataset.name(),
        dataset.std_dev()
    );

    let mut table = ResultTable::new(
        format!("Fig. 6 — RMSPE vs space, {}", dataset.name()),
        &["s%", "hc", "dct", "svd", "svdd", "svdd_k", "svdd_deltas"],
    );

    for pct in [1.0, 2.0, 3.0, 5.0, 7.5, 10.0, 15.0, 20.0, 25.0] {
        let budget = SpaceBudget::from_percent(pct);

        let hc = ClusterCompressed::compress_budget(x, budget, ClusterAlgo::Hierarchical)
            .map(|c| rmspe(x, &c));
        let dct = DctCompressed::compress_budget(x, budget).map(|c| rmspe(x, &c));
        let svd = SvdCompressed::compress_budget(x, budget, 1).map(|c| rmspe(x, &c));
        let svdd = SvddCompressed::compress(x, &SvddOptions::new(budget));

        let (svdd_err, svdd_k, svdd_d) = match &svdd {
            Ok(c) => (
                fmt(rmspe(x, c) * 100.0, 3),
                c.k_opt().to_string(),
                c.num_deltas().to_string(),
            ),
            Err(_) => ("-".into(), "-".into(), "-".into()),
        };
        let cell = |r: Result<f64, _>| match r {
            Ok(v) => fmt(v * 100.0, 3),
            Err(_) => "-".into(),
        };
        table.row(vec![
            fmt(pct, 1),
            cell(hc),
            cell(dct),
            cell(svd),
            svdd_err,
            svdd_k,
            svdd_d,
        ]);
    }
    table.emit(csv_name);
}

fn main() {
    println!("E1 / Figure 6: accuracy vs space trade-off (errors in % RMSPE)");
    run(&phone2000(), "fig6_phone2000");
    run(&stocks(), "fig6_stocks");
}
