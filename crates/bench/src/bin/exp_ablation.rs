//! Ablations beyond the paper's tables: the design choices DESIGN.md
//! calls out, measured.
//!
//! ```sh
//! cargo run -p ats-bench --release --bin exp_ablation
//! ```
//!
//! 1. **f32-quantized factors** (b=4) vs f64 (b=8) at equal byte budget
//!    — does halving precision to double `k` pay off?
//! 2. **Haar DWT** vs DCT as the fixed-basis spectral baseline, on both
//!    datasets (wavelets vs "spikes or abrupt jumps", §2.3).
//! 3. **Bloom filter** in front of the delta table: measured fraction of
//!    non-outlier probes short-circuited (§4.2's "save several probes").
//! 4. **Lanczos vs dense QL** for pass 1's top-k eigenpairs: time and
//!    agreement at M = 366.

use ats_bench::{fmt, phone2000, stocks, timed, ResultTable};
use ats_common::BloomFilter;
use ats_compress::dct::DctCompressed;
use ats_compress::dwt::DwtCompressed;
use ats_compress::gram::compute_gram;
use ats_compress::quantized::QuantizedSvd;
use ats_compress::{SpaceBudget, SvdCompressed};
use ats_linalg::{lanczos_top_k, sym_eigen, LanczosOptions};
use ats_query::metrics::error_report;

fn main() {
    println!("Ablations (extensions beyond the paper's tables)\n");
    quantized_vs_f64();
    dwt_vs_dct();
    bloom_probe_savings();
    lanczos_vs_dense();
}

fn quantized_vs_f64() {
    let dataset = phone2000();
    let x = dataset.matrix();
    let mut table = ResultTable::new(
        "A1 — f32-quantized SVD vs f64 SVD at equal bytes (phone2000)",
        &["s%", "k_f64", "rmspe_f64%", "k_f32", "rmspe_f32%"],
    );
    for pct in [2.0, 5.0, 10.0, 20.0] {
        let budget = SpaceBudget::from_percent(pct);
        let f = SvdCompressed::compress_budget(x, budget, 1).expect("svd");
        let q = QuantizedSvd::compress_budget(x, budget, 1).expect("qsvd");
        table.row(vec![
            fmt(pct, 0),
            f.k().to_string(),
            fmt(error_report(x, &f).expect("r").rmspe * 100.0, 3),
            q.k().to_string(),
            fmt(error_report(x, &q).expect("r").rmspe * 100.0, 3),
        ]);
    }
    table.emit("ablation_quantized");
}

fn dwt_vs_dct() {
    let mut table = ResultTable::new(
        "A2 — Haar DWT vs DCT (fixed spectral bases), RMSPE%",
        &["dataset", "s%", "dct", "dwt"],
    );
    for d in [phone2000(), stocks()] {
        let x = d.matrix();
        for pct in [5.0, 10.0, 25.0] {
            let budget = SpaceBudget::from_percent(pct);
            let dct = DctCompressed::compress_budget(x, budget).expect("dct");
            let dwt = DwtCompressed::compress_budget(x, budget).expect("dwt");
            table.row(vec![
                d.name().to_string(),
                fmt(pct, 0),
                fmt(error_report(x, &dct).expect("r").rmspe * 100.0, 3),
                fmt(error_report(x, &dwt).expect("r").rmspe * 100.0, 3),
            ]);
        }
    }
    table.emit("ablation_dwt_dct");
}

fn bloom_probe_savings() {
    // How many hash-table probes does the Bloom filter avoid for
    // non-outlier cells, at realistic outlier densities?
    let mut table = ResultTable::new(
        "A3 — Bloom filter short-circuit rate on non-outlier probes",
        &["outliers", "bits", "hashes", "fp_rate%", "probes_avoided%"],
    );
    for outliers in [1_000usize, 15_000, 100_000] {
        let bf = {
            let mut bf = BloomFilter::with_capacity(outliers, 0.01);
            for i in 0..outliers as u64 {
                bf.insert(i * 37 + 5);
            }
            bf
        };
        let misses = 200_000u64;
        let avoided = (0..misses)
            .map(|i| i * 37 + 6) // guaranteed absent
            .filter(|&k| !bf.contains(k))
            .count();
        table.row(vec![
            outliers.to_string(),
            bf.nbits().to_string(),
            bf.num_hashes().to_string(),
            fmt(bf.estimated_fp_rate() * 100.0, 3),
            fmt(100.0 * avoided as f64 / misses as f64, 2),
        ]);
    }
    table.emit("ablation_bloom");
}

fn lanczos_vs_dense() {
    let dataset = phone2000();
    let c = compute_gram(dataset.matrix()).expect("gram");
    let mut table = ResultTable::new(
        "A4 — top-k eigensolver: dense QL vs Lanczos (M = 366)",
        &["k", "dense_s", "lanczos_s", "max_rel_diff"],
    );
    let (dense, dense_s) = timed(|| sym_eigen(&c).expect("dense"));
    for k in [4usize, 16, 37] {
        let (top, lz_s) =
            timed(|| lanczos_top_k(&c, k, LanczosOptions::default()).expect("lanczos"));
        let mut worst = 0.0f64;
        for j in 0..k {
            worst = worst.max((top.values[j] - dense.values[j]).abs() / dense.values[0]);
        }
        table.row(vec![
            k.to_string(),
            fmt(dense_s, 3),
            fmt(lz_s, 3),
            format!("{worst:.2e}"),
        ]);
    }
    table.emit("ablation_lanczos");
    println!(
        "(dense time is the one full decomposition both columns share; Lanczos\n\
         wins when k ≪ M and the matrix-vector products dominate)"
    );
}
