//! Cell-reconstruction latency: the paper's core efficiency claim.
//!
//! §4.1: reconstruction "requires O(k) compute time, independent of N
//! and M". This bench measures cell reconstruction across `k` (should
//! scale linearly) and across `N` at fixed `k` (should be flat), plus
//! whole-row reconstruction and the SVDD delta-probe overhead.

// ats-lint: allow(lint-table) — criterion_group! generates undocumented glue fns; scoped to this bench target
#![allow(missing_docs)]

use ats_compress::{CompressedMatrix, SpaceBudget, SvdCompressed, SvddCompressed, SvddOptions};
use ats_linalg::Matrix;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

fn structured(n: usize, m: usize, seed: u64) -> Matrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut x = Matrix::from_fn(n, m, |i, j| {
        ((i % 7) + 1) as f64 * if j % 7 < 5 { 2.0 } else { 0.3 }
    });
    for v in x.as_mut_slice() {
        *v *= rng.gen_range(0.8..1.2);
    }
    x
}

fn bench_cell_vs_k(c: &mut Criterion) {
    let x = structured(2000, 128, 1);
    let mut group = c.benchmark_group("cell_reconstruction_vs_k");
    for k in [1usize, 4, 16, 64] {
        let svd = SvdCompressed::compress(&x, k, 1).expect("svd");
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 997) % 2000;
                black_box(svd.cell(i, i % 128).expect("cell"))
            })
        });
    }
    group.finish();
}

fn bench_cell_vs_n(c: &mut Criterion) {
    // O(k) must be independent of N: same k, growing N.
    let mut group = c.benchmark_group("cell_reconstruction_vs_n");
    for n in [500usize, 2000, 8000] {
        let x = structured(n, 64, 2);
        let svd = SvdCompressed::compress(&x, 8, 1).expect("svd");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 997) % n;
                black_box(svd.cell(i, i % 64).expect("cell"))
            })
        });
    }
    group.finish();
}

fn bench_row_reconstruction(c: &mut Criterion) {
    let x = structured(2000, 366, 3);
    let svd = SvdCompressed::compress(&x, 16, 1).expect("svd");
    let mut out = vec![0.0; 366];
    c.bench_function("row_reconstruction_m366_k16", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 997) % 2000;
            svd.row_into(i, &mut out).expect("row");
            black_box(out[0])
        })
    });
}

fn bench_svdd_probe_overhead(c: &mut Criterion) {
    let x = structured(2000, 128, 4);
    let budget = SpaceBudget::from_percent(10.0);
    let svdd = SvddCompressed::compress(&x, &SvddOptions::new(budget)).expect("svdd");
    let svd = SvdCompressed::compress(&x, svdd.k_opt(), 1).expect("svd");
    let mut group = c.benchmark_group("svdd_delta_probe_overhead");
    group.bench_function("plain_svd", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 997) % 2000;
            black_box(svd.cell(i, i % 128).expect("cell"))
        })
    });
    group.bench_function("svdd_with_probe", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 997) % 2000;
            black_box(svdd.cell(i, i % 128).expect("cell"))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cell_vs_k,
    bench_cell_vs_n,
    bench_row_reconstruction,
    bench_svdd_probe_overhead
);
criterion_main!(benches);
