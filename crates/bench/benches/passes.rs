//! Streaming-pass throughput and the SVDD 3-pass-vs-naive ablation.
//!
//! - pass-1 Gram accumulation (Fig. 2), serial vs crossbeam-parallel;
//! - full plain-SVD 2-pass build;
//! - the paper's headline algorithmic win: the 3-pass SVDD (Fig. 5)
//!   against the straightforward `3·k_max`-pass algorithm (Fig. 4);
//! - thread scaling of the whole SVDD build (passes 2 and 3 dominate
//!   once pass 1 is parallel) at 1/2/4/8 workers.

// ats-lint: allow(lint-table) — criterion_group! generates undocumented glue fns; scoped to this bench target
#![allow(missing_docs)]

use ats_compress::gram::{compute_gram, compute_gram_parallel};
use ats_compress::{SpaceBudget, SvdCompressed, SvddCompressed, SvddOptions};
use ats_linalg::Matrix;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn structured(n: usize, m: usize) -> Matrix {
    Matrix::from_fn(n, m, |i, j| {
        ((i % 7) + 1) as f64 * if j % 7 < 5 { 2.0 } else { 0.3 }
    })
}

fn bench_gram(c: &mut Criterion) {
    let x = structured(5_000, 128);
    let mut group = c.benchmark_group("gram_pass1");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| black_box(compute_gram(&x).expect("gram")))
    });
    for threads in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| black_box(compute_gram_parallel(&x, t).expect("gram")))
        });
    }
    group.finish();
}

fn bench_svd_build(c: &mut Criterion) {
    let x = structured(2_000, 128);
    let mut group = c.benchmark_group("svd_two_pass_build");
    group.sample_size(10);
    for k in [8usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(SvdCompressed::compress(&x, k, 1).expect("svd")))
        });
    }
    group.finish();
}

fn bench_svdd_three_pass_vs_naive(c: &mut Criterion) {
    // Small enough that the naive 3·k_max-pass variant finishes, large
    // enough that the gap is visible.
    let x = structured(600, 64);
    let opts = SvddOptions::new(SpaceBudget::from_percent(15.0));
    let mut group = c.benchmark_group("svdd_build");
    group.sample_size(10);
    group.bench_function("three_pass_fig5", |b| {
        b.iter(|| black_box(SvddCompressed::compress(&x, &opts).expect("svdd")))
    });
    group.bench_function("naive_fig4", |b| {
        b.iter(|| black_box(SvddCompressed::compress_naive(&x, &opts).expect("svdd")))
    });
    group.finish();
}

/// Full-spectrum input for the SVDD scaling bench. `structured` is exactly
/// rank 1, which collapses the candidate-k list to a point and makes the
/// pass-2 error sweep trivially cheap; mixing incommensurate waves keeps
/// every principal direction alive so the sweep does representative work.
fn wavy(n: usize, m: usize) -> Matrix {
    Matrix::from_fn(n, m, |i, j| {
        let (i, j) = (i as f64, j as f64);
        (i * 0.37).sin() * (j * 0.53).cos() + (i * j * 0.011).sin() + (i * 0.05 + j * 0.91).cos()
    })
}

fn bench_svdd_thread_scaling(c: &mut Criterion) {
    // Pass-2/3 scaling: 4096×64 keeps pass 1 (64×64 Gram + eigen) cheap,
    // so the timing is dominated by the row-partitioned error sweep and
    // U emission the thread knob actually spreads out.
    let x = wavy(4_096, 64);
    let mut group = c.benchmark_group("svdd_build_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let mut opts = SvddOptions::new(SpaceBudget::from_percent(15.0));
        opts.threads = threads;
        group.bench_with_input(BenchmarkId::from_parameter(threads), &opts, |b, opts| {
            b.iter(|| black_box(SvddCompressed::compress(&x, opts).expect("svdd")))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gram,
    bench_svd_build,
    bench_svdd_three_pass_vs_naive,
    bench_svdd_thread_scaling
);
criterion_main!(benches);
