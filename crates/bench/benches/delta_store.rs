//! Delta-store probe cost: the §4.2 Bloom-filter ablation.
//!
//! The paper suggests the Bloom filter "would predict the majority of
//! non-outliers, and thus save several probes into the hash table".
//! Measured here: hit and miss probes with and without the filter, at
//! outlier densities bracketing real SVDD stores.

// ats-lint: allow(lint-table) — criterion_group! generates undocumented glue fns; scoped to this bench target
#![allow(missing_docs)]

use ats_compress::delta::DeltaStore;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

const COLS: usize = 366;

fn build(outliers: usize, bloom: bool) -> DeltaStore {
    DeltaStore::build(
        COLS,
        (0..outliers).map(|i| (i * 7 / COLS, (i * 7) % COLS, i as f64)),
        bloom,
    )
    .expect("delta store")
}

fn bench_miss_probes(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_probe_miss");
    for &outliers in &[1_000usize, 50_000] {
        for &bloom in &[false, true] {
            let store = build(outliers, bloom);
            let label = format!("{outliers}_{}", if bloom { "bloom" } else { "nobloom" });
            group.bench_with_input(BenchmarkId::from_parameter(label), &store, |b, s| {
                let mut i = 1_000_000usize; // guaranteed misses
                b.iter(|| {
                    i += 1;
                    black_box(s.probe(i, i % COLS))
                })
            });
        }
    }
    group.finish();
}

fn bench_hit_probes(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_probe_hit");
    for &bloom in &[false, true] {
        let store = build(50_000, bloom);
        let label = if bloom { "bloom" } else { "nobloom" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &store, |b, s| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7) % 50_000;
                black_box(s.probe(i * 7 / COLS, (i * 7) % COLS))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_miss_probes, bench_hit_probes);
criterion_main!(benches);
