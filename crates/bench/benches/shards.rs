//! Sharded-store scaling: cell routing and aggregate fan-out latency as
//! the shard count grows, against the same dataset and budget. The build
//! is bit-identical at every shard count (the sharded three-pass build
//! chooses `k_opt` and the delta set globally), so any latency difference
//! is pure serving overhead: per-shard pagers, routing, and the
//! shard-order merge of aggregate partials.

// ats-lint: allow(lint-table) — criterion_group! generates undocumented glue fns; scoped to this bench target
#![allow(missing_docs)]

use ats_compress::SpaceBudget;
use ats_core::store::{Method, SequenceStore};
use ats_linalg::Matrix;
use ats_query::engine::AggregateFn;
use ats_query::selection::{Axis, Selection};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

const SHARD_COUNTS: [usize; 3] = [1, 4, 8];

fn dataset() -> Matrix {
    Matrix::from_fn(2_000, 128, |i, j| {
        ((i % 7) + 1) as f64 * if j % 7 < 5 { 2.0 } else { 0.3 }
    })
}

/// Build, save, and reopen one store per shard count (pool split across
/// shards at open, exactly as production serving does).
fn opened_stores(pool_pages: usize) -> Vec<(usize, SequenceStore, tempdir::Keep)> {
    let x = dataset();
    SHARD_COUNTS
        .iter()
        .map(|&r| {
            let dir = tempdir::Keep::new(&format!("ats-bench-shards-{r}"));
            let built = SequenceStore::builder()
                .method(Method::Svdd)
                .budget(SpaceBudget::from_percent(10.0))
                .threads(4)
                .shards(r)
                .build(&x)
                .expect("build");
            built.save(dir.path()).expect("save");
            let store = SequenceStore::open(dir.path(), pool_pages).expect("open");
            (r, store, dir)
        })
        .collect()
}

fn bench_sharded_cell(c: &mut Criterion) {
    let stores = opened_stores(4_096);
    let mut group = c.benchmark_group("sharded_cell");
    for (r, store, _dir) in &stores {
        group.bench_with_input(BenchmarkId::from_parameter(r), store, |b, store| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 997) % 2_000;
                black_box(store.cell(i, i % 128).expect("cell"))
            })
        });
    }
    group.finish();
}

fn bench_sharded_aggregate(c: &mut Criterion) {
    let stores = opened_stores(4_096);
    let sel = Selection {
        rows: Axis::All,
        cols: Axis::Range(0, 64),
    };
    let mut group = c.benchmark_group("sharded_aggregate_avg_all_rows");
    group.sample_size(10);
    for (r, store, _dir) in &stores {
        group.bench_with_input(BenchmarkId::from_parameter(r), store, |b, store| {
            b.iter(|| black_box(store.aggregate(&sel, AggregateFn::Avg).expect("agg")))
        });
    }
    group.finish();
}

/// Tiny per-shard pools: worst case for routing, every shard churns.
fn bench_sharded_cell_churning_pool(c: &mut Criterion) {
    let stores = opened_stores(32);
    let mut group = c.benchmark_group("sharded_cell_churning_pool");
    for (r, store, _dir) in &stores {
        group.bench_with_input(BenchmarkId::from_parameter(r), store, |b, store| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 997) % 2_000;
                black_box(store.cell(i, i % 128).expect("cell"))
            })
        });
    }
    group.finish();
}

/// Minimal self-cleaning temp-dir holder (no external crates).
mod tempdir {
    pub struct Keep(std::path::PathBuf);

    impl Keep {
        pub fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!("{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&p);
            Keep(p)
        }

        pub fn path(&self) -> &std::path::Path {
            &self.0
        }
    }

    impl Drop for Keep {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

criterion_group!(
    benches,
    bench_sharded_cell,
    bench_sharded_aggregate,
    bench_sharded_cell_churning_pool
);
criterion_main!(benches);
