//! LZ (LZSS + Huffman) throughput on warehouse-shaped byte streams.

// ats-lint: allow(lint-table) — criterion_group! generates undocumented glue fns; scoped to this bench target
#![allow(missing_docs)]

use ats_compress::lz;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn csv_corpus(rows: usize) -> Vec<u8> {
    let mut s = String::new();
    for i in 0..rows {
        s.push_str(&format!(
            "{},{},{},{},{},{}\n",
            i,
            i % 7,
            (i % 100) as f64 * 1.25,
            0,
            i * 3 % 997,
            "2026-07-05"
        ));
    }
    s.into_bytes()
}

fn bench_lz(c: &mut Criterion) {
    let input = csv_corpus(20_000);
    let compressed = lz::compress(&input);
    let mut group = c.benchmark_group("lz");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("compress_csv", |b| {
        b.iter(|| black_box(lz::compress(&input)))
    });
    group.throughput(Throughput::Bytes(compressed.len() as u64));
    group.bench_function("decompress_csv", |b| {
        b.iter(|| black_box(lz::decompress(&compressed).expect("roundtrip")))
    });
    group.finish();
}

criterion_group!(benches, bench_lz);
criterion_main!(benches);
