//! Eigensolver ablation: the production tridiagonal-QL path vs the
//! cyclic Jacobi oracle, across the `M` range the paper cares about
//! (`M` is "of the order of hundreds").

// ats-lint: allow(lint-table) — criterion_group! generates undocumented glue fns; scoped to this bench target
#![allow(missing_docs)]

use ats_linalg::{sym_eigen, sym_eigen_jacobi, Matrix};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

fn gram_like(m: usize, seed: u64) -> Matrix {
    // A realistic Gram matrix: XᵀX of a structured 4·m × m matrix.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let x = Matrix::from_fn(4 * m, m, |i, j| {
        ((i % 5) + 1) as f64 * if j % 7 < 5 { 1.0 } else { 0.2 } + rng.gen_range(-0.1..0.1)
    });
    x.gram()
}

fn bench_ql(c: &mut Criterion) {
    let mut group = c.benchmark_group("sym_eigen_ql");
    group.sample_size(10);
    for m in [64usize, 128, 256, 366] {
        let a = gram_like(m, 1);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(sym_eigen(&a).expect("eigen")))
        });
    }
    group.finish();
}

fn bench_jacobi(c: &mut Criterion) {
    let mut group = c.benchmark_group("sym_eigen_jacobi");
    group.sample_size(10);
    for m in [64usize, 128] {
        let a = gram_like(m, 1);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(sym_eigen_jacobi(&a).expect("eigen")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ql, bench_jacobi);
criterion_main!(benches);
