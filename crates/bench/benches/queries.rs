//! Query-engine latency: cell queries and aggregate queries of varying
//! selectivity over an SVDD-compressed matrix, plus the disk-backed
//! store's cached-read path.

// ats-lint: allow(lint-table) — criterion_group! generates undocumented glue fns; scoped to this bench target
#![allow(missing_docs)]

use ats_common::Result;
use ats_compress::{CompressedMatrix, SpaceBudget, SvddCompressed, SvddOptions};
use ats_core::disk::{save_svdd, DiskStore};
use ats_core::shard::ShardedStore;
use ats_core::store::SequenceStore;
use ats_linalg::Matrix;
use ats_query::engine::{AggregateFn, QueryEngine};
use ats_query::selection::{Axis, Selection};
use ats_query::BatchRequest;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn dataset() -> Matrix {
    Matrix::from_fn(2_000, 128, |i, j| {
        ((i % 7) + 1) as f64 * if j % 7 < 5 { 2.0 } else { 0.3 }
    })
}

fn bench_aggregate_selectivity(c: &mut Criterion) {
    let x = dataset();
    let svdd = SvddCompressed::compress(&x, &SvddOptions::new(SpaceBudget::from_percent(10.0)))
        .expect("svdd");
    let mut group = c.benchmark_group("aggregate_avg_by_rows_selected");
    group.sample_size(10);
    for rows in [10usize, 100, 1000] {
        let sel = Selection {
            rows: Axis::Range(0, rows),
            cols: Axis::Range(0, 64),
        };
        group.bench_with_input(BenchmarkId::from_parameter(rows), &sel, |b, sel| {
            let engine = QueryEngine::new(&svdd);
            b.iter(|| black_box(engine.aggregate(sel, AggregateFn::Avg).expect("agg")))
        });
    }
    group.finish();
}

fn bench_disk_store_cell(c: &mut Criterion) {
    let x = dataset();
    let svdd = SvddCompressed::compress(&x, &SvddOptions::new(SpaceBudget::from_percent(10.0)))
        .expect("svdd");
    let dir = std::env::temp_dir().join(format!("ats-bench-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    save_svdd(&dir, &svdd).expect("save");

    let mut group = c.benchmark_group("disk_store_cell");
    // Hot: pool big enough for everything — measures the cached path.
    let hot = DiskStore::open(&dir, 4_096).expect("open");
    group.bench_function("hot_cache", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 997) % 2000;
            black_box(hot.cell(i, i % 128).expect("cell"))
        })
    });
    // Cold-ish: tiny pool forces page churn (still OS-cached I/O).
    let cold = DiskStore::open(&dir, 4).expect("open");
    group.bench_function("churning_pool", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 997) % 2000;
            black_box(cold.cell(i, i % 128).expect("cell"))
        })
    });
    group.finish();
}

fn bench_in_memory_vs_disk_row(c: &mut Criterion) {
    let x = dataset();
    let svdd = SvddCompressed::compress(&x, &SvddOptions::new(SpaceBudget::from_percent(10.0)))
        .expect("svdd");
    let dir = std::env::temp_dir().join(format!("ats-bench-row-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    save_svdd(&dir, &svdd).expect("save");
    let disk = DiskStore::open(&dir, 4_096).expect("open");

    let mut group = c.benchmark_group("row_reconstruction_backends");
    let mut out = vec![0.0; 128];
    group.bench_function("in_memory", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 997) % 2000;
            svdd.row_into(i, &mut out).expect("row");
            black_box(out[0])
        })
    });
    group.bench_function("disk_backed", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 997) % 2000;
            disk.row_into(i, &mut out).expect("row");
            black_box(out[0])
        })
    });
    group.finish();
}

/// Forwards only the required trait methods (plus the shard layout), so
/// every batch entry point runs its default per-cell implementation —
/// the scalar baseline the blocked kernels are measured against.
struct ScalarOnly<'a>(&'a dyn CompressedMatrix);

impl CompressedMatrix for ScalarOnly<'_> {
    fn rows(&self) -> usize {
        self.0.rows()
    }
    fn cols(&self) -> usize {
        self.0.cols()
    }
    fn cell(&self, i: usize, j: usize) -> Result<f64> {
        self.0.cell(i, j)
    }
    fn storage_bytes(&self) -> usize {
        self.0.storage_bytes()
    }
    fn method_name(&self) -> &'static str {
        self.0.method_name()
    }
    fn shard_starts(&self) -> Vec<usize> {
        self.0.shard_starts()
    }
}

/// Build a saved SVDD store split into `shards` row-range shards and
/// reopen it disk-paged.
fn sharded_store(x: &Matrix, shards: usize, tag: &str) -> ShardedStore {
    let dir = std::env::temp_dir().join(format!("ats-bench-{tag}-{shards}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    SequenceStore::builder()
        .budget(SpaceBudget::from_percent(10.0))
        .shards(shards)
        .build(x)
        .expect("build")
        .save(&dir)
        .expect("save");
    ShardedStore::open(&dir, 4_096).expect("open")
}

fn bench_batch_cells(c: &mut Criterion) {
    let x = dataset();
    // 256 requests over 64 distinct rows: duplicated columns, unsorted
    // rows scattered across every shard.
    let cells: Vec<(usize, usize)> = (0..256usize)
        .map(|t| ((t * 37 % 64) * 31 % 2_000, t * 53 % 128))
        .collect();
    let req = BatchRequest::new(cells.clone());
    let mut group = c.benchmark_group("batch_cells");
    group.sample_size(10);
    for shards in [1usize, 4, 8] {
        let store = sharded_store(&x, shards, "batch");
        let engine = QueryEngine::new(&store);
        group.bench_with_input(BenchmarkId::new("batched", shards), &req, |b, req| {
            b.iter(|| black_box(engine.batch_cells(req).expect("batch")))
        });
        group.bench_with_input(
            BenchmarkId::new("per_cell_loop", shards),
            &cells,
            |b, cells| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for &(i, j) in cells {
                        acc += engine.cell(i, j).expect("cell");
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

fn bench_blocked_aggregate(c: &mut Criterion) {
    let x = dataset();
    let sel = Selection {
        rows: Axis::Range(0, 1_000),
        cols: Axis::Range(0, 128),
    };
    let mut group = c.benchmark_group("blocked_aggregate");
    group.sample_size(10);
    for shards in [1usize, 4, 8] {
        let store = sharded_store(&x, shards, "agg");
        group.bench_with_input(BenchmarkId::new("kernel", shards), &sel, |b, sel| {
            let engine = QueryEngine::new(&store);
            b.iter(|| black_box(engine.aggregate(sel, AggregateFn::Avg).expect("agg")))
        });
        let scalar = ScalarOnly(&store);
        group.bench_with_input(BenchmarkId::new("scalar", shards), &sel, |b, sel| {
            let engine = QueryEngine::new(&scalar);
            b.iter(|| black_box(engine.aggregate(sel, AggregateFn::Avg).expect("agg")))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_aggregate_selectivity,
    bench_disk_store_cell,
    bench_in_memory_vs_disk_row,
    bench_batch_cells,
    bench_blocked_aggregate
);
criterion_main!(benches);
