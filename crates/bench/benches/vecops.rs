//! Kernel-width microbenches: narrow dot/axpy vs the fused 4- and
//! 8-wide variants on identical data.
//!
//! The widened kernels exist to amortize the shared-operand stream
//! (`x` for axpy, `a` for dot) across independent lanes; these benches
//! make the claimed win (or parity, on narrow machines) measurable per
//! commit. The pinned `bench_report` binary samples the same kernels
//! into `BENCH_*.json`; this Criterion target is the interactive,
//! statistically sound view.

// ats-lint: allow(lint-table) — criterion_group! generates undocumented glue fns; scoped to this bench target
#![allow(missing_docs)]

use ats_linalg::vecops;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const LEN: usize = 4096;
const LANES: usize = 8;

fn lanes_data() -> (Vec<f64>, Vec<Vec<f64>>) {
    let a: Vec<f64> = (0..LEN).map(|i| (i as f64 * 0.37).sin()).collect();
    let bs: Vec<Vec<f64>> = (0..LANES)
        .map(|l| {
            (0..LEN)
                .map(|i| ((i + l * 17) as f64 * 0.21).cos())
                .collect()
        })
        .collect();
    (a, bs)
}

fn bench_dot_widths(c: &mut Criterion) {
    let (a, bs) = lanes_data();
    let mut group = c.benchmark_group("dot_width");
    group.throughput(Throughput::Elements((LANES * LEN) as u64));

    group.bench_function(BenchmarkId::from_parameter("narrow_x8"), |bch| {
        bch.iter(|| {
            let mut acc = 0.0;
            for b in &bs {
                acc += vecops::dot(black_box(&a), black_box(b));
            }
            acc
        })
    });
    group.bench_function(BenchmarkId::from_parameter("dot4_x2"), |bch| {
        bch.iter(|| {
            let lo = vecops::dot4(black_box(&a), &bs[0], &bs[1], &bs[2], &bs[3]);
            let hi = vecops::dot4(black_box(&a), &bs[4], &bs[5], &bs[6], &bs[7]);
            (lo, hi)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("dot8"), |bch| {
        bch.iter(|| {
            let refs: [&[f64]; 8] = std::array::from_fn(|l| bs[l].as_slice());
            vecops::dot8(black_box(&a), refs)
        })
    });
    group.finish();
}

fn bench_axpy_widths(c: &mut Criterion) {
    let (a, _) = lanes_data();
    let alpha: [f64; 8] = std::array::from_fn(|l| 0.5 + l as f64 * 0.125);
    let mut ys: Vec<Vec<f64>> = vec![vec![0.0; LEN]; LANES];
    let mut group = c.benchmark_group("axpy_width");
    group.throughput(Throughput::Elements((LANES * LEN) as u64));

    group.bench_function(BenchmarkId::from_parameter("narrow_x8"), |bch| {
        bch.iter(|| {
            for (l, y) in ys.iter_mut().enumerate() {
                vecops::axpy(alpha[l], black_box(&a), y);
            }
        })
    });
    group.bench_function(BenchmarkId::from_parameter("axpy8"), |bch| {
        bch.iter(|| {
            let mut it = ys.iter_mut();
            let mut refs: [&mut [f64]; 8] =
                std::array::from_fn(|_| it.next().map(|v| v.as_mut_slice()).expect("8 lanes"));
            vecops::axpy8(alpha, black_box(&a), &mut refs);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dot_widths, bench_axpy_widths);
criterion_main!(benches);
