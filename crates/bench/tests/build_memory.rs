//! Peak-heap regression test for the streaming build path.
//!
//! A 100 000 × 64 phone build from [`StreamingPhone`] must run in
//! memory proportional to the *outputs* (Gram matrix `M²`, the `N × k`
//! projection) plus an `O(chunk · M)` generation buffer — never the
//! `N × M` input matrix. A high-water-mark global allocator pins this:
//! if anyone reintroduces a full materialization (the old `ats gen`
//! bug), peak live bytes jump ~4× and this test fails.
//!
//! The allocator needs `unsafe impl GlobalAlloc`; the allow below scopes
//! that exemption to this test binary only.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ats_compress::SvdCompressed;
use ats_data::{PhoneConfig, StreamingPhone};

/// Tracks live heap bytes and their high-water mark.
struct HighWaterAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for HighWaterAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
        PEAK.fetch_max(live, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: HighWaterAlloc = HighWaterAlloc;

/// Single test so no sibling test thread can allocate concurrently and
/// pollute the high-water mark.
#[test]
fn streaming_build_peak_heap_stays_sublinear_in_input() {
    const N: usize = 100_000;
    const M: usize = 64;
    const K: usize = 6;

    let cfg = PhoneConfig {
        customers: N,
        days: M,
        ..PhoneConfig::default()
    };
    let src = StreamingPhone::new(cfg);

    // Reset the window: measure the high-water mark of the build alone,
    // relative to what is live right now.
    let baseline = LIVE.load(Ordering::SeqCst);
    PEAK.store(baseline, Ordering::SeqCst);

    let svd = SvdCompressed::compress(&src, K, 1).unwrap();

    let peak_delta = PEAK.load(Ordering::SeqCst).saturating_sub(baseline);

    // Sanity: the build really ran over all N rows.
    assert_eq!(svd.u().rows(), N);
    assert_eq!(svd.k(), K);

    let x_bytes = N * M * 8; // the input matrix we must never materialize
    let u_bytes = N * K * 8; // the N×k output we do hold
    assert!(
        peak_delta < x_bytes / 4,
        "peak live heap {peak_delta} B ≥ ¼ of the {x_bytes} B input — \
         the streaming build is materializing the matrix"
    );
    // And the bound is not vacuous: the output alone is a decent chunk
    // of the allowance, so the headroom above it is only a few MB.
    assert!(
        peak_delta < u_bytes + 8 * 1024 * 1024,
        "peak live heap {peak_delta} B exceeds U ({u_bytes} B) + 8 MiB scratch"
    );
}
