//! Out-of-core scale ladder: build from a streaming source at sizes the
//! in-memory path cannot touch, with a hard peak-RSS assertion.
//!
//! The default rung (1 M × 64, ~512 MB were it materialized) runs on
//! every `cargo test`; the 5 M and 10 M rungs are opt-in via
//! `ATS_SCALE_LADDER=1` so CI minutes stay bounded. Peak RSS is read
//! from `/proc/self/status` (`VmHWM`), so this binary holds exactly one
//! test — sibling tests would pollute the process-wide high-water mark.

use ats_compress::SvdCompressed;
use ats_data::{PhoneConfig, StreamingPhone};

/// Process peak resident set size in bytes (`VmHWM`), if the platform
/// exposes it.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// One rung: build SVD(k) from a streaming phone source and check the
/// process high-water RSS stayed far below the input size.
fn run_rung(n: usize, m: usize, k: usize, rss_cap: u64) {
    let cfg = PhoneConfig {
        customers: n,
        days: m,
        ..PhoneConfig::default()
    };
    let src = StreamingPhone::new(cfg);
    let t0 = std::time::Instant::now();
    let svd = SvdCompressed::compress(&src, k, 1).unwrap();
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(svd.u().rows(), n);
    assert_eq!(svd.k(), k);
    // The dominant component must carry real energy — a degenerate
    // build that never read the rows would not.
    assert!(svd.lambda().first().copied().unwrap_or(0.0) > 0.0);

    let x_bytes = (n as u64) * (m as u64) * 8;
    match peak_rss_bytes() {
        Some(peak) => {
            eprintln!(
                "ladder rung N={n} M={m}: {secs:.1}s, peak RSS {} MiB (input would be {} MiB)",
                peak / (1024 * 1024),
                x_bytes / (1024 * 1024),
            );
            assert!(
                peak < rss_cap,
                "peak RSS {peak} B exceeds cap {rss_cap} B at N={n} — \
                 the streaming build is holding more than O(M² + N·k)"
            );
            assert!(
                peak < x_bytes / 2,
                "peak RSS {peak} B is within 2× of the {x_bytes} B input — \
                 the ladder is not out-of-core"
            );
        }
        None => eprintln!("ladder rung N={n}: no /proc/self/status; RSS check skipped"),
    }
}

#[test]
fn scale_ladder_streaming_build() {
    // Default rung: 1M × 64. U(k=6) is 48 MB; allow process overhead and
    // transient eigen scratch on top, but stay far below the 512 MB input.
    run_rung(1_000_000, 64, 6, 256 * 1024 * 1024);

    if std::env::var("ATS_SCALE_LADDER")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        // VmHWM is monotone per process, so caps must be non-decreasing:
        // each rung's cap covers the previous rungs' high-water mark.
        // 5M × 64: input 2.5 GB, U = 240 MB.
        run_rung(5_000_000, 64, 6, 1024 * 1024 * 1024);
        // 10M × 64: input 5.1 GB, U = 480 MB.
        run_rung(10_000_000, 64, 6, 1536 * 1024 * 1024);
    }
}
