//! Allocation-count regression tests for the hot reconstruction paths.
//!
//! `Svd::reconstruct_row_into` used to allocate a fresh `Vec` per component
//! per row (a strided column gather of `V`); the panel kernels must likewise
//! stay allocation-free once their scratch is set up. A counting global
//! allocator pins both properties: any future allocation in these loops
//! fails the test rather than silently regressing throughput.
//!
//! The counting allocator needs `unsafe impl GlobalAlloc`; the allow below
//! scopes that exemption to this test binary only — library code stays under
//! the workspace-wide `unsafe_code = "deny"`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ats_linalg::kernels::{self, VPanel};
use ats_linalg::{Matrix, Svd, SvdOptions};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> usize {
    ALLOCS.load(Ordering::SeqCst)
}

/// Single test so no sibling test thread can allocate concurrently and
/// pollute the counter.
#[test]
fn reconstruction_hot_paths_do_not_allocate() {
    let x = Matrix::from_fn(16, 12, |i, j| ((i * 7 + j * 3) as f64).sin() * 4.0);
    let svd = Svd::compute(&x, SvdOptions::default()).unwrap();
    let mut out = vec![0.0; 12];

    // Warm-up outside the measured window.
    svd.reconstruct_row_into(0, &mut out);
    let before = alloc_count();
    for i in 0..16 {
        svd.reconstruct_row_into(i, &mut out);
    }
    let grew = alloc_count() - before;
    assert_eq!(grew, 0, "Svd::reconstruct_row_into allocated {grew} times");

    // The panel kernels: scratch is provided by the caller, the kernels
    // themselves must not touch the allocator.
    let panel = VPanel::from_v(svd.v());
    let lambda: Vec<f64> = svd.sigma().to_vec();
    let k = lambda.len();
    let mut coef = vec![0.0; k];
    let mut block = vec![0.0; 16 * 12];
    let cols = [0usize, 5, 11, 3, 3, 7, 1];
    let mut cells = vec![0.0; cols.len()];
    let u_rows: Vec<f64> = (0..16).flat_map(|i| svd.u().row(i).to_vec()).collect();

    let before = alloc_count();
    for i in 0..16 {
        kernels::reconstruct_row(svd.u().row(i), &lambda, &panel, &mut out);
        kernels::fuse_coefficients(&lambda, svd.u().row(i), &mut coef);
        kernels::reconstruct_cells(&coef, svd.v(), &cols, &mut cells).unwrap();
    }
    kernels::reconstruct_rows(&u_rows, &lambda, &panel, &mut block).unwrap();
    let grew = alloc_count() - before;
    assert_eq!(grew, 0, "panel kernels allocated {grew} times");
}
