//! Property-based tests for the numerical core: invariants that must
//! hold for arbitrary inputs, plus cross-solver agreement.

use ats_linalg::{
    lanczos_top_k, sym_eigen, sym_eigen_jacobi, LanczosOptions, Matrix, Svd, SvdOptions,
};
use proptest::prelude::*;

/// Random symmetric matrix strategy.
fn symmetric(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec(-50.0f64..50.0, n * n).prop_map(move |data| {
            let mut a = Matrix::from_vec(n, n, data).unwrap();
            for i in 0..n {
                for j in (i + 1)..n {
                    let v = a[(i, j)];
                    a[(j, i)] = v;
                }
            }
            a
        })
    })
}

fn rectangular(max_n: usize, max_m: usize) -> impl Strategy<Value = Matrix> {
    (1usize..max_n, 1usize..max_m).prop_flat_map(|(n, m)| {
        proptest::collection::vec(-50.0f64..50.0, n * m)
            .prop_map(move |data| Matrix::from_vec(n, m, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn eigen_reconstructs_input(a in symmetric(16)) {
        let e = sym_eigen(&a).unwrap();
        let back = e.reconstruct();
        let scale = a.max_abs().max(1.0);
        prop_assert!(back.approx_eq(&a, 1e-8 * scale));
    }

    #[test]
    fn eigen_trace_and_frobenius_invariants(a in symmetric(16)) {
        let e = sym_eigen(&a).unwrap();
        let n = a.rows();
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7 * trace.abs().max(1.0));
        // ‖A‖_F² = Σ λᵢ²
        let f2 = a.frobenius_norm().powi(2);
        let l2: f64 = e.values.iter().map(|v| v * v).sum();
        prop_assert!((f2 - l2).abs() < 1e-6 * f2.max(1.0));
    }

    #[test]
    fn ql_and_jacobi_agree_on_spectra(a in symmetric(12)) {
        let e1 = sym_eigen(&a).unwrap();
        let e2 = sym_eigen_jacobi(&a).unwrap();
        let scale = a.max_abs().max(1.0);
        for (v1, v2) in e1.values.iter().zip(&e2.values) {
            prop_assert!((v1 - v2).abs() < 1e-7 * scale);
        }
    }

    #[test]
    fn svd_singular_values_nonneg_sorted(x in rectangular(16, 10)) {
        let svd = Svd::compute(&x, SvdOptions::default()).unwrap();
        for w in svd.sigma().windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        for &s in svd.sigma() {
            prop_assert!(s > 0.0); // rank-truncated: strictly positive
        }
        // σ₁ ≤ ‖X‖_F always; equality iff rank 1
        prop_assert!(svd.sigma().first().copied().unwrap_or(0.0)
                     <= x.frobenius_norm() * (1.0 + 1e-9));
    }

    #[test]
    fn svd_full_rank_roundtrip(x in rectangular(12, 8)) {
        let svd = Svd::compute(&x, SvdOptions::default()).unwrap();
        let scale = x.max_abs().max(1.0);
        prop_assert!(svd.reconstruct().approx_eq(&x, 1e-7 * scale));
    }

    #[test]
    fn svd_projection_norm_bounded(x in rectangular(12, 8)) {
        // ‖proj(row)‖ ≤ ‖row‖ (V has orthonormal columns)
        let svd = Svd::compute(&x, SvdOptions::default()).unwrap();
        for i in 0..x.rows() {
            let p = svd.project(x.row(i), svd.rank()).unwrap();
            let pn: f64 = p.iter().map(|v| v * v).sum::<f64>().sqrt();
            let rn: f64 = x.row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            prop_assert!(pn <= rn * (1.0 + 1e-9) + 1e-9);
        }
    }

    #[test]
    fn lanczos_top_eigenvalue_matches_dense(x in rectangular(14, 8)) {
        let c = x.gram();
        let dense = sym_eigen(&c).unwrap();
        if dense.values[0] <= 1e-9 {
            return Ok(()); // zero matrix: nothing to compare
        }
        let top = lanczos_top_k(&c, 1, LanczosOptions::default()).unwrap();
        let rel = (top.values[0] - dense.values[0]).abs() / dense.values[0];
        prop_assert!(rel < 1e-7, "rel err {rel}");
    }

    #[test]
    fn matmul_associates_with_transpose(x in rectangular(8, 6)) {
        // (XᵀX)ᵀ = XᵀX
        let g = x.gram();
        prop_assert!(g.transpose().approx_eq(&g, 1e-9));
    }
}
