//! Dense row-major matrix.
//!
//! The paper's data model is an `N × M` matrix `X` of `N` time sequences
//! (rows) by `M` time points (columns), with `N ≫ M` (Eq. 1). Row-major
//! layout is therefore the natural one: every streaming pass of the
//! compression algorithms reads `X` one row at a time, and cell
//! reconstruction fetches one row of `U`.

use ats_common::{AtsError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use ats_linalg::Matrix;
/// let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a flat row-major vector. Errors if the length is not
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(AtsError::dims(
                "Matrix::from_vec",
                (data.len(), 1),
                (rows * cols, 1),
            ));
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Build from nested row vectors. Errors on ragged input or zero rows.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(AtsError::InvalidArgument(
                "Matrix::from_rows: no rows".into(),
            ));
        }
        let ncols = rows[0].len();
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(AtsError::dims(
                    format!("Matrix::from_rows row {i}"),
                    (1, r.len()),
                    (1, ncols),
                ));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            data,
            rows: nrows,
            cols: ncols,
        })
    }

    /// Build a `rows × cols` matrix by evaluating `f(i, j)` at every cell.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows (`N` in the paper).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (`M` in the paper).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow row `i` as a slice. Panics if out of bounds (use
    /// [`Matrix::try_row`] for a checked variant).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Checked row access.
    pub fn try_row(&self, i: usize) -> Result<&[f64]> {
        if i >= self.rows {
            return Err(AtsError::oob("row", i, self.rows));
        }
        Ok(self.row(i))
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` out into a vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Checked cell read.
    pub fn get(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows {
            return Err(AtsError::oob("row", i, self.rows));
        }
        if j >= self.cols {
            return Err(AtsError::oob("column", j, self.cols));
        }
        Ok(self[(i, j)])
    }

    /// Iterate over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Split the matrix into disjoint mutable bands of at most
    /// `rows_per_chunk` consecutive rows, yielding `(first_row, band)`
    /// pairs. The bands borrow non-overlapping regions of the underlying
    /// storage, so each can be handed to a different worker thread — the
    /// safe `&mut` partitioning behind the parallel passes that write
    /// disjoint row ranges of `U`.
    ///
    /// Panics if `rows_per_chunk == 0`. A `0 × m` matrix yields nothing.
    pub fn row_chunks_mut(
        &mut self,
        rows_per_chunk: usize,
    ) -> impl Iterator<Item = (usize, &mut [f64])> {
        assert!(rows_per_chunk > 0, "row_chunks_mut: zero chunk size");
        let cols = self.cols;
        // `.max(1)` keeps chunks_mut legal for 0-column matrices, whose
        // backing storage is empty and yields no bands anyway.
        self.data
            .chunks_mut((rows_per_chunk * cols).max(1))
            .enumerate()
            .map(move |(c, band)| (c * rows_per_chunk, band))
    }

    /// The underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the underlying row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Transpose (allocates).
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                t[(j, i)] = v;
            }
        }
        t
    }

    /// Matrix product `self × rhs`. Errors on inner-dimension mismatch.
    ///
    /// Uses the cache-friendly `i-k-j` loop order: the innermost loop walks
    /// contiguous rows of both the output and `rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(AtsError::dims(
                "matmul",
                (rhs.rows, rhs.cols),
                (self.cols, rhs.cols),
            ));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                let o_row = out.row_mut(i);
                for (j, &b_kj) in b_row.iter().enumerate() {
                    o_row[j] += a_ik * b_kj;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self × v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(AtsError::dims("matvec", (v.len(), 1), (self.cols, 1)));
        }
        Ok(self
            .iter_rows()
            .map(|row| crate::vecops::dot(row, v))
            .collect())
    }

    /// The Gram (column-to-column similarity) matrix `C = XᵀX` (Lemma 3.2),
    /// computed directly without materializing the transpose.
    ///
    /// This is the in-memory twin of the paper's pass-1 algorithm (Fig. 2):
    /// for each row, add the outer product of the row with itself into `C`.
    /// Only the upper triangle is accumulated; symmetry fills the rest.
    pub fn gram(&self) -> Matrix {
        let m = self.cols;
        let mut c = Matrix::zeros(m, m);
        for row in self.iter_rows() {
            for j in 0..m {
                let xj = row[j];
                if xj == 0.0 {
                    continue;
                }
                let c_row = c.row_mut(j);
                for (l, &xl) in row.iter().enumerate().skip(j) {
                    c_row[l] += xj * xl;
                }
            }
        }
        // mirror upper triangle into the lower
        for j in 0..m {
            for l in (j + 1)..m {
                c[(l, j)] = c[(j, l)];
            }
        }
        c
    }

    /// Scale every element in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Element-wise difference `self − rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(AtsError::dims("sub", rhs.shape(), self.shape()));
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Frobenius norm `‖A‖_F = (Σ a_{ij}²)^{1/2}`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |acc, v| acc.max(v.abs()))
    }

    /// Mean of all cells (`x̄` in Def. 5.1). Zero for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// True when all elements are finite (no NaN/±∞).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Whether `self` and `other` agree element-wise within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Keep only the first `n` rows (cheap truncation: just shortens the
    /// backing vector).
    pub fn truncate_rows(&mut self, n: usize) {
        let n = n.min(self.rows);
        self.data.truncate(n * self.cols);
        self.rows = n;
    }

    /// Copy a sub-block of columns `[j0, j1)` of every row.
    pub fn slice_cols(&self, j0: usize, j1: usize) -> Result<Matrix> {
        if j0 > j1 || j1 > self.cols {
            return Err(AtsError::InvalidArgument(format!(
                "slice_cols [{j0}, {j1}) out of 0..{}",
                self.cols
            )));
        }
        let w = j1 - j0;
        let mut out = Matrix::zeros(self.rows, w);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[j0..j1]);
        }
        Ok(out)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            write!(f, "  [")?;
            for (j, v) in self.row(i).iter().take(10).enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:9.4}")?;
            }
            if self.cols > 10 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  … {} more rows", self.rows - show)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Matrix {
        Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = small();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_rows(vec![]).is_err());
    }

    #[test]
    fn from_vec_length_checked() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn transpose_involutive() {
        let m = small();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = small(); // 2x3
        let b = Matrix::from_rows(vec![vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]).unwrap(); // 3x2
        let c = a.matmul(&b).unwrap();
        let expect = Matrix::from_rows(vec![vec![58.0, 64.0], vec![139.0, 154.0]]).unwrap();
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = small();
        assert!(a.matmul(&small()).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = small();
        let i3 = Matrix::identity(3);
        assert!(a.matmul(&i3).unwrap().approx_eq(&a, 1e-15));
        let i2 = Matrix::identity(2);
        assert!(i2.matmul(&a).unwrap().approx_eq(&a, 1e-15));
    }

    #[test]
    fn row_chunks_mut_covers_disjointly() {
        // 7 rows in bands of 3: starts 0, 3, 6 with a ragged final band.
        let mut m = Matrix::zeros(7, 4);
        let mut starts = Vec::new();
        for (start, band) in m.row_chunks_mut(3) {
            assert_eq!(band.len() % 4, 0);
            starts.push((start, band.len() / 4));
            for v in band.iter_mut() {
                *v += 1.0; // each cell must be visited exactly once
            }
        }
        assert_eq!(starts, vec![(0, 3), (3, 3), (6, 1)]);
        assert!(m.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn row_chunks_mut_edge_shapes() {
        // Chunk size beyond the row count: one band with everything.
        let mut m = Matrix::zeros(2, 3);
        let bands: Vec<(usize, usize)> = m.row_chunks_mut(10).map(|(s, b)| (s, b.len())).collect();
        assert_eq!(bands, vec![(0, 6)]);

        // Degenerate shapes yield no bands at all.
        let mut empty_rows = Matrix::zeros(0, 5);
        assert_eq!(empty_rows.row_chunks_mut(2).count(), 0);
        let mut empty_cols = Matrix::zeros(5, 0);
        assert_eq!(empty_cols.row_chunks_mut(2).count(), 0);
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Matrix::from_fn(7, 4, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let direct = a.transpose().matmul(&a).unwrap();
        assert!(a.gram().approx_eq(&direct, 1e-9));
    }

    #[test]
    fn gram_is_symmetric_and_psd_diagonal() {
        let a = Matrix::from_fn(5, 3, |i, j| (i as f64 - j as f64) * 0.5);
        let c = a.gram();
        for i in 0..3 {
            assert!(c[(i, i)] >= 0.0);
            for j in 0..3 {
                assert!((c[(i, j)] - c[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = small();
        let v = vec![1.0, 0.5, -1.0];
        let got = a.matvec(&v).unwrap();
        assert!((got[0] - (1.0 + 1.0 - 3.0)).abs() < 1e-12);
        assert!((got[1] - (4.0 + 2.5 - 6.0)).abs() < 1e-12);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn norms_and_mean() {
        let m = Matrix::from_rows(vec![vec![3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn sub_and_shape_check() {
        let a = small();
        let d = a.sub(&a).unwrap();
        assert_eq!(d.frobenius_norm(), 0.0);
        assert!(a.sub(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn checked_accessors() {
        let m = small();
        assert!(m.get(0, 0).is_ok());
        assert!(m.get(2, 0).is_err());
        assert!(m.get(0, 3).is_err());
        assert!(m.try_row(1).is_ok());
        assert!(m.try_row(2).is_err());
    }

    #[test]
    fn truncate_rows_shortens() {
        let mut m = small();
        m.truncate_rows(1);
        assert_eq!(m.shape(), (1, 3));
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        m.truncate_rows(100); // no-op beyond current size
        assert_eq!(m.rows(), 1);
    }

    #[test]
    fn slice_cols_extracts_block() {
        let m = small();
        let s = m.slice_cols(1, 3).unwrap();
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[2.0, 3.0]);
        assert!(m.slice_cols(2, 1).is_err());
        assert!(m.slice_cols(0, 4).is_err());
    }

    #[test]
    fn col_extraction() {
        let m = small();
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = small();
        assert!(m.is_finite());
        m[(0, 0)] = f64::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    fn from_fn_fills_cells() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(2, 1)], 21.0);
    }

    #[test]
    fn debug_format_does_not_panic() {
        let m = Matrix::from_fn(20, 20, |i, j| (i + j) as f64);
        let s = format!("{m:?}");
        assert!(s.contains("more rows"));
    }
}
