//! Singular value decomposition via the Gram-matrix route.
//!
//! This is the in-memory form of the paper's §4.1 algorithm. By Lemma 3.2
//! the eigenvectors of `C = XᵀX` are the right singular vectors `V` of `X`
//! and its eigenvalues are `λᵢ²`; given those, `U = X V Λ⁻¹` (Eq. 10).
//! This route costs `O(N M²)` to form `C` plus `O(M³)` for the small
//! eigenproblem — the right trade-off when `N ≫ M` (Eq. 1), and the only
//! one compatible with the two-pass out-of-core computation.
//!
//! Truncation to the top `k` terms (Eq. 8) and cell reconstruction
//! (Eq. 12) are provided on the resulting [`Svd`].

use crate::eigen::sym_eigen;
use crate::matrix::Matrix;
use crate::vecops;
use ats_common::{AtsError, Result};

/// Options controlling [`Svd::compute`].
#[derive(Debug, Clone, Copy)]
pub struct SvdOptions {
    /// Relative rank cutoff: singular values below
    /// `rank_tol × σ_max` are treated as zero and dropped.
    pub rank_tol: f64,
}

impl Default for SvdOptions {
    fn default() -> Self {
        // The Gram route computes eigenvalues of XᵀX with absolute error
        // ~eps·λ₁², so spurious singular values appear at
        // σ ≈ sqrt(eps)·σ₁ ≈ 1.5e-8·σ₁. Cut two decades above that.
        SvdOptions { rank_tol: 1e-6 }
    }
}

/// A (possibly truncated) singular value decomposition `X ≈ U Σ Vᵀ`.
///
/// `U` is `N × r` column-orthonormal, `sigma` holds the `r` singular
/// values in descending order, `V` is `M × r` column-orthonormal — the
/// paper's `U`, `Λ`, `V` (Theorem 3.1).
///
/// # Examples
///
/// ```
/// use ats_linalg::{Matrix, Svd, SvdOptions};
/// // The paper's Table 1 toy matrix: two "blobs".
/// let x = Matrix::from_rows(vec![
///     vec![1., 1., 1., 0., 0.],
///     vec![2., 2., 2., 0., 0.],
///     vec![1., 1., 1., 0., 0.],
///     vec![5., 5., 5., 0., 0.],
///     vec![0., 0., 0., 2., 2.],
///     vec![0., 0., 0., 3., 3.],
///     vec![0., 0., 0., 1., 1.],
/// ]).unwrap();
/// let svd = Svd::compute(&x, SvdOptions::default()).unwrap();
/// assert_eq!(svd.rank(), 2); // weekday + weekend patterns
/// assert!((svd.sigma()[0] - 9.64).abs() < 0.01); // Eq. 5
/// assert!((svd.sigma()[1] - 5.29).abs() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    u: Matrix,
    sigma: Vec<f64>,
    v: Matrix,
}

impl Svd {
    /// Compute the SVD of `x` via `C = XᵀX` (in memory).
    ///
    /// Near-zero singular values (per [`SvdOptions::rank_tol`]) are
    /// dropped, so `rank()` reports the numerical rank. An all-zero matrix
    /// yields rank 0.
    pub fn compute(x: &Matrix, opts: SvdOptions) -> Result<Self> {
        if !x.is_finite() {
            return Err(AtsError::Numerical(
                "Svd::compute: input contains NaN or infinity".into(),
            ));
        }
        let eig = sym_eigen(&x.gram())?;
        Self::from_gram_eigen(x, &eig.values, &eig.vectors, opts)
    }

    /// Assemble the SVD from a precomputed eigendecomposition of the Gram
    /// matrix (`values` = λ², `vectors` = V columns, both sorted
    /// descending). This is the entry point for the out-of-core two-pass
    /// path, where the caller computed the Gram matrix in a streaming pass.
    pub fn from_gram_eigen(
        x: &Matrix,
        values: &[f64],
        vectors: &Matrix,
        opts: SvdOptions,
    ) -> Result<Self> {
        let m = x.cols();
        if values.len() != m || vectors.shape() != (m, m) {
            return Err(AtsError::dims(
                "Svd::from_gram_eigen",
                vectors.shape(),
                (m, m),
            ));
        }
        let sigma_all: Vec<f64> = values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let smax = sigma_all.first().copied().unwrap_or(0.0);
        let cutoff = opts.rank_tol * smax;
        let r = sigma_all
            .iter()
            .take_while(|&&s| s > cutoff && s > 0.0)
            .count();

        let mut v = Matrix::zeros(m, r);
        for j in 0..r {
            for i in 0..m {
                v[(i, j)] = vectors[(i, j)];
            }
        }
        // U = X V Σ⁻¹, one row of X at a time (Eq. 11).
        let n = x.rows();
        let mut u = Matrix::zeros(n, r);
        for i in 0..n {
            let xi = x.row(i);
            let ui = u.row_mut(i);
            for j in 0..r {
                let mut acc = 0.0;
                for l in 0..m {
                    acc = vecops::fmadd(xi[l], v[(l, j)], acc);
                }
                ui[j] = acc / sigma_all[j];
            }
        }
        Ok(Svd {
            u,
            sigma: sigma_all[..r].to_vec(),
            v,
        })
    }

    /// The left singular vectors (`N × r`, "customer-to-pattern
    /// similarity", Observation 3.1).
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// The singular values, descending (the paper's λᵢ).
    pub fn sigma(&self) -> &[f64] {
        &self.sigma
    }

    /// The right singular vectors (`M × r`, "day-to-pattern similarity",
    /// Observation 3.2).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Number of retained components.
    pub fn rank(&self) -> usize {
        self.sigma.len()
    }

    /// Truncate to the top `k` principal components (Eq. 8). A `k` larger
    /// than the current rank is a no-op.
    pub fn truncate(&mut self, k: usize) {
        let k = k.min(self.rank());
        self.sigma.truncate(k);
        let (n, m) = (self.u.rows(), self.v.rows());
        let mut u = Matrix::zeros(n, k);
        for i in 0..n {
            u.row_mut(i).copy_from_slice(&self.u.row(i)[..k]);
        }
        let mut v = Matrix::zeros(m, k);
        for i in 0..m {
            v.row_mut(i).copy_from_slice(&self.v.row(i)[..k]);
        }
        self.u = u;
        self.v = v;
    }

    /// Reconstruct cell `(i, j)` — Eq. 12: `Σ_m λ_m u_{i,m} v_{j,m}`.
    /// `O(k)` time, independent of `N` and `M`.
    #[inline]
    pub fn reconstruct_cell(&self, i: usize, j: usize) -> f64 {
        let ui = self.u.row(i);
        let vj = self.v.row(j);
        ui.iter()
            .zip(vj)
            .zip(&self.sigma)
            .fold(0.0, |acc, ((&u, &v), &s)| vecops::fmadd(s * u, v, acc))
    }

    /// Reconstruct row `i` into `out` (length `M`).
    ///
    /// Allocation-free: each output element is a `k`-term dot over the
    /// contiguous row `j` of `V`, accumulated in ascending component order —
    /// the same FP sequence as [`Svd::reconstruct_cell`], so the two agree
    /// bitwise (a regression test in `tests/alloc_regression.rs` pins the
    /// zero-allocation property).
    pub fn reconstruct_row_into(&self, i: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.v.rows());
        let ui = self.u.row(i);
        for (j, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for ((&s, &uim), &vjm) in self.sigma.iter().zip(ui).zip(self.v.row(j)) {
                acc = vecops::fmadd(s * uim, vjm, acc);
            }
            *o = acc;
        }
    }

    /// Reconstruct the full matrix `X̂ = U Σ Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let n = self.u.rows();
        let m = self.v.rows();
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            let mut row = vec![0.0; m];
            self.reconstruct_row_into(i, &mut row);
            out.row_mut(i).copy_from_slice(&row);
        }
        out
    }

    /// Fraction of total "energy" `Σλᵢ²` captured by the first `k`
    /// components — the usual guide for picking the cutoff.
    pub fn energy(&self, k: usize) -> f64 {
        let total: f64 = self.sigma.iter().map(|s| s * s).sum();
        if total == 0.0 {
            return 1.0;
        }
        let head: f64 = self.sigma.iter().take(k).map(|s| s * s).sum();
        head / total
    }

    /// Project a new `M`-vector into the `k`-dimensional PC space
    /// (coordinates `x·v_j` — Observation 3.4 divided by nothing; these
    /// are the `U Λ` coordinates used for visualization, Appendix A).
    pub fn project(&self, x: &[f64], k: usize) -> Result<Vec<f64>> {
        if x.len() != self.v.rows() {
            return Err(AtsError::dims(
                "Svd::project",
                (x.len(), 1),
                (self.v.rows(), 1),
            ));
        }
        let k = k.min(self.rank());
        Ok((0..k)
            .map(|j| (0..x.len()).map(|l| x[l] * self.v[(l, j)]).sum())
            .collect())
    }

    /// Storage cost in numbers (the paper's Eq. 9 numerator):
    /// `N·k + k + k·M`.
    pub fn stored_numbers(&self) -> usize {
        let k = self.rank();
        self.u.rows() * k + k + self.v.rows() * k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> Matrix {
        Matrix::from_rows(vec![
            vec![1., 1., 1., 0., 0.],
            vec![2., 2., 2., 0., 0.],
            vec![1., 1., 1., 0., 0.],
            vec![5., 5., 5., 0., 0.],
            vec![0., 0., 0., 2., 2.],
            vec![0., 0., 0., 3., 3.],
            vec![0., 0., 0., 1., 1.],
        ])
        .unwrap()
    }

    #[test]
    fn table1_rank_and_singular_values() {
        // Eq. 5 of the paper: λ₁ = 9.64, λ₂ = 5.29.
        let svd = Svd::compute(&table1(), SvdOptions::default()).unwrap();
        assert_eq!(svd.rank(), 2);
        assert!((svd.sigma()[0] - 9.643650).abs() < 1e-3);
        assert!((svd.sigma()[1] - 5.291502).abs() < 1e-3);
    }

    #[test]
    fn table1_u_matches_paper() {
        // First column of U from Eq. 5: (.18, .36, .18, .90, 0, 0, 0).
        let svd = Svd::compute(&table1(), SvdOptions::default()).unwrap();
        let expect0 = [0.1796, 0.3592, 0.1796, 0.8980, 0.0, 0.0, 0.0];
        for (i, want) in expect0.iter().enumerate() {
            assert!(
                (svd.u()[(i, 0)].abs() - want).abs() < 1e-3,
                "u[{i},0] = {}",
                svd.u()[(i, 0)]
            );
        }
        // Second pattern: weekend customers (.53, .80, .27).
        let expect1 = [0.0, 0.0, 0.0, 0.0, 0.5345, 0.8018, 0.2673];
        for (i, want) in expect1.iter().enumerate() {
            assert!((svd.u()[(i, 1)].abs() - want).abs() < 1e-3);
        }
    }

    #[test]
    fn table1_v_matches_paper() {
        // V column 1 ≈ (.58,.58,.58,0,0); column 2 ≈ (0,0,0,.71,.71).
        let svd = Svd::compute(&table1(), SvdOptions::default()).unwrap();
        let v = svd.v();
        for j in 0..3 {
            assert!((v[(j, 0)].abs() - 0.5774).abs() < 1e-3);
            assert!(v[(j, 1)].abs() < 1e-8);
        }
        for j in 3..5 {
            assert!(v[(j, 0)].abs() < 1e-8);
            assert!((v[(j, 1)].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        }
    }

    #[test]
    fn full_rank_reconstruction_exact() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let x = Matrix::from_fn(20, 6, |_, _| rng.gen_range(-3.0..3.0));
        let svd = Svd::compute(&x, SvdOptions::default()).unwrap();
        assert_eq!(svd.rank(), 6);
        assert!(svd.reconstruct().approx_eq(&x, 1e-8));
    }

    #[test]
    fn cell_reconstruction_matches_full() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let x = Matrix::from_fn(10, 5, |_, _| rng.gen_range(0.0..10.0));
        let svd = Svd::compute(&x, SvdOptions::default()).unwrap();
        let full = svd.reconstruct();
        for i in 0..10 {
            for j in 0..5 {
                assert!((svd.reconstruct_cell(i, j) - full[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn truncation_is_best_rank_k_energy() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let x = Matrix::from_fn(30, 8, |_, _| rng.gen_range(-1.0..1.0));
        let svd_full = Svd::compute(&x, SvdOptions::default()).unwrap();
        // Eckart–Young: truncation error equals sqrt of tail eigenvalue sum.
        for k in 1..8 {
            let mut t = svd_full.clone();
            t.truncate(k);
            assert_eq!(t.rank(), k);
            let err = t.reconstruct().sub(&x).unwrap().frobenius_norm();
            let tail: f64 = svd_full.sigma()[k..].iter().map(|s| s * s).sum();
            assert!(
                (err - tail.sqrt()).abs() < 1e-6,
                "k={k}: {err} vs {}",
                tail.sqrt()
            );
        }
    }

    #[test]
    fn u_and_v_column_orthonormal() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let x = Matrix::from_fn(40, 7, |_, _| rng.gen_range(-2.0..2.0));
        let svd = Svd::compute(&x, SvdOptions::default()).unwrap();
        let r = svd.rank();
        let utu = svd.u().transpose().matmul(svd.u()).unwrap();
        assert!(utu.approx_eq(&Matrix::identity(r), 1e-7));
        let vtv = svd.v().transpose().matmul(svd.v()).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(r), 1e-7));
    }

    #[test]
    fn zero_matrix_rank_zero() {
        let svd = Svd::compute(&Matrix::zeros(5, 3), SvdOptions::default()).unwrap();
        assert_eq!(svd.rank(), 0);
        assert!(svd.reconstruct().approx_eq(&Matrix::zeros(5, 3), 1e-15));
        assert_eq!(svd.reconstruct_cell(4, 2), 0.0);
        assert_eq!(svd.energy(0), 1.0);
    }

    #[test]
    fn rank_deficient_detected() {
        // Two identical columns => rank 1 for a rank-1 construction.
        let x = Matrix::from_fn(10, 4, |i, _| (i + 1) as f64);
        let svd = Svd::compute(&x, SvdOptions::default()).unwrap();
        assert_eq!(svd.rank(), 1);
        assert!(svd.reconstruct().approx_eq(&x, 1e-8));
    }

    #[test]
    fn energy_monotone_to_one() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let x = Matrix::from_fn(20, 5, |_, _| rng.gen_range(0.0..4.0));
        let svd = Svd::compute(&x, SvdOptions::default()).unwrap();
        let mut prev = 0.0;
        for k in 0..=svd.rank() {
            let e = svd.energy(k);
            assert!(e >= prev - 1e-12);
            prev = e;
        }
        assert!((svd.energy(svd.rank()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stored_numbers_formula() {
        let svd = Svd::compute(&table1(), SvdOptions::default()).unwrap();
        // N=7, M=5, k=2 → 14 + 2 + 10 = 26
        assert_eq!(svd.stored_numbers(), 26);
    }

    #[test]
    fn project_gives_u_lambda_coordinates() {
        let x = table1();
        let svd = Svd::compute(&x, SvdOptions::default()).unwrap();
        // Projection of row i onto PC j equals (UΛ)_{ij}.
        for i in 0..x.rows() {
            let p = svd.project(x.row(i), 2).unwrap();
            for (j, &got) in p.iter().enumerate().take(2) {
                let expect = svd.u()[(i, j)] * svd.sigma()[j];
                assert!((got - expect).abs() < 1e-8, "row {i} pc {j}");
            }
        }
        assert!(svd.project(&[1.0], 2).is_err());
    }

    #[test]
    fn rejects_nan_input() {
        let mut x = table1();
        x[(0, 0)] = f64::INFINITY;
        assert!(Svd::compute(&x, SvdOptions::default()).is_err());
    }

    #[test]
    fn reconstruct_row_matches_cells() {
        let svd = Svd::compute(&table1(), SvdOptions::default()).unwrap();
        let mut row = vec![0.0; 5];
        for i in 0..svd.u().rows() {
            svd.reconstruct_row_into(i, &mut row);
            for (j, &got) in row.iter().enumerate() {
                // Bitwise, not approximate: the row path accumulates each
                // element in the same canonical component order as the cell
                // path.
                assert_eq!(got.to_bits(), svd.reconstruct_cell(i, j).to_bits());
            }
        }
    }
}
