//! Tight kernels over `&[f64]`.
//!
//! These are the inner loops of the whole system: cell reconstruction
//! (Eq. 12) is a `k`-term dot product, pass 2 of the SVD (Eq. 11) is a
//! matrix–vector product built from dots, and the Gram accumulation of
//! pass 1 (Fig. 2) is a sequence of scaled-row updates (axpy). Keeping
//! them free of bounds checks in the hot path (via exact-size chunks and
//! zips, which LLVM vectorizes) is what makes the 100k×366 experiments
//! fast enough to run in CI.
//!
//! # The canonical op and bitwise contracts
//!
//! Every multiply-accumulate in the workspace's canonical accumulation
//! paths goes through [`fmadd`], which is `acc + a·b` on default builds
//! and a hardware fused multiply-add when the build targets the `fma`
//! feature (`RUSTFLAGS="-C target-feature=+fma"` or `-C
//! target-cpu=native` on x86-64). Default builds are bitwise-unchanged
//! from the historical two-rounding form; FMA builds change *uniformly*
//! across scalar references and widened kernels alike, so the
//! `to_bits()` equivalence suites hold under either flag. The widened
//! entry points ([`axpy8`], [`dot8`], and the `chunks_exact(8)` loops
//! inside [`dot`]/[`axpy`]) never reassociate: each output element keeps
//! one sequential accumulation chain in ascending element order —
//! widening is across *independent outputs* (more rows/cells per sweep),
//! never across the terms of one sum.

/// Unroll width of the `chunks_exact` inner loops; also the row/lane
/// count of [`axpy8`]/[`dot8`].
pub const WIDE_LANES: usize = 8;

/// The canonical multiply-accumulate: `acc + a·b`.
///
/// With the `fma` target feature this compiles to a single fused
/// multiply-add (one rounding); otherwise it is the plain two-rounding
/// form. It is a build-time constant choice, so every accumulation in a
/// given binary rounds the same way — the bitwise-equivalence contracts
/// between scalar and widened paths are preserved under both builds.
#[inline(always)]
pub fn fmadd(a: f64, b: f64, acc: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

/// Dot product. Panics in debug builds if lengths differ; in release the
/// shorter length wins (callers in this workspace always pass equal
/// lengths).
///
/// One sequential accumulation chain in ascending element order — the
/// `chunks_exact(8)` unroll reduces loop overhead but never splits the
/// sum into partial accumulators, so the result is bitwise identical to
/// the naive loop.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = 0.0f64;
    let mut ac = a.chunks_exact(WIDE_LANES);
    let mut bc = b.chunks_exact(WIDE_LANES);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        for (&x, &y) in ca.iter().zip(cb) {
            acc = fmadd(x, y, acc);
        }
    }
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        acc = fmadd(x, y, acc);
    }
    acc
}

/// `y ← y + alpha · x` (the BLAS "axpy").
///
/// Element-independent updates: the `chunks_exact(8)` unroll changes
/// neither the op applied to each element nor its order.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &mut y[..n]);
    let mut xc = x.chunks_exact(WIDE_LANES);
    let mut yc = y.chunks_exact_mut(WIDE_LANES);
    for (cx, cy) in (&mut xc).zip(&mut yc) {
        for (&xi, yi) in cx.iter().zip(cy) {
            *yi = fmadd(alpha, xi, *yi);
        }
    }
    for (&xi, yi) in xc.remainder().iter().zip(yc.into_remainder()) {
        *yi = fmadd(alpha, xi, *yi);
    }
}

/// Euclidean (`L₂`) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length vectors — the
/// clustering distance of §2.2.
#[inline]
pub fn dist2_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        acc = fmadd(d, d, acc);
    }
    acc
}

/// Normalize `a` to unit `L₂` norm in place; returns the original norm.
/// A zero vector is left untouched (returns 0).
pub fn normalize(a: &mut [f64]) -> f64 {
    let n = norm2(a);
    if n > 0.0 {
        for v in a.iter_mut() {
            *v /= n;
        }
    }
    n
}

/// Scale in place.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for v in a.iter_mut() {
        *v *= s;
    }
}

/// Element-wise sum accumulated into `acc`.
#[inline]
pub fn add_assign(acc: &mut [f64], x: &[f64]) {
    debug_assert_eq!(acc.len(), x.len());
    for (a, &b) in acc.iter_mut().zip(x) {
        *a += b;
    }
}

/// Fused four-row axpy: `yᵣ ← yᵣ + alpha[r] · x` for `r = 0..4`.
///
/// One sequential sweep over the shared `x` slice feeds four independent
/// accumulator rows — the inner loop of the blocked multi-row reconstruction
/// kernel. Each `yᵣ` element receives exactly the FP operation the plain
/// [`axpy`] would apply, in the same order, so results are bitwise identical
/// to four separate axpy calls.
#[inline]
pub fn axpy4(
    alpha: [f64; 4],
    x: &[f64],
    y0: &mut [f64],
    y1: &mut [f64],
    y2: &mut [f64],
    y3: &mut [f64],
) {
    debug_assert_eq!(x.len(), y0.len());
    debug_assert_eq!(x.len(), y1.len());
    debug_assert_eq!(x.len(), y2.len());
    debug_assert_eq!(x.len(), y3.len());
    let [a0, a1, a2, a3] = alpha;
    let mut xc = x.chunks_exact(WIDE_LANES);
    let mut c0 = y0.chunks_exact_mut(WIDE_LANES);
    let mut c1 = y1.chunks_exact_mut(WIDE_LANES);
    let mut c2 = y2.chunks_exact_mut(WIDE_LANES);
    let mut c3 = y3.chunks_exact_mut(WIDE_LANES);
    for ((((cx, b0), b1), b2), b3) in (&mut xc)
        .zip(&mut c0)
        .zip(&mut c1)
        .zip(&mut c2)
        .zip(&mut c3)
    {
        for ((((&xi, e0), e1), e2), e3) in cx.iter().zip(b0.iter_mut()).zip(b1).zip(b2).zip(b3) {
            *e0 = fmadd(a0, xi, *e0);
            *e1 = fmadd(a1, xi, *e1);
            *e2 = fmadd(a2, xi, *e2);
            *e3 = fmadd(a3, xi, *e3);
        }
    }
    for ((((&xi, e0), e1), e2), e3) in xc
        .remainder()
        .iter()
        .zip(c0.into_remainder())
        .zip(c1.into_remainder())
        .zip(c2.into_remainder())
        .zip(c3.into_remainder())
    {
        *e0 = fmadd(a0, xi, *e0);
        *e1 = fmadd(a1, xi, *e1);
        *e2 = fmadd(a2, xi, *e2);
        *e3 = fmadd(a3, xi, *e3);
    }
}

/// Fused eight-row axpy: `ys[r] ← ys[r] + alpha[r] · x` for `r = 0..8`.
///
/// The widest row-block kernel: one sequential sweep over the shared `x`
/// slice feeds eight independent accumulator rows. Like [`axpy4`], every
/// output element receives exactly the plain [`axpy`] op in the same
/// order, so results are bitwise identical to eight separate axpy calls.
#[inline]
pub fn axpy8(alpha: [f64; 8], x: &[f64], ys: &mut [&mut [f64]; 8]) {
    for y in ys.iter() {
        debug_assert_eq!(x.len(), y.len());
    }
    // Block over `x` so each block stays L1-resident while all eight rows
    // consume it, then run the well-vectorized narrow [`axpy`] per lane.
    // Each output element still receives exactly one fmadd in element
    // order, so the result stays bitwise identical to eight axpy calls.
    const BLOCK: usize = 512; // 4 KB of x per block
    let n = x.len();
    let mut i = 0usize;
    while i < n {
        let hi = (i + BLOCK).min(n);
        let cx = &x[i..hi];
        for (y, &a) in ys.iter_mut().zip(&alpha) {
            axpy(a, cx, &mut y[i..hi]);
        }
        i = hi;
    }
}

/// Fused four-way dot: `[a·b0, a·b1, a·b2, a·b3]`.
///
/// The shared `a` slice is loaded once per element and multiplied into four
/// independent accumulators — the inner loop of the multi-cell reconstruction
/// kernel. Each accumulator sums its own products in element order starting
/// from `0.0`, exactly as [`dot`] does, so each lane is bitwise identical to
/// a separate dot call.
#[inline]
pub fn dot4(a: &[f64], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) -> [f64; 4] {
    debug_assert_eq!(a.len(), b0.len());
    debug_assert_eq!(a.len(), b1.len());
    debug_assert_eq!(a.len(), b2.len());
    debug_assert_eq!(a.len(), b3.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for ((((&ai, &x0), &x1), &x2), &x3) in a.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
        s0 = fmadd(ai, x0, s0);
        s1 = fmadd(ai, x1, s1);
        s2 = fmadd(ai, x2, s2);
        s3 = fmadd(ai, x3, s3);
    }
    [s0, s1, s2, s3]
}

/// Fused eight-way dot: `[a·bs[0], …, a·bs[7]]`.
///
/// The widest multi-cell kernel: the shared `a` slice is streamed once
/// and multiplied into eight independent accumulators. Each lane keeps
/// its own sequential chain in element order from `0.0`, bitwise
/// identical to eight separate [`dot`] calls.
#[inline]
pub fn dot8(a: &[f64], bs: [&[f64]; 8]) -> [f64; 8] {
    let mut n = a.len();
    for b in &bs {
        debug_assert_eq!(a.len(), b.len());
        n = n.min(b.len());
    }
    let mut acc = [0.0f64; 8];
    let mut i = 0usize;
    while i + WIDE_LANES <= n {
        // Per-lane chains still run in ascending element order; only the
        // shared `a` chunk is reused across the eight accumulators.
        let ca = &a[i..i + WIDE_LANES];
        for (s, b) in acc.iter_mut().zip(&bs) {
            let cb = &b[i..i + WIDE_LANES];
            for (&x, &y) in ca.iter().zip(cb) {
                *s = fmadd(x, y, *s);
            }
        }
        i += WIDE_LANES;
    }
    if i < n {
        let ca = &a[i..n];
        for (s, b) in acc.iter_mut().zip(&bs) {
            for (&x, &y) in ca.iter().zip(&b[i..n]) {
                *s = fmadd(x, y, *s);
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_basic() {
        let mut y = [1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, [7.0, 9.0]);
    }

    /// The unrolled dot must keep ONE accumulation chain: compare against
    /// the naive sequential loop bitwise across lengths straddling the
    /// chunk width (0..=41 covers empty, sub-chunk, exact multiples, and
    /// remainders).
    #[test]
    fn dot_matches_naive_chain_bitwise() {
        for n in 0..=41usize {
            let a: Vec<f64> = (0..n).map(|i| ((i * 13 + 1) as f64).sin() * 3.0).collect();
            let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 5) as f64).cos() * 2.0).collect();
            let mut want = 0.0f64;
            for (&x, &y) in a.iter().zip(&b) {
                want = fmadd(x, y, want);
            }
            assert_eq!(dot(&a, &b).to_bits(), want.to_bits(), "n = {n}");
        }
    }

    /// Same for axpy: unrolled result must match the per-element loop
    /// bitwise at every length around the chunk boundary.
    #[test]
    fn axpy_matches_naive_loop_bitwise() {
        for n in 0..=41usize {
            let x: Vec<f64> = (0..n).map(|i| ((i * 11 + 3) as f64).sin()).collect();
            let base: Vec<f64> = (0..n).map(|i| ((i * 5 + 2) as f64).cos()).collect();
            let mut got = base.clone();
            axpy(1.7, &x, &mut got);
            let mut want = base;
            for (w, &xi) in want.iter_mut().zip(&x) {
                *w = fmadd(1.7, xi, *w);
            }
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "n = {n}");
            }
        }
    }

    #[test]
    fn norm_and_normalize() {
        let mut v = [3.0, 4.0];
        assert_eq!(norm2(&v), 5.0);
        let n = normalize(&mut v);
        assert_eq!(n, 5.0);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_noop() {
        let mut v = [0.0, 0.0];
        assert_eq!(normalize(&mut v), 0.0);
        assert_eq!(v, [0.0, 0.0]);
    }

    #[test]
    fn dist2_sq_basic() {
        assert_eq!(dist2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist2_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = [1.0, 2.0];
        add_assign(&mut a, &[10.0, 20.0]);
        assert_eq!(a, [11.0, 22.0]);
        scale(&mut a, 0.5);
        assert_eq!(a, [5.5, 11.0]);
    }

    #[test]
    fn axpy4_matches_four_axpys_bitwise() {
        // 37 = 4 full chunks of 8 + remainder 5.
        let x: Vec<f64> = (0..37).map(|i| ((i * 7) as f64).sin() * 3.0).collect();
        let alpha = [1.25, -0.75, 3.5, 0.0625];
        let base: Vec<f64> = (0..37).map(|i| ((i * 3) as f64).cos()).collect();
        let mut fused: Vec<Vec<f64>> = (0..4).map(|_| base.clone()).collect();
        let mut serial: Vec<Vec<f64>> = (0..4).map(|_| base.clone()).collect();
        let (f0, rest) = fused.split_at_mut(1);
        let (f1, rest) = rest.split_at_mut(1);
        let (f2, f3) = rest.split_at_mut(1);
        axpy4(alpha, &x, &mut f0[0], &mut f1[0], &mut f2[0], &mut f3[0]);
        for (a, row) in alpha.iter().zip(serial.iter_mut()) {
            axpy(*a, &x, row);
        }
        for (f, s) in fused.iter().flatten().zip(serial.iter().flatten()) {
            assert_eq!(f.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn axpy8_matches_eight_axpys_bitwise() {
        for n in [0usize, 1, 7, 8, 9, 16, 29, 40] {
            let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 2) as f64).sin() * 3.0).collect();
            let alpha = [1.25, -0.75, 3.5, 0.0625, -2.25, 0.5, 7.75, -0.125];
            let base: Vec<f64> = (0..n).map(|i| ((i * 3 + 1) as f64).cos()).collect();
            let mut fused: Vec<Vec<f64>> = (0..8).map(|_| base.clone()).collect();
            let mut serial: Vec<Vec<f64>> = (0..8).map(|_| base.clone()).collect();
            {
                let mut it = fused.iter_mut();
                let mut ys: [&mut [f64]; 8] = [
                    it.next().unwrap(),
                    it.next().unwrap(),
                    it.next().unwrap(),
                    it.next().unwrap(),
                    it.next().unwrap(),
                    it.next().unwrap(),
                    it.next().unwrap(),
                    it.next().unwrap(),
                ];
                axpy8(alpha, &x, &mut ys);
            }
            for (a, row) in alpha.iter().zip(serial.iter_mut()) {
                axpy(*a, &x, row);
            }
            for (f, s) in fused.iter().flatten().zip(serial.iter().flatten()) {
                assert_eq!(f.to_bits(), s.to_bits(), "n = {n}");
            }
        }
    }

    #[test]
    fn dot4_matches_four_dots_bitwise() {
        let a: Vec<f64> = (0..29).map(|i| ((i * 11) as f64).sin() * 2.0).collect();
        let bs: Vec<Vec<f64>> = (0..4)
            .map(|r| (0..29).map(|i| ((i * 5 + r * 13) as f64).cos()).collect())
            .collect();
        let fused = dot4(&a, &bs[0], &bs[1], &bs[2], &bs[3]);
        for (f, b) in fused.iter().zip(&bs) {
            assert_eq!(f.to_bits(), dot(&a, b).to_bits());
        }
    }

    #[test]
    fn dot8_matches_eight_dots_bitwise() {
        for n in [0usize, 1, 7, 8, 9, 16, 29, 40] {
            let a: Vec<f64> = (0..n).map(|i| ((i * 11 + 1) as f64).sin() * 2.0).collect();
            let bs: Vec<Vec<f64>> = (0..8)
                .map(|r| (0..n).map(|i| ((i * 5 + r * 13) as f64).cos()).collect())
                .collect();
            let refs: [&[f64]; 8] = [
                &bs[0], &bs[1], &bs[2], &bs[3], &bs[4], &bs[5], &bs[6], &bs[7],
            ];
            let fused = dot8(&a, refs);
            for (f, b) in fused.iter().zip(&bs) {
                assert_eq!(f.to_bits(), dot(&a, b).to_bits(), "n = {n}");
            }
        }
    }

    proptest! {
        #[test]
        fn dot_commutative(a in proptest::collection::vec(-1e3f64..1e3, 0..64)) {
            let b: Vec<f64> = a.iter().rev().copied().collect();
            prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn cauchy_schwarz(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..64)
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let lhs = dot(&a, &b).abs();
            let rhs = norm2(&a) * norm2(&b);
            prop_assert!(lhs <= rhs * (1.0 + 1e-10) + 1e-10);
        }

        #[test]
        fn dist_is_symmetric_nonneg(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..64)
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let d = dist2_sq(&a, &b);
            prop_assert!(d >= 0.0);
            prop_assert!((d - dist2_sq(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn normalized_vector_unit_norm(a in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
            let mut v = a.clone();
            let n = normalize(&mut v);
            if n > 1e-9 {
                prop_assert!((norm2(&v) - 1.0).abs() < 1e-9);
            }
        }

        #[test]
        fn widened_dot_equals_scalar_chain(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 0..96)
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let mut want = 0.0f64;
            for (&x, &y) in a.iter().zip(&b) {
                want = fmadd(x, y, want);
            }
            prop_assert_eq!(dot(&a, &b).to_bits(), want.to_bits());
        }
    }
}
