//! Tight kernels over `&[f64]`.
//!
//! These are the inner loops of the whole system: cell reconstruction
//! (Eq. 12) is a `k`-term dot product, pass 2 of the SVD (Eq. 11) is a
//! matrix–vector product built from dots, and the Gram accumulation of
//! pass 1 (Fig. 2) is a sequence of scaled-row updates (axpy). Keeping
//! them free of bounds checks in the hot path (via exact-size zips, which
//! LLVM vectorizes) is what makes the 100k×366 experiments fast enough to
//! run in CI.

/// Dot product. Panics in debug builds if lengths differ; in release the
/// shorter length wins (callers in this workspace always pass equal
/// lengths).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y ← y + alpha · x` (the BLAS "axpy").
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean (`L₂`) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length vectors — the
/// clustering distance of §2.2.
#[inline]
pub fn dist2_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Normalize `a` to unit `L₂` norm in place; returns the original norm.
/// A zero vector is left untouched (returns 0).
pub fn normalize(a: &mut [f64]) -> f64 {
    let n = norm2(a);
    if n > 0.0 {
        for v in a.iter_mut() {
            *v /= n;
        }
    }
    n
}

/// Scale in place.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for v in a.iter_mut() {
        *v *= s;
    }
}

/// Element-wise sum accumulated into `acc`.
#[inline]
pub fn add_assign(acc: &mut [f64], x: &[f64]) {
    debug_assert_eq!(acc.len(), x.len());
    for (a, &b) in acc.iter_mut().zip(x) {
        *a += b;
    }
}

/// Fused four-row axpy: `yᵣ ← yᵣ + alpha[r] · x` for `r = 0..4`.
///
/// One sequential sweep over the shared `x` slice feeds four independent
/// accumulator rows — the inner loop of the blocked multi-row reconstruction
/// kernel. Each `yᵣ` element receives exactly the FP operation the plain
/// [`axpy`] would apply, in the same order, so results are bitwise identical
/// to four separate axpy calls.
#[inline]
pub fn axpy4(
    alpha: [f64; 4],
    x: &[f64],
    y0: &mut [f64],
    y1: &mut [f64],
    y2: &mut [f64],
    y3: &mut [f64],
) {
    debug_assert_eq!(x.len(), y0.len());
    debug_assert_eq!(x.len(), y1.len());
    debug_assert_eq!(x.len(), y2.len());
    debug_assert_eq!(x.len(), y3.len());
    let [a0, a1, a2, a3] = alpha;
    for ((((&xi, e0), e1), e2), e3) in x.iter().zip(y0).zip(y1).zip(y2).zip(y3) {
        *e0 += a0 * xi;
        *e1 += a1 * xi;
        *e2 += a2 * xi;
        *e3 += a3 * xi;
    }
}

/// Fused four-way dot: `[a·b0, a·b1, a·b2, a·b3]`.
///
/// The shared `a` slice is loaded once per element and multiplied into four
/// independent accumulators — the inner loop of the multi-cell reconstruction
/// kernel. Each accumulator sums its own products in element order starting
/// from `0.0`, exactly as [`dot`] does, so each lane is bitwise identical to
/// a separate dot call.
#[inline]
pub fn dot4(a: &[f64], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) -> [f64; 4] {
    debug_assert_eq!(a.len(), b0.len());
    debug_assert_eq!(a.len(), b1.len());
    debug_assert_eq!(a.len(), b2.len());
    debug_assert_eq!(a.len(), b3.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for ((((&ai, &x0), &x1), &x2), &x3) in a.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
        s0 += ai * x0;
        s1 += ai * x1;
        s2 += ai * x2;
        s3 += ai * x3;
    }
    [s0, s1, s2, s3]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_basic() {
        let mut y = [1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, [7.0, 9.0]);
    }

    #[test]
    fn norm_and_normalize() {
        let mut v = [3.0, 4.0];
        assert_eq!(norm2(&v), 5.0);
        let n = normalize(&mut v);
        assert_eq!(n, 5.0);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_noop() {
        let mut v = [0.0, 0.0];
        assert_eq!(normalize(&mut v), 0.0);
        assert_eq!(v, [0.0, 0.0]);
    }

    #[test]
    fn dist2_sq_basic() {
        assert_eq!(dist2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist2_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = [1.0, 2.0];
        add_assign(&mut a, &[10.0, 20.0]);
        assert_eq!(a, [11.0, 22.0]);
        scale(&mut a, 0.5);
        assert_eq!(a, [5.5, 11.0]);
    }

    #[test]
    fn axpy4_matches_four_axpys_bitwise() {
        let x: Vec<f64> = (0..37).map(|i| ((i * 7) as f64).sin() * 3.0).collect();
        let alpha = [1.25, -0.75, 3.5, 0.0625];
        let base: Vec<f64> = (0..37).map(|i| ((i * 3) as f64).cos()).collect();
        let mut fused: Vec<Vec<f64>> = (0..4).map(|_| base.clone()).collect();
        let mut serial: Vec<Vec<f64>> = (0..4).map(|_| base.clone()).collect();
        let (f0, rest) = fused.split_at_mut(1);
        let (f1, rest) = rest.split_at_mut(1);
        let (f2, f3) = rest.split_at_mut(1);
        axpy4(alpha, &x, &mut f0[0], &mut f1[0], &mut f2[0], &mut f3[0]);
        for (a, row) in alpha.iter().zip(serial.iter_mut()) {
            axpy(*a, &x, row);
        }
        for (f, s) in fused.iter().flatten().zip(serial.iter().flatten()) {
            assert_eq!(f.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn dot4_matches_four_dots_bitwise() {
        let a: Vec<f64> = (0..29).map(|i| ((i * 11) as f64).sin() * 2.0).collect();
        let bs: Vec<Vec<f64>> = (0..4)
            .map(|r| (0..29).map(|i| ((i * 5 + r * 13) as f64).cos()).collect())
            .collect();
        let fused = dot4(&a, &bs[0], &bs[1], &bs[2], &bs[3]);
        for (f, b) in fused.iter().zip(&bs) {
            assert_eq!(f.to_bits(), dot(&a, b).to_bits());
        }
    }

    proptest! {
        #[test]
        fn dot_commutative(a in proptest::collection::vec(-1e3f64..1e3, 0..64)) {
            let b: Vec<f64> = a.iter().rev().copied().collect();
            prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn cauchy_schwarz(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..64)
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let lhs = dot(&a, &b).abs();
            let rhs = norm2(&a) * norm2(&b);
            prop_assert!(lhs <= rhs * (1.0 + 1e-10) + 1e-10);
        }

        #[test]
        fn dist_is_symmetric_nonneg(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..64)
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let d = dist2_sq(&a, &b);
            prop_assert!(d >= 0.0);
            prop_assert!((d - dist2_sq(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn normalized_vector_unit_norm(a in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
            let mut v = a.clone();
            let n = normalize(&mut v);
            if n > 1e-9 {
                prop_assert!((norm2(&v) - 1.0).abs() < 1e-9);
            }
        }
    }
}
