//! Vectorized reconstruction kernels over a transposed `V` panel.
//!
//! The paper's Eq. 12 reconstructs a cell as `x̂[i][j] = Σ_m λ[m]·u[i][m]·v[j][m]`,
//! and a whole row as the panel product `(λ ⊙ uᵢ)ᵀ · Vᵀ`. The scalar path walks
//! `V` row-by-row (one contiguous `k`-slice per output column), which is fine
//! for a single cell but gathers `V` column-wise when reconstructing rows. The
//! kernels here flip the layout once — [`VPanel`] stores `Vᵀ` as `k`
//! contiguous length-`M` component slices — so row reconstruction becomes `k`
//! sequential axpy sweeps and multi-row blocks share each component slice
//! across [`BLOCK_ROWS`] accumulator rows (see [`crate::vecops::axpy4`]).
//!
//! Bitwise contract: every kernel accumulates each output element in the
//! canonical order the scalar path uses — component index `m` ascending,
//! starting from `0.0`, each term formed as `(λ[m]·u[m])·v[m]` — so results
//! are bitwise identical to the per-cell loop, not merely close. Tests below
//! assert `==` on bits, never a tolerance.

use crate::matrix::Matrix;
use crate::vecops;
use ats_common::{AtsError, Result};

/// Rows reconstructed per unrolled block in [`reconstruct_rows`].
///
/// Eight accumulator rows share one sequential sweep over each component
/// slice (see [`vecops::axpy8`]): every widening of the block halves the
/// number of passes over the `V` panel per reconstructed row, and eight
/// rows is the widest block that still fits the accumulator registers of
/// mainstream x86-64/aarch64 without spilling. Measured under
/// `cargo xtask bench-report` (kernel micro suite); blocks that don't
/// fill to 8 fall back to [`vecops::axpy4`] and then to single rows.
pub const BLOCK_ROWS: usize = 8;

/// Rows per fallback sub-block when fewer than [`BLOCK_ROWS`] remain.
const HALF_BLOCK: usize = 4;

/// `Vᵀ` stored as `k` contiguous component slices of length `M`.
///
/// Component `m` holds `[v[0][m], v[1][m], …, v[M-1][m]]` — the stride-`k`
/// column gather of the row-major `M × k` matrix `V`, paid once at
/// construction instead of once per reconstructed row.
#[derive(Debug, Clone)]
pub struct VPanel {
    /// Row-major `k × M` storage: component `m` occupies `data[m·M .. (m+1)·M]`.
    data: Vec<f64>,
    /// Number of retained components `k` (panel rows).
    k: usize,
    /// Sequence length `M` (panel columns).
    m: usize,
}

impl VPanel {
    /// Transpose the row-major `M × k` matrix `V` into a component panel.
    pub fn from_v(v: &Matrix) -> VPanel {
        let (m, k) = v.shape();
        let data = v.transpose().into_vec();
        VPanel { data, k, m }
    }

    /// Number of retained components `k`.
    #[inline]
    pub fn components_len(&self) -> usize {
        self.k
    }

    /// Sequence length `M`.
    #[inline]
    pub fn cols(&self) -> usize {
        self.m
    }

    /// Iterate the component slices in ascending `m` order, each of length
    /// [`VPanel::cols`]. Yields nothing when `k == 0`.
    #[inline]
    pub fn components(&self) -> impl Iterator<Item = &[f64]> {
        // `.max(1)` keeps chunks_exact legal for 0-column panels, whose
        // backing storage is empty and yields no slices anyway.
        self.data.chunks_exact(self.m.max(1))
    }
}

/// Fuse the per-component coefficients `coef[m] = lambda[m] · u_row[m]`.
///
/// Precomputing the product is bitwise-safe: multiplication is performed once
/// either way, and the scalar path already associates `(λ·u)·v`.
#[inline]
pub fn fuse_coefficients(lambda: &[f64], u_row: &[f64], coef: &mut [f64]) {
    for ((c, &l), &u) in coef.iter_mut().zip(lambda).zip(u_row) {
        *c = l * u;
    }
}

/// Reconstruct one full row: `out = Σ_m (lambda[m]·u_row[m]) · panel[m]`.
///
/// `k` sequential axpy sweeps over contiguous component slices — no
/// allocation, no strided access. Accumulation per output element runs in
/// ascending `m`, matching the scalar per-cell loop bitwise.
pub fn reconstruct_row(u_row: &[f64], lambda: &[f64], panel: &VPanel, out: &mut [f64]) {
    debug_assert_eq!(out.len(), panel.cols());
    out.fill(0.0);
    for ((&l, &u), comp) in lambda.iter().zip(u_row).zip(panel.components()) {
        vecops::axpy(l * u, comp, out);
    }
}

/// Reconstruct `B` rows at once from a packed `B × k` block of `U` rows.
///
/// `u_rows` holds the `U` rows back to back (`B·k` values); `out` receives the
/// reconstructed rows back to back (`B·M` values). Full [`BLOCK_ROWS`]-row
/// blocks run through [`vecops::axpy8`] so all eight accumulator rows share
/// one sequential sweep per component slice; a remainder of four or more rows
/// goes through [`vecops::axpy4`], and the rest falls back to
/// [`reconstruct_row`]. Every output element still accumulates in ascending
/// `m` from `0.0`, so the result is bitwise identical to reconstructing each
/// row alone.
///
/// Errors if `u_rows`/`out` lengths are inconsistent with `lambda.len()` and
/// the panel width.
pub fn reconstruct_rows(
    u_rows: &[f64],
    lambda: &[f64],
    panel: &VPanel,
    out: &mut [f64],
) -> Result<()> {
    let k = lambda.len();
    let m = panel.cols();
    if k == 0 {
        out.fill(0.0);
        return Ok(());
    }
    if !u_rows.len().is_multiple_of(k) || out.len() != (u_rows.len() / k) * m {
        return Err(AtsError::dims(
            "reconstruct_rows",
            (u_rows.len() / k.max(1), k),
            (out.len() / m.max(1), m),
        ));
    }
    if m == 0 {
        return Ok(());
    }
    for (ub, ob) in u_rows
        .chunks(BLOCK_ROWS * k)
        .zip(out.chunks_mut(BLOCK_ROWS * m))
    {
        if ub.len() == BLOCK_ROWS * k {
            let (u0, rest) = ub.split_at(k);
            let (u1, rest) = rest.split_at(k);
            let (u2, rest) = rest.split_at(k);
            let (u3, rest) = rest.split_at(k);
            let (u4, rest) = rest.split_at(k);
            let (u5, rest) = rest.split_at(k);
            let (u6, u7) = rest.split_at(k);
            let (o0, rest) = ob.split_at_mut(m);
            let (o1, rest) = rest.split_at_mut(m);
            let (o2, rest) = rest.split_at_mut(m);
            let (o3, rest) = rest.split_at_mut(m);
            let (o4, rest) = rest.split_at_mut(m);
            let (o5, rest) = rest.split_at_mut(m);
            let (o6, o7) = rest.split_at_mut(m);
            let mut outs: [&mut [f64]; 8] = [o0, o1, o2, o3, o4, o5, o6, o7];
            for o in outs.iter_mut() {
                o.fill(0.0);
            }
            for (((((((((&l, comp), &a0), &a1), &a2), &a3), &a4), &a5), &a6), &a7) in lambda
                .iter()
                .zip(panel.components())
                .zip(u0)
                .zip(u1)
                .zip(u2)
                .zip(u3)
                .zip(u4)
                .zip(u5)
                .zip(u6)
                .zip(u7)
            {
                vecops::axpy8(
                    [
                        l * a0,
                        l * a1,
                        l * a2,
                        l * a3,
                        l * a4,
                        l * a5,
                        l * a6,
                        l * a7,
                    ],
                    comp,
                    &mut outs,
                );
            }
        } else {
            reconstruct_rows_tail(ub, lambda, panel, ob, k, m);
        }
    }
    Ok(())
}

/// Remainder path of [`reconstruct_rows`]: a 4-row sub-block through
/// [`vecops::axpy4`] when possible, single rows otherwise. Same canonical
/// accumulation order as the full 8-row block.
fn reconstruct_rows_tail(
    ub: &[f64],
    lambda: &[f64],
    panel: &VPanel,
    ob: &mut [f64],
    k: usize,
    m: usize,
) {
    let (head_u, tail_u) = if ub.len() >= HALF_BLOCK * k {
        ub.split_at(HALF_BLOCK * k)
    } else {
        ub.split_at(0)
    };
    let (head_o, tail_o) = if head_u.is_empty() {
        ob.split_at_mut(0)
    } else {
        ob.split_at_mut(HALF_BLOCK * m)
    };
    if !head_u.is_empty() {
        let (u0, rest) = head_u.split_at(k);
        let (u1, rest) = rest.split_at(k);
        let (u2, u3) = rest.split_at(k);
        let (o0, rest) = head_o.split_at_mut(m);
        let (o1, rest) = rest.split_at_mut(m);
        let (o2, o3) = rest.split_at_mut(m);
        o0.fill(0.0);
        o1.fill(0.0);
        o2.fill(0.0);
        o3.fill(0.0);
        for (((((&l, comp), &a0), &a1), &a2), &a3) in lambda
            .iter()
            .zip(panel.components())
            .zip(u0)
            .zip(u1)
            .zip(u2)
            .zip(u3)
        {
            vecops::axpy4([l * a0, l * a1, l * a2, l * a3], comp, o0, o1, o2, o3);
        }
    }
    for (ur, or) in tail_u.chunks(k).zip(tail_o.chunks_mut(m)) {
        reconstruct_row(ur, lambda, panel, or);
    }
}

/// Reconstruct selected cells of one row: `out[t] = coef · v.row(cols[t])`.
///
/// `coef` is the fused `λ ⊙ uᵢ` vector (see [`fuse_coefficients`]); `v` is the
/// row-major `M × k` matrix, whose rows are contiguous `k`-slices — the
/// cell-friendly layout. Column indices are processed in blocks of eight
/// through [`vecops::dot8`] (a four-wide [`vecops::dot4`] sub-block, then
/// single dots, on the tail) so the shared `coef` slice is loaded once per
/// block. Each dot accumulates in ascending `m` from `0.0`, bitwise identical
/// to the per-cell loop.
///
/// Errors if `out.len() != cols.len()` or any column index is out of range.
pub fn reconstruct_cells(coef: &[f64], v: &Matrix, cols: &[usize], out: &mut [f64]) -> Result<()> {
    if out.len() != cols.len() {
        return Err(AtsError::dims(
            "reconstruct_cells",
            (cols.len(), 1),
            (out.len(), 1),
        ));
    }
    for (cblk, oblk) in cols.chunks(8).zip(out.chunks_mut(8)) {
        match (cblk, oblk) {
            ([j0, j1, j2, j3, j4, j5, j6, j7], [o0, o1, o2, o3, o4, o5, o6, o7]) => {
                let [s0, s1, s2, s3, s4, s5, s6, s7] = vecops::dot8(
                    coef,
                    [
                        v.try_row(*j0)?,
                        v.try_row(*j1)?,
                        v.try_row(*j2)?,
                        v.try_row(*j3)?,
                        v.try_row(*j4)?,
                        v.try_row(*j5)?,
                        v.try_row(*j6)?,
                        v.try_row(*j7)?,
                    ],
                );
                *o0 = s0;
                *o1 = s1;
                *o2 = s2;
                *o3 = s3;
                *o4 = s4;
                *o5 = s5;
                *o6 = s6;
                *o7 = s7;
            }
            (tail_js, tail_os) => {
                for (js, os) in tail_js.chunks(4).zip(tail_os.chunks_mut(4)) {
                    match (js, os) {
                        ([j0, j1, j2, j3], [o0, o1, o2, o3]) => {
                            let [s0, s1, s2, s3] = vecops::dot4(
                                coef,
                                v.try_row(*j0)?,
                                v.try_row(*j1)?,
                                v.try_row(*j2)?,
                                v.try_row(*j3)?,
                            );
                            *o0 = s0;
                            *o1 = s1;
                            *o2 = s2;
                            *o3 = s3;
                        }
                        (js, os) => {
                            for (j, o) in js.iter().zip(os) {
                                *o = vecops::dot(coef, v.try_row(*j)?);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical scalar reconstruction of one cell: ascending `m`,
    /// accumulating `(λ·u)·v` terms from `0.0` through the canonical
    /// [`vecops::fmadd`] op (plain `acc + a·b` on default builds, fused
    /// on `fma`-feature builds — same op the kernels use either way).
    fn scalar_cell(u_row: &[f64], lambda: &[f64], v: &Matrix, j: usize) -> f64 {
        let mut acc = 0.0;
        for ((&l, &u), &vv) in lambda.iter().zip(u_row).zip(v.row(j)) {
            acc = vecops::fmadd(l * u, vv, acc);
        }
        acc
    }

    fn fixture(n: usize, m: usize, k: usize) -> (Matrix, Vec<f64>, Matrix) {
        // Deterministic, full-spectrum-ish values; exact numbers don't matter,
        // only that they exercise non-trivial rounding.
        let u = Matrix::from_fn(n, k, |i, c| ((i * 31 + c * 17) as f64).sin() * 2.5);
        let lambda: Vec<f64> = (0..k).map(|c| 10.0 / (c as f64 + 1.0).sqrt()).collect();
        let v = Matrix::from_fn(m, k, |j, c| ((j * 13 + c * 7) as f64).cos() * 1.5);
        (u, lambda, v)
    }

    #[test]
    fn panel_row_matches_scalar_bitwise() {
        let (u, lambda, v) = fixture(9, 23, 5);
        let panel = VPanel::from_v(&v);
        let mut out = vec![0.0; 23];
        for i in 0..9 {
            reconstruct_row(u.row(i), &lambda, &panel, &mut out);
            for (j, &got) in out.iter().enumerate() {
                let want = scalar_cell(u.row(i), &lambda, &v, j);
                assert_eq!(got.to_bits(), want.to_bits(), "row {i} col {j}");
            }
        }
    }

    #[test]
    fn blocked_rows_match_scalar_bitwise() {
        // Row counts straddling every block shape: full 8-blocks, the
        // 4-row sub-block, single-row tails, and combinations.
        for n in [1usize, 3, 4, 5, 7, 8, 9, 11, 12, 15, 16, 19] {
            let (u, lambda, v) = fixture(n, 17, 4);
            let panel = VPanel::from_v(&v);
            let mut out = vec![0.0; n * 17];
            reconstruct_rows(u.as_slice(), &lambda, &panel, &mut out).unwrap();
            for (i, row) in out.chunks(17).enumerate() {
                for (j, &got) in row.iter().enumerate() {
                    let want = scalar_cell(u.row(i), &lambda, &v, j);
                    assert_eq!(got.to_bits(), want.to_bits(), "n {n} row {i} col {j}");
                }
            }
        }
    }

    #[test]
    fn blocked_cells_match_scalar_bitwise() {
        let (u, lambda, v) = fixture(6, 23, 3);
        // Unsorted columns with duplicates; 13 of them → one dot8 block,
        // a dot4 sub-block, then a single-dot tail.
        let cols = [18usize, 0, 5, 5, 11, 2, 18, 22, 7, 1, 19, 3, 9];
        let mut coef = vec![0.0; 3];
        let mut out = vec![0.0; cols.len()];
        for i in 0..6 {
            fuse_coefficients(&lambda, u.row(i), &mut coef);
            reconstruct_cells(&coef, &v, &cols, &mut out).unwrap();
            for (&j, &got) in cols.iter().zip(&out) {
                let want = scalar_cell(u.row(i), &lambda, &v, j);
                assert_eq!(got.to_bits(), want.to_bits(), "row {i} col {j}");
            }
        }
        // Every tail length 0..=8 hits its intended cascade arm.
        for len in 0..=8usize {
            let cols: Vec<usize> = (0..len).map(|t| (t * 5) % 23).collect();
            let mut out = vec![0.0; len];
            fuse_coefficients(&lambda, u.row(0), &mut coef);
            reconstruct_cells(&coef, &v, &cols, &mut out).unwrap();
            for (&j, &got) in cols.iter().zip(&out) {
                let want = scalar_cell(u.row(0), &lambda, &v, j);
                assert_eq!(got.to_bits(), want.to_bits(), "len {len} col {j}");
            }
        }
    }

    #[test]
    fn reconstruct_cells_rejects_bad_inputs() {
        let (_, lambda, v) = fixture(2, 5, 2);
        let coef = vec![0.0; lambda.len()];
        let mut out = vec![0.0; 1];
        assert!(reconstruct_cells(&coef, &v, &[0, 1], &mut out).is_err());
        let mut out2 = vec![0.0; 1];
        assert!(reconstruct_cells(&coef, &v, &[5], &mut out2).is_err());
    }

    #[test]
    fn reconstruct_rows_rejects_bad_shapes() {
        let (u, lambda, v) = fixture(4, 6, 3);
        let panel = VPanel::from_v(&v);
        let mut short = vec![0.0; 4 * 6 - 1];
        assert!(reconstruct_rows(u.as_slice(), &lambda, &panel, &mut short).is_err());
    }

    #[test]
    fn zero_component_panel_reconstructs_zeros() {
        let v = Matrix::zeros(7, 0);
        let panel = VPanel::from_v(&v);
        assert_eq!(panel.components_len(), 0);
        assert_eq!(panel.cols(), 7);
        assert_eq!(panel.components().count(), 0);
        let mut out = vec![1.0; 14];
        reconstruct_rows(&[], &[], &panel, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0.0));
    }
}
