//! # ats-linalg
//!
//! Dense linear algebra for the `adhoc-ts` workspace, written from scratch
//! (no external linear-algebra crates): the substrate beneath the paper's
//! SVD/SVDD compression (Korn, Jagadish & Faloutsos, SIGMOD 1997, §3–4).
//!
//! What lives here:
//!
//! - [`matrix::Matrix`] — a dense, row-major `f64` matrix with the handful
//!   of operations the paper's algorithms need (products, transpose, Gram
//!   matrices, norms);
//! - [`vecops`] — tight kernels over `&[f64]` (dot, axpy, scaled outer
//!   products, fused 4-way variants) used by the hot reconstruction paths;
//! - [`kernels`] — blocked reconstruction kernels over a transposed `V`
//!   panel ([`kernels::VPanel`]): multi-row and multi-cell Eq. 12
//!   evaluation, bitwise identical to the scalar path;
//! - [`eigen`] — two symmetric eigensolvers: the production path
//!   (Householder tridiagonalization + implicit-shift QL, `O(M³)`) and a
//!   cyclic Jacobi solver kept as a slow, independently-derived oracle for
//!   tests, plus a Lanczos top-`k` engine ([`lanczos`]) for the regime
//!   where only a few extremal pairs are needed;
//! - [`svd`] — singular value decomposition via the Gram-matrix route the
//!   paper uses (Lemma 3.2: eigendecompose `C = XᵀX = V Λ² Vᵀ`, then
//!   `U = X V Λ⁻¹`), plus truncation to `k` principal components (Eq. 8)
//!   and cell reconstruction (Eq. 12).
//!
//! The out-of-core two-pass variant of the same SVD (which never holds `X`
//! in memory) lives in `ats-compress`; this crate is the in-memory engine
//! and the numerical ground truth it is tested against.

pub mod eigen;
pub mod kernels;
pub mod lanczos;
pub mod matrix;
pub mod svd;
pub mod vecops;

pub use eigen::{sym_eigen, sym_eigen_jacobi, EigenDecomposition};
pub use kernels::VPanel;
pub use lanczos::{lanczos_top_k, LanczosOptions};
pub use matrix::Matrix;
pub use svd::{Svd, SvdOptions};
