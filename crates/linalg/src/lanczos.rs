//! Lanczos iteration for the top-`k` eigenpairs of a symmetric matrix.
//!
//! The paper's pass-1 eigenproblem only ever needs the **top few**
//! eigenpairs of the `M × M` Gram matrix — `k ≪ M` of them (Eq. 9 keeps
//! `k ≈ s·M`). The dense QL solver computes all `M` pairs in `O(M³)`;
//! Lanczos builds a small Krylov tridiagonalization in
//! `O(M² · iterations)` and extracts the extremal pairs, which wins once
//! `M` is large relative to `k`. This implementation uses **full
//! reorthogonalization** (the textbook cure for the loss-of-orthogonality
//! that plagues plain Lanczos), making it slower than selective variants
//! but numerically trustworthy — the right trade-off for a reproduction
//! whose priority is correctness.
//!
//! Exposed as an alternative engine; `ats-compress` uses the dense
//! solver by default and the `eigen` bench compares the two.

use crate::eigen::{sym_eigen, EigenDecomposition};
use crate::matrix::Matrix;
use crate::vecops;
use ats_common::{AtsError, Result};

/// Options for [`lanczos_top_k`].
#[derive(Debug, Clone, Copy)]
pub struct LanczosOptions {
    /// Krylov subspace dimension; defaults to `min(2k + 16, n)`.
    pub subspace: Option<usize>,
    /// Convergence tolerance on the residual `‖A v − θ v‖ / ‖A‖`.
    pub tol: f64,
    /// Seed for the random start vector.
    pub seed: u64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            subspace: None,
            tol: 1e-9,
            seed: 0x1AC2,
        }
    }
}

/// Compute the `k` algebraically largest eigenpairs of symmetric `a`.
///
/// Returns an [`EigenDecomposition`] whose `values`/`vectors` hold only
/// `k` pairs (vectors is `n × k`), sorted descending.
pub fn lanczos_top_k(a: &Matrix, k: usize, opts: LanczosOptions) -> Result<EigenDecomposition> {
    let n = a.rows();
    if a.cols() != n {
        return Err(AtsError::dims("lanczos_top_k", a.shape(), (n, n)));
    }
    if k == 0 || k > n {
        return Err(AtsError::InvalidArgument(format!(
            "k={k} must be in 1..={n}"
        )));
    }
    if !a.is_finite() {
        return Err(AtsError::Numerical("lanczos: non-finite input".into()));
    }
    // Grow the Krylov space until the top-k Ritz residuals pass `tol`
    // (estimated as `β_m · |s_{m,j}|`, the classic bound) or the space
    // saturates at n, where the factorization is exact.
    let mut m = opts.subspace.unwrap_or((2 * k + 16).min(n)).clamp(k, n);
    loop {
        let result = lanczos_once(a, k, m, &opts)?;
        if result.1 || m >= n {
            return Ok(result.0);
        }
        m = (2 * m).min(n);
    }
}

/// One Lanczos factorization of dimension `m`. Returns the top-`k`
/// decomposition and whether every kept pair met the tolerance.
fn lanczos_once(
    a: &Matrix,
    k: usize,
    m: usize,
    opts: &LanczosOptions,
) -> Result<(EigenDecomposition, bool)> {
    let n = a.rows();
    // Krylov basis Q (m × n, rows are basis vectors), tridiagonal (alpha,
    // beta).
    let mut q: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut alpha = Vec::with_capacity(m);
    let mut beta: Vec<f64> = Vec::with_capacity(m);

    // Deterministic pseudo-random start vector.
    let mut v0: Vec<f64> = (0..n)
        .map(|i| {
            let h = ats_common::hash::hash_u64(i as u64, opts.seed);
            (h as f64 / u64::MAX as f64) - 0.5
        })
        .collect();
    if vecops::normalize(&mut v0) == 0.0 {
        v0[0] = 1.0;
    }
    q.push(v0);

    let anorm = a.frobenius_norm().max(f64::MIN_POSITIVE);
    let mut exhausted = false;
    for j in 0..m {
        // w = A q_j
        let mut w = a.matvec(&q[j])?;
        let aj = vecops::dot(&w, &q[j]);
        alpha.push(aj);
        // w ← w − α_j q_j − β_{j−1} q_{j−1}
        vecops::axpy(-aj, &q[j], &mut w);
        if j > 0 {
            vecops::axpy(-beta[j - 1], &q[j - 1], &mut w);
        }
        // Full reorthogonalization (twice is enough — Kahan).
        for _ in 0..2 {
            for qi in &q {
                let c = vecops::dot(&w, qi);
                if c != 0.0 {
                    vecops::axpy(-c, qi, &mut w);
                }
            }
        }
        let b = vecops::norm2(&w);
        if b <= 1e-14 * anorm {
            // Krylov space exhausted (happens at exact rank): the
            // factorization is complete and residuals are ~0.
            beta.push(0.0);
            exhausted = true;
            break;
        }
        if j + 1 == m {
            beta.push(b); // β_m, needed for the residual estimate
            break;
        }
        beta.push(b);
        vecops::scale(&mut w, 1.0 / b);
        q.push(w);
    }

    // Solve the small tridiagonal eigenproblem densely.
    let steps = alpha.len();
    let mut t = Matrix::zeros(steps, steps);
    for i in 0..steps {
        t[(i, i)] = alpha[i];
        if i + 1 < steps {
            t[(i, i + 1)] = beta[i];
            t[(i + 1, i)] = beta[i];
        }
    }
    let small = sym_eigen(&t)?;

    // Convergence estimate: ‖A v_j − θ_j v_j‖ = β_m · |s_{m,j}|.
    let beta_last = *beta.last().unwrap_or(&0.0);
    let keep = k.min(steps);
    let converged = exhausted
        || steps == n
        || (0..keep)
            .all(|jj| (beta_last * small.vectors[(steps - 1, jj)]).abs() <= opts.tol * anorm);

    // Ritz vectors: v = Σ_i q_i · s_{i,j}.
    let mut vectors = Matrix::zeros(n, keep);
    for jj in 0..keep {
        let mut v = vec![0.0f64; n];
        for (i, qi) in q.iter().enumerate().take(steps) {
            vecops::axpy(small.vectors[(i, jj)], qi, &mut v);
        }
        vecops::normalize(&mut v);
        for i in 0..n {
            vectors[(i, jj)] = v[i];
        }
    }
    Ok((
        EigenDecomposition {
            values: small.values[..keep].to_vec(),
            vectors,
        },
        converged,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_gram(n: usize, m: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Matrix::from_fn(n, m, |_, _| rng.gen_range(-2.0..2.0));
        x.gram()
    }

    #[test]
    fn matches_dense_solver_on_top_pairs() {
        let a = random_gram(60, 24, 1);
        let dense = sym_eigen(&a).unwrap();
        let top = lanczos_top_k(&a, 5, LanczosOptions::default()).unwrap();
        for j in 0..5 {
            let rel = (top.values[j] - dense.values[j]).abs() / dense.values[0];
            assert!(rel < 1e-8, "eigenvalue {j}: {rel}");
            // eigenvector matches up to sign
            let d: Vec<f64> = (0..24).map(|i| dense.vectors[(i, j)]).collect();
            let l: Vec<f64> = (0..24).map(|i| top.vectors[(i, j)]).collect();
            let dot = crate::vecops::dot(&d, &l).abs();
            assert!(dot > 1.0 - 1e-6, "eigenvector {j} alignment {dot}");
        }
    }

    #[test]
    fn residuals_small() {
        let a = random_gram(80, 30, 2);
        let top = lanczos_top_k(&a, 4, LanczosOptions::default()).unwrap();
        let anorm = a.frobenius_norm();
        for j in 0..4 {
            let v: Vec<f64> = (0..30).map(|i| top.vectors[(i, j)]).collect();
            let av = a.matvec(&v).unwrap();
            let mut r = 0.0;
            for i in 0..30 {
                let d = av[i] - top.values[j] * v[i];
                r += d * d;
            }
            assert!(r.sqrt() / anorm < 1e-8, "residual {j}: {}", r.sqrt());
        }
    }

    #[test]
    fn handles_low_rank_early_termination() {
        // rank-2 Gram matrix: the Krylov space collapses after 2 steps.
        let x = Matrix::from_fn(20, 10, |i, j| {
            (i % 2) as f64 * (j as f64) + ((i + 1) % 2) as f64 * (10.0 - j as f64)
        });
        let a = x.gram();
        let top = lanczos_top_k(&a, 2, LanczosOptions::default()).unwrap();
        let dense = sym_eigen(&a).unwrap();
        for j in 0..2 {
            assert!((top.values[j] - dense.values[j]).abs() < 1e-6 * dense.values[0].max(1.0));
        }
    }

    #[test]
    fn ritz_vectors_orthonormal() {
        let a = random_gram(50, 20, 3);
        let top = lanczos_top_k(&a, 6, LanczosOptions::default()).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                let vi: Vec<f64> = (0..20).map(|r| top.vectors[(r, i)]).collect();
                let vj: Vec<f64> = (0..20).map(|r| top.vectors[(r, j)]).collect();
                let d = crate::vecops::dot(&vi, &vj);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-7, "({i},{j}) dot {d}");
            }
        }
    }

    #[test]
    fn invalid_args_rejected() {
        let a = random_gram(10, 5, 4);
        assert!(lanczos_top_k(&a, 0, LanczosOptions::default()).is_err());
        assert!(lanczos_top_k(&a, 6, LanczosOptions::default()).is_err()); // k > n=5
        let rect = Matrix::zeros(3, 4);
        assert!(lanczos_top_k(&rect, 1, LanczosOptions::default()).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_gram(40, 16, 5);
        let t1 = lanczos_top_k(&a, 3, LanczosOptions::default()).unwrap();
        let t2 = lanczos_top_k(&a, 3, LanczosOptions::default()).unwrap();
        assert_eq!(t1.values, t2.values);
    }
}
