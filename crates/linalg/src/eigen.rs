//! Symmetric eigensolvers.
//!
//! The paper's two-pass SVD (§4.1) reduces the whole decomposition to one
//! in-memory eigendecomposition of the `M × M` Gram matrix `C = XᵀX`
//! (Lemma 3.2: `C = V Λ² Vᵀ`). Everything here serves that step.
//!
//! Two independent solvers are provided:
//!
//! - [`sym_eigen`] — the production path: Householder tridiagonalization
//!   (`tred2`) followed by implicit-shift QL iteration (`tqli`). `O(n³)`
//!   with a small constant; handles `M` in the hundreds in milliseconds.
//! - [`sym_eigen_jacobi`] — a cyclic Jacobi solver. Slower (typically
//!   ~5–10× at `M ≈ 100`) but derived completely differently, so the test
//!   suite uses it as an oracle against `sym_eigen`; it is also exposed
//!   because Jacobi attains slightly better relative accuracy for tiny
//!   eigenvalues.
//!
//! Both return eigenpairs **sorted by descending eigenvalue**, matching
//! the paper's convention that `λ₁ ≥ λ₂ ≥ …` (§3.3).

use crate::matrix::Matrix;
use ats_common::{AtsError, Result};

/// Result of a symmetric eigendecomposition `A = Q diag(values) Qᵀ`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, stored as **columns**; column `j`
    /// corresponds to `values[j]`.
    pub vectors: Matrix,
}

impl EigenDecomposition {
    /// Borrow eigenvector `j` as an owned column vector.
    pub fn vector(&self, j: usize) -> Vec<f64> {
        self.vectors.col(j)
    }

    /// Reconstruct `A = Q Λ Qᵀ` (test/diagnostic helper).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let q = &self.vectors;
        Matrix::from_fn(n, n, |i, l| {
            (0..n).map(|j| q[(i, j)] * self.values[j] * q[(l, j)]).sum()
        })
    }

    /// Verify `‖A q_j − λ_j q_j‖ ≤ tol·‖A‖` for every pair — used by tests.
    /// Errors if `a`'s dimensions do not match the decomposition.
    pub fn residual(&self, a: &Matrix) -> Result<f64> {
        let n = self.values.len();
        let mut worst = 0.0f64;
        for j in 0..n {
            let q = self.vector(j);
            let aq = a.matvec(&q)?;
            let mut r = 0.0;
            for i in 0..n {
                let d = aq[i] - self.values[j] * q[i];
                r += d * d;
            }
            worst = worst.max(r.sqrt());
        }
        Ok(worst)
    }
}

/// Maximum QL iterations per eigenvalue before declaring non-convergence.
const MAX_QL_ITERS: usize = 50;

/// Eigendecomposition of a symmetric matrix via Householder
/// tridiagonalization + implicit-shift QL.
///
/// Errors if `a` is not square, contains non-finite values, or the QL
/// iteration fails to converge (essentially never for finite symmetric
/// input). Asymmetry is tolerated up to roundoff: the upper triangle wins.
pub fn sym_eigen(a: &Matrix) -> Result<EigenDecomposition> {
    let n = a.rows();
    if a.cols() != n {
        return Err(AtsError::dims("sym_eigen", a.shape(), (n, n)));
    }
    if !a.is_finite() {
        return Err(AtsError::Numerical(
            "sym_eigen: input contains NaN or infinity".into(),
        ));
    }
    if n == 0 {
        return Ok(EigenDecomposition {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        });
    }
    let mut z = a.clone();
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n];
    tred2(&mut z, &mut d, &mut e);
    tqli(&mut d, &mut e, &mut z)?;
    Ok(sorted_desc(d, z))
}

/// Householder reduction of symmetric `a` (overwritten with the
/// accumulated orthogonal transform `Q`) to tridiagonal form:
/// `d` receives the diagonal, `e` the subdiagonal (`e[0]` unused = 0).
///
/// Port of the classic `tred2` (Numerical Recipes / EISPACK lineage),
/// 0-indexed.
fn tred2(a: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0f64;
        if l > 0 {
            let mut scale = 0.0f64;
            for k in 0..=l {
                scale += a[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = a[(i, l)];
            } else {
                for k in 0..=l {
                    let v = a[(i, k)] / scale;
                    a[(i, k)] = v;
                    h += v * v;
                }
                let f = a[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                a[(i, l)] = f - g;
                let mut ff = 0.0f64;
                for j in 0..=l {
                    a[(j, i)] = a[(i, j)] / h;
                    let mut g = 0.0f64;
                    for k in 0..=j {
                        g += a[(j, k)] * a[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += a[(k, j)] * a[(i, k)];
                    }
                    e[j] = g / h;
                    ff += e[j] * a[(i, j)];
                }
                let hh = ff / (h + h);
                for j in 0..=l {
                    let f = a[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let delta = f * e[k] + g * a[(i, k)];
                        a[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = a[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0f64;
                for k in 0..i {
                    g += a[(i, k)] * a[(k, j)];
                }
                for k in 0..i {
                    let delta = g * a[(k, i)];
                    a[(k, j)] -= delta;
                }
            }
        }
        d[i] = a[(i, i)];
        a[(i, i)] = 1.0;
        for j in 0..i {
            a[(j, i)] = 0.0;
            a[(i, j)] = 0.0;
        }
    }
}

/// `sqrt(a² + b²)` without destructive overflow/underflow.
fn pythag(a: f64, b: f64) -> f64 {
    let (absa, absb) = (a.abs(), b.abs());
    if absa > absb {
        let r = absb / absa;
        absa * (1.0 + r * r).sqrt()
    } else if absb == 0.0 {
        0.0
    } else {
        let r = absa / absb;
        absb * (1.0 + r * r).sqrt()
    }
}

/// Implicit-shift QL iteration on a tridiagonal matrix (`d` diagonal, `e`
/// subdiagonal with `e[0]` unused), accumulating rotations into `z`.
fn tqli(d: &mut [f64], e: &mut [f64], z: &mut Matrix) -> Result<()> {
    let n = d.len();
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    // Absolute split floor: rank-deficient Gram matrices tridiagonalize
    // into blocks of denormals (≈1e-322) next to huge entries; a purely
    // relative criterion never splits those blocks (eps·denormal
    // underflows to zero) and the QL iteration spins forever. Any
    // subdiagonal below eps·‖T‖ is numerically zero for this matrix.
    let anorm = (0..n)
        .map(|i| d[i].abs() + e[i].abs())
        .fold(0.0f64, f64::max);
    let thresh = f64::EPSILON * anorm;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small subdiagonal element to split the matrix.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd || e[m].abs() <= thresh {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_QL_ITERS {
                return Err(AtsError::NoConvergence {
                    routine: "tqli",
                    iterations: MAX_QL_ITERS,
                });
            }
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = pythag(g, 1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = pythag(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if r == 0.0 && m > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Cyclic Jacobi eigensolver — the independent oracle.
///
/// Sweeps all off-diagonal pairs with plane rotations until the
/// off-diagonal Frobenius mass drops below `1e-13 · ‖A‖_F`, or 64 sweeps.
pub fn sym_eigen_jacobi(a: &Matrix) -> Result<EigenDecomposition> {
    let n = a.rows();
    if a.cols() != n {
        return Err(AtsError::dims("sym_eigen_jacobi", a.shape(), (n, n)));
    }
    if !a.is_finite() {
        return Err(AtsError::Numerical(
            "sym_eigen_jacobi: input contains NaN or infinity".into(),
        ));
    }
    if n == 0 {
        return Ok(EigenDecomposition {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        });
    }
    let mut s = a.clone();
    let mut q = Matrix::identity(n);
    let norm = a.frobenius_norm().max(f64::MIN_POSITIVE);
    let tol = 1e-13 * norm;
    for _sweep in 0..64 {
        let mut off = 0.0f64;
        for p in 0..n {
            for r in (p + 1)..n {
                off += s[(p, r)] * s[(p, r)];
            }
        }
        if (2.0 * off).sqrt() <= tol {
            let d: Vec<f64> = (0..n).map(|i| s[(i, i)]).collect();
            return Ok(sorted_desc(d, q));
        }
        for p in 0..n {
            for r in (p + 1)..n {
                let apq = s[(p, r)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = s[(p, p)];
                let aqq = s[(r, r)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let sn = t * c;
                // Apply rotation G(p, r, θ)ᵀ S G(p, r, θ)
                for k in 0..n {
                    let skp = s[(k, p)];
                    let skq = s[(k, r)];
                    s[(k, p)] = c * skp - sn * skq;
                    s[(k, r)] = sn * skp + c * skq;
                }
                for k in 0..n {
                    let spk = s[(p, k)];
                    let sqk = s[(r, k)];
                    s[(p, k)] = c * spk - sn * sqk;
                    s[(r, k)] = sn * spk + c * sqk;
                }
                for k in 0..n {
                    let qkp = q[(k, p)];
                    let qkq = q[(k, r)];
                    q[(k, p)] = c * qkp - sn * qkq;
                    q[(k, r)] = sn * qkp + c * qkq;
                }
            }
        }
    }
    Err(AtsError::NoConvergence {
        routine: "jacobi",
        iterations: 64,
    })
}

/// Sort eigenpairs by descending eigenvalue, permuting the columns of `q`,
/// and canonicalize each eigenvector's sign (largest-magnitude component
/// positive) so decompositions are comparable across solvers.
fn sorted_desc(d: Vec<f64>, q: Matrix) -> EigenDecomposition {
    let n = d.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| d[b].partial_cmp(&d[a]).unwrap_or(std::cmp::Ordering::Equal));
    let values: Vec<f64> = idx.iter().map(|&i| d[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (newj, &oldj) in idx.iter().enumerate() {
        // find sign of the largest-magnitude component
        let mut best = 0.0f64;
        let mut sign = 1.0f64;
        for i in 0..n {
            let v = q[(i, oldj)];
            if v.abs() > best {
                best = v.abs();
                sign = if v >= 0.0 { 1.0 } else { -1.0 };
            }
        }
        for i in 0..n {
            vectors[(i, newj)] = sign * q[(i, oldj)];
        }
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_from(rows: Vec<Vec<f64>>) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn two_by_two_known() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = sym_from(vec![vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!(e.residual(&a).unwrap() < 1e-10);
    }

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a = sym_from(vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 5.0, 0.0],
            vec![0.0, 0.0, 3.0],
        ]);
        let e = sym_eigen(&a).unwrap();
        assert_eq!(e.values.len(), 3);
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_all_ones() {
        let e = sym_eigen(&Matrix::identity(6)).unwrap();
        for v in &e.values {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_matrix() {
        let e = sym_eigen(&Matrix::zeros(4, 4)).unwrap();
        for v in &e.values {
            assert!(v.abs() < 1e-14);
        }
        // eigenvectors still orthonormal
        check_orthonormal(&e.vectors, 1e-10);
    }

    #[test]
    fn empty_matrix() {
        let e = sym_eigen(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }

    #[test]
    fn one_by_one() {
        let a = sym_from(vec![vec![-7.5]]);
        let e = sym_eigen(&a).unwrap();
        assert_eq!(e.values, vec![-7.5]);
        assert!((e.vectors[(0, 0)].abs() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn rejects_non_square_and_nan() {
        assert!(sym_eigen(&Matrix::zeros(2, 3)).is_err());
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = f64::NAN;
        assert!(sym_eigen(&a).is_err());
        assert!(sym_eigen_jacobi(&Matrix::zeros(2, 3)).is_err());
    }

    fn check_orthonormal(q: &Matrix, tol: f64) {
        let n = q.rows();
        let qtq = q.transpose().matmul(q).unwrap();
        assert!(
            qtq.approx_eq(&Matrix::identity(n), tol),
            "QᵀQ deviates from I by {}",
            qtq.sub(&Matrix::identity(n)).unwrap().max_abs()
        );
    }

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v: f64 = rng.gen_range(-10.0..10.0);
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    #[test]
    fn random_matrices_reconstruct() {
        for (n, seed) in [(3usize, 1u64), (8, 2), (20, 3), (50, 4)] {
            let a = random_symmetric(n, seed);
            let e = sym_eigen(&a).unwrap();
            check_orthonormal(&e.vectors, 1e-9);
            let back = e.reconstruct();
            assert!(
                back.approx_eq(&a, 1e-8 * a.max_abs().max(1.0)),
                "n={n} reconstruction error {}",
                back.sub(&a).unwrap().max_abs()
            );
            // sorted descending
            for w in e.values.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn ql_and_jacobi_agree() {
        for (n, seed) in [(5usize, 10u64), (16, 11), (40, 12)] {
            let a = random_symmetric(n, seed);
            let e1 = sym_eigen(&a).unwrap();
            let e2 = sym_eigen_jacobi(&a).unwrap();
            for (v1, v2) in e1.values.iter().zip(&e2.values) {
                assert!(
                    (v1 - v2).abs() < 1e-7 * a.max_abs().max(1.0),
                    "n={n}: {v1} vs {v2}"
                );
            }
            assert!(e2.residual(&a).unwrap() < 1e-7 * a.max_abs().max(1.0));
        }
    }

    #[test]
    fn gram_matrix_eigenvalues_nonnegative() {
        // Eigenvalues of XᵀX must be ≥ 0 (they are squared singular values,
        // Lemma 3.2) — a key numerical invariant for the SVD route.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let x = Matrix::from_fn(30, 12, |_, _| rng.gen_range(-5.0..5.0));
        let e = sym_eigen(&x.gram()).unwrap();
        for &v in &e.values {
            assert!(v >= -1e-8, "negative eigenvalue {v}");
        }
    }

    #[test]
    fn degenerate_eigenvalues_handled() {
        // A matrix with a repeated eigenvalue: [[2,0,0],[0,2,0],[0,0,1]].
        let a = sym_from(vec![
            vec![2.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 2.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
        check_orthonormal(&e.vectors, 1e-10);
    }

    #[test]
    fn negative_eigenvalues_sorted_correctly() {
        let a = sym_from(vec![vec![-3.0, 0.0], vec![0.0, -1.0]]);
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] + 3.0).abs() < 1e-12);
    }

    #[test]
    fn rank_one_matrix() {
        // outer product vvᵀ with v = (1,2,3): eigenvalues (14, 0, 0)
        let v = [1.0, 2.0, 3.0];
        let a = Matrix::from_fn(3, 3, |i, j| v[i] * v[j]);
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 14.0).abs() < 1e-10);
        assert!(e.values[1].abs() < 1e-10);
        assert!(e.values[2].abs() < 1e-10);
        // dominant eigenvector parallel to v
        let q0 = e.vector(0);
        let scale = q0[0] / (v[0] / 14.0f64.sqrt());
        for i in 0..3 {
            assert!((q0[i] - scale * v[i] / 14.0f64.sqrt()).abs() < 1e-9);
        }
    }

    #[test]
    fn trace_preserved() {
        let a = random_symmetric(25, 77);
        let trace: f64 = (0..25).map(|i| a[(i, i)]).sum();
        let e = sym_eigen(&a).unwrap();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-8);
    }
}
