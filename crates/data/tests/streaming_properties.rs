//! Property tests pinning the streaming generators' bitwise contract:
//! for any `(n, chunk_size)`, the first `n` rows pulled from a
//! [`StreamingPhone`] / [`StreamingStocks`] are bit-identical to the
//! corresponding rows of the materializing `generate_*` call with the
//! same config. This is the invariant the out-of-core build passes
//! rely on — results must not depend on how the rows were buffered.

use ats_data::{generate_phone, generate_stocks, PhoneConfig, StocksConfig};
use ats_data::{StreamingPhone, StreamingStocks};
use ats_storage::RowSource;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn phone_prefix_bitwise_equal(
        n in 1usize..200,
        chunk in 1usize..70,
        seed in any::<u64>(),
    ) {
        let cfg = PhoneConfig {
            customers: 200,
            days: 24,
            seed,
            ..PhoneConfig::small()
        };
        let full = generate_phone(&cfg);
        let src = StreamingPhone::new(cfg).with_chunk_rows(chunk);
        let mut visited = 0usize;
        src.scan_range(0, n, &mut |i, row| {
            let want = full.matrix().row(i);
            prop_assert_eq!(row.len(), want.len());
            for (c, (a, b)) in row.iter().zip(want).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "cell ({}, {}) differs at chunk_rows={}",
                    i, c, chunk
                );
            }
            visited += 1;
            Ok(())
        }).unwrap();
        prop_assert_eq!(visited, n);
    }

    #[test]
    fn phone_subrange_bitwise_equal(
        range in (0usize..150).prop_flat_map(|s| (Just(s), s..150)),
        chunk in 1usize..40,
        seed in any::<u64>(),
    ) {
        // Cold scans of an arbitrary [start, end) — not just prefixes —
        // must also match, since shard fan-out starts mid-matrix.
        let (start, end) = range;
        let cfg = PhoneConfig {
            customers: 150,
            days: 16,
            seed,
            ..PhoneConfig::small()
        };
        let full = generate_phone(&cfg);
        let src = StreamingPhone::new(cfg).with_chunk_rows(chunk);
        src.scan_range(start, end, &mut |i, row| {
            for (a, b) in row.iter().zip(full.matrix().row(i)) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "row {} differs", i);
            }
            Ok(())
        }).unwrap();
    }

    #[test]
    fn stocks_prefix_bitwise_equal(
        n in 1usize..120,
        chunk in 1usize..50,
        seed in any::<u64>(),
    ) {
        let cfg = StocksConfig {
            stocks: 120,
            days: 20,
            seed,
            ..StocksConfig::small()
        };
        let full = generate_stocks(&cfg);
        let src = StreamingStocks::new(cfg).with_chunk_rows(chunk);
        src.scan_range(0, n, &mut |i, row| {
            for (a, b) in row.iter().zip(full.matrix().row(i)) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "row {} differs", i);
            }
            Ok(())
        }).unwrap();
    }
}
