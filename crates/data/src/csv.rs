//! Minimal CSV import/export for numeric matrices.
//!
//! Real deployments of this system would ingest warehouse extracts; CSV
//! is the lingua franca. The dialect is deliberately strict: comma
//! separator, one row per line, every cell a decimal number, optional
//! single header line (skipped on request). No quoting — these are
//! numeric matrices.

use ats_common::{AtsError, Result};
use ats_linalg::Matrix;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Write `m` as CSV to `path` (no header line).
pub fn write_csv(path: impl AsRef<Path>, m: &Matrix) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    let mut line = String::new();
    for row in m.iter_rows() {
        line.clear();
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                line.push(',');
            }
            // Shortest roundtrip representation.
            line.push_str(&format!("{v}"));
        }
        line.push('\n');
        out.write_all(line.as_bytes())?;
    }
    out.flush()?;
    Ok(())
}

/// Read a CSV of numbers into a matrix. `skip_header` drops the first
/// line. Blank lines are ignored; ragged rows and non-numeric cells are
/// errors.
pub fn read_csv(path: impl AsRef<Path>, skip_header: bool) -> Result<Matrix> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut width: Option<usize> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 && skip_header {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let row: Vec<f64> = trimmed
            .split(',')
            .map(|cell| {
                cell.trim().parse::<f64>().map_err(|_| {
                    AtsError::Corrupt(format!(
                        "line {}: cell {cell:?} is not a number",
                        lineno + 1
                    ))
                })
            })
            .collect::<Result<_>>()?;
        if let Some(w) = width {
            if row.len() != w {
                return Err(AtsError::Corrupt(format!(
                    "line {}: {} cells, expected {w}",
                    lineno + 1,
                    row.len()
                )));
            }
        } else {
            width = Some(row.len());
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(AtsError::Corrupt("CSV contains no data rows".into()));
    }
    Matrix::from_rows(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ats-csv-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn roundtrip() {
        let p = tmp("rt.csv");
        let m = Matrix::from_fn(5, 3, |i, j| i as f64 * 1.5 - j as f64 * 0.25);
        write_csv(&p, &m).unwrap();
        let back = read_csv(&p, false).unwrap();
        assert!(back.approx_eq(&m, 0.0), "CSV roundtrip must be exact");
    }

    #[test]
    fn header_skipped() {
        let p = tmp("hdr.csv");
        std::fs::write(&p, "a,b\n1,2\n3,4\n").unwrap();
        let m = read_csv(&p, true).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(1, 1)], 4.0);
        assert!(read_csv(&p, false).is_err()); // header not numeric
    }

    #[test]
    fn blank_lines_ignored() {
        let p = tmp("blank.csv");
        std::fs::write(&p, "1,2\n\n3,4\n\n").unwrap();
        assert_eq!(read_csv(&p, false).unwrap().shape(), (2, 2));
    }

    #[test]
    fn ragged_rejected() {
        let p = tmp("ragged.csv");
        std::fs::write(&p, "1,2\n3\n").unwrap();
        let err = read_csv(&p, false).unwrap_err();
        assert!(err.to_string().contains("expected 2"));
    }

    #[test]
    fn empty_rejected() {
        let p = tmp("empty.csv");
        std::fs::write(&p, "").unwrap();
        assert!(read_csv(&p, false).is_err());
    }

    #[test]
    fn special_values_roundtrip() {
        let p = tmp("special.csv");
        let m = Matrix::from_rows(vec![vec![1e-300, -1e300, 0.1 + 0.2]]).unwrap();
        write_csv(&p, &m).unwrap();
        let back = read_csv(&p, false).unwrap();
        assert!(back.approx_eq(&m, 0.0));
    }
}
