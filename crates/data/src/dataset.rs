//! The [`Dataset`] carrier type.

use ats_common::{AtsError, OnlineStats, Result};
use ats_linalg::Matrix;
use std::path::Path;

/// A named `N × M` time-sequence dataset: `N` sequences ("customers") of
/// `M` observations ("days") each.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    matrix: Matrix,
}

impl Dataset {
    /// Wrap a matrix with a name.
    pub fn new(name: impl Into<String>, matrix: Matrix) -> Self {
        Dataset {
            name: name.into(),
            matrix,
        }
    }

    /// Dataset name (e.g. `"phone2000"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Consume into the underlying matrix.
    pub fn into_matrix(self) -> Matrix {
        self.matrix
    }

    /// Number of sequences (`N`).
    pub fn rows(&self) -> usize {
        self.matrix.rows()
    }

    /// Sequence length (`M`).
    pub fn cols(&self) -> usize {
        self.matrix.cols()
    }

    /// The paper's `phoneN` convention: a prefix of the first `n` rows,
    /// renamed accordingly. Errors if `n` exceeds the row count.
    pub fn subset(&self, n: usize) -> Result<Dataset> {
        if n > self.rows() {
            return Err(AtsError::oob("subset rows", n, self.rows() + 1));
        }
        let mut m = self.matrix.clone();
        m.truncate_rows(n);
        Ok(Dataset {
            name: format!("{}[..{n}]", self.name),
            matrix: m,
        })
    }

    /// Single-pass summary statistics over all cells.
    pub fn cell_stats(&self) -> OnlineStats {
        let mut s = OnlineStats::new();
        s.push_slice(self.matrix.as_slice());
        s
    }

    /// Standard deviation of all cells — the normalizer in the paper's
    /// RMSPE (Def. 5.1) and worst-case error tables.
    pub fn std_dev(&self) -> f64 {
        self.cell_stats().population_std_dev()
    }

    /// Uncompressed size in bytes at `b` bytes per number (the paper uses
    /// `b = 8` for doubles in our experiments).
    pub fn uncompressed_bytes(&self, b: usize) -> usize {
        self.rows() * self.cols() * b
    }

    /// Persist to an `.atsm` matrix file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        ats_storage::file::write_matrix(path, &self.matrix)?;
        Ok(())
    }

    /// Load from an `.atsm` matrix file.
    pub fn load(name: impl Into<String>, path: impl AsRef<Path>) -> Result<Dataset> {
        let m = ats_storage::file::read_matrix(path)?;
        Ok(Dataset::new(name, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::new("toy", Matrix::from_fn(10, 4, |i, j| (i * 4 + j) as f64))
    }

    #[test]
    fn accessors() {
        let d = ds();
        assert_eq!(d.name(), "toy");
        assert_eq!(d.rows(), 10);
        assert_eq!(d.cols(), 4);
    }

    #[test]
    fn subset_prefix_semantics() {
        let d = ds();
        let s = d.subset(3).unwrap();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 4);
        assert_eq!(s.matrix().row(2), d.matrix().row(2));
        assert!(s.name().contains("3"));
        assert!(d.subset(11).is_err());
        assert_eq!(d.subset(10).unwrap().rows(), 10);
    }

    #[test]
    fn stats_match_direct_computation() {
        let d = ds();
        let vals: Vec<f64> = (0..40).map(f64::from).collect();
        let mean = vals.iter().sum::<f64>() / 40.0;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 40.0;
        let s = d.cell_stats();
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((d.std_dev() - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn uncompressed_bytes_formula() {
        assert_eq!(ds().uncompressed_bytes(8), 10 * 4 * 8);
        assert_eq!(ds().uncompressed_bytes(4), 160);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ats-data-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.atsm");
        let d = ds();
        d.save(&path).unwrap();
        let back = Dataset::load("toy2", &path).unwrap();
        assert_eq!(back.name(), "toy2");
        assert!(back.matrix().approx_eq(d.matrix(), 0.0));
    }
}
