//! Synthetic customer calling-pattern data (the `phone*` datasets).
//!
//! The paper's `phone100K` dataset (AT&T daily call volumes) is
//! proprietary. This generator reproduces the structural properties the
//! paper's experiments depend on:
//!
//! 1. **Low-rank day structure.** Customers are mixtures of a handful of
//!    behavioural archetypes over the week (weekday-business,
//!    weekend-residential, uniform, bursty) modulated by shared weekly
//!    and annual seasonality — so the dominant principal components carry
//!    most of the energy, which is what makes SVD compression work at all
//!    (Fig. 6a).
//! 2. **Zipf-heavy volumes.** Per-customer total volume follows a
//!    Zipf-like law; a few huge customers dominate, the majority are
//!    small — the skew visible in the paper's Fig. 11 scatter plot and
//!    the reason worst-case errors of plain SVD explode with `N`
//!    (Table 4).
//! 3. **Sparse spikes.** A small fraction of cells get multiplicative
//!    spikes (an unusual calling day). These are precisely the outliers
//!    SVDD patches with deltas (Fig. 8's steep error drop-off).
//! 4. **All-zero customers.** A configurable fraction made no calls at
//!    all (§6.2's "practical issue").

use crate::dataset::Dataset;
use crate::perm::{mix_stream, RankShuffle};
use ats_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reserved RNG stream for the volume-rank permutation keys (row streams
/// use the row index itself, which can never reach this value).
pub(crate) const PHONE_PERM_STREAM: u64 = u64::MAX - 1;

/// Configuration for [`generate_phone`].
#[derive(Debug, Clone)]
pub struct PhoneConfig {
    /// Number of customers (`N`). Paper: up to 100 000.
    pub customers: usize,
    /// Number of days (`M`). Paper: 366.
    pub days: usize,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
    /// Zipf exponent for the customer volume distribution (≈0.8–1.2).
    pub zipf_exponent: f64,
    /// Base daily volume of the largest customer, in dollars.
    pub top_volume: f64,
    /// Per-cell probability of a multiplicative spike.
    pub spike_prob: f64,
    /// Fraction of customers with no calls at all (§6.2).
    pub zero_fraction: f64,
    /// Multiplicative log-normal noise scale (0 = noiseless).
    pub noise: f64,
}

impl Default for PhoneConfig {
    fn default() -> Self {
        PhoneConfig {
            customers: 2_000,
            days: 366,
            seed: 42,
            zipf_exponent: 1.0,
            top_volume: 500.0,
            spike_prob: 0.002,
            zero_fraction: 0.01,
            noise: 0.25,
        }
    }
}

impl PhoneConfig {
    /// The paper's `phone2000` benchmark configuration.
    pub fn phone2000() -> Self {
        PhoneConfig::default()
    }

    /// The paper's full `phone100K` configuration (large: ~0.3 GB as f64).
    pub fn phone100k() -> Self {
        PhoneConfig {
            customers: 100_000,
            ..PhoneConfig::default()
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> Self {
        PhoneConfig {
            customers: 200,
            days: 56,
            ..PhoneConfig::default()
        }
    }
}

/// Weekly archetypes: relative intensity per day-of-week (Mon..Sun).
const ARCHETYPES: [[f64; 7]; 4] = [
    // business: strong weekdays, near-silent weekends
    [1.0, 1.05, 1.0, 0.95, 0.9, 0.05, 0.03],
    // residential: quiet weekdays, busy weekends
    [0.15, 0.15, 0.2, 0.25, 0.4, 1.0, 0.9],
    // uniform: steady all week
    [0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6],
    // evening/burst: mid-week heavy
    [0.3, 0.7, 1.2, 0.7, 0.3, 0.2, 0.2],
];

/// Annual seasonality shared by everyone: mild sinusoid + holiday dip.
/// Deterministic in `m` alone (no RNG draws).
pub(crate) fn season_profile(m: usize) -> Vec<f64> {
    (0..m)
        .map(|d| {
            let t = d as f64 / 366.0;
            let base = 1.0 + 0.15 * (2.0 * std::f64::consts::PI * t).sin();
            // end-of-year slowdown for business traffic
            let holiday = if m > 300 && d >= m - 10 { 0.7 } else { 1.0 };
            base * holiday
        })
        .collect()
}

/// The volume-rank permutation for a dataset of `n` customers. Replaces
/// the old sequential Fisher–Yates shuffle with a bijective
/// [`RankShuffle`] so row `i`'s volume is computable in `O(1)` — the
/// multiset of assigned volumes is identical (every rank `1..=n` appears
/// exactly once), just scattered by a different pseudo-random bijection.
pub(crate) fn volume_permutation(cfg: &PhoneConfig) -> RankShuffle {
    RankShuffle::new(cfg.customers, mix_stream(cfg.seed, PHONE_PERM_STREAM))
}

/// Base daily volume of customer `i`: Zipf over the permuted rank.
pub(crate) fn customer_volume(cfg: &PhoneConfig, perm: &RankShuffle, i: usize) -> f64 {
    let rank = perm.apply(i as u64) + 1;
    cfg.top_volume / (rank as f64).powf(cfg.zipf_exponent)
}

/// The per-row RNG stream: every customer draws from an independent
/// generator seeded from `(dataset seed, row index)`, so any row is
/// computable without simulating its predecessors — the property the
/// streaming source ([`crate::streaming::StreamingPhone`]) relies on.
pub(crate) fn row_rng(seed: u64, i: usize) -> StdRng {
    StdRng::seed_from_u64(mix_stream(seed, i as u64))
}

/// Fill one customer's row (`out.len() == cfg.days`). Deterministic in
/// `(cfg, i)`; both [`generate_phone`] and the streaming source call
/// this, which is what makes their outputs bitwise identical.
pub(crate) fn fill_phone_row(
    cfg: &PhoneConfig,
    perm: &RankShuffle,
    season: &[f64],
    i: usize,
    out: &mut [f64],
) {
    out.fill(0.0);
    let mut rng = row_rng(cfg.seed, i);
    if rng.gen_bool(cfg.zero_fraction.clamp(0.0, 1.0)) {
        return; // an all-zero customer
    }
    let vol = customer_volume(cfg, perm, i);
    // Each customer is a mixture of one dominant archetype plus a
    // small admixture of another — keeps effective rank low but > 4.
    let a = rng.gen_range(0..ARCHETYPES.len());
    let b = rng.gen_range(0..ARCHETYPES.len());
    let mix: f64 = rng.gen_range(0.0..0.25);
    let phase: usize = rng.gen_range(0..7); // which weekday day 0 is
    for ((d, cell), &season_d) in out.iter_mut().enumerate().zip(season) {
        let dow = (d + phase) % 7;
        let pattern = ARCHETYPES[a][dow] * (1.0 - mix) + ARCHETYPES[b][dow] * mix;
        let mut v = vol * pattern * season_d;
        if cfg.noise > 0.0 {
            // log-normal multiplicative noise, mean ≈ 1
            let z: f64 = sample_standard_normal(&mut rng);
            v *= (cfg.noise * z - 0.5 * cfg.noise * cfg.noise).exp();
        }
        if cfg.spike_prob > 0.0 && rng.gen_bool(cfg.spike_prob) {
            v *= rng.gen_range(5.0..25.0);
        }
        *cell = (v.max(0.0) * 100.0).round() / 100.0; // cents
    }
}

/// Generate a synthetic phone dataset. Deterministic in `cfg`, and row
/// `i` equals row `i` of [`crate::streaming::StreamingPhone`] bit for
/// bit (both run the same per-row fill function).
pub fn generate_phone(cfg: &PhoneConfig) -> Dataset {
    let n = cfg.customers;
    let m = cfg.days;
    let season = season_profile(m);
    let perm = volume_permutation(cfg);
    let mut matrix = Matrix::zeros(n, m);
    for i in 0..n {
        fill_phone_row(cfg, &perm, &season, i, matrix.row_mut(i));
    }
    Dataset::new(format!("phone{n}"), matrix)
}

/// Box–Muller standard normal (avoids depending on rand_distr).
pub(crate) fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_linalg::{Svd, SvdOptions};

    fn gen_small(seed: u64) -> Dataset {
        generate_phone(&PhoneConfig {
            seed,
            ..PhoneConfig::small()
        })
    }

    #[test]
    fn deterministic_given_seed() {
        let a = gen_small(7);
        let b = gen_small(7);
        assert!(a.matrix().approx_eq(b.matrix(), 0.0));
        let c = gen_small(8);
        assert!(!a.matrix().approx_eq(c.matrix(), 1e-9));
    }

    #[test]
    fn dimensions_and_nonnegativity() {
        let d = gen_small(1);
        assert_eq!(d.rows(), 200);
        assert_eq!(d.cols(), 56);
        assert!(d
            .matrix()
            .as_slice()
            .iter()
            .all(|&v| v >= 0.0 && v.is_finite()));
    }

    #[test]
    fn has_zero_customers() {
        let d = generate_phone(&PhoneConfig {
            zero_fraction: 0.2,
            ..PhoneConfig::small()
        });
        let zeros = d
            .matrix()
            .iter_rows()
            .filter(|r| r.iter().all(|&v| v == 0.0))
            .count();
        assert!(zeros >= 10, "expected ≥10 all-zero customers, got {zeros}");
    }

    #[test]
    fn volume_distribution_is_heavy_tailed() {
        let d = gen_small(3);
        let mut totals: Vec<f64> = d.matrix().iter_rows().map(|r| r.iter().sum()).collect();
        totals.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top = totals[0];
        let median = totals[totals.len() / 2];
        assert!(
            top > 20.0 * median.max(1e-9),
            "Zipf skew missing: top {top}, median {median}"
        );
    }

    #[test]
    fn low_rank_structure() {
        // Most energy in the first few PCs: the property SVD compression
        // exploits. With 4 archetypes + seasonality + noise, the top 8
        // components should carry the bulk of the variance.
        let d = generate_phone(&PhoneConfig {
            noise: 0.15,
            spike_prob: 0.0,
            ..PhoneConfig::small()
        });
        let svd = Svd::compute(d.matrix(), SvdOptions::default()).unwrap();
        let e8 = svd.energy(8);
        assert!(e8 > 0.85, "top-8 energy only {e8}");
    }

    #[test]
    fn spikes_create_outlier_cells() {
        // Count cells that exceed 8× their own row's mean: with spikes
        // enabled this count should grow dramatically (these are the cells
        // SVDD stores deltas for).
        let count_outliers = |d: &Dataset| -> usize {
            d.matrix()
                .iter_rows()
                .map(|r| {
                    let mean = r.iter().sum::<f64>() / r.len() as f64;
                    if mean <= 0.0 {
                        return 0;
                    }
                    r.iter().filter(|&&v| v > 8.0 * mean).count()
                })
                .sum()
        };
        let no_spikes = generate_phone(&PhoneConfig {
            spike_prob: 0.0,
            seed: 9,
            ..PhoneConfig::small()
        });
        let spikes = generate_phone(&PhoneConfig {
            spike_prob: 0.02,
            seed: 9,
            ..PhoneConfig::small()
        });
        let (base, spiked) = (count_outliers(&no_spikes), count_outliers(&spikes));
        assert!(
            spiked > base + 20,
            "spikes did not create outliers: {base} -> {spiked}"
        );
    }

    #[test]
    fn weekly_periodicity_visible() {
        // Autocorrelation at lag 7 of the column-sum series should beat
        // lag 3 (weekly rhythm dominates).
        let d = generate_phone(&PhoneConfig {
            zero_fraction: 0.0,
            spike_prob: 0.0,
            noise: 0.1,
            ..PhoneConfig::small()
        });
        let m = d.cols();
        let colsum: Vec<f64> = (0..m)
            .map(|j| d.matrix().col(j).iter().sum::<f64>())
            .collect();
        let mean = colsum.iter().sum::<f64>() / m as f64;
        let ac = |lag: usize| -> f64 {
            (0..m - lag)
                .map(|t| (colsum[t] - mean) * (colsum[t + lag] - mean))
                .sum::<f64>()
        };
        assert!(ac(7) > ac(3), "lag-7 autocorr {} ≤ lag-3 {}", ac(7), ac(3));
    }

    #[test]
    fn phone2000_config_shape() {
        let cfg = PhoneConfig::phone2000();
        assert_eq!(cfg.customers, 2000);
        assert_eq!(cfg.days, 366);
        let cfg_big = PhoneConfig::phone100k();
        assert_eq!(cfg_big.customers, 100_000);
    }
}
