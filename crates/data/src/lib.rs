//! # ats-data
//!
//! Datasets for the `adhoc-ts` workspace.
//!
//! The paper evaluates on two real datasets we cannot have:
//!
//! - **`phone100K`** — daily call volumes of 100 000 AT&T customers over
//!   366 days (≈0.2 GB), plus prefixes `phone1000`, `phone2000`, … used
//!   for the scale-up study;
//! - **`stocks`** — daily closing prices of 381 stocks over 128 days.
//!
//! [`phone`] and [`stocks`] are synthetic generators engineered to
//! reproduce the *structural* properties those datasets contribute to the
//! paper's results (see DESIGN.md §2 for the substitution argument):
//! low-rank day-pattern structure with a Zipf-heavy customer-volume tail
//! and sparse spikes for phone data; a dominant common market factor with
//! highly autocorrelated rows for stocks.
//!
//! [`dataset::Dataset`] is the carrier type: a named matrix with summary
//! statistics, subset extraction (the paper's `phoneN` prefixes), and
//! CSV / `.atsm` persistence.

pub mod csv;
pub mod dataset;
mod perm;
pub mod phone;
pub mod sales;
pub mod stocks;
pub mod streaming;

pub use dataset::Dataset;
pub use phone::{generate_phone, PhoneConfig};
pub use sales::{generate_sales, SalesConfig, SalesCube};
pub use stocks::{generate_stocks, StocksConfig};
pub use streaming::{StreamingPhone, StreamingStocks};
