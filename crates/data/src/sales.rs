//! Synthetic retail sales cubes (§6.1's `productid × storeid × weekid`
//! example).
//!
//! A multiplicative low-rank model with realistic wrinkles: product
//! popularity follows a heavy-tailed law, store sizes vary, weekly
//! seasonality is shared, and occasional promotions create spike cells
//! (the DataCube analogue of the phone data's outlier days).

use ats_common::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate_sales`].
#[derive(Debug, Clone)]
pub struct SalesConfig {
    /// Number of products.
    pub products: usize,
    /// Number of stores.
    pub stores: usize,
    /// Number of weeks.
    pub weeks: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability a (product, store, week) cell is a promotion spike.
    pub promo_prob: f64,
    /// Multiplicative noise scale.
    pub noise: f64,
}

impl Default for SalesConfig {
    fn default() -> Self {
        SalesConfig {
            products: 200,
            stores: 30,
            weeks: 52,
            seed: 2024,
            promo_prob: 0.001,
            noise: 0.05,
        }
    }
}

/// Flat row-major cube values (`products × stores × weeks`, week varies
/// fastest) plus the shape. Returned flat so `ats-data` does not depend
/// on `ats-cube`; `Cube::from_fn`/`Matrix::from_vec` both accept it.
pub struct SalesCube {
    /// `[products, stores, weeks]`.
    pub shape: [usize; 3],
    /// Row-major cell values.
    pub values: Vec<f64>,
}

impl SalesCube {
    /// Value at `(product, store, week)` (unchecked beyond debug).
    pub fn get(&self, p: usize, s: usize, w: usize) -> f64 {
        let [_, ns, nw] = self.shape;
        self.values[(p * ns + s) * nw + w]
    }
}

/// Generate a sales cube. Deterministic in `cfg`.
pub fn generate_sales(cfg: &SalesConfig) -> Result<SalesCube> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (np, ns, nw) = (cfg.products.max(1), cfg.stores.max(1), cfg.weeks.max(1));

    // Heavy-tailed product popularity: few hits, many slow movers.
    let mut popularity: Vec<f64> = (1..=np)
        .map(|rank| 200.0 / (rank as f64).powf(0.9))
        .collect();
    for i in (1..np).rev() {
        let j = rng.gen_range(0..=i);
        popularity.swap(i, j);
    }
    let size: Vec<f64> = (0..ns).map(|_| rng.gen_range(0.5..3.0)).collect();
    let season: Vec<f64> = (0..nw)
        .map(|w| {
            1.0 + 0.4 * (2.0 * std::f64::consts::PI * w as f64 / 52.0).sin()
                + if w >= 46 && nw >= 48 { 0.8 } else { 0.0 } // holidays
        })
        .collect();

    let mut values = Vec::with_capacity(np * ns * nw);
    for &pop in &popularity {
        for &sz in &size {
            for &sea in &season {
                let mut v = pop * sz * sea;
                if cfg.noise > 0.0 {
                    v *= 1.0 + cfg.noise * (rng.gen_range(-1.0..1.0));
                }
                if cfg.promo_prob > 0.0 && rng.gen_bool(cfg.promo_prob) {
                    v *= rng.gen_range(3.0..8.0);
                }
                values.push((v.max(0.0) * 100.0).round() / 100.0);
            }
        }
    }
    Ok(SalesCube {
        shape: [np, ns, nw],
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_shaped() {
        let cfg = SalesConfig {
            products: 10,
            stores: 4,
            weeks: 8,
            ..SalesConfig::default()
        };
        let a = generate_sales(&cfg).unwrap();
        let b = generate_sales(&cfg).unwrap();
        assert_eq!(a.shape, [10, 4, 8]);
        assert_eq!(a.values, b.values);
        assert_eq!(a.values.len(), 320);
    }

    #[test]
    fn nonnegative_and_finite() {
        let c = generate_sales(&SalesConfig::default()).unwrap();
        assert!(c.values.iter().all(|&v| v >= 0.0 && v.is_finite()));
    }

    #[test]
    fn indexing_consistent() {
        let cfg = SalesConfig {
            products: 3,
            stores: 2,
            weeks: 4,
            ..SalesConfig::default()
        };
        let c = generate_sales(&cfg).unwrap();
        // get() walks the same layout values was filled in
        let mut k = 0;
        for p in 0..3 {
            for s in 0..2 {
                for w in 0..4 {
                    assert_eq!(c.get(p, s, w), c.values[k]);
                    k += 1;
                }
            }
        }
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let c = generate_sales(&SalesConfig::default()).unwrap();
        let [np, ns, nw] = c.shape;
        let mut totals: Vec<f64> = (0..np)
            .map(|p| {
                (0..ns)
                    .flat_map(|s| (0..nw).map(move |w| (s, w)))
                    .map(|(s, w)| c.get(p, s, w))
                    .sum()
            })
            .collect();
        totals.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!(totals[0] > 10.0 * totals[np / 2], "no heavy tail");
    }

    #[test]
    fn promos_create_spikes() {
        let base = generate_sales(&SalesConfig {
            promo_prob: 0.0,
            seed: 5,
            ..SalesConfig::default()
        })
        .unwrap();
        let promo = generate_sales(&SalesConfig {
            promo_prob: 0.01,
            seed: 5,
            ..SalesConfig::default()
        })
        .unwrap();
        let max = |c: &SalesCube| c.values.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(max(&promo) > 1.5 * max(&base));
    }
}
