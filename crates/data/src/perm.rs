//! Per-row RNG streams and a bijective rank permutation.
//!
//! The streaming generators ([`crate::streaming`]) need random access to
//! any row in `O(M)` work: row `i` of a dataset must be computable
//! without simulating rows `0..i`. Two ingredients make that possible:
//!
//! 1. **Per-row RNG streams** — instead of one sequential generator
//!    whose consumption depends on every earlier row, each row draws from
//!    its own `StdRng` seeded by a SplitMix64-style mix of the dataset
//!    seed and the row index ([`mix_stream`]).
//! 2. **A bijective rank permutation** ([`RankShuffle`]) — the phone
//!    generator assigns Zipf volume ranks "in random order". A
//!    Fisher–Yates shuffle is inherently sequential, so the streaming
//!    form uses a 4-round Feistel network over the smallest balanced
//!    power-of-two domain ≥ `n`, with cycle-walking to stay inside
//!    `[0, n)`. This is a uniform-looking bijection computable in `O(1)`
//!    expected time per row.

/// Mix a dataset seed with a stream index into an independent 64-bit
/// seed (SplitMix64 finalizer). Used both for per-row streams
/// (`stream = row index`) and for auxiliary streams (market walk,
/// permutation keys) at reserved stream numbers.
#[inline]
pub(crate) fn mix_stream(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A pseudo-random bijection on `[0, n)`.
///
/// Feistel construction: the domain is `[0, 2^(2h))` with `2^(2h) ≥ n`
/// (so the domain is less than `4n`); four rounds of
/// `(l, r) → (r, l ⊕ F(r))` with keyed SplitMix64 round functions give a
/// well-mixed permutation of the power-of-two domain, and cycle-walking
/// (re-applying the network while the image lands outside `[0, n)`)
/// restricts it to a bijection on `[0, n)`. Expected cycle-walk length
/// is `domain / n < 4`; termination is guaranteed because the walk
/// follows the cycle of the start point, which is itself `< n`.
#[derive(Debug, Clone)]
pub(crate) struct RankShuffle {
    n: u64,
    half_bits: u32,
    keys: [u64; 4],
}

impl RankShuffle {
    /// Build a permutation of `[0, n)` keyed by `seed`.
    pub(crate) fn new(n: usize, seed: u64) -> Self {
        let n64 = n as u64;
        // ceil(log2(n)) for n ≥ 2; tiny domains still get 2 half-bits so
        // the network has something to mix.
        let bits = 64 - n64.saturating_sub(1).leading_zeros();
        let half_bits = bits.div_ceil(2).max(1);
        RankShuffle {
            n: n64,
            half_bits,
            keys: [
                mix_stream(seed, 1),
                mix_stream(seed, 2),
                mix_stream(seed, 3),
                mix_stream(seed, 4),
            ],
        }
    }

    /// Image of `i` under the permutation. `i` must be `< n`.
    pub(crate) fn apply(&self, i: u64) -> u64 {
        debug_assert!(i < self.n, "RankShuffle::apply: {i} out of [0, {})", self.n);
        let mask = (1u64 << self.half_bits) - 1;
        let mut x = i & ((mask << self.half_bits) | mask);
        loop {
            let mut l = x >> self.half_bits;
            let mut r = x & mask;
            for &k in &self.keys {
                let t = r;
                r = l ^ (mix_stream(k, r) & mask);
                l = t;
            }
            x = (l << self.half_bits) | r;
            if x < self.n {
                return x;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_bijection() {
        for n in [1usize, 2, 3, 7, 64, 100, 1000] {
            let p = RankShuffle::new(n, 42);
            let mut seen = vec![false; n];
            for i in 0..n {
                let img = p.apply(i as u64) as usize;
                assert!(img < n, "image {img} out of range for n={n}");
                assert!(!seen[img], "duplicate image {img} for n={n}");
                seen[img] = true;
            }
        }
    }

    #[test]
    fn keyed_by_seed() {
        let n = 500;
        let a = RankShuffle::new(n, 1);
        let b = RankShuffle::new(n, 2);
        let differs = (0..n as u64).filter(|&i| a.apply(i) != b.apply(i)).count();
        assert!(differs > n / 2, "seeds barely change the permutation");
    }

    #[test]
    fn actually_shuffles() {
        // Not the identity and no long fixed prefix.
        let n = 1000;
        let p = RankShuffle::new(n, 7);
        let fixed = (0..n as u64).filter(|&i| p.apply(i) == i).count();
        assert!(fixed < n / 10, "{fixed} fixed points of {n}");
    }

    #[test]
    fn mix_stream_spreads() {
        // Adjacent streams map far apart.
        let a = mix_stream(42, 0);
        let b = mix_stream(42, 1);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10);
    }
}
