//! Synthetic daily stock closing prices (the `stocks` dataset).
//!
//! The paper's `stocks` dataset is 381 stocks × 128 daily closing prices.
//! Two of its properties drive the paper's observations:
//!
//! 1. Successive prices are highly correlated (stocks are "modeled well
//!    as random walks", §5.1), which is why DCT is competitive on this
//!    dataset (Fig. 6b) unlike on phone data;
//! 2. most stocks "followed the general pattern of the stock market"
//!    (Appendix A): in SVD space nearly all rows hug the first
//!    eigenvector, explaining the excellent compression and the absence
//!    of natural clusters.
//!
//! The generator produces geometric random walks sharing a common market
//! factor: `log p_i(t) = log s_i + β_i · m(t) + idio_i(t)`, with `m` a
//! persistent market walk, `β_i ≈ 1`, and a small idiosyncratic walk.

use crate::dataset::Dataset;
use crate::perm::mix_stream;
use ats_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reserved RNG stream for the shared market walk (row streams use the
/// row index itself, which can never reach this value).
pub(crate) const MARKET_STREAM: u64 = u64::MAX - 2;

/// Configuration for [`generate_stocks`].
#[derive(Debug, Clone)]
pub struct StocksConfig {
    /// Number of stocks (`N`). Paper: 381.
    pub stocks: usize,
    /// Number of trading days (`M`). Paper: 128.
    pub days: usize,
    /// RNG seed.
    pub seed: u64,
    /// Daily volatility of the shared market factor.
    pub market_vol: f64,
    /// Daily idiosyncratic volatility per stock.
    pub idio_vol: f64,
}

impl Default for StocksConfig {
    fn default() -> Self {
        StocksConfig {
            stocks: 381,
            days: 128,
            seed: 1729,
            market_vol: 0.01,
            idio_vol: 0.004,
        }
    }
}

impl StocksConfig {
    /// The paper's `stocks` configuration (381 × 128).
    pub fn paper() -> Self {
        StocksConfig::default()
    }

    /// A small configuration for fast tests.
    pub fn small() -> Self {
        StocksConfig {
            stocks: 60,
            days: 64,
            ..StocksConfig::default()
        }
    }
}

/// The market factor shared by every stock: a persistent random walk
/// with slight drift, drawn from its own reserved RNG stream so it is
/// independent of any row's stream.
pub(crate) fn market_walk(cfg: &StocksConfig) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(mix_stream(cfg.seed, MARKET_STREAM));
    let mut market = vec![0.0f64; cfg.days];
    let drift = 0.0004;
    for t in 1..cfg.days {
        let z = normal(&mut rng);
        market[t] = market[t - 1] + drift + cfg.market_vol * z;
    }
    market
}

/// Fill one stock's row (`out.len() == cfg.days`). Deterministic in
/// `(cfg, i)` given the shared `market` walk; both [`generate_stocks`]
/// and the streaming source call this, which is what makes their
/// outputs bitwise identical.
pub(crate) fn fill_stock_row(cfg: &StocksConfig, market: &[f64], i: usize, out: &mut [f64]) {
    let mut rng = StdRng::seed_from_u64(mix_stream(cfg.seed, i as u64));
    // Price levels span roughly $5 – $500, log-uniformly.
    let base: f64 = (rng.gen_range(5.0f64.ln()..500.0f64.ln())).exp();
    let beta: f64 = rng.gen_range(0.7..1.3);
    let mut idio = 0.0f64;
    for ((t, cell), &market_t) in out.iter_mut().enumerate().zip(market) {
        if t > 0 {
            idio += cfg.idio_vol * normal(&mut rng);
        }
        let logp = base.ln() + beta * market_t + idio;
        *cell = (logp.exp() * 100.0).round() / 100.0; // cents
    }
}

/// Generate a synthetic stocks dataset. Deterministic in `cfg`, and row
/// `i` equals row `i` of [`crate::streaming::StreamingStocks`] bit for
/// bit (both run the same per-row fill function).
pub fn generate_stocks(cfg: &StocksConfig) -> Dataset {
    let n = cfg.stocks;
    let m = cfg.days;
    let market = market_walk(cfg);
    let mut matrix = Matrix::zeros(n, m);
    for i in 0..n {
        fill_stock_row(cfg, &market, i, matrix.row_mut(i));
    }
    Dataset::new("stocks".to_string(), matrix)
}

pub(crate) fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_linalg::{Svd, SvdOptions};

    #[test]
    fn deterministic_and_shaped() {
        let a = generate_stocks(&StocksConfig::small());
        let b = generate_stocks(&StocksConfig::small());
        assert!(a.matrix().approx_eq(b.matrix(), 0.0));
        assert_eq!(a.rows(), 60);
        assert_eq!(a.cols(), 64);
    }

    #[test]
    fn prices_positive_and_finite() {
        let d = generate_stocks(&StocksConfig::small());
        assert!(d
            .matrix()
            .as_slice()
            .iter()
            .all(|&v| v > 0.0 && v.is_finite()));
    }

    #[test]
    fn successive_prices_highly_correlated() {
        // Lag-1 autocorrelation of each row should be very high — the
        // random-walk property that favours DCT (§5.1).
        let d = generate_stocks(&StocksConfig::small());
        for row in d.matrix().iter_rows().take(10) {
            let m = row.len();
            let mean = row.iter().sum::<f64>() / m as f64;
            let var: f64 = row.iter().map(|v| (v - mean).powi(2)).sum();
            if var < 1e-9 {
                continue;
            }
            let cov: f64 = (0..m - 1)
                .map(|t| (row[t] - mean) * (row[t + 1] - mean))
                .sum();
            assert!(cov / var > 0.7, "lag-1 autocorr {}", cov / var);
        }
    }

    #[test]
    fn first_pc_dominates() {
        // "Most of the points are very close to the horizontal axis"
        // (Appendix A): the first principal component carries almost all
        // the energy.
        let d = generate_stocks(&StocksConfig::small());
        let svd = Svd::compute(d.matrix(), SvdOptions::default()).unwrap();
        let e1 = svd.energy(1);
        assert!(e1 > 0.95, "first-PC energy only {e1}");
    }

    #[test]
    fn price_levels_span_wide_range() {
        let d = generate_stocks(&StocksConfig::paper());
        let first_col = d.matrix().col(0);
        let max = first_col.iter().fold(0.0f64, |a, &b| a.max(b));
        let min = first_col.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(max / min > 10.0, "price range too narrow: {min}..{max}");
        assert_eq!(d.rows(), 381);
        assert_eq!(d.cols(), 128);
    }
}
