//! Streaming dataset sources: generate rows on demand, never the matrix.
//!
//! The paper's scale-up study runs to `phone100K` (100 000 × 366 ≈
//! 0.3 GB); the out-of-core ladder in this repo pushes the same
//! generators to 10 M rows (≈ 29 GB as f64) — far past what
//! [`crate::generate_phone`] can materialize. [`StreamingPhone`] and
//! [`StreamingStocks`] implement [`RowSource`] directly: a build pass
//! (or the `ats gen --out` writer) pulls rows in chunks and each chunk
//! is synthesized on the fly from per-row RNG streams
//! (see the private `perm` module), so peak memory is `O(chunk · M)`
//! of `N`.
//!
//! **Bitwise contract:** row `i` of a streaming source is bit-identical
//! to row `i` of the corresponding `generate_*` call with the same
//! config — both run the same per-row fill function — and is
//! independent of the chunk size and of which ranges were scanned
//! before. A property test in `crates/data/tests` pins this.

use crate::perm::RankShuffle;
use crate::phone::{self, PhoneConfig};
use crate::stocks::{self, StocksConfig};
use ats_common::{AtsError, Result};
use ats_storage::RowSource;

/// Rows synthesized per internal buffer refill during scans. Small
/// enough that the buffer stays cache-resident (256 × 366 cells ≈
/// 750 KB), large enough to amortize per-chunk overhead.
pub const GEN_CHUNK_ROWS: usize = 256;

/// A phone dataset as a lazily generated [`RowSource`].
#[derive(Debug, Clone)]
pub struct StreamingPhone {
    cfg: PhoneConfig,
    season: Vec<f64>,
    perm: RankShuffle,
    chunk_rows: usize,
}

impl StreamingPhone {
    /// Wrap a configuration; no rows are generated until a scan runs.
    pub fn new(cfg: PhoneConfig) -> Self {
        let season = phone::season_profile(cfg.days);
        let perm = phone::volume_permutation(&cfg);
        StreamingPhone {
            cfg,
            season,
            perm,
            chunk_rows: GEN_CHUNK_ROWS,
        }
    }

    /// Override the internal chunk size (rows per buffer refill). The
    /// generated values do not depend on this — only the buffering does.
    pub fn with_chunk_rows(mut self, chunk_rows: usize) -> Self {
        self.chunk_rows = chunk_rows.max(1);
        self
    }

    /// The generating configuration.
    pub fn config(&self) -> &PhoneConfig {
        &self.cfg
    }
}

impl RowSource for StreamingPhone {
    fn rows(&self) -> usize {
        self.cfg.customers
    }

    fn cols(&self) -> usize {
        self.cfg.days
    }

    fn scan_range(
        &self,
        start: usize,
        end: usize,
        f: &mut dyn FnMut(usize, &[f64]) -> Result<()>,
    ) -> Result<()> {
        scan_generated(
            start,
            end,
            self.rows(),
            self.cols(),
            self.chunk_rows,
            f,
            |i, out| {
                phone::fill_phone_row(&self.cfg, &self.perm, &self.season, i, out);
            },
        )
    }
}

/// A stocks dataset as a lazily generated [`RowSource`].
#[derive(Debug, Clone)]
pub struct StreamingStocks {
    cfg: StocksConfig,
    market: Vec<f64>,
    chunk_rows: usize,
}

impl StreamingStocks {
    /// Wrap a configuration; no rows are generated until a scan runs.
    pub fn new(cfg: StocksConfig) -> Self {
        let market = stocks::market_walk(&cfg);
        StreamingStocks {
            cfg,
            market,
            chunk_rows: GEN_CHUNK_ROWS,
        }
    }

    /// Override the internal chunk size (rows per buffer refill). The
    /// generated values do not depend on this — only the buffering does.
    pub fn with_chunk_rows(mut self, chunk_rows: usize) -> Self {
        self.chunk_rows = chunk_rows.max(1);
        self
    }

    /// The generating configuration.
    pub fn config(&self) -> &StocksConfig {
        &self.cfg
    }
}

impl RowSource for StreamingStocks {
    fn rows(&self) -> usize {
        self.cfg.stocks
    }

    fn cols(&self) -> usize {
        self.cfg.days
    }

    fn scan_range(
        &self,
        start: usize,
        end: usize,
        f: &mut dyn FnMut(usize, &[f64]) -> Result<()>,
    ) -> Result<()> {
        scan_generated(
            start,
            end,
            self.rows(),
            self.cols(),
            self.chunk_rows,
            f,
            |i, out| {
                stocks::fill_stock_row(&self.cfg, &self.market, i, out);
            },
        )
    }
}

/// Shared chunked-scan driver: synthesize `chunk_rows` rows at a time
/// into one buffer, then hand them to the callback in order. The chunk
/// buffer is local to the call, so a `Sync` source can serve several
/// threads scanning disjoint ranges concurrently.
fn scan_generated(
    start: usize,
    end: usize,
    rows: usize,
    cols: usize,
    chunk_rows: usize,
    f: &mut dyn FnMut(usize, &[f64]) -> Result<()>,
    mut fill: impl FnMut(usize, &mut [f64]),
) -> Result<()> {
    if start > end || end > rows {
        return Err(AtsError::InvalidArgument(format!(
            "scan_range [{start}, {end}) out of 0..{rows}"
        )));
    }
    if cols == 0 || start == end {
        return Ok(());
    }
    let chunk_rows = chunk_rows.max(1).min(end - start);
    let mut buf = vec![0.0f64; chunk_rows * cols];
    let mut i = start;
    while i < end {
        let chunk = chunk_rows.min(end - i);
        for (r, out) in buf.chunks_exact_mut(cols).take(chunk).enumerate() {
            fill(i + r, out);
        }
        for (r, row) in buf.chunks_exact(cols).take(chunk).enumerate() {
            f(i + r, row)?;
        }
        i += chunk;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_phone, generate_stocks};

    #[test]
    fn phone_matches_materialized_bitwise() {
        let cfg = PhoneConfig::small();
        let full = generate_phone(&cfg);
        for chunk in [1usize, 3, 64, 1024] {
            let src = StreamingPhone::new(cfg.clone()).with_chunk_rows(chunk);
            assert_eq!(src.rows(), full.rows());
            assert_eq!(src.cols(), full.cols());
            let m = src.to_matrix().unwrap();
            for i in 0..full.rows() {
                for (a, b) in m.row(i).iter().zip(full.matrix().row(i)) {
                    assert_eq!(a.to_bits(), b.to_bits(), "row {i} differs at chunk {chunk}");
                }
            }
        }
    }

    #[test]
    fn stocks_matches_materialized_bitwise() {
        let cfg = StocksConfig::small();
        let full = generate_stocks(&cfg);
        let src = StreamingStocks::new(cfg).with_chunk_rows(7);
        let m = src.to_matrix().unwrap();
        for i in 0..full.rows() {
            for (a, b) in m.row(i).iter().zip(full.matrix().row(i)) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i} differs");
            }
        }
    }

    #[test]
    fn subrange_scan_is_independent_of_history() {
        // Scanning [50, 60) cold must equal rows 50..60 of a full scan —
        // the random-access property the sharded build relies on.
        let cfg = PhoneConfig::small();
        let src = StreamingPhone::new(cfg.clone());
        let full = generate_phone(&cfg);
        let mut seen = Vec::new();
        src.scan_range(50, 60, &mut |i, row| {
            assert_eq!(row, full.matrix().row(i));
            seen.push(i);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, (50..60).collect::<Vec<_>>());
    }

    #[test]
    fn bounds_are_checked() {
        let src = StreamingPhone::new(PhoneConfig::small());
        assert!(src.scan_range(10, 5, &mut |_, _| Ok(())).is_err());
        assert!(src.scan_range(0, 201, &mut |_, _| Ok(())).is_err());
        src.scan_range(0, 0, &mut |_, _| panic!("empty range"))
            .unwrap();
    }

    #[test]
    fn callback_errors_propagate() {
        let src = StreamingPhone::new(PhoneConfig::small());
        let r = src.scan_range(0, 100, &mut |i, _| {
            if i == 42 {
                Err(AtsError::Numerical("stop".into()))
            } else {
                Ok(())
            }
        });
        assert!(r.is_err());
    }
}
