//! Failure injection: the storage layer must detect, not propagate,
//! corrupted and half-written files, and the cache must stay correct
//! under churn and odd geometries.

use ats_linalg::Matrix;
use ats_storage::file::{read_matrix, write_matrix, MatrixFileWriter};
use ats_storage::{CachedFile, MatrixFile};
use std::sync::Arc;

fn dir() -> ats_common::TestDir {
    ats_common::TestDir::new("ats-failinj")
}

fn sample(n: usize, m: usize) -> Matrix {
    Matrix::from_fn(n, m, |i, j| (i * m + j) as f64 * 0.5)
}

#[test]
fn unfinished_writer_leaves_unopenable_file() {
    let dir = dir();
    let path = dir.file("unfinished.atsm");
    {
        let mut w = MatrixFileWriter::create(&path, 4).unwrap();
        w.append_row(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        // dropped without finish(): header stays zeroed
    }
    let err = match MatrixFile::open(&path) {
        Err(e) => e,
        Ok(_) => panic!("unfinished file must not open"),
    };
    assert!(err.to_string().contains("magic"), "{err}");
}

#[test]
fn bitflip_in_header_detected() {
    let dir = dir();
    let path = dir.file("bitflip.atsm");
    write_matrix(&path, &sample(5, 3)).unwrap();
    for byte in [9usize, 17, 25, 33] {
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[byte] ^= 0x01;
        let victim = dir.file(format!("bitflip-{byte}.atsm"));
        std::fs::write(&victim, &bytes).unwrap();
        assert!(
            MatrixFile::open(&victim).is_err(),
            "flip at {byte} accepted"
        );
    }
}

#[test]
fn truncation_at_every_boundary_detected() {
    let dir = dir();
    let path = dir.file("alltrunc.atsm");
    write_matrix(&path, &sample(4, 2)).unwrap();
    let full = std::fs::read(&path).unwrap();
    for cut in [0usize, 10, 47, 48, full.len() - 1] {
        let victim = dir.file(format!("alltrunc-{cut}.atsm"));
        std::fs::write(&victim, &full[..cut]).unwrap();
        assert!(MatrixFile::open(&victim).is_err(), "cut at {cut} accepted");
    }
}

#[test]
fn data_corruption_changes_values_but_not_safety() {
    let dir = dir();
    // Data-region corruption is not checksummed per cell (by design: the
    // header guards metadata); reads must still be memory-safe and
    // return *some* finite-or-not value rather than erroring.
    let path = dir.file("datacorrupt.atsm");
    let m = sample(10, 4);
    write_matrix(&path, &m).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let off = 48 + 3 * 32 + 8; // row 3, col 1
    bytes[off] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let f = MatrixFile::open(&path).unwrap();
    let row3 = f.read_row(3).unwrap();
    assert_ne!(row3[1], m[(3, 1)]);
    assert_eq!(row3[0], m[(3, 0)]);
    assert_eq!(f.read_row(2).unwrap(), m.row(2));
}

#[test]
fn cache_correct_under_heavy_churn() {
    let dir = dir();
    let path = dir.file("churn.atsm");
    let m = sample(128, 6);
    write_matrix(&path, &m).unwrap();
    let file = Arc::new(MatrixFile::open(&path).unwrap());
    let cf = CachedFile::row_aligned(Arc::clone(&file), 3); // absurdly small pool
                                                            // Pseudo-random access pattern, every row eventually touched.
    let mut i = 7usize;
    for step in 0..2000 {
        i = (i * 31 + 17) % 128;
        assert_eq!(cf.read_row(i).unwrap(), m.row(i), "row {i}");
        if step % 5 == 0 {
            // immediate re-read: must hit the tiny pool
            assert_eq!(cf.read_row(i).unwrap(), m.row(i));
        }
    }
    assert_eq!(cf.stats().cache_hits(), 400, "every re-read hits");
    assert_eq!(
        cf.stats().physical_reads(),
        2000,
        "every fresh row misses a 3-page pool"
    );
}

#[test]
fn cached_f32_file_roundtrips() {
    let dir = dir();
    let path = dir.file("cachedf32.atsm");
    let m = sample(20, 5);
    let mut w = MatrixFileWriter::create_f32(&path, 5).unwrap();
    for row in m.iter_rows() {
        w.append_row(row).unwrap();
    }
    w.finish().unwrap();
    let file = Arc::new(MatrixFile::open(&path).unwrap());
    let cf = CachedFile::row_aligned(file, 8);
    for i in 0..20 {
        let got = cf.read_row(i).unwrap();
        for (a, b) in got.iter().zip(m.row(i)) {
            assert!((a - b).abs() < 1e-3);
        }
    }
}

#[test]
fn tiny_pages_spanning_rows_under_churn() {
    let dir = dir();
    let path = dir.file("tinypages.atsm");
    let m = sample(40, 10); // 80-byte rows
    write_matrix(&path, &m).unwrap();
    let file = Arc::new(MatrixFile::open(&path).unwrap());
    let cf = CachedFile::new(file, 5, 48); // pages smaller than rows, not aligned
    let mut i = 3usize;
    for _ in 0..500 {
        i = (i * 13 + 7) % 40;
        assert_eq!(cf.read_row(i).unwrap(), m.row(i));
    }
}

#[test]
fn empty_and_single_cell_files() {
    let dir = dir();
    let p1 = dir.file("empty2.atsm");
    let w = MatrixFileWriter::create(&p1, 3).unwrap();
    w.finish().unwrap();
    let f = MatrixFile::open(&p1).unwrap();
    assert_eq!(f.rows(), 0);
    assert!(f.read_row(0).is_err());

    let p2 = dir.file("single.atsm");
    let m = Matrix::from_rows(vec![vec![42.0]]).unwrap();
    write_matrix(&p2, &m).unwrap();
    assert!(read_matrix(&p2).unwrap().approx_eq(&m, 0.0));
}

#[test]
fn zero_length_file_rejected() {
    let dir = dir();
    let p = dir.file("zerolen.atsm");
    std::fs::write(&p, b"").unwrap();
    assert!(MatrixFile::open(&p).is_err());
}

#[test]
fn directory_instead_of_file_rejected() {
    let dir = dir();
    let d = dir.file("iamadir.atsm");
    std::fs::create_dir_all(&d).unwrap();
    assert!(MatrixFile::open(&d).is_err());
}
