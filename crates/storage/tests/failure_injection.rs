//! Failure injection: the storage layer must detect, not propagate,
//! corrupted and half-written files, and the cache must stay correct
//! under churn and odd geometries.
//!
//! The store-directory suite at the bottom drives the format-v2
//! crash-safety contract: a save interrupted at *any* kill point leaves
//! either the previous valid store or a clean absence, and any
//! truncated/deleted/bit-flipped component surfaces as
//! `AtsError::Corrupt` — never a panic, an OOM, or a store that opens
//! and serves wrong data.

use ats_common::AtsError;
use ats_linalg::Matrix;
use ats_storage::file::{read_matrix, write_matrix, MatrixFileWriter};
use ats_storage::store_dir::{
    shard_dir_name, tblock_dir_name, validate_sharded_store_dir, validate_store_dir,
    validate_timeblocked_store_dir, write_sharded_manifest_into, ShardEntry, ShardedManifest,
    TimeBlockEntry, TimeBlockedManifest, COMPONENT_FILES, MANIFEST_FILE, SHARD_FILES,
};
use ats_storage::synopsis::{SynopsisBuilder, SYNOPSIS_FILE};
use ats_storage::{CachedFile, MatrixFile, StoreManifest, StoreWriter};
use std::path::Path;
use std::sync::Arc;

fn dir() -> ats_common::TestDir {
    ats_common::TestDir::new("ats-failinj")
}

fn sample(n: usize, m: usize) -> Matrix {
    Matrix::from_fn(n, m, |i, j| (i * m + j) as f64 * 0.5)
}

#[test]
fn unfinished_writer_leaves_unopenable_file() {
    let dir = dir();
    let path = dir.file("unfinished.atsm");
    {
        let mut w = MatrixFileWriter::create(&path, 4).unwrap();
        w.append_row(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        // dropped without finish(): header stays zeroed
    }
    let err = match MatrixFile::open(&path) {
        Err(e) => e,
        Ok(_) => panic!("unfinished file must not open"),
    };
    assert!(err.to_string().contains("magic"), "{err}");
}

#[test]
fn bitflip_in_header_detected() {
    let dir = dir();
    let path = dir.file("bitflip.atsm");
    write_matrix(&path, &sample(5, 3)).unwrap();
    for byte in [9usize, 17, 25, 33] {
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[byte] ^= 0x01;
        let victim = dir.file(format!("bitflip-{byte}.atsm"));
        std::fs::write(&victim, &bytes).unwrap();
        assert!(
            MatrixFile::open(&victim).is_err(),
            "flip at {byte} accepted"
        );
    }
}

#[test]
fn truncation_at_every_boundary_detected() {
    let dir = dir();
    let path = dir.file("alltrunc.atsm");
    write_matrix(&path, &sample(4, 2)).unwrap();
    let full = std::fs::read(&path).unwrap();
    for cut in [0usize, 10, 47, 48, full.len() - 1] {
        let victim = dir.file(format!("alltrunc-{cut}.atsm"));
        std::fs::write(&victim, &full[..cut]).unwrap();
        assert!(MatrixFile::open(&victim).is_err(), "cut at {cut} accepted");
    }
}

#[test]
fn data_corruption_changes_values_but_not_safety() {
    let dir = dir();
    // Data-region corruption is not checksummed per cell (by design: the
    // header guards metadata); reads must still be memory-safe and
    // return *some* finite-or-not value rather than erroring.
    let path = dir.file("datacorrupt.atsm");
    let m = sample(10, 4);
    write_matrix(&path, &m).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let off = 48 + 3 * 32 + 8; // row 3, col 1
    bytes[off] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let f = MatrixFile::open(&path).unwrap();
    let row3 = f.read_row(3).unwrap();
    assert_ne!(row3[1], m[(3, 1)]);
    assert_eq!(row3[0], m[(3, 0)]);
    assert_eq!(f.read_row(2).unwrap(), m.row(2));
}

#[test]
fn cache_correct_under_heavy_churn() {
    let dir = dir();
    let path = dir.file("churn.atsm");
    let m = sample(128, 6);
    write_matrix(&path, &m).unwrap();
    let file = Arc::new(MatrixFile::open(&path).unwrap());
    let cf = CachedFile::row_aligned(Arc::clone(&file), 3); // absurdly small pool
                                                            // Pseudo-random access pattern, every row eventually touched.
    let mut i = 7usize;
    for step in 0..2000 {
        i = (i * 31 + 17) % 128;
        assert_eq!(cf.read_row(i).unwrap(), m.row(i), "row {i}");
        if step % 5 == 0 {
            // immediate re-read: must hit the tiny pool
            assert_eq!(cf.read_row(i).unwrap(), m.row(i));
        }
    }
    assert_eq!(cf.stats().cache_hits(), 400, "every re-read hits");
    assert_eq!(
        cf.stats().physical_reads(),
        2000,
        "every fresh row misses a 3-page pool"
    );
}

#[test]
fn cached_f32_file_roundtrips() {
    let dir = dir();
    let path = dir.file("cachedf32.atsm");
    let m = sample(20, 5);
    let mut w = MatrixFileWriter::create_f32(&path, 5).unwrap();
    for row in m.iter_rows() {
        w.append_row(row).unwrap();
    }
    w.finish().unwrap();
    let file = Arc::new(MatrixFile::open(&path).unwrap());
    let cf = CachedFile::row_aligned(file, 8);
    for i in 0..20 {
        let got = cf.read_row(i).unwrap();
        for (a, b) in got.iter().zip(m.row(i)) {
            assert!((a - b).abs() < 1e-3);
        }
    }
}

#[test]
fn tiny_pages_spanning_rows_under_churn() {
    let dir = dir();
    let path = dir.file("tinypages.atsm");
    let m = sample(40, 10); // 80-byte rows
    write_matrix(&path, &m).unwrap();
    let file = Arc::new(MatrixFile::open(&path).unwrap());
    let cf = CachedFile::new(file, 5, 48); // pages smaller than rows, not aligned
    let mut i = 3usize;
    for _ in 0..500 {
        i = (i * 13 + 7) % 40;
        assert_eq!(cf.read_row(i).unwrap(), m.row(i));
    }
}

#[test]
fn empty_and_single_cell_files() {
    let dir = dir();
    let p1 = dir.file("empty2.atsm");
    let w = MatrixFileWriter::create(&p1, 3).unwrap();
    w.finish().unwrap();
    let f = MatrixFile::open(&p1).unwrap();
    assert_eq!(f.rows(), 0);
    assert!(f.read_row(0).is_err());

    let p2 = dir.file("single.atsm");
    let m = Matrix::from_rows(vec![vec![42.0]]).unwrap();
    write_matrix(&p2, &m).unwrap();
    assert!(read_matrix(&p2).unwrap().approx_eq(&m, 0.0));
}

#[test]
fn zero_length_file_rejected() {
    let dir = dir();
    let p = dir.file("zerolen.atsm");
    std::fs::write(&p, b"").unwrap();
    assert!(MatrixFile::open(&p).is_err());
}

#[test]
fn directory_instead_of_file_rejected() {
    let dir = dir();
    let d = dir.file("iamadir.atsm");
    std::fs::create_dir_all(&d).unwrap();
    assert!(MatrixFile::open(&d).is_err());
}

// ---------------------------------------------------------------------
// Store-directory (format v2) kill-point and corruption suite.
// ---------------------------------------------------------------------

fn demo_manifest() -> StoreManifest {
    StoreManifest {
        method: "svdd".into(),
        rows: 6,
        cols: 3,
        k: 2,
        deltas: 0,
        bloom: false,
        crcs: [0; 4],
    }
}

/// Write a committed store directory whose components are real `.atsm`
/// matrices (plus an opaque deltas blob), returning a probe value.
fn commit_demo_store(target: &Path, tag: f64) -> Vec<u8> {
    let w = StoreWriter::begin(target).unwrap();
    let m = Matrix::from_fn(6, 2, |i, j| tag + (i * 2 + j) as f64);
    write_matrix(w.path().join("u.atsm"), &m).unwrap();
    write_matrix(
        w.path().join("v.atsm"),
        &Matrix::from_fn(3, 2, |i, j| (i + j) as f64),
    )
    .unwrap();
    write_matrix(
        w.path().join("lambda.atsm"),
        &Matrix::from_fn(1, 2, |_, j| (j + 1) as f64),
    )
    .unwrap();
    std::fs::write(w.path().join("deltas.bin"), [tag as u8; 16]).unwrap();
    w.commit(demo_manifest()).unwrap();
    std::fs::read(target.join("u.atsm")).unwrap()
}

#[test]
fn kill_point_at_every_save_stage_preserves_old_store() {
    let dir = dir();
    let target = dir.file("store");
    let old_u = commit_demo_store(&target, 100.0);

    // Simulate a crash after each component write of a *new* save: the
    // staged temp dir holds a prefix of the components (no manifest, no
    // commit). The committed store must remain byte-identical and valid.
    for stage in 0..=COMPONENT_FILES.len() {
        let staged = dir.file(format!(".store.tmp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&staged);
        std::fs::create_dir_all(&staged).unwrap();
        for name in &COMPONENT_FILES[..stage] {
            std::fs::write(staged.join(name), b"partial new generation").unwrap();
        }
        validate_store_dir(&target).unwrap_or_else(|e| panic!("stage {stage}: {e}"));
        assert_eq!(
            std::fs::read(target.join("u.atsm")).unwrap(),
            old_u,
            "stage {stage}: old store must be untouched"
        );
        std::fs::remove_dir_all(&staged).unwrap();
    }

    // A crash *inside* the swap window (old renamed aside, new not yet
    // in place) leaves a clean absence — an I/O error, not corruption
    // and not a silently-served half store.
    let aside = dir.file(".store.old-sim");
    std::fs::rename(&target, &aside).unwrap();
    assert!(matches!(validate_store_dir(&target), Err(AtsError::Io(_))));
    std::fs::rename(&aside, &target).unwrap();
    validate_store_dir(&target).unwrap();
}

#[test]
fn interrupted_save_never_exposes_new_data_early() {
    // Even with every component staged and the manifest written, the
    // store at `target` is the old one until the rename lands.
    let dir = dir();
    let target = dir.file("store");
    let old_u = commit_demo_store(&target, 1.0);
    {
        let w = StoreWriter::begin(&target).unwrap();
        let m = Matrix::from_fn(6, 2, |i, j| 999.0 + (i + j) as f64);
        write_matrix(w.path().join("u.atsm"), &m).unwrap();
        for name in &COMPONENT_FILES[1..] {
            std::fs::write(w.path().join(name), b"new gen").unwrap();
        }
        // Writer dropped without commit: the crash-before-rename case.
    }
    validate_store_dir(&target).unwrap();
    assert_eq!(std::fs::read(target.join("u.atsm")).unwrap(), old_u);
}

#[test]
fn every_component_truncation_deletion_bitflip_is_corrupt() {
    let dir = dir();
    let target = dir.file("store");
    commit_demo_store(&target, 7.0);

    for name in COMPONENT_FILES {
        let path = target.join(name);
        let pristine = std::fs::read(&path).unwrap();

        // Truncation at several depths, including to zero bytes.
        for cut in [0usize, 1, pristine.len() / 2, pristine.len() - 1] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            match validate_store_dir(&target) {
                Err(AtsError::Corrupt(_)) => {}
                other => panic!("{name} cut at {cut}: {other:?}"),
            }
        }

        // Bit flips at several offsets.
        for off in [0usize, pristine.len() / 3, pristine.len() - 1] {
            let mut bytes = pristine.clone();
            bytes[off] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            match validate_store_dir(&target) {
                Err(AtsError::Corrupt(_)) => {}
                other => panic!("{name} flip at {off}: {other:?}"),
            }
        }

        // Deletion.
        std::fs::remove_file(&path).unwrap();
        match validate_store_dir(&target) {
            Err(AtsError::Corrupt(_)) => {}
            other => panic!("{name} deleted: {other:?}"),
        }

        std::fs::write(&path, &pristine).unwrap();
        validate_store_dir(&target).unwrap();
    }
}

#[test]
fn manifest_tampering_is_corrupt() {
    let dir = dir();
    let target = dir.file("store");
    commit_demo_store(&target, 3.0);
    let path = target.join(MANIFEST_FILE);
    let pristine = std::fs::read(&path).unwrap();

    // Any single-byte flip anywhere in the manifest must be rejected.
    for off in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[off] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            validate_store_dir(&target).is_err(),
            "manifest flip at {off} accepted"
        );
    }

    // Deleting the manifest makes the directory a corrupt store, not a
    // mystery I/O failure.
    std::fs::remove_file(&path).unwrap();
    assert!(matches!(
        validate_store_dir(&target),
        Err(AtsError::Corrupt(_))
    ));
}

// ---------------------------------------------------------------------
// Sharded store-directory (format v3) kill-point and corruption suite.
// ---------------------------------------------------------------------

const DEMO_SHARDS: usize = 3;

fn demo_sharded_manifest() -> ShardedManifest {
    let entries = (0..DEMO_SHARDS)
        .map(|i| ShardEntry {
            start: i * 2,
            end: (i + 1) * 2,
            deltas: 0,
            crc_u: 0,
            crc_deltas: 0,
            crc_synopsis: None, // autodetected from the staged files
            append_sse: None,
        })
        .collect();
    ShardedManifest {
        method: "svdd".into(),
        rows: 2 * DEMO_SHARDS,
        cols: 3,
        k: 2,
        deltas: 0,
        bloom: false,
        crc_v: 0,
        crc_lambda: 0,
        shards: entries,
        source_version: 0, // filled in by commit_sharded
    }
}

/// Every component file of a multi-shard save in the order the save
/// writes them: shared factors first, then each shard's partition
/// (`U`, deltas, and the zone-map synopsis).
fn sharded_component_files() -> Vec<String> {
    let mut files = vec!["v.atsm".to_string(), "lambda.atsm".to_string()];
    for i in 0..DEMO_SHARDS {
        for name in SHARD_FILES {
            files.push(format!("{}/{name}", shard_dir_name(i)));
        }
        files.push(format!("{}/{SYNOPSIS_FILE}", shard_dir_name(i)));
    }
    files
}

/// A real encoded 2-row synopsis, so the demo stores exercise the same
/// bytes the emitter writes (the corruption loops then cover it).
fn demo_synopsis_bytes(cols: usize, tag: f64) -> Vec<u8> {
    let mut b = SynopsisBuilder::new(2, cols).unwrap();
    for i in 0..2 {
        let row: Vec<f64> = (0..cols).map(|j| tag + (i * cols + j) as f64).collect();
        b.push_row(&row).unwrap();
    }
    b.finish().unwrap().encode()
}

/// Stage and commit a valid multi-shard store at `target`, returning the
/// committed bytes of shard 1's `u.atsm` as a probe value.
fn commit_demo_sharded_store(target: &Path, tag: f64) -> Vec<u8> {
    let w = StoreWriter::begin(target).unwrap();
    write_matrix(
        w.path().join("v.atsm"),
        &Matrix::from_fn(3, 2, |i, j| tag + (i + j) as f64),
    )
    .unwrap();
    write_matrix(
        w.path().join("lambda.atsm"),
        &Matrix::from_fn(1, 2, |_, j| (j + 1) as f64),
    )
    .unwrap();
    for s in 0..DEMO_SHARDS {
        let shard = w.path().join(shard_dir_name(s));
        std::fs::create_dir_all(&shard).unwrap();
        write_matrix(
            shard.join("u.atsm"),
            &Matrix::from_fn(2, 2, |i, j| tag + (s * 4 + i * 2 + j) as f64),
        )
        .unwrap();
        std::fs::write(shard.join("deltas.bin"), [tag as u8; 8]).unwrap();
        std::fs::write(shard.join(SYNOPSIS_FILE), demo_synopsis_bytes(3, tag)).unwrap();
    }
    w.commit_sharded(demo_sharded_manifest()).unwrap();
    let m = validate_sharded_store_dir(target).unwrap();
    assert!(
        m.shards.iter().all(|s| s.crc_synopsis.is_some()),
        "every staged synopsis must be CRC-pinned by the commit"
    );
    std::fs::read(target.join(shard_dir_name(1)).join("u.atsm")).unwrap()
}

#[test]
fn sharded_kill_point_at_every_save_stage_preserves_old_store() {
    let dir = dir();
    let target = dir.file("store");
    let old_u1 = commit_demo_sharded_store(&target, 50.0);
    let files = sharded_component_files();

    // Crash after each component write of a new multi-shard save: the
    // staged temp dir holds a strict prefix of the new generation (no
    // manifest, no commit). The committed store stays valid and
    // byte-identical at every one of the kill points.
    for stage in 0..=files.len() {
        let staged = dir.file(format!(".store.tmp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&staged);
        std::fs::create_dir_all(&staged).unwrap();
        for name in &files[..stage] {
            let path = staged.join(name);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, b"partial new generation").unwrap();
        }
        let m =
            validate_sharded_store_dir(&target).unwrap_or_else(|e| panic!("stage {stage}: {e}"));
        assert_eq!(m.shards.len(), DEMO_SHARDS, "stage {stage}");
        assert_eq!(
            std::fs::read(target.join(shard_dir_name(1)).join("u.atsm")).unwrap(),
            old_u1,
            "stage {stage}: old store must be untouched"
        );
        std::fs::remove_dir_all(&staged).unwrap();
    }

    // A crash inside the swap window (old renamed aside, new not yet in
    // place) leaves a clean absence, not a torn store.
    let aside = dir.file(".store.old-sim");
    std::fs::rename(&target, &aside).unwrap();
    assert!(matches!(
        validate_sharded_store_dir(&target),
        Err(AtsError::Io(_))
    ));
    std::fs::rename(&aside, &target).unwrap();
    validate_sharded_store_dir(&target).unwrap();
}

#[test]
fn sharded_interrupted_save_never_exposes_new_data_early() {
    // Even with every shard fully staged, the store at `target` is the
    // old generation until the commit rename lands.
    let dir = dir();
    let target = dir.file("store");
    let old_u1 = commit_demo_sharded_store(&target, 1.0);
    {
        let w = StoreWriter::begin(&target).unwrap();
        for name in sharded_component_files() {
            let path = w.path().join(&name);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, b"new generation, never committed").unwrap();
        }
        // Writer dropped without commit_sharded: crash-before-rename.
    }
    validate_sharded_store_dir(&target).unwrap();
    assert_eq!(
        std::fs::read(target.join(shard_dir_name(1)).join("u.atsm")).unwrap(),
        old_u1
    );
}

#[test]
fn sharded_commit_without_staged_shard_is_rejected() {
    // Committing with a manifest that names a shard whose files were
    // never staged must fail the commit and leave no store behind.
    let dir = dir();
    let target = dir.file("store");
    let w = StoreWriter::begin(&target).unwrap();
    write_matrix(
        w.path().join("v.atsm"),
        &Matrix::from_fn(3, 2, |i, j| (i + j) as f64),
    )
    .unwrap();
    write_matrix(
        w.path().join("lambda.atsm"),
        &Matrix::from_fn(1, 2, |_, j| (j + 1) as f64),
    )
    .unwrap();
    // Stage shard 0 only; the manifest claims DEMO_SHARDS of them.
    let shard0 = w.path().join(shard_dir_name(0));
    std::fs::create_dir_all(&shard0).unwrap();
    std::fs::write(shard0.join("u.atsm"), b"u").unwrap();
    std::fs::write(shard0.join("deltas.bin"), b"d").unwrap();
    match w.commit_sharded(demo_sharded_manifest()) {
        Err(AtsError::InvalidArgument(msg)) => assert!(msg.contains("shard 1"), "{msg}"),
        other => panic!("commit with missing shard: {other:?}"),
    }
    assert!(!target.exists(), "failed commit must not create the store");
}

#[test]
fn sharded_every_component_truncation_deletion_bitflip_is_corrupt() {
    let dir = dir();
    let target = dir.file("store");
    commit_demo_sharded_store(&target, 7.0);

    for name in sharded_component_files() {
        let path = target.join(&name);
        let pristine = std::fs::read(&path).unwrap();

        // Truncation at several depths, including to zero bytes.
        for cut in [0usize, 1, pristine.len() / 2, pristine.len() - 1] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            match validate_sharded_store_dir(&target) {
                Err(AtsError::Corrupt(_)) => {}
                other => panic!("{name} cut at {cut}: {other:?}"),
            }
        }

        // Bit flips at several offsets.
        for off in [0usize, pristine.len() / 3, pristine.len() - 1] {
            let mut bytes = pristine.clone();
            bytes[off] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            match validate_sharded_store_dir(&target) {
                Err(AtsError::Corrupt(_)) => {}
                other => panic!("{name} flip at {off}: {other:?}"),
            }
        }

        // Deletion.
        std::fs::remove_file(&path).unwrap();
        match validate_sharded_store_dir(&target) {
            Err(AtsError::Corrupt(_)) => {}
            other => panic!("{name} deleted: {other:?}"),
        }

        std::fs::write(&path, &pristine).unwrap();
        validate_sharded_store_dir(&target).unwrap();
    }

    // Losing a whole shard directory is corruption too.
    let shard = target.join(shard_dir_name(DEMO_SHARDS - 1));
    std::fs::remove_dir_all(&shard).unwrap();
    assert!(matches!(
        validate_sharded_store_dir(&target),
        Err(AtsError::Corrupt(_))
    ));
}

#[test]
fn sharded_manifest_tampering_is_corrupt() {
    let dir = dir();
    let target = dir.file("store");
    commit_demo_sharded_store(&target, 3.0);
    let path = target.join(MANIFEST_FILE);
    let pristine = std::fs::read(&path).unwrap();

    // Any single-byte flip anywhere in the sharded manifest — version,
    // row ranges, per-shard CRCs, the self-checksum — must be rejected.
    for off in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[off] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            validate_sharded_store_dir(&target).is_err(),
            "manifest flip at {off} accepted"
        );
    }

    std::fs::remove_file(&path).unwrap();
    assert!(matches!(
        validate_sharded_store_dir(&target),
        Err(AtsError::Corrupt(_))
    ));
}

// ---------------------------------------------------------------------
// Time-blocked store-directory (format v4) kill-point and corruption
// suite: two time blocks, each a complete nested v3 store with two
// row shards.
// ---------------------------------------------------------------------

const DEMO_TBLOCKS: usize = 2;
const DEMO_BLOCK_COLS: usize = 3;
const DEMO_BLOCK_SHARDS: usize = 2;

fn demo_block_manifest() -> ShardedManifest {
    let entries = (0..DEMO_BLOCK_SHARDS)
        .map(|i| ShardEntry {
            start: i * 2,
            end: (i + 1) * 2,
            deltas: 0,
            crc_u: 0,
            crc_deltas: 0,
            crc_synopsis: None, // autodetected from the staged files
            append_sse: None,
        })
        .collect();
    ShardedManifest {
        method: "svdd".into(),
        rows: 2 * DEMO_BLOCK_SHARDS,
        cols: DEMO_BLOCK_COLS,
        k: 2,
        deltas: 0,
        bloom: false,
        crc_v: 0,
        crc_lambda: 0,
        shards: entries,
        source_version: 0, // filled in by write_sharded_manifest_into
    }
}

fn demo_timeblocked_manifest() -> TimeBlockedManifest {
    let blocks = (0..DEMO_TBLOCKS)
        .map(|b| TimeBlockEntry {
            start: b * DEMO_BLOCK_COLS,
            end: (b + 1) * DEMO_BLOCK_COLS,
            sse: Some(0.25),
            crc_manifest: 0, // filled in by commit_timeblocked
        })
        .collect();
    TimeBlockedManifest {
        method: "svdd".into(),
        rows: 2 * DEMO_BLOCK_SHARDS,
        cols: DEMO_TBLOCKS * DEMO_BLOCK_COLS,
        bloom: false,
        blocks,
        source_version: 0, // stamped v4 by commit_timeblocked
    }
}

/// Every file of a multi-block save in the order the save writes them:
/// per block, the shared factors, then each row shard's partition, then
/// the nested v3 manifest that seals the block.
fn timeblocked_component_files() -> Vec<String> {
    let mut files = Vec::new();
    for b in 0..DEMO_TBLOCKS {
        let block = tblock_dir_name(b);
        files.push(format!("{block}/v.atsm"));
        files.push(format!("{block}/lambda.atsm"));
        for s in 0..DEMO_BLOCK_SHARDS {
            for name in SHARD_FILES {
                files.push(format!("{block}/{}/{name}", shard_dir_name(s)));
            }
            files.push(format!("{block}/{}/{SYNOPSIS_FILE}", shard_dir_name(s)));
        }
        files.push(format!("{block}/{MANIFEST_FILE}"));
    }
    files
}

/// Stage the components of time block `b` under `dir/tblock-NNNN/` and
/// seal the block with its nested v3 manifest.
fn stage_demo_block(dir: &Path, b: usize, tag: f64) {
    let block = dir.join(tblock_dir_name(b));
    std::fs::create_dir_all(&block).unwrap();
    write_matrix(
        block.join("v.atsm"),
        &Matrix::from_fn(DEMO_BLOCK_COLS, 2, |i, j| tag + (b * 9 + i + j) as f64),
    )
    .unwrap();
    write_matrix(
        block.join("lambda.atsm"),
        &Matrix::from_fn(1, 2, |_, j| (j + 1) as f64),
    )
    .unwrap();
    for s in 0..DEMO_BLOCK_SHARDS {
        let shard = block.join(shard_dir_name(s));
        std::fs::create_dir_all(&shard).unwrap();
        write_matrix(
            shard.join("u.atsm"),
            &Matrix::from_fn(2, 2, |i, j| tag + (b * 31 + s * 4 + i * 2 + j) as f64),
        )
        .unwrap();
        std::fs::write(shard.join("deltas.bin"), [tag as u8 ^ b as u8; 8]).unwrap();
        std::fs::write(
            shard.join(SYNOPSIS_FILE),
            demo_synopsis_bytes(DEMO_BLOCK_COLS, tag + (b * 7 + s) as f64),
        )
        .unwrap();
    }
    write_sharded_manifest_into(&block, demo_block_manifest()).unwrap();
}

/// Stage and commit a valid two-block v4 store at `target`, returning
/// the committed bytes of block 1 / shard 1's `u.atsm` as a probe.
fn commit_demo_timeblocked_store(target: &Path, tag: f64) -> Vec<u8> {
    let w = StoreWriter::begin(target).unwrap();
    for b in 0..DEMO_TBLOCKS {
        stage_demo_block(w.path(), b, tag);
    }
    w.commit_timeblocked(demo_timeblocked_manifest()).unwrap();
    std::fs::read(
        target
            .join(tblock_dir_name(1))
            .join(shard_dir_name(1))
            .join("u.atsm"),
    )
    .unwrap()
}

#[test]
fn timeblocked_kill_point_at_every_save_stage_preserves_old_store() {
    let dir = dir();
    let target = dir.file("store");
    let old_u = commit_demo_timeblocked_store(&target, 60.0);
    let files = timeblocked_component_files();

    // Crash after each file write of a new multi-block save — including
    // after each block's nested manifest is sealed but before the
    // top-level commit. The committed store stays valid and
    // byte-identical at every kill point.
    for stage in 0..=files.len() {
        let staged = dir.file(format!(".store.tmp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&staged);
        std::fs::create_dir_all(&staged).unwrap();
        for name in &files[..stage] {
            let path = staged.join(name);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, b"partial new generation").unwrap();
        }
        let (m, blocks) = validate_timeblocked_store_dir(&target)
            .unwrap_or_else(|e| panic!("stage {stage}: {e}"));
        assert_eq!(m.blocks.len(), DEMO_TBLOCKS, "stage {stage}");
        assert_eq!(blocks.len(), DEMO_TBLOCKS, "stage {stage}");
        assert_eq!(
            std::fs::read(
                target
                    .join(tblock_dir_name(1))
                    .join(shard_dir_name(1))
                    .join("u.atsm")
            )
            .unwrap(),
            old_u,
            "stage {stage}: old store must be untouched"
        );
        std::fs::remove_dir_all(&staged).unwrap();
    }

    // A crash inside the swap window leaves a clean absence, not a torn
    // multi-block store.
    let aside = dir.file(".store.old-sim");
    std::fs::rename(&target, &aside).unwrap();
    assert!(matches!(
        validate_timeblocked_store_dir(&target),
        Err(AtsError::Io(_))
    ));
    std::fs::rename(&aside, &target).unwrap();
    validate_timeblocked_store_dir(&target).unwrap();
}

#[test]
fn timeblocked_interrupted_save_never_exposes_new_data_early() {
    // Even with every block fully staged and sealed, the store at
    // `target` is the old generation until the commit rename lands.
    let dir = dir();
    let target = dir.file("store");
    let old_u = commit_demo_timeblocked_store(&target, 2.0);
    {
        let w = StoreWriter::begin(&target).unwrap();
        for b in 0..DEMO_TBLOCKS {
            stage_demo_block(w.path(), b, 77.0);
        }
        // Writer dropped without commit_timeblocked: crash-before-rename.
    }
    validate_timeblocked_store_dir(&target).unwrap();
    assert_eq!(
        std::fs::read(
            target
                .join(tblock_dir_name(1))
                .join(shard_dir_name(1))
                .join("u.atsm")
        )
        .unwrap(),
        old_u
    );
}

#[test]
fn timeblocked_commit_without_staged_block_is_rejected() {
    // Committing with a block table that names a time block whose nested
    // store was never staged must fail the commit and leave nothing at
    // the target.
    let dir = dir();
    let target = dir.file("store");
    let w = StoreWriter::begin(&target).unwrap();
    stage_demo_block(w.path(), 0, 4.0); // block 1 never staged
    match w.commit_timeblocked(demo_timeblocked_manifest()) {
        Err(AtsError::InvalidArgument(msg)) => assert!(msg.contains("time block 1"), "{msg}"),
        other => panic!("commit with missing block: {other:?}"),
    }
    assert!(!target.exists(), "failed commit must not create the store");
}

#[test]
fn timeblocked_every_component_truncation_deletion_bitflip_is_corrupt() {
    let dir = dir();
    let target = dir.file("store");
    commit_demo_timeblocked_store(&target, 9.0);

    for name in timeblocked_component_files() {
        let path = target.join(&name);
        let pristine = std::fs::read(&path).unwrap();

        // Truncation at several depths, including to zero bytes.
        for cut in [0usize, 1, pristine.len() / 2, pristine.len() - 1] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            match validate_timeblocked_store_dir(&target) {
                Err(AtsError::Corrupt(_)) => {}
                other => panic!("{name} cut at {cut}: {other:?}"),
            }
        }

        // Bit flips at several offsets — in a nested manifest these must
        // trip the top-level block-table CRC, in a component file the
        // nested store's own CRCs.
        for off in [0usize, pristine.len() / 3, pristine.len() - 1] {
            let mut bytes = pristine.clone();
            bytes[off] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            match validate_timeblocked_store_dir(&target) {
                Err(AtsError::Corrupt(_)) => {}
                other => panic!("{name} flip at {off}: {other:?}"),
            }
        }

        // Deletion.
        std::fs::remove_file(&path).unwrap();
        match validate_timeblocked_store_dir(&target) {
            Err(AtsError::Corrupt(_)) => {}
            other => panic!("{name} deleted: {other:?}"),
        }

        std::fs::write(&path, &pristine).unwrap();
        validate_timeblocked_store_dir(&target).unwrap();
    }

    // Losing a whole time-block directory is corruption too.
    let block = target.join(tblock_dir_name(DEMO_TBLOCKS - 1));
    std::fs::remove_dir_all(&block).unwrap();
    assert!(matches!(
        validate_timeblocked_store_dir(&target),
        Err(AtsError::Corrupt(_))
    ));
}

#[test]
fn timeblocked_manifest_tampering_is_corrupt() {
    let dir = dir();
    let target = dir.file("store");
    commit_demo_timeblocked_store(&target, 5.0);
    let path = target.join(MANIFEST_FILE);
    let pristine = std::fs::read(&path).unwrap();

    // Any single-byte flip anywhere in the top-level manifest — version,
    // block ranges, SSE bits, nested-manifest CRCs, the self-checksum —
    // must be rejected.
    for off in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[off] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            validate_timeblocked_store_dir(&target).is_err(),
            "manifest flip at {off} accepted"
        );
    }
    std::fs::write(&path, &pristine).unwrap();

    // Swapping two blocks' nested manifests (both individually valid)
    // must trip the per-block CRC pinning in the block table.
    let m0 = target.join(tblock_dir_name(0)).join(MANIFEST_FILE);
    let m1 = target.join(tblock_dir_name(1)).join(MANIFEST_FILE);
    let (b0, b1) = (std::fs::read(&m0).unwrap(), std::fs::read(&m1).unwrap());
    std::fs::write(&m0, &b1).unwrap();
    std::fs::write(&m1, &b0).unwrap();
    assert!(matches!(
        validate_timeblocked_store_dir(&target),
        Err(AtsError::Corrupt(_))
    ));
    std::fs::write(&m0, &b0).unwrap();
    std::fs::write(&m1, &b1).unwrap();
    validate_timeblocked_store_dir(&target).unwrap();

    // Deleting the top-level manifest makes the directory a corrupt
    // store, not a mystery I/O failure.
    std::fs::remove_file(&path).unwrap();
    assert!(matches!(
        validate_timeblocked_store_dir(&target),
        Err(AtsError::Corrupt(_))
    ));
}

#[test]
fn crashed_save_litter_is_cleared_by_next_save() {
    // A stale temp directory from a crashed save of the same target must
    // not break or pollute the next successful save.
    let dir = dir();
    let target = dir.file("store");
    let staged = dir.file(format!(".store.tmp-{}", std::process::id()));
    std::fs::create_dir_all(&staged).unwrap();
    std::fs::write(staged.join("u.atsm"), b"stale crash litter").unwrap();

    commit_demo_store(&target, 5.0);
    validate_store_dir(&target).unwrap();
    assert!(!staged.exists(), "stale temp dir must be consumed/cleared");
    let survivors: Vec<String> = std::fs::read_dir(dir.path())
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(survivors, vec!["store".to_string()], "{survivors:?}");
}
