//! # ats-storage
//!
//! Out-of-core storage substrate for the `adhoc-ts` workspace.
//!
//! The paper's algorithms are explicitly *streaming*: the data matrix `X`
//! lives on disk, and every computation is phrased as a small number of
//! sequential **passes** over its rows (two passes for plain SVD, three
//! for SVDD — §4.1, Fig. 5), while the query path performs **random**
//! reads of single rows of the compressed `U` matrix ("one disk access
//! per cell", §4.1). This crate provides both access patterns:
//!
//! - [`mod@format`] — the `.atsm` binary file format: a checksummed header
//!   followed by raw little-endian row-major `f64` data;
//! - [`mod@file`] — [`file::MatrixFile`]: positioned (pread-style) row reads
//!   and buffered sequential scans, plus [`file::MatrixFileWriter`];
//! - [`source`] — the [`source::RowSource`] trait abstracting "something
//!   you can make passes over" (disk file or in-memory matrix), so the
//!   compression algorithms in `ats-compress` are oblivious to where the
//!   data lives;
//! - [`pool`] — a fixed-capacity LRU [`pool::BufferPool`] of pages with
//!   hit/miss accounting, and [`pool::CachedFile`] which serves row reads
//!   through it — this is what lets tests *prove* the paper's
//!   one-disk-access-per-cell-query claim instead of asserting it;
//! - [`store_dir`] — store-directory format v2: the versioned, checksummed
//!   [`store_dir::StoreManifest`] and the crash-safe atomic
//!   [`store_dir::StoreWriter`] used by `ats-core`'s persistence layer;
//! - [`synopsis`] — per-shard zone-map synopses (`synopsis.bin`): exact
//!   min/max/sum/count tiles over the *served* values, the pruning index
//!   behind sublinear `where` scans;
//! - [`iostats`] — atomic I/O counters shared by the readers.

pub mod file;
pub mod format;
pub mod iostats;
pub mod pool;
pub mod source;
pub mod store_dir;
pub mod synopsis;

pub use file::{MatrixFile, MatrixFileWriter};
pub use format::Header;
pub use iostats::{IoSnapshot, IoStats};
pub use pool::{BufferPool, CachedFile};
pub use source::{ColumnSlice, MemSource, RowSource};
pub use store_dir::{
    ShardEntry, ShardedManifest, StoreManifest, StoreWriter, TimeBlockEntry, TimeBlockedManifest,
};
pub use synopsis::{ShardSynopsis, SynopsisBuilder, TileStat, COL_BLOCK, ROW_BLOCK, SYNOPSIS_FILE};
