//! The [`RowSource`] abstraction: "something you can make passes over".
//!
//! Every compression algorithm in the paper is expressed as a small,
//! fixed number of sequential passes over the rows of `X` (Figs. 2, 3, 5).
//! `RowSource` captures exactly that access pattern — sequential scans of
//! row ranges — so the algorithms in `ats-compress` run unchanged against
//! an on-disk [`crate::MatrixFile`] (the realistic setting) or an
//! in-memory [`MemSource`]/[`ats_linalg::Matrix`] (tests, small data).
//!
//! `RowSource: Sync` so that one source can serve several threads scanning
//! disjoint ranges — the parallel pass-1 Gram accumulation.

use crate::file::MatrixFile;
use ats_common::{AtsError, Result};
use ats_linalg::Matrix;

/// A matrix that supports sequential row scans.
pub trait RowSource: Sync {
    /// Number of rows (`N`).
    fn rows(&self) -> usize;
    /// Number of columns (`M`).
    fn cols(&self) -> usize;

    /// Scan rows `[start, end)` in order, calling `f(i, row)` for each.
    fn scan_range(
        &self,
        start: usize,
        end: usize,
        f: &mut dyn FnMut(usize, &[f64]) -> Result<()>,
    ) -> Result<()>;

    /// One full pass: scan every row in order.
    fn for_each_row(&self, f: &mut dyn FnMut(usize, &[f64]) -> Result<()>) -> Result<()> {
        self.scan_range(0, self.rows(), f)
    }

    /// Materialize the source as an in-memory [`Matrix`] (test helper; do
    /// not call on datasets that motivated this paper).
    fn to_matrix(&self) -> Result<Matrix> {
        let mut m = Matrix::zeros(self.rows(), self.cols());
        self.for_each_row(&mut |i, row| {
            m.row_mut(i).copy_from_slice(row);
            Ok(())
        })?;
        Ok(m)
    }
}

impl RowSource for MatrixFile {
    fn rows(&self) -> usize {
        MatrixFile::rows(self)
    }
    fn cols(&self) -> usize {
        MatrixFile::cols(self)
    }
    fn scan_range(
        &self,
        start: usize,
        end: usize,
        f: &mut dyn FnMut(usize, &[f64]) -> Result<()>,
    ) -> Result<()> {
        MatrixFile::scan_range(self, start, end, f)
    }
}

impl RowSource for Matrix {
    fn rows(&self) -> usize {
        Matrix::rows(self)
    }
    fn cols(&self) -> usize {
        Matrix::cols(self)
    }
    fn scan_range(
        &self,
        start: usize,
        end: usize,
        f: &mut dyn FnMut(usize, &[f64]) -> Result<()>,
    ) -> Result<()> {
        if start > end || end > Matrix::rows(self) {
            return Err(AtsError::InvalidArgument(format!(
                "scan_range [{start}, {end}) out of 0..{}",
                Matrix::rows(self)
            )));
        }
        for i in start..end {
            f(i, self.row(i))?;
        }
        Ok(())
    }
}

/// An owned flat in-memory row source (useful when a `Matrix` would be an
/// unnecessary dependency for the caller).
#[derive(Debug, Clone)]
pub struct MemSource {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl MemSource {
    /// Build from flat row-major data. Errors if the length is not
    /// `rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(AtsError::dims(
                "MemSource::new",
                (data.len(), 1),
                (rows * cols, 1),
            ));
        }
        Ok(MemSource { data, rows, cols })
    }

    /// Borrow row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

impl From<Matrix> for MemSource {
    fn from(m: Matrix) -> Self {
        let (rows, cols) = m.shape();
        MemSource {
            data: m.into_vec(),
            rows,
            cols,
        }
    }
}

impl RowSource for MemSource {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn scan_range(
        &self,
        start: usize,
        end: usize,
        f: &mut dyn FnMut(usize, &[f64]) -> Result<()>,
    ) -> Result<()> {
        if start > end || end > self.rows {
            return Err(AtsError::InvalidArgument(format!(
                "scan_range [{start}, {end}) out of 0..{}",
                self.rows
            )));
        }
        for i in start..end {
            f(i, self.row(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::write_matrix;

    fn sample(n: usize, m: usize) -> Matrix {
        Matrix::from_fn(n, m, |i, j| (i * 10 + j) as f64)
    }

    #[test]
    fn matrix_is_a_row_source() {
        let m = sample(5, 3);
        let mut count = 0;
        RowSource::for_each_row(&m, &mut |i, row| {
            assert_eq!(row[0], (i * 10) as f64);
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(count, 5);
    }

    #[test]
    fn mem_source_roundtrip() {
        let m = sample(4, 2);
        let s: MemSource = m.clone().into();
        assert_eq!(s.rows(), 4);
        assert_eq!(s.cols(), 2);
        let back = s.to_matrix().unwrap();
        assert!(back.approx_eq(&m, 0.0));
    }

    #[test]
    fn mem_source_length_check() {
        assert!(MemSource::new(2, 3, vec![0.0; 5]).is_err());
        assert!(MemSource::new(2, 3, vec![0.0; 6]).is_ok());
    }

    #[test]
    fn file_and_memory_sources_agree() {
        let dir = ats_common::TestDir::new("ats-src");
        let path = dir.file("agree.atsm");
        let m = sample(30, 4);
        write_matrix(&path, &m).unwrap();
        let f = MatrixFile::open(&path).unwrap();
        let from_file = RowSource::to_matrix(&f).unwrap();
        assert!(from_file.approx_eq(&m, 0.0));
    }

    #[test]
    fn scan_range_bounds_checked() {
        let m = sample(3, 2);
        assert!(RowSource::scan_range(&m, 2, 1, &mut |_, _| Ok(())).is_err());
        assert!(RowSource::scan_range(&m, 0, 4, &mut |_, _| Ok(())).is_err());
        let s: MemSource = m.into();
        assert!(s.scan_range(0, 4, &mut |_, _| Ok(())).is_err());
    }

    #[test]
    fn disjoint_parallel_scans() {
        // RowSource: Sync — two threads scanning halves of one source.
        let m = sample(100, 3);
        let total: f64 = std::thread::scope(|s| {
            let h1 = s.spawn(|| {
                let mut acc = 0.0;
                m.scan_range(0, 50, &mut |_, row| {
                    acc += row[0];
                    Ok(())
                })
                .unwrap();
                acc
            });
            let h2 = s.spawn(|| {
                let mut acc = 0.0;
                m.scan_range(50, 100, &mut |_, row| {
                    acc += row[0];
                    Ok(())
                })
                .unwrap();
                acc
            });
            h1.join().unwrap() + h2.join().unwrap()
        });
        let expect: f64 = (0..100).map(|i| (i * 10) as f64).sum();
        assert!((total - expect).abs() < 1e-9);
    }
}
