//! The [`RowSource`] abstraction: "something you can make passes over".
//!
//! Every compression algorithm in the paper is expressed as a small,
//! fixed number of sequential passes over the rows of `X` (Figs. 2, 3, 5).
//! `RowSource` captures exactly that access pattern — sequential scans of
//! row ranges — so the algorithms in `ats-compress` run unchanged against
//! an on-disk [`crate::MatrixFile`] (the realistic setting) or an
//! in-memory [`MemSource`]/[`ats_linalg::Matrix`] (tests, small data).
//!
//! `RowSource: Sync` so that one source can serve several threads scanning
//! disjoint ranges — the parallel pass-1 Gram accumulation.

use crate::file::MatrixFile;
use ats_common::{AtsError, Result};
use ats_linalg::Matrix;

/// A matrix that supports sequential row scans.
pub trait RowSource: Sync {
    /// Number of rows (`N`).
    fn rows(&self) -> usize;
    /// Number of columns (`M`).
    fn cols(&self) -> usize;

    /// Scan rows `[start, end)` in order, calling `f(i, row)` for each.
    fn scan_range(
        &self,
        start: usize,
        end: usize,
        f: &mut dyn FnMut(usize, &[f64]) -> Result<()>,
    ) -> Result<()>;

    /// One full pass: scan every row in order.
    fn for_each_row(&self, f: &mut dyn FnMut(usize, &[f64]) -> Result<()>) -> Result<()> {
        self.scan_range(0, self.rows(), f)
    }

    /// Materialize the source as an in-memory [`Matrix`] (test helper; do
    /// not call on datasets that motivated this paper).
    fn to_matrix(&self) -> Result<Matrix> {
        let mut m = Matrix::zeros(self.rows(), self.cols());
        self.for_each_row(&mut |i, row| {
            m.row_mut(i).copy_from_slice(row);
            Ok(())
        })?;
        Ok(m)
    }
}

impl RowSource for MatrixFile {
    fn rows(&self) -> usize {
        MatrixFile::rows(self)
    }
    fn cols(&self) -> usize {
        MatrixFile::cols(self)
    }
    fn scan_range(
        &self,
        start: usize,
        end: usize,
        f: &mut dyn FnMut(usize, &[f64]) -> Result<()>,
    ) -> Result<()> {
        MatrixFile::scan_range(self, start, end, f)
    }
}

impl RowSource for Matrix {
    fn rows(&self) -> usize {
        Matrix::rows(self)
    }
    fn cols(&self) -> usize {
        Matrix::cols(self)
    }
    fn scan_range(
        &self,
        start: usize,
        end: usize,
        f: &mut dyn FnMut(usize, &[f64]) -> Result<()>,
    ) -> Result<()> {
        if start > end || end > Matrix::rows(self) {
            return Err(AtsError::InvalidArgument(format!(
                "scan_range [{start}, {end}) out of 0..{}",
                Matrix::rows(self)
            )));
        }
        for i in start..end {
            f(i, self.row(i))?;
        }
        Ok(())
    }
}

/// An owned flat in-memory row source (useful when a `Matrix` would be an
/// unnecessary dependency for the caller).
#[derive(Debug, Clone)]
pub struct MemSource {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl MemSource {
    /// Build from flat row-major data. Errors if the length is not
    /// `rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(AtsError::dims(
                "MemSource::new",
                (data.len(), 1),
                (rows * cols, 1),
            ));
        }
        Ok(MemSource { data, rows, cols })
    }

    /// Borrow row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

impl From<Matrix> for MemSource {
    fn from(m: Matrix) -> Self {
        let (rows, cols) = m.shape();
        MemSource {
            data: m.into_vec(),
            rows,
            cols,
        }
    }
}

impl RowSource for MemSource {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn scan_range(
        &self,
        start: usize,
        end: usize,
        f: &mut dyn FnMut(usize, &[f64]) -> Result<()>,
    ) -> Result<()> {
        if start > end || end > self.rows {
            return Err(AtsError::InvalidArgument(format!(
                "scan_range [{start}, {end}) out of 0..{}",
                self.rows
            )));
        }
        for i in start..end {
            f(i, self.row(i))?;
        }
        Ok(())
    }
}

/// A column-range view over another [`RowSource`]: rows pass through
/// unchanged, but each callback sees only columns `[start, end)`.
///
/// This is the plane the time-blocked (v4) builder runs on: the same
/// streaming passes that compress a whole matrix compress one time
/// block by scanning the underlying source once per pass and slicing
/// each row down to the block's columns. The slice is borrowed from the
/// scan buffer — no per-row copies.
pub struct ColumnSlice<'a, S: RowSource + ?Sized> {
    inner: &'a S,
    start: usize,
    end: usize,
}

impl<'a, S: RowSource + ?Sized> ColumnSlice<'a, S> {
    /// View columns `[start, end)` of `inner`. The range must be
    /// non-empty and within the source's width.
    pub fn new(inner: &'a S, start: usize, end: usize) -> Result<Self> {
        if start >= end || end > inner.cols() {
            return Err(AtsError::InvalidArgument(format!(
                "column slice [{start}, {end}) invalid for a source with {} columns",
                inner.cols()
            )));
        }
        Ok(ColumnSlice { inner, start, end })
    }
}

impl<S: RowSource + ?Sized> RowSource for ColumnSlice<'_, S> {
    fn rows(&self) -> usize {
        self.inner.rows()
    }
    fn cols(&self) -> usize {
        self.end - self.start
    }
    fn scan_range(
        &self,
        start: usize,
        end: usize,
        f: &mut dyn FnMut(usize, &[f64]) -> Result<()>,
    ) -> Result<()> {
        let (c0, c1) = (self.start, self.end);
        self.inner.scan_range(start, end, &mut |i, row| {
            let cells = row.get(c0..c1).ok_or_else(|| {
                AtsError::Corrupt(format!(
                    "source row {i} has {} cells, expected at least {c1}",
                    row.len()
                ))
            })?;
            f(i, cells)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::write_matrix;

    fn sample(n: usize, m: usize) -> Matrix {
        Matrix::from_fn(n, m, |i, j| (i * 10 + j) as f64)
    }

    #[test]
    fn matrix_is_a_row_source() {
        let m = sample(5, 3);
        let mut count = 0;
        RowSource::for_each_row(&m, &mut |i, row| {
            assert_eq!(row[0], (i * 10) as f64);
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(count, 5);
    }

    #[test]
    fn mem_source_roundtrip() {
        let m = sample(4, 2);
        let s: MemSource = m.clone().into();
        assert_eq!(s.rows(), 4);
        assert_eq!(s.cols(), 2);
        let back = s.to_matrix().unwrap();
        assert!(back.approx_eq(&m, 0.0));
    }

    #[test]
    fn mem_source_length_check() {
        assert!(MemSource::new(2, 3, vec![0.0; 5]).is_err());
        assert!(MemSource::new(2, 3, vec![0.0; 6]).is_ok());
    }

    #[test]
    fn file_and_memory_sources_agree() {
        let dir = ats_common::TestDir::new("ats-src");
        let path = dir.file("agree.atsm");
        let m = sample(30, 4);
        write_matrix(&path, &m).unwrap();
        let f = MatrixFile::open(&path).unwrap();
        let from_file = RowSource::to_matrix(&f).unwrap();
        assert!(from_file.approx_eq(&m, 0.0));
    }

    #[test]
    fn scan_range_bounds_checked() {
        let m = sample(3, 2);
        assert!(RowSource::scan_range(&m, 2, 1, &mut |_, _| Ok(())).is_err());
        assert!(RowSource::scan_range(&m, 0, 4, &mut |_, _| Ok(())).is_err());
        let s: MemSource = m.into();
        assert!(s.scan_range(0, 4, &mut |_, _| Ok(())).is_err());
    }

    #[test]
    fn column_slice_views_block_of_source() {
        let m = sample(6, 10);
        let s = ColumnSlice::new(&m, 3, 7).unwrap();
        assert_eq!(s.rows(), 6);
        assert_eq!(s.cols(), 4);
        let sliced = s.to_matrix().unwrap();
        let expect = Matrix::from_fn(6, 4, |i, j| (i * 10 + j + 3) as f64);
        assert!(sliced.approx_eq(&expect, 0.0));
        // Partial row range passes through to the inner source.
        let mut seen = Vec::new();
        s.scan_range(2, 4, &mut |i, row| {
            seen.push((i, row[0]));
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![(2, 23.0), (3, 33.0)]);
    }

    #[test]
    fn column_slice_rejects_bad_ranges() {
        let m = sample(3, 5);
        assert!(ColumnSlice::new(&m, 2, 2).is_err(), "empty");
        assert!(ColumnSlice::new(&m, 4, 3).is_err(), "backwards");
        assert!(ColumnSlice::new(&m, 0, 6).is_err(), "past the end");
    }

    #[test]
    fn disjoint_parallel_scans() {
        // RowSource: Sync — two threads scanning halves of one source.
        let m = sample(100, 3);
        let total: f64 = std::thread::scope(|s| {
            let h1 = s.spawn(|| {
                let mut acc = 0.0;
                m.scan_range(0, 50, &mut |_, row| {
                    acc += row[0];
                    Ok(())
                })
                .unwrap();
                acc
            });
            let h2 = s.spawn(|| {
                let mut acc = 0.0;
                m.scan_range(50, 100, &mut |_, row| {
                    acc += row[0];
                    Ok(())
                })
                .unwrap();
                acc
            });
            h1.join().unwrap() + h2.join().unwrap()
        });
        let expect: f64 = (0..100).map(|i| (i * 10) as f64).sum();
        assert!((total - expect).abs() < 1e-9);
    }
}
