//! The `.atsm` on-disk matrix format.
//!
//! Layout:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"ATSMATRX"
//! 8       4     format version (currently 1), little-endian u32
//! 12      4     flags (bit 0: f32 cells instead of f64)
//! 16      8     rows (u64)
//! 24      8     cols (u64)
//! 32      8     reserved (0)
//! 40      8     header checksum: hash of bytes [0, 40)
//! 48      …     cell data, row-major, little-endian
//! ```
//!
//! The header is fixed-size so the data region starts at a stable offset
//! and row `i` lives at `HEADER_LEN + i * row_bytes` — the arithmetic that
//! makes single-row positioned reads possible.

use ats_common::codec::{get_u32, get_u64, put_u32, put_u64, u64_from_usize, usize_from_u64};
use ats_common::hash::hash_bytes;
use ats_common::{AtsError, Result};

/// Magic bytes identifying a matrix file.
pub const MAGIC: &[u8; 8] = b"ATSMATRX";
/// Current format version.
pub const VERSION: u32 = 1;
/// Total header length in bytes; the data region starts here.
pub const HEADER_LEN: usize = 48;

/// Flag bit: cells are stored as `f32` (quantized) instead of `f64`.
pub const FLAG_F32: u32 = 1;

/// Parsed `.atsm` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format version found in the file.
    pub version: u32,
    /// Flag bits (see [`FLAG_F32`]).
    pub flags: u32,
    /// Number of rows (`N`).
    pub rows: usize,
    /// Number of columns (`M`).
    pub cols: usize,
}

impl Header {
    /// Create a header for an `rows × cols` f64 matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Header {
            version: VERSION,
            flags: 0,
            rows,
            cols,
        }
    }

    /// Create a header for an f32-quantized matrix.
    pub fn new_f32(rows: usize, cols: usize) -> Self {
        Header {
            version: VERSION,
            flags: FLAG_F32,
            rows,
            cols,
        }
    }

    /// Whether cells are stored as `f32`.
    pub fn is_f32(&self) -> bool {
        self.flags & FLAG_F32 != 0
    }

    /// Bytes per cell (4 or 8).
    pub fn cell_bytes(&self) -> usize {
        if self.is_f32() {
            4
        } else {
            8
        }
    }

    /// Bytes per row of cell data.
    pub fn row_bytes(&self) -> usize {
        self.cols * self.cell_bytes()
    }

    /// Byte offset of row `i`'s first cell within the file.
    pub fn row_offset(&self, i: usize) -> u64 {
        u64_from_usize(HEADER_LEN) + u64_from_usize(i) * u64_from_usize(self.row_bytes())
    }

    /// Total file size this header implies.
    pub fn file_len(&self) -> u64 {
        self.row_offset(self.rows)
    }

    /// [`Header::file_len`] with overflow-checked arithmetic: the full
    /// `rows · cols · cell_bytes + HEADER_LEN` product chain is computed
    /// in checked `u64` steps so a hand-crafted header can never wrap an
    /// offset into range. [`Header::decode`] performs the same check, but
    /// callers validating against an actual file length go through this
    /// so the guarantee does not depend on where the header came from.
    pub fn checked_file_len(&self) -> Result<u64> {
        let overflow = || AtsError::Corrupt("dimensions overflow file size".into());
        u64_from_usize(self.rows)
            .checked_mul(u64_from_usize(self.cols))
            .and_then(|cells| cells.checked_mul(u64_from_usize(self.cell_bytes())))
            .and_then(|data| data.checked_add(u64_from_usize(HEADER_LEN)))
            .ok_or_else(overflow)
    }

    /// Serialize to the fixed [`HEADER_LEN`]-byte representation,
    /// including the trailing checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN);
        buf.extend_from_slice(MAGIC);
        put_u32(&mut buf, self.version);
        put_u32(&mut buf, self.flags);
        put_u64(&mut buf, u64_from_usize(self.rows));
        put_u64(&mut buf, u64_from_usize(self.cols));
        put_u64(&mut buf, 0); // reserved
        let csum = hash_bytes(&buf);
        put_u64(&mut buf, csum);
        debug_assert_eq!(buf.len(), HEADER_LEN);
        buf
    }

    /// Parse and validate a header from the first [`HEADER_LEN`] bytes of
    /// a file. Checks magic, version, checksum, and dimension sanity.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < HEADER_LEN {
            return Err(AtsError::Corrupt(format!(
                "header too short: {} < {HEADER_LEN}",
                buf.len()
            )));
        }
        if buf.get(..8) != Some(MAGIC.as_slice()) {
            return Err(AtsError::Corrupt("bad magic (not an .atsm file)".into()));
        }
        let version = get_u32(buf, 8)?;
        if version != VERSION {
            return Err(AtsError::Corrupt(format!(
                "unsupported format version {version} (expected {VERSION})"
            )));
        }
        let flags = get_u32(buf, 12)?;
        let rows_raw = get_u64(buf, 16)?;
        let cols_raw = get_u64(buf, 24)?;
        let stored = get_u64(buf, 40)?;
        let hashed = buf
            .get(..40)
            .ok_or_else(|| AtsError::Corrupt("header shorter than checksum span".into()))?;
        let computed = hash_bytes(hashed);
        if stored != computed {
            return Err(AtsError::Corrupt(format!(
                "header checksum mismatch: stored {stored:#x}, computed {computed:#x}"
            )));
        }
        let rows = usize_from_u64(rows_raw, "header row count")?;
        let cols = usize_from_u64(cols_raw, "header column count")?;
        if cols == 0 && rows > 0 {
            return Err(AtsError::Corrupt("zero columns with nonzero rows".into()));
        }
        // Guard against absurd sizes that would overflow offsets.
        let cell = if flags & FLAG_F32 != 0 { 4u64 } else { 8u64 };
        rows_raw
            .checked_mul(cols_raw)
            .and_then(|cells| cells.checked_mul(cell))
            .ok_or_else(|| AtsError::Corrupt("dimensions overflow file size".into()))?;
        Ok(Header {
            version,
            flags,
            rows,
            cols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = Header::new(100_000, 366);
        let buf = h.encode();
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(Header::decode(&buf).unwrap(), h);
    }

    #[test]
    fn f32_flag_roundtrip() {
        let h = Header::new_f32(10, 4);
        let got = Header::decode(&h.encode()).unwrap();
        assert!(got.is_f32());
        assert_eq!(got.cell_bytes(), 4);
        assert_eq!(got.row_bytes(), 16);
    }

    #[test]
    fn offsets() {
        let h = Header::new(3, 2);
        assert_eq!(h.row_offset(0), 48);
        assert_eq!(h.row_offset(1), 48 + 16);
        assert_eq!(h.file_len(), 48 + 3 * 16);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Header::new(1, 1).encode();
        buf[0] = b'X';
        assert!(matches!(Header::decode(&buf), Err(AtsError::Corrupt(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let h = Header {
            version: 99,
            ..Header::new(1, 1)
        };
        // encode() embeds whatever version we set, with a valid checksum.
        assert!(Header::decode(&h.encode()).is_err());
    }

    #[test]
    fn corrupted_field_fails_checksum() {
        let mut buf = Header::new(7, 5).encode();
        buf[20] ^= 0xFF; // flip a byte of `rows`
        let err = Header::decode(&buf).unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn truncated_header_rejected() {
        let buf = Header::new(1, 1).encode();
        assert!(Header::decode(&buf[..HEADER_LEN - 1]).is_err());
        assert!(Header::decode(&[]).is_err());
    }

    #[test]
    fn overflow_dimensions_rejected() {
        // Hand-craft a header with rows*cols*8 overflowing u64.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        put_u32(&mut buf, VERSION);
        put_u32(&mut buf, 0);
        put_u64(&mut buf, u64::MAX / 2);
        put_u64(&mut buf, u64::MAX / 2);
        put_u64(&mut buf, 0);
        let csum = hash_bytes(&buf);
        put_u64(&mut buf, csum);
        assert!(Header::decode(&buf).is_err());
    }

    #[test]
    fn checked_file_len_matches_unchecked() {
        for h in [
            Header::new(0, 0),
            Header::new(1000, 366),
            Header::new_f32(7, 3),
        ] {
            assert_eq!(h.checked_file_len().unwrap(), h.file_len());
        }
    }

    #[test]
    fn checked_file_len_rejects_overflow() {
        // rows·cols·cell fits in u64 but adding the header wraps.
        let h = Header {
            version: VERSION,
            flags: 0,
            rows: (u64::MAX / 8) as usize,
            cols: 1,
        };
        assert!(matches!(h.checked_file_len(), Err(AtsError::Corrupt(_))));
    }

    #[test]
    fn empty_matrix_ok() {
        let h = Header::new(0, 0);
        assert_eq!(Header::decode(&h.encode()).unwrap(), h);
        assert_eq!(h.file_len(), HEADER_LEN as u64);
    }
}
