//! Atomic I/O accounting.
//!
//! The paper's central efficiency claim is operational: a cell query needs
//! "1 or 2 disk accesses" (§1) — one row of `U` plus possibly one delta
//! probe. Rather than assert that in prose, the readers in this crate
//! count every physical and logical access through a shared [`IoStats`],
//! and the integration tests assert the claim numerically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe I/O counters.
///
/// "Physical" reads are actual `pread` syscalls (or page fetches that
/// missed the buffer pool); "logical" reads are row/page requests
/// regardless of cache outcome.
#[derive(Debug, Default)]
pub struct IoStats {
    physical_reads: AtomicU64,
    logical_reads: AtomicU64,
    bytes_read: AtomicU64,
    cache_hits: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters behind an `Arc` for sharing with readers.
    pub fn new() -> Arc<Self> {
        Arc::new(IoStats::default())
    }

    /// Record a physical read of `bytes` bytes.
    pub fn record_physical(&self, bytes: u64) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a logical read request.
    pub fn record_logical(&self) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a buffer-pool hit.
    pub fn record_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of physical reads so far.
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads.load(Ordering::Relaxed)
    }

    /// Number of logical read requests so far.
    pub fn logical_reads(&self) -> u64 {
        self.logical_reads.load(Ordering::Relaxed)
    }

    /// Total bytes physically read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Buffer-pool hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.physical_reads.store(0, Ordering::Relaxed);
        self.logical_reads.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
    }

    /// Hit ratio over logical reads (0 when no logical reads yet).
    pub fn hit_ratio(&self) -> f64 {
        let l = self.logical_reads();
        if l == 0 {
            0.0
        } else {
            self.cache_hits() as f64 / l as f64
        }
    }

    /// A point-in-time copy of all four counters — the mergeable value
    /// a sharded store rolls its per-shard counters up into.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads(),
            logical_reads: self.logical_reads(),
            bytes_read: self.bytes_read(),
            cache_hits: self.cache_hits(),
        }
    }
}

/// A plain, mergeable copy of [`IoStats`] counters.
///
/// Each shard of a sharded store owns live atomic [`IoStats`]; query
/// code snapshots them and folds the snapshots into one total with
/// [`IoSnapshot::merge`], so the paper's "1–2 disk accesses per cell"
/// invariant can be asserted per shard *and* for the store as a whole.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Physical reads (`pread` syscalls / pool misses).
    pub physical_reads: u64,
    /// Logical row/page requests.
    pub logical_reads: u64,
    /// Bytes physically read.
    pub bytes_read: u64,
    /// Buffer-pool hits.
    pub cache_hits: u64,
}

impl IoSnapshot {
    /// Fold another snapshot into this one (saturating).
    pub fn merge(&mut self, other: &IoSnapshot) {
        self.physical_reads = self.physical_reads.saturating_add(other.physical_reads);
        self.logical_reads = self.logical_reads.saturating_add(other.logical_reads);
        self.bytes_read = self.bytes_read.saturating_add(other.bytes_read);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_logical();
        s.record_logical();
        s.record_physical(4096);
        s.record_hit();
        assert_eq!(s.logical_reads(), 2);
        assert_eq!(s.physical_reads(), 1);
        assert_eq!(s.bytes_read(), 4096);
        assert_eq!(s.cache_hits(), 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn snapshots_merge() {
        let a = IoStats::new();
        a.record_logical();
        a.record_physical(64);
        let b = IoStats::new();
        b.record_logical();
        b.record_hit();
        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        assert_eq!(total.logical_reads, 2);
        assert_eq!(total.physical_reads, 1);
        assert_eq!(total.bytes_read, 64);
        assert_eq!(total.cache_hits, 1);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.record_physical(10);
        s.record_logical();
        s.reset();
        assert_eq!(s.physical_reads(), 0);
        assert_eq!(s.logical_reads(), 0);
        assert_eq!(s.bytes_read(), 0);
        assert_eq!(s.hit_ratio(), 0.0);
    }

    #[test]
    fn concurrent_updates() {
        let s = IoStats::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record_physical(1);
                    }
                });
            }
        });
        assert_eq!(s.physical_reads(), 8000);
        assert_eq!(s.bytes_read(), 8000);
    }
}
