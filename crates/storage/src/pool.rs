//! LRU buffer pool and page-cached file reads.
//!
//! The query path of the paper assumes `V` and `Λ` are pinned in memory
//! while rows of `U` are fetched from disk on demand (§4.1,
//! "Reconstruction"). Real systems put a page cache between the two;
//! [`BufferPool`] is that cache — a fixed-capacity LRU over fixed-size
//! pages with hit/miss accounting — and [`CachedFile`] serves row reads
//! of a [`MatrixFile`] through it. The pool uses an index-linked LRU list
//! (no per-access allocation) guarded by a single `parking_lot` mutex;
//! page loads happen under the lock, which is the right trade-off for the
//! pool sizes exercised here and keeps the eviction logic obviously
//! correct.

use crate::file::MatrixFile;
use crate::iostats::IoStats;
use ats_common::codec::{u64_from_usize, usize_from_u64};
use ats_common::{AtsError, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

const NIL: usize = usize::MAX;

struct Frame {
    page_no: u64,
    data: Vec<u8>,
    prev: usize,
    next: usize,
}

struct PoolInner {
    frames: Vec<Frame>,
    map: HashMap<u64, usize>,
    /// Most-recently-used frame index, or NIL.
    head: usize,
    /// Least-recently-used frame index, or NIL.
    tail: usize,
    free: Vec<usize>,
}

impl PoolInner {
    // The LRU links use `NIL` (`usize::MAX`) as the null sentinel, so
    // `frames.get(NIL)` is naturally `None` and every link update below
    // is total — no indexing, no panics, even on a corrupted chain.
    fn detach(&mut self, idx: usize) {
        let Some(frame) = self.frames.get(idx) else {
            return;
        };
        let (prev, next) = (frame.prev, frame.next);
        match self.frames.get_mut(prev) {
            Some(p) => p.next = next,
            None => self.head = next,
        }
        match self.frames.get_mut(next) {
            Some(n) => n.prev = prev,
            None => self.tail = prev,
        }
        if let Some(frame) = self.frames.get_mut(idx) {
            frame.prev = NIL;
            frame.next = NIL;
        }
    }

    fn push_front(&mut self, idx: usize) {
        let head = self.head;
        if let Some(frame) = self.frames.get_mut(idx) {
            frame.prev = NIL;
            frame.next = head;
        }
        if let Some(old_head) = self.frames.get_mut(head) {
            old_head.prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// A fixed-capacity LRU cache of fixed-size pages keyed by page number.
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    capacity: usize,
    page_size: usize,
    stats: Arc<IoStats>,
}

impl BufferPool {
    /// Create a pool holding up to `capacity` pages of `page_size` bytes.
    pub fn new(capacity: usize, page_size: usize, stats: Arc<IoStats>) -> Self {
        BufferPool {
            inner: Mutex::new(PoolInner {
                frames: Vec::new(),
                map: HashMap::new(),
                head: NIL,
                tail: NIL,
                free: Vec::new(),
            }),
            capacity: capacity.max(1),
            page_size: page_size.max(1),
            stats,
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident pages.
    pub fn resident(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Fetch page `page_no`, loading it via `load` on a miss, and hand a
    /// borrow of its bytes to `consume`. `load` must fill the provided
    /// buffer (zero-padded beyond EOF by the caller's loader).
    pub fn with_page<R>(
        &self,
        page_no: u64,
        load: impl FnOnce(&mut [u8]) -> Result<()>,
        consume: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.map.get(&page_no) {
            self.stats.record_hit();
            inner.detach(idx);
            inner.push_front(idx);
            let frame = inner
                .frames
                .get(idx)
                .ok_or_else(|| AtsError::internal("pool map points at a missing frame"))?;
            return Ok(consume(&frame.data));
        }
        // Miss: find a frame (free, new, or evict LRU).
        let idx = if let Some(idx) = inner.free.pop() {
            idx
        } else if inner.frames.len() < self.capacity {
            inner.frames.push(Frame {
                page_no: u64::MAX,
                data: vec![0u8; self.page_size],
                prev: NIL,
                next: NIL,
            });
            inner.frames.len() - 1
        } else {
            let victim = inner.tail;
            debug_assert_ne!(victim, NIL, "capacity >= 1 guarantees a tail");
            inner.detach(victim);
            if let Some(old) = inner.frames.get(victim).map(|f| f.page_no) {
                inner.map.remove(&old);
            }
            victim
        };
        {
            let frame = inner
                .frames
                .get_mut(idx)
                .ok_or_else(|| AtsError::internal("pool allocated an out-of-range frame"))?;
            frame.page_no = page_no;
            frame.data.iter_mut().for_each(|b| *b = 0);
            load(&mut frame.data)?;
        }
        self.stats.record_physical(u64_from_usize(self.page_size));
        inner.map.insert(page_no, idx);
        inner.push_front(idx);
        let frame = inner
            .frames
            .get(idx)
            .ok_or_else(|| AtsError::internal("pool lost the frame it just filled"))?;
        Ok(consume(&frame.data))
    }
}

/// A [`MatrixFile`] whose row reads are served through a [`BufferPool`].
///
/// Pages are aligned regions of the *data area* (so page 0 starts at the
/// first cell, not at the file header); a row maps to
/// `ceil(row_bytes / page_size)` pages, and with `page_size ≥ row_bytes`
/// to at most 2 (or exactly 1 when rows pack evenly) — the experimental
/// backing for the paper's "single disk access" reconstruction claim.
pub struct CachedFile {
    file: Arc<MatrixFile>,
    pool: BufferPool,
    stats: Arc<IoStats>,
}

impl CachedFile {
    /// Wrap `file` with a pool of `capacity` pages of `page_size` bytes.
    pub fn new(file: Arc<MatrixFile>, capacity: usize, page_size: usize) -> Self {
        let stats = IoStats::new();
        CachedFile {
            pool: BufferPool::new(capacity, page_size, Arc::clone(&stats)),
            file,
            stats,
        }
    }

    /// Wrap with a page size equal to the row size, so each row occupies
    /// exactly one page — the paper's "an entire row fits in one disk
    /// block" assumption, made true by construction.
    pub fn row_aligned(file: Arc<MatrixFile>, capacity: usize) -> Self {
        let row_bytes = file.header().row_bytes().max(1);
        let stats = IoStats::new();
        CachedFile {
            pool: BufferPool::new(capacity, row_bytes, Arc::clone(&stats)),
            file,
            stats,
        }
    }

    /// The pool's I/O counters (hits, physical page loads).
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Number of rows in the underlying file.
    pub fn rows(&self) -> usize {
        self.file.rows()
    }

    /// Number of columns in the underlying file.
    pub fn cols(&self) -> usize {
        self.file.cols()
    }

    /// Whether pages are row-aligned (each row within a single page).
    fn row_aligned_layout(&self) -> bool {
        self.pool.page_size() >= self.file.header().row_bytes()
            && self
                .pool
                .page_size()
                .is_multiple_of(self.file.header().row_bytes().max(1))
    }

    /// Read row `i` through the page cache.
    pub fn read_row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
        let header = *self.file.header();
        if i >= header.rows {
            return Err(AtsError::oob("row", i, header.rows));
        }
        if out.len() != header.cols {
            return Err(AtsError::dims(
                "CachedFile::read_row_into",
                (1, out.len()),
                (1, header.cols),
            ));
        }
        self.stats.record_logical();
        let row_bytes = header.row_bytes();
        let page_size = self.pool.page_size();
        let page_size_u64 = u64_from_usize(page_size);
        // offset within the data area
        let start = u64_from_usize(i) * u64_from_usize(row_bytes);
        let data_len = header.file_len() - u64_from_usize(crate::format::HEADER_LEN);
        if self.row_aligned_layout() {
            // Fast path: the whole row sits inside one page, so decode
            // straight from the page slice — no scratch allocation.
            let page_no = start / page_size_u64;
            let in_page = usize_from_u64(start % page_size_u64, "in-page offset")?;
            let file = Arc::clone(&self.file);
            return self.pool.with_page(
                page_no,
                |buf| load_page(&file, page_no, page_size, data_len, buf),
                |buf| -> Result<()> {
                    let row = buf
                        .get(in_page..in_page + row_bytes)
                        .ok_or_else(|| AtsError::internal("aligned row span escapes its page"))?;
                    crate::file::decode_cells(row, header.is_f32(), out);
                    Ok(())
                },
            )?;
        }
        // Slow path: the row may straddle pages; assemble it through a
        // scratch buffer before decoding.
        let mut row_buf = vec![0u8; row_bytes];
        let mut copied = 0usize;
        while copied < row_bytes {
            let abs = start + u64_from_usize(copied);
            let page_no = abs / page_size_u64;
            let in_page = usize_from_u64(abs % page_size_u64, "in-page offset")?;
            let take = (page_size - in_page).min(row_bytes - copied);
            let file = Arc::clone(&self.file);
            let dst = row_buf
                .get_mut(copied..copied + take)
                .ok_or_else(|| AtsError::internal("row scratch slice out of range"))?;
            self.pool.with_page(
                page_no,
                |buf| load_page(&file, page_no, page_size, data_len, buf),
                |buf| -> Result<()> {
                    let src = buf
                        .get(in_page..in_page + take)
                        .ok_or_else(|| AtsError::internal("straddled row span escapes its page"))?;
                    dst.copy_from_slice(src);
                    Ok(())
                },
            )??;
            copied += take;
        }
        crate::file::decode_cells(&row_buf, header.is_f32(), out);
        Ok(())
    }

    /// Read row `i`, allocating.
    pub fn read_row(&self, i: usize) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.file.cols()];
        self.read_row_into(i, &mut out)?;
        Ok(out)
    }

    /// Read several rows through the page cache: row `rows[r]` lands in
    /// `out[r·cols .. (r+1)·cols]`.
    ///
    /// The batched-query read path: exactly one logical read (and, on a
    /// row-aligned layout, at most one physical page load) per entry of
    /// `rows`, whatever the order or duplication. All row indices are
    /// validated before anything is fetched, so a bad index never leaves
    /// partial output.
    pub fn read_rows_into(&self, rows: &[usize], out: &mut [f64]) -> Result<()> {
        let header = *self.file.header();
        if out.len() != rows.len() * header.cols {
            return Err(AtsError::dims(
                "CachedFile::read_rows_into",
                (rows.len(), header.cols),
                (out.len() / header.cols.max(1), header.cols),
            ));
        }
        for &i in rows {
            if i >= header.rows {
                return Err(AtsError::oob("row", i, header.rows));
            }
        }
        if header.cols == 0 {
            return Ok(());
        }
        for (&i, orow) in rows.iter().zip(out.chunks_mut(header.cols)) {
            self.read_row_into(i, orow)?;
        }
        Ok(())
    }

    /// Worst-case number of page fetches a single cold row read can incur
    /// under the current layout (1 when row-aligned).
    pub fn max_pages_per_row(&self) -> usize {
        if self.row_aligned_layout() {
            1
        } else {
            // A row of `rb` bytes starting at an arbitrary offset covers
            // `ceil(rb / ps)` full pages' worth of bytes plus at most one
            // extra page for the misaligned start.
            let rb = self.file.header().row_bytes();
            let ps = self.pool.page_size();
            rb.div_ceil(ps) + 1
        }
    }
}

/// Load one page of the data area into `buf`; pages extending past EOF
/// stay zero-padded (the pool hands us a zeroed buffer).
fn load_page(
    file: &MatrixFile,
    page_no: u64,
    page_size: usize,
    data_len: u64,
    buf: &mut [u8],
) -> Result<()> {
    let page_off = page_no * u64_from_usize(page_size);
    let avail = usize_from_u64(
        data_len
            .saturating_sub(page_off)
            .min(u64_from_usize(page_size)),
        "page fill length",
    )?;
    if avail > 0 {
        let dst = buf
            .get_mut(..avail)
            .ok_or_else(|| AtsError::internal("page buffer smaller than fill length"))?;
        read_data_at(file, page_off, dst)?;
    }
    Ok(())
}

fn read_data_at(file: &MatrixFile, data_offset: u64, buf: &mut [u8]) -> Result<()> {
    // Positioned read relative to the data area (which starts after the
    // fixed-size header).
    file.raw_read_at(data_offset + u64_from_usize(crate::format::HEADER_LEN), buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::write_matrix;
    use ats_linalg::Matrix;

    fn setup(n: usize, m: usize, name: &str) -> (Matrix, Arc<MatrixFile>, ats_common::TestDir) {
        let dir = ats_common::TestDir::new("ats-pool");
        let path = dir.file(name);
        let mat = Matrix::from_fn(n, m, |i, j| (i * 100 + j) as f64 * 0.25);
        write_matrix(&path, &mat).unwrap();
        (mat, Arc::new(MatrixFile::open(&path).unwrap()), dir)
    }

    #[test]
    fn cached_rows_match_file() {
        let (mat, file, _dir) = setup(40, 6, "match.atsm");
        let cf = CachedFile::row_aligned(file, 8);
        for i in 0..40 {
            assert_eq!(cf.read_row(i).unwrap(), mat.row(i));
        }
    }

    #[test]
    fn row_aligned_one_physical_read_per_cold_row() {
        let (_, file, _dir) = setup(20, 7, "cold.atsm");
        let cf = CachedFile::row_aligned(file, 32);
        assert_eq!(cf.max_pages_per_row(), 1);
        for i in 0..20 {
            cf.read_row(i).unwrap();
        }
        // 20 cold rows => exactly 20 physical page loads: the paper's
        // one-disk-access-per-query claim, measured.
        assert_eq!(cf.stats().physical_reads(), 20);
        assert_eq!(cf.stats().cache_hits(), 0);
    }

    #[test]
    fn repeated_reads_hit_cache() {
        let (_, file, _dir) = setup(10, 4, "hits.atsm");
        let cf = CachedFile::row_aligned(file, 16);
        cf.read_row(3).unwrap();
        let phys_before = cf.stats().physical_reads();
        for _ in 0..5 {
            cf.read_row(3).unwrap();
        }
        assert_eq!(cf.stats().physical_reads(), phys_before);
        assert_eq!(cf.stats().cache_hits(), 5);
    }

    #[test]
    fn eviction_under_pressure() {
        let (mat, file, _dir) = setup(32, 4, "evict.atsm");
        let cf = CachedFile::row_aligned(file, 4); // only 4 resident pages
                                                   // Sweep all rows twice: second sweep re-misses because capacity 4 < 32.
        for _ in 0..2 {
            for i in 0..32 {
                assert_eq!(cf.read_row(i).unwrap(), mat.row(i));
            }
        }
        assert_eq!(cf.stats().physical_reads(), 64);
        assert_eq!(cf.stats().cache_hits(), 0);
    }

    #[test]
    fn lru_keeps_hot_page() {
        let (_, file, _dir) = setup(8, 2, "lru.atsm");
        let cf = CachedFile::row_aligned(file, 2);
        cf.read_row(0).unwrap(); // load A
        cf.read_row(1).unwrap(); // load B
        cf.read_row(0).unwrap(); // hit A (A now MRU)
        cf.read_row(2).unwrap(); // load C, evicts B (LRU)
        let phys = cf.stats().physical_reads();
        cf.read_row(0).unwrap(); // still resident
        assert_eq!(cf.stats().physical_reads(), phys);
        cf.read_row(1).unwrap(); // B was evicted: miss
        assert_eq!(cf.stats().physical_reads(), phys + 1);
    }

    #[test]
    fn small_pages_split_rows() {
        let (mat, file, _dir) = setup(10, 16, "split.atsm"); // 128-byte rows
        let cf = CachedFile::new(file, 64, 64); // 64-byte pages: 2 per row
        for i in 0..10 {
            assert_eq!(cf.read_row(i).unwrap(), mat.row(i));
        }
        // Exactly ceil(128/64) + 1 = 3: two full pages of bytes plus one
        // extra when the row starts mid-page.
        assert_eq!(cf.max_pages_per_row(), 3);
    }

    #[test]
    fn max_pages_per_row_exact_across_geometries() {
        // (cols, page_size, expected): rows are cols*8 bytes.
        for (cols, ps, expect) in [
            (16usize, 64usize, 3usize), // 128B rows, 64B pages: 128/64+1
            (10, 48, 3),                // 80B rows, 48B pages: ceil(80/48)+1
            (10, 100, 2),               // 80B rows, 100B pages, misaligned
            (6, 13, 5),                 // 48B rows, 13B pages: ceil(48/13)+1
        ] {
            let (mat, file, _dir) = setup(12, cols, "geom.atsm");
            let cf = CachedFile::new(file, 32, ps);
            assert_eq!(cf.max_pages_per_row(), expect, "cols={cols} ps={ps}");
            // The bound must hold empirically: a cold row read never
            // fetches more pages than advertised.
            for i in 0..12 {
                let before = cf.stats().physical_reads();
                assert_eq!(cf.read_row(i).unwrap(), mat.row(i));
                let fetched = (cf.stats().physical_reads() - before) as usize;
                assert!(fetched <= expect, "row {i} fetched {fetched} > {expect}");
            }
        }
    }

    #[test]
    fn out_of_bounds_row_rejected() {
        let (_, file, _dir) = setup(5, 3, "oob.atsm");
        let cf = CachedFile::row_aligned(file, 4);
        assert!(cf.read_row(5).is_err());
        let mut wrong = vec![0.0; 2];
        assert!(cf.read_row_into(0, &mut wrong).is_err());
    }

    #[test]
    fn concurrent_cached_reads() {
        let (mat, file, _dir) = setup(64, 5, "conc.atsm");
        let cf = Arc::new(CachedFile::row_aligned(file, 16));
        std::thread::scope(|s| {
            for t in 0..4 {
                let cf = Arc::clone(&cf);
                let mat = &mat;
                s.spawn(move || {
                    for i in (t..64).step_by(4) {
                        assert_eq!(cf.read_row(i).unwrap(), mat.row(i));
                    }
                });
            }
        });
        assert_eq!(
            cf.stats().logical_reads(),
            64,
            "each row requested exactly once"
        );
    }

    #[test]
    fn read_rows_into_batches_with_one_logical_read_per_row() {
        let (mat, file, _dir) = setup(24, 5, "batch.atsm");
        let cf = CachedFile::row_aligned(file, 32);
        // Unsorted with a duplicate: 6 requests over 5 distinct rows.
        let rows = [19usize, 2, 7, 2, 11, 0];
        let mut out = vec![0.0; rows.len() * 5];
        cf.read_rows_into(&rows, &mut out).unwrap();
        for (&i, orow) in rows.iter().zip(out.chunks(5)) {
            assert_eq!(orow, mat.row(i));
        }
        assert_eq!(cf.stats().logical_reads(), 6);
        // 5 distinct row-aligned pages fetched; the duplicate hits cache.
        assert_eq!(cf.stats().physical_reads(), 5);
        assert_eq!(cf.stats().cache_hits(), 1);
        // Bad index validated before any fetch.
        let phys = cf.stats().physical_reads();
        let mut out2 = vec![0.0; 2 * 5];
        assert!(cf.read_rows_into(&[0, 24], &mut out2).is_err());
        assert_eq!(cf.stats().physical_reads(), phys);
        assert!(out2.iter().all(|&x| x == 0.0), "no partial work");
        let mut wrong = vec![0.0; 3];
        assert!(cf.read_rows_into(&[0], &mut wrong).is_err());
    }

    #[test]
    fn pool_resident_bounded_by_capacity() {
        let (_, file, _dir) = setup(32, 4, "bound.atsm");
        let cf = CachedFile::row_aligned(file, 4);
        for i in 0..32 {
            cf.read_row(i).unwrap();
        }
        assert!(cf.pool.resident() <= 4);
    }
}
