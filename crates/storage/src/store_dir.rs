//! Store-directory format v2: versioned manifest, per-component CRCs,
//! and crash-safe atomic saves.
//!
//! A *store directory* is the on-disk home of a compressed store (the
//! paper's §4.1 serving layout): `u.atsm`, `v.atsm`, `lambda.atsm`,
//! `deltas.bin`, plus `manifest.txt`. Format v1 wrote these files in
//! place and treated the manifest as decoration — a crash mid-save left
//! a half-written directory that opened silently, and a bit-flip in any
//! component went undetected unless it happened to land in an `.atsm`
//! header. Version 2 makes the directory the durability boundary:
//!
//! - **Atomic saves** ([`StoreWriter`]): every component is written into
//!   a hidden sibling temp directory, fsynced, and the whole directory is
//!   renamed into place in one step. A crash at *any* point leaves either
//!   the previous store or no store — never a torn one.
//! - **Validated opens** ([`validate_store_dir`]): `manifest.txt` is a
//!   parsed, versioned document carrying the method, dimensions, `k`,
//!   delta count, the Bloom-filter flag, and a CRC per component file; it
//!   is itself covered by a trailing self-checksum. Opening cross-checks
//!   every CRC against the bytes on disk, so truncation, deletion, or
//!   corruption of any component surfaces as [`AtsError::Corrupt`].
//!
//! The manifest is line-oriented `key=value` text so it stays greppable:
//!
//! ```text
//! ats-store-version=2
//! method=svdd
//! rows=2000
//! cols=366
//! k=5
//! deltas=1423
//! bloom=true
//! crc.u.atsm=9f47c1d2e8a33b10
//! crc.v.atsm=...
//! crc.lambda.atsm=...
//! crc.deltas.bin=...
//! manifest-crc=...          # hash of every preceding byte
//! ```

use ats_common::codec::u64_from_usize;
use ats_common::hash::hash_bytes;
use ats_common::{AtsError, Result};
use std::fs::{self, File};
use std::path::{Path, PathBuf};

/// Current store-directory format version.
pub const STORE_VERSION: u32 = 2;

/// Name of the manifest file inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.txt";

/// Component files of a store directory, in manifest order.
pub const COMPONENT_FILES: [&str; 4] = ["u.atsm", "v.atsm", "lambda.atsm", "deltas.bin"];

/// Parsed, validated contents of a v2 `manifest.txt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreManifest {
    /// Compression method tag (`"svd"` or `"svdd"`).
    pub method: String,
    /// Number of sequences (`N`).
    pub rows: usize,
    /// Sequence length (`M`).
    pub cols: usize,
    /// Retained principal components.
    pub k: usize,
    /// Number of outlier deltas in `deltas.bin`.
    pub deltas: usize,
    /// Whether the delta table carries a Bloom filter (§4.2) — restored
    /// on open so a `.bloom(false)` store does not silently grow one.
    pub bloom: bool,
    /// CRC of each component file, parallel to [`COMPONENT_FILES`].
    pub crcs: [u64; 4],
}

impl StoreManifest {
    /// Serialize to the canonical text form, including the trailing
    /// `manifest-crc` self-checksum line.
    pub fn encode(&self) -> String {
        let mut text = String::new();
        text.push_str(&format!("ats-store-version={STORE_VERSION}\n"));
        text.push_str(&format!("method={}\n", self.method));
        text.push_str(&format!("rows={}\n", self.rows));
        text.push_str(&format!("cols={}\n", self.cols));
        text.push_str(&format!("k={}\n", self.k));
        text.push_str(&format!("deltas={}\n", self.deltas));
        text.push_str(&format!("bloom={}\n", self.bloom));
        for (name, crc) in COMPONENT_FILES.iter().zip(&self.crcs) {
            text.push_str(&format!("crc.{name}={crc:016x}\n"));
        }
        let csum = hash_bytes(text.as_bytes());
        text.push_str(&format!("manifest-crc={csum:016x}\n"));
        text
    }

    /// Parse and validate manifest text: self-checksum, version, and the
    /// presence of every required key exactly once.
    pub fn parse(text: &str) -> Result<Self> {
        // The self-checksum covers every byte before its own line.
        let crc_line_start = text
            .rfind("manifest-crc=")
            .ok_or_else(|| AtsError::Corrupt("manifest missing self-checksum".into()))?;
        let head = text
            .get(..crc_line_start)
            .ok_or_else(|| AtsError::internal("manifest-crc offset off a char boundary"))?;
        let tail = text
            .get(crc_line_start..)
            .ok_or_else(|| AtsError::internal("manifest-crc offset off a char boundary"))?;
        let tail = tail.strip_suffix('\n').unwrap_or(tail);
        let stored_crc = parse_hex_u64(
            tail.strip_prefix("manifest-crc=")
                .ok_or_else(|| AtsError::Corrupt("malformed manifest-crc line".into()))?,
        )?;
        let computed = hash_bytes(head.as_bytes());
        if stored_crc != computed {
            return Err(AtsError::Corrupt(format!(
                "manifest self-checksum mismatch: stored {stored_crc:#x}, computed {computed:#x}"
            )));
        }

        let mut version = None;
        let mut method = None;
        let mut rows = None;
        let mut cols = None;
        let mut k = None;
        let mut deltas = None;
        let mut bloom = None;
        let mut crcs: [Option<u64>; 4] = [None; 4];
        for line in head.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| AtsError::Corrupt(format!("malformed manifest line {line:?}")))?;
            let slot: &mut Option<_> = match key {
                "ats-store-version" => {
                    set_once("ats-store-version", &mut version, parse_usize(key, value)?)?;
                    continue;
                }
                "method" => {
                    set_once("method", &mut method, value.to_string())?;
                    continue;
                }
                "rows" => &mut rows,
                "cols" => &mut cols,
                "k" => &mut k,
                "deltas" => &mut deltas,
                "bloom" => {
                    let b = match value {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(AtsError::Corrupt(format!(
                                "manifest bloom flag must be true|false, got {other:?}"
                            )))
                        }
                    };
                    set_once("bloom", &mut bloom, b)?;
                    continue;
                }
                crc_key => {
                    let i = COMPONENT_FILES
                        .iter()
                        .position(|name| crc_key == format!("crc.{name}"))
                        .ok_or_else(|| {
                            AtsError::Corrupt(format!("unknown manifest key {crc_key:?}"))
                        })?;
                    let slot = crcs
                        .get_mut(i)
                        .ok_or_else(|| AtsError::internal("component CRC index out of range"))?;
                    set_once(crc_key, slot, parse_hex_u64(value)?)?;
                    continue;
                }
            };
            let parsed = parse_usize(key, value)?;
            set_once(key, slot, parsed)?;
        }

        let version =
            version.ok_or_else(|| AtsError::Corrupt("manifest missing version".into()))?;
        if u64_from_usize(version) != u64::from(STORE_VERSION) {
            return Err(AtsError::Corrupt(format!(
                "unsupported store format version {version} (expected {STORE_VERSION})"
            )));
        }
        let require = |what: &str, v: Option<usize>| {
            v.ok_or_else(|| AtsError::Corrupt(format!("manifest missing {what}")))
        };
        let mut out_crcs = [0u64; 4];
        for ((out, src), name) in out_crcs.iter_mut().zip(&crcs).zip(COMPONENT_FILES) {
            *out = src.ok_or_else(|| AtsError::Corrupt(format!("manifest missing crc.{name}")))?;
        }
        Ok(StoreManifest {
            method: method.ok_or_else(|| AtsError::Corrupt("manifest missing method".into()))?,
            rows: require("rows", rows)?,
            cols: require("cols", cols)?,
            k: require("k", k)?,
            deltas: require("deltas", deltas)?,
            bloom: bloom.ok_or_else(|| AtsError::Corrupt("manifest missing bloom flag".into()))?,
            crcs: out_crcs,
        })
    }

    /// Read and parse `dir/manifest.txt`.
    ///
    /// A missing directory surfaces as the underlying I/O error ("clean
    /// absence"); a directory that exists but has no manifest is a
    /// corrupt or pre-v2 store.
    pub fn read(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        let path = dir.join(MANIFEST_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && dir.is_dir() => {
                return Err(AtsError::Corrupt(format!(
                    "store at {} has no {MANIFEST_FILE} (not a v{STORE_VERSION} store)",
                    dir.display()
                )));
            }
            Err(e) => return Err(e.into()),
        };
        Self::parse(&text)
    }
}

fn set_once<T>(key: &str, slot: &mut Option<T>, value: T) -> Result<()> {
    if slot.is_some() {
        return Err(AtsError::Corrupt(format!("duplicate manifest key {key:?}")));
    }
    *slot = Some(value);
    Ok(())
}

fn parse_usize(key: &str, value: &str) -> Result<usize> {
    value
        .parse()
        .map_err(|_| AtsError::Corrupt(format!("manifest {key}={value:?} is not a number")))
}

fn parse_hex_u64(value: &str) -> Result<u64> {
    u64::from_str_radix(value, 16)
        .map_err(|_| AtsError::Corrupt(format!("manifest checksum {value:?} is not hex")))
}

/// Checksum of a whole file's contents (the per-component CRC recorded
/// in the manifest).
pub fn file_crc(path: impl AsRef<Path>) -> Result<u64> {
    Ok(hash_bytes(&fs::read(path)?))
}

/// Validate a store directory: parse the manifest and cross-check every
/// component file's CRC against it.
///
/// Returns the manifest on success. A missing directory propagates as an
/// I/O error; anything else — missing manifest, missing component,
/// truncated or bit-flipped bytes — is [`AtsError::Corrupt`].
pub fn validate_store_dir(dir: impl AsRef<Path>) -> Result<StoreManifest> {
    let dir = dir.as_ref();
    let manifest = StoreManifest::read(dir)?;
    for (name, &expected) in COMPONENT_FILES.iter().zip(&manifest.crcs) {
        let path = dir.join(name);
        let got = match file_crc(&path) {
            Ok(c) => c,
            Err(AtsError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(AtsError::Corrupt(format!(
                    "store component {name} is missing from {}",
                    dir.display()
                )));
            }
            Err(e) => return Err(e),
        };
        if got != expected {
            return Err(AtsError::Corrupt(format!(
                "store component {name} checksum mismatch: manifest {expected:#x}, file {got:#x}"
            )));
        }
    }
    Ok(manifest)
}

/// Crash-safe store-directory writer: stage every component in a hidden
/// sibling temp directory, then swap it into place atomically.
///
/// ```text
/// begin(dir)   -> create  <parent>/.<name>.tmp-<pid>
/// (write components into writer.path())
/// commit(m)    -> CRC components, write manifest, fsync everything,
///                 rename old dir aside, rename temp -> dir, fsync parent
/// drop w/o commit -> temp directory removed, target untouched
/// ```
///
/// A crash before the final rename leaves the previous store (or nothing,
/// if there was none) at `dir`; a crash inside the swap window leaves
/// `dir` absent — a clean, detectable absence, never a torn store.
pub struct StoreWriter {
    tmp: PathBuf,
    final_dir: PathBuf,
    committed: bool,
}

impl StoreWriter {
    /// Start a save targeting `final_dir`. Any stale temp directory from
    /// a previous crashed save of the same target is cleared.
    pub fn begin(final_dir: impl AsRef<Path>) -> Result<Self> {
        let final_dir = final_dir.as_ref().to_path_buf();
        let name = final_dir
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| {
                AtsError::InvalidArgument(format!(
                    "store path {} has no usable directory name",
                    final_dir.display()
                ))
            })?
            .to_string();
        if final_dir.exists() && !is_replaceable(&final_dir) {
            return Err(AtsError::InvalidArgument(format!(
                "{} exists and is not a store directory; refusing to replace it",
                final_dir.display()
            )));
        }
        let parent = parent_of(&final_dir);
        fs::create_dir_all(&parent)?;
        let tmp = parent.join(format!(".{name}.tmp-{}", std::process::id()));
        if tmp.exists() {
            fs::remove_dir_all(&tmp)?;
        }
        fs::create_dir_all(&tmp)?;
        Ok(StoreWriter {
            tmp,
            final_dir,
            committed: false,
        })
    }

    /// The staging directory to write component files into.
    pub fn path(&self) -> &Path {
        &self.tmp
    }

    /// Finish the save: fill the manifest's component CRCs from the files
    /// staged in [`StoreWriter::path`], write it, fsync every file and the
    /// directory, and atomically swap the staged directory into place.
    pub fn commit(mut self, mut manifest: StoreManifest) -> Result<()> {
        for (crc, name) in manifest.crcs.iter_mut().zip(COMPONENT_FILES) {
            let path = self.tmp.join(name);
            *crc = match file_crc(&path) {
                Ok(c) => c,
                Err(AtsError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    return Err(AtsError::InvalidArgument(format!(
                        "commit without staged component {name}"
                    )));
                }
                Err(e) => return Err(e),
            };
        }
        fs::write(self.tmp.join(MANIFEST_FILE), manifest.encode())?;
        // Durability point: every staged byte reaches disk before the
        // rename can expose the new directory.
        for entry in fs::read_dir(&self.tmp)? {
            File::open(entry?.path())?.sync_all()?;
        }
        sync_dir(&self.tmp)?;

        let parent = parent_of(&self.final_dir);
        let name = self
            .final_dir
            .file_name()
            .ok_or_else(|| {
                AtsError::InvalidArgument("store path has no final directory name".into())
            })?
            .to_string_lossy();
        let retired = parent.join(format!(".{name}.old-{}", std::process::id()));
        if retired.exists() {
            fs::remove_dir_all(&retired)?;
        }
        if self.final_dir.exists() {
            fs::rename(&self.final_dir, &retired)?;
        }
        fs::rename(&self.tmp, &self.final_dir)?;
        self.committed = true;
        if retired.exists() {
            let _ = fs::remove_dir_all(&retired);
        }
        sync_dir(&parent)?;
        Ok(())
    }
}

impl Drop for StoreWriter {
    fn drop(&mut self) {
        if !self.committed {
            let _ = fs::remove_dir_all(&self.tmp);
        }
    }
}

fn parent_of(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if p.as_os_str().is_empty() => PathBuf::from("."),
        Some(p) => p.to_path_buf(),
        None => PathBuf::from("."),
    }
}

/// A target we may replace: an empty directory, or something that looks
/// like a store (has a manifest or a `U` file). Anything else is user
/// data we refuse to clobber.
fn is_replaceable(dir: &Path) -> bool {
    if !dir.is_dir() {
        return false;
    }
    // ats-lint: allow(slice-index) — literal index 0 into the fixed-size COMPONENT_FILES const
    if dir.join(MANIFEST_FILE).exists() || dir.join(COMPONENT_FILES[0]).exists() {
        return true;
    }
    fs::read_dir(dir)
        .map(|mut d| d.next().is_none())
        .unwrap_or(false)
}

fn sync_dir(dir: &Path) -> Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> StoreManifest {
        StoreManifest {
            method: "svdd".into(),
            rows: 200,
            cols: 21,
            k: 5,
            deltas: 37,
            bloom: true,
            crcs: [1, 2, 3, 4],
        }
    }

    fn stage_components(dir: &Path) {
        for (i, name) in COMPONENT_FILES.iter().enumerate() {
            std::fs::write(dir.join(name), format!("component {i} payload")).unwrap();
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let m = manifest();
        assert_eq!(StoreManifest::parse(&m.encode()).unwrap(), m);
    }

    #[test]
    fn manifest_bitflip_detected_everywhere() {
        let text = manifest().encode();
        for i in 0..text.len() {
            let mut bytes = text.clone().into_bytes();
            bytes[i] ^= 0x01;
            let Ok(s) = String::from_utf8(bytes) else {
                continue; // non-UTF8 flips fail at read_to_string instead
            };
            assert!(
                StoreManifest::parse(&s).is_err(),
                "flip at byte {i} accepted: {s:?}"
            );
        }
    }

    #[test]
    fn manifest_missing_or_duplicate_keys_rejected() {
        let m = manifest();
        let text = m.encode();
        // Drop each line in turn (re-checksum so only the schema check fires).
        let lines: Vec<&str> = text.trim_end().lines().collect();
        for skip in 0..lines.len() - 1 {
            let mut body = String::new();
            for (i, l) in lines[..lines.len() - 1].iter().enumerate() {
                if i != skip {
                    body.push_str(l);
                    body.push('\n');
                }
            }
            let csum = ats_common::hash::hash_bytes(body.as_bytes());
            body.push_str(&format!("manifest-crc={csum:016x}\n"));
            assert!(
                StoreManifest::parse(&body).is_err(),
                "missing line {:?} accepted",
                lines[skip]
            );
        }
        // Duplicate a line.
        let mut body: String = lines[..lines.len() - 1].join("\n");
        body.push('\n');
        body.push_str(lines[1]);
        body.push('\n');
        let csum = ats_common::hash::hash_bytes(body.as_bytes());
        body.push_str(&format!("manifest-crc={csum:016x}\n"));
        assert!(StoreManifest::parse(&body).is_err(), "duplicate accepted");
    }

    #[test]
    fn manifest_wrong_version_rejected() {
        let text = manifest().encode().replace(
            &format!("ats-store-version={STORE_VERSION}"),
            "ats-store-version=1",
        );
        let body = &text[..text.rfind("manifest-crc=").unwrap()];
        let csum = ats_common::hash::hash_bytes(body.as_bytes());
        let text = format!("{body}manifest-crc={csum:016x}\n");
        let err = StoreManifest::parse(&text).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn commit_swaps_atomically_and_validates() {
        let t = ats_common::TestDir::new("ats-storedir");
        let target = t.file("store");

        let w = StoreWriter::begin(&target).unwrap();
        stage_components(w.path());
        w.commit(manifest()).unwrap();
        let m = validate_store_dir(&target).unwrap();
        assert_eq!(m.method, "svdd");
        assert_ne!(m.crcs, [1, 2, 3, 4], "commit recomputes real CRCs");

        // Replace with new contents: old store fully retired.
        let w = StoreWriter::begin(&target).unwrap();
        for name in COMPONENT_FILES {
            std::fs::write(w.path().join(name), b"second generation").unwrap();
        }
        let mut m2 = manifest();
        m2.deltas = 99;
        w.commit(m2).unwrap();
        let got = validate_store_dir(&target).unwrap();
        assert_eq!(got.deltas, 99);
        // No temp/retired litter left next to the store.
        let names: Vec<String> = std::fs::read_dir(t.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["store".to_string()], "{names:?}");
    }

    #[test]
    fn abandoned_writer_leaves_no_trace() {
        let t = ats_common::TestDir::new("ats-storedir");
        let target = t.file("store");
        {
            let w = StoreWriter::begin(&target).unwrap();
            stage_components(w.path());
            // dropped without commit
        }
        assert!(!target.exists());
        assert_eq!(std::fs::read_dir(t.path()).unwrap().count(), 0);
    }

    #[test]
    fn commit_without_all_components_refused() {
        let t = ats_common::TestDir::new("ats-storedir");
        let w = StoreWriter::begin(t.file("store")).unwrap();
        std::fs::write(w.path().join("u.atsm"), b"only one").unwrap();
        assert!(w.commit(manifest()).is_err());
        assert!(!t.file("store").exists());
    }

    #[test]
    fn refuses_to_replace_non_store_directory() {
        let t = ats_common::TestDir::new("ats-storedir");
        let target = t.file("precious");
        std::fs::create_dir_all(&target).unwrap();
        std::fs::write(target.join("thesis.tex"), b"years of work").unwrap();
        assert!(StoreWriter::begin(&target).is_err());
        assert!(target.join("thesis.tex").exists());
    }

    #[test]
    fn validate_rejects_missing_and_corrupt_components() {
        let t = ats_common::TestDir::new("ats-storedir");
        let target = t.file("store");
        let w = StoreWriter::begin(&target).unwrap();
        stage_components(w.path());
        w.commit(manifest()).unwrap();

        for name in COMPONENT_FILES {
            // Bit-flip.
            let path = target.join(name);
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[0] ^= 0x80;
            std::fs::write(&path, &bytes).unwrap();
            let err = validate_store_dir(&target).unwrap_err();
            assert!(matches!(err, AtsError::Corrupt(_)), "{name}: {err}");
            bytes[0] ^= 0x80;
            std::fs::write(&path, &bytes).unwrap();

            // Truncation.
            std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
            assert!(validate_store_dir(&target).is_err(), "{name} truncated");
            std::fs::write(&path, &bytes).unwrap();

            // Deletion.
            std::fs::remove_file(&path).unwrap();
            let err = validate_store_dir(&target).unwrap_err();
            assert!(matches!(err, AtsError::Corrupt(_)), "{name} deleted: {err}");
            std::fs::write(&path, &bytes).unwrap();
        }
        validate_store_dir(&target).unwrap();
    }

    #[test]
    fn missing_dir_is_io_not_corrupt() {
        let t = ats_common::TestDir::new("ats-storedir");
        let err = validate_store_dir(t.file("never-saved")).unwrap_err();
        assert!(matches!(err, AtsError::Io(_)), "{err}");
    }
}
