//! Store-directory format v2: versioned manifest, per-component CRCs,
//! and crash-safe atomic saves.
//!
//! A *store directory* is the on-disk home of a compressed store (the
//! paper's §4.1 serving layout): `u.atsm`, `v.atsm`, `lambda.atsm`,
//! `deltas.bin`, plus `manifest.txt`. Format v1 wrote these files in
//! place and treated the manifest as decoration — a crash mid-save left
//! a half-written directory that opened silently, and a bit-flip in any
//! component went undetected unless it happened to land in an `.atsm`
//! header. Version 2 makes the directory the durability boundary:
//!
//! - **Atomic saves** ([`StoreWriter`]): every component is written into
//!   a hidden sibling temp directory, fsynced, and the whole directory is
//!   renamed into place in one step. A crash at *any* point leaves either
//!   the previous store or no store — never a torn one.
//! - **Validated opens** ([`validate_store_dir`]): `manifest.txt` is a
//!   parsed, versioned document carrying the method, dimensions, `k`,
//!   delta count, the Bloom-filter flag, and a CRC per component file; it
//!   is itself covered by a trailing self-checksum. Opening cross-checks
//!   every CRC against the bytes on disk, so truncation, deletion, or
//!   corruption of any component surfaces as [`AtsError::Corrupt`].
//!
//! The manifest is line-oriented `key=value` text so it stays greppable:
//!
//! ```text
//! ats-store-version=2
//! method=svdd
//! rows=2000
//! cols=366
//! k=5
//! deltas=1423
//! bloom=true
//! crc.u.atsm=9f47c1d2e8a33b10
//! crc.v.atsm=...
//! crc.lambda.atsm=...
//! crc.deltas.bin=...
//! manifest-crc=...          # hash of every preceding byte
//! ```

use ats_common::codec::u64_from_usize;
use ats_common::hash::hash_bytes;
use ats_common::{AtsError, Result};
use std::fs::{self, File};
use std::path::{Path, PathBuf};

/// Current store-directory format version.
pub const STORE_VERSION: u32 = 2;

/// Sharded store-directory format version (row-range shards).
pub const SHARDED_STORE_VERSION: u32 = 3;

/// Time-blocked store-directory format version: the time axis is
/// partitioned into column blocks, each a complete nested v3 store in
/// its own `tblock-NNNN/` subdirectory.
pub const TIMEBLOCKED_STORE_VERSION: u32 = 4;

/// Name of the manifest file inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.txt";

/// Component files of a store directory, in manifest order.
pub const COMPONENT_FILES: [&str; 4] = ["u.atsm", "v.atsm", "lambda.atsm", "deltas.bin"];

/// Parsed, validated contents of a v2 `manifest.txt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreManifest {
    /// Compression method tag (`"svd"` or `"svdd"`).
    pub method: String,
    /// Number of sequences (`N`).
    pub rows: usize,
    /// Sequence length (`M`).
    pub cols: usize,
    /// Retained principal components.
    pub k: usize,
    /// Number of outlier deltas in `deltas.bin`.
    pub deltas: usize,
    /// Whether the delta table carries a Bloom filter (§4.2) — restored
    /// on open so a `.bloom(false)` store does not silently grow one.
    pub bloom: bool,
    /// CRC of each component file, parallel to [`COMPONENT_FILES`].
    pub crcs: [u64; 4],
}

impl StoreManifest {
    /// Serialize to the canonical text form, including the trailing
    /// `manifest-crc` self-checksum line.
    pub fn encode(&self) -> String {
        let mut text = String::new();
        text.push_str(&format!("ats-store-version={STORE_VERSION}\n"));
        text.push_str(&format!("method={}\n", self.method));
        text.push_str(&format!("rows={}\n", self.rows));
        text.push_str(&format!("cols={}\n", self.cols));
        text.push_str(&format!("k={}\n", self.k));
        text.push_str(&format!("deltas={}\n", self.deltas));
        text.push_str(&format!("bloom={}\n", self.bloom));
        for (name, crc) in COMPONENT_FILES.iter().zip(&self.crcs) {
            text.push_str(&format!("crc.{name}={crc:016x}\n"));
        }
        let csum = hash_bytes(text.as_bytes());
        text.push_str(&format!("manifest-crc={csum:016x}\n"));
        text
    }

    /// Parse and validate manifest text: self-checksum, version, and the
    /// presence of every required key exactly once.
    pub fn parse(text: &str) -> Result<Self> {
        // The self-checksum covers every byte before its own line.
        let head = checked_manifest_head(text)?;

        let mut version = None;
        let mut method = None;
        let mut rows = None;
        let mut cols = None;
        let mut k = None;
        let mut deltas = None;
        let mut bloom = None;
        let mut crcs: [Option<u64>; 4] = [None; 4];
        for line in head.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| AtsError::Corrupt(format!("malformed manifest line {line:?}")))?;
            let slot: &mut Option<_> = match key {
                "ats-store-version" => {
                    set_once("ats-store-version", &mut version, parse_usize(key, value)?)?;
                    continue;
                }
                "method" => {
                    set_once("method", &mut method, value.to_string())?;
                    continue;
                }
                "rows" => &mut rows,
                "cols" => &mut cols,
                "k" => &mut k,
                "deltas" => &mut deltas,
                "bloom" => {
                    let b = match value {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(AtsError::Corrupt(format!(
                                "manifest bloom flag must be true|false, got {other:?}"
                            )))
                        }
                    };
                    set_once("bloom", &mut bloom, b)?;
                    continue;
                }
                crc_key => {
                    let i = COMPONENT_FILES
                        .iter()
                        .position(|name| crc_key == format!("crc.{name}"))
                        .ok_or_else(|| {
                            AtsError::Corrupt(format!("unknown manifest key {crc_key:?}"))
                        })?;
                    let slot = crcs
                        .get_mut(i)
                        .ok_or_else(|| AtsError::internal("component CRC index out of range"))?;
                    set_once(crc_key, slot, parse_hex_u64(value)?)?;
                    continue;
                }
            };
            let parsed = parse_usize(key, value)?;
            set_once(key, slot, parsed)?;
        }

        let version =
            version.ok_or_else(|| AtsError::Corrupt("manifest missing version".into()))?;
        if u64_from_usize(version) != u64::from(STORE_VERSION) {
            return Err(AtsError::Corrupt(format!(
                "unsupported store format version {version} (expected {STORE_VERSION})"
            )));
        }
        let require = |what: &str, v: Option<usize>| {
            v.ok_or_else(|| AtsError::Corrupt(format!("manifest missing {what}")))
        };
        let mut out_crcs = [0u64; 4];
        for ((out, src), name) in out_crcs.iter_mut().zip(&crcs).zip(COMPONENT_FILES) {
            *out = src.ok_or_else(|| AtsError::Corrupt(format!("manifest missing crc.{name}")))?;
        }
        Ok(StoreManifest {
            method: method.ok_or_else(|| AtsError::Corrupt("manifest missing method".into()))?,
            rows: require("rows", rows)?,
            cols: require("cols", cols)?,
            k: require("k", k)?,
            deltas: require("deltas", deltas)?,
            bloom: bloom.ok_or_else(|| AtsError::Corrupt("manifest missing bloom flag".into()))?,
            crcs: out_crcs,
        })
    }

    /// Read and parse `dir/manifest.txt`.
    ///
    /// A missing directory surfaces as the underlying I/O error ("clean
    /// absence"); a directory that exists but has no manifest is a
    /// corrupt or pre-v2 store.
    pub fn read(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        let path = dir.join(MANIFEST_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && dir.is_dir() => {
                return Err(AtsError::Corrupt(format!(
                    "store at {} has no {MANIFEST_FILE} (not a v{STORE_VERSION} store)",
                    dir.display()
                )));
            }
            Err(e) => return Err(e.into()),
        };
        Self::parse(&text)
    }
}

fn set_once<T>(key: &str, slot: &mut Option<T>, value: T) -> Result<()> {
    if slot.is_some() {
        return Err(AtsError::Corrupt(format!("duplicate manifest key {key:?}")));
    }
    *slot = Some(value);
    Ok(())
}

fn parse_usize(key: &str, value: &str) -> Result<usize> {
    value
        .parse()
        .map_err(|_| AtsError::Corrupt(format!("manifest {key}={value:?} is not a number")))
}

fn parse_hex_u64(value: &str) -> Result<u64> {
    u64::from_str_radix(value, 16)
        .map_err(|_| AtsError::Corrupt(format!("manifest checksum {value:?} is not hex")))
}

/// Checksum of a whole file's contents (the per-component CRC recorded
/// in the manifest).
pub fn file_crc(path: impl AsRef<Path>) -> Result<u64> {
    Ok(hash_bytes(&fs::read(path)?))
}

/// Validate a store directory: parse the manifest and cross-check every
/// component file's CRC against it.
///
/// Returns the manifest on success. A missing directory propagates as an
/// I/O error; anything else — missing manifest, missing component,
/// truncated or bit-flipped bytes — is [`AtsError::Corrupt`].
pub fn validate_store_dir(dir: impl AsRef<Path>) -> Result<StoreManifest> {
    let dir = dir.as_ref();
    let manifest = StoreManifest::read(dir)?;
    for (name, &expected) in COMPONENT_FILES.iter().zip(&manifest.crcs) {
        let path = dir.join(name);
        let got = match file_crc(&path) {
            Ok(c) => c,
            Err(AtsError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(AtsError::Corrupt(format!(
                    "store component {name} is missing from {}",
                    dir.display()
                )));
            }
            Err(e) => return Err(e),
        };
        if got != expected {
            return Err(AtsError::Corrupt(format!(
                "store component {name} checksum mismatch: manifest {expected:#x}, file {got:#x}"
            )));
        }
    }
    Ok(manifest)
}

/// Name of the subdirectory holding shard `index` inside a v3 store
/// directory (`shard-0000`, `shard-0001`, …).
pub fn shard_dir_name(index: usize) -> String {
    format!("shard-{index:04}")
}

/// Shared (global) component files of a v3 store directory, in manifest
/// order: the `V` and `Λ` factors every shard reconstructs against.
pub const SHARED_FILES: [&str; 2] = ["v.atsm", "lambda.atsm"];

/// Per-shard component files, living inside each `shard-NNNN/` subdir.
pub const SHARD_FILES: [&str; 2] = ["u.atsm", "deltas.bin"];

/// One row-range shard recorded in a v3 manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardEntry {
    /// First (absolute) row of the shard, inclusive.
    pub start: usize,
    /// One past the last (absolute) row of the shard.
    pub end: usize,
    /// Number of outlier deltas in this shard's `deltas.bin`.
    pub deltas: usize,
    /// CRC of the shard's `u.atsm`.
    pub crc_u: u64,
    /// CRC of the shard's `deltas.bin`.
    pub crc_deltas: u64,
    /// CRC of the shard's `synopsis.bin` zone-map, when the shard
    /// carries one. `None` for stores written before the synopsis layer
    /// existed — they open unchanged and queries fall back to exact
    /// scans.
    pub crc_synopsis: Option<u64>,
    /// For shards created by the append path: the sum of squared
    /// reconstruction errors of the new rows under the frozen global
    /// `V/Λ` (they carry no deltas, so this is the honest error record).
    pub append_sse: Option<f64>,
}

impl ShardEntry {
    /// Number of rows in the shard.
    pub fn rows(&self) -> usize {
        self.end.saturating_sub(self.start)
    }
}

/// Parsed, validated contents of a sharded (v3) `manifest.txt` — or a
/// v2 manifest normalized into a single-shard view.
///
/// The v3 layout keeps `V` and `Λ` at the top level (they are global:
/// every shard reconstructs against the same factors) and gives each
/// row-range shard its own subdirectory with a `U` partition and a
/// delta partition:
///
/// ```text
/// store/
///   manifest.txt        # this document
///   v.atsm  lambda.atsm # shared factors
///   shard-0000/ u.atsm deltas.bin
///   shard-0001/ u.atsm deltas.bin
///   ...
/// ```
///
/// Delta rows inside a shard's `deltas.bin` are stored *relative to the
/// shard's start row*, so a v2 directory — whose single `deltas.bin`
/// is based at row 0 — is exactly a one-shard v3 store and opens as
/// one ([`ShardedManifest::read`] normalizes it, `source_version = 2`).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedManifest {
    /// Compression method tag (`"svd"` or `"svdd"`).
    pub method: String,
    /// Total number of sequences (`N`) across all shards.
    pub rows: usize,
    /// Sequence length (`M`).
    pub cols: usize,
    /// Retained principal components.
    pub k: usize,
    /// Total number of outlier deltas across all shards.
    pub deltas: usize,
    /// Whether delta tables carry Bloom filters (§4.2).
    pub bloom: bool,
    /// CRC of the shared `v.atsm`.
    pub crc_v: u64,
    /// CRC of the shared `lambda.atsm`.
    pub crc_lambda: u64,
    /// Row-range shards, in ascending row order.
    pub shards: Vec<ShardEntry>,
    /// Format version the manifest was read from: 2 (normalized
    /// single-shard view of a legacy directory) or 3.
    pub source_version: u32,
}

impl ShardedManifest {
    /// Directory holding shard `index`'s component files: the store
    /// directory itself for a normalized v2 store, `shard-NNNN/` for v3.
    pub fn shard_dir(&self, base: &Path, index: usize) -> PathBuf {
        if self.source_version == STORE_VERSION {
            base.to_path_buf()
        } else {
            base.join(shard_dir_name(index))
        }
    }

    /// Index of the shard owning absolute row `row`, if in range.
    pub fn shard_of_row(&self, row: usize) -> Option<usize> {
        self.shards
            .iter()
            .position(|s| row >= s.start && row < s.end)
    }

    /// Serialize to the canonical v3 text form, including the trailing
    /// `manifest-crc` self-checksum line.
    pub fn encode(&self) -> String {
        let mut text = String::new();
        text.push_str(&format!("ats-store-version={SHARDED_STORE_VERSION}\n"));
        text.push_str(&format!("method={}\n", self.method));
        text.push_str(&format!("rows={}\n", self.rows));
        text.push_str(&format!("cols={}\n", self.cols));
        text.push_str(&format!("k={}\n", self.k));
        text.push_str(&format!("deltas={}\n", self.deltas));
        text.push_str(&format!("bloom={}\n", self.bloom));
        text.push_str(&format!("crc.v.atsm={:016x}\n", self.crc_v));
        text.push_str(&format!("crc.lambda.atsm={:016x}\n", self.crc_lambda));
        text.push_str(&format!("shards={}\n", self.shards.len()));
        for (i, s) in self.shards.iter().enumerate() {
            text.push_str(&format!("shard.{i}.rows={}..{}\n", s.start, s.end));
            text.push_str(&format!("shard.{i}.deltas={}\n", s.deltas));
            text.push_str(&format!("shard.{i}.crc.u={:016x}\n", s.crc_u));
            text.push_str(&format!("shard.{i}.crc.deltas={:016x}\n", s.crc_deltas));
            if let Some(crc) = s.crc_synopsis {
                text.push_str(&format!("shard.{i}.crc.synopsis={crc:016x}\n"));
            }
            if let Some(sse) = s.append_sse {
                text.push_str(&format!("shard.{i}.append-sse={:016x}\n", sse.to_bits()));
            }
        }
        let csum = hash_bytes(text.as_bytes());
        text.push_str(&format!("manifest-crc={csum:016x}\n"));
        text
    }

    /// Parse manifest text of either format: v3 natively, v2 normalized
    /// into a single-shard view. Self-checksum, strict schema (every
    /// key exactly once, no unknown keys), and shard-geometry checks
    /// (contiguous ascending ranges covering `0..rows`, per-shard delta
    /// counts summing to the total).
    pub fn parse(text: &str) -> Result<Self> {
        match sniff_version(text)? {
            2 => Ok(Self::from_v2(StoreManifest::parse(text)?)),
            3 => Self::parse_v3(text),
            v => Err(AtsError::Corrupt(format!(
                "unsupported store format version {v} (expected {STORE_VERSION} or {SHARDED_STORE_VERSION})"
            ))),
        }
    }

    /// Normalize a v2 manifest into the single-shard view.
    pub fn from_v2(m: StoreManifest) -> Self {
        let [crc_u, crc_v, crc_lambda, crc_deltas] = m.crcs;
        ShardedManifest {
            method: m.method,
            rows: m.rows,
            cols: m.cols,
            k: m.k,
            deltas: m.deltas,
            bloom: m.bloom,
            crc_v,
            crc_lambda,
            shards: vec![ShardEntry {
                start: 0,
                end: m.rows,
                deltas: m.deltas,
                crc_u,
                crc_deltas,
                crc_synopsis: None,
                append_sse: None,
            }],
            source_version: STORE_VERSION,
        }
    }

    fn parse_v3(text: &str) -> Result<Self> {
        let head = checked_manifest_head(text)?;

        let mut version = None;
        let mut method = None;
        let mut rows = None;
        let mut cols = None;
        let mut k = None;
        let mut deltas = None;
        let mut bloom = None;
        let mut crc_v = None;
        let mut crc_lambda = None;
        let mut shard_count = None;
        let mut slots: std::collections::BTreeMap<usize, ShardSlot> =
            std::collections::BTreeMap::new();
        for line in head.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| AtsError::Corrupt(format!("malformed manifest line {line:?}")))?;
            match key {
                "ats-store-version" => {
                    set_once("ats-store-version", &mut version, parse_usize(key, value)?)?
                }
                "method" => set_once("method", &mut method, value.to_string())?,
                "rows" => set_once("rows", &mut rows, parse_usize(key, value)?)?,
                "cols" => set_once("cols", &mut cols, parse_usize(key, value)?)?,
                "k" => set_once("k", &mut k, parse_usize(key, value)?)?,
                "deltas" => set_once("deltas", &mut deltas, parse_usize(key, value)?)?,
                "bloom" => {
                    let b = match value {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(AtsError::Corrupt(format!(
                                "manifest bloom flag must be true|false, got {other:?}"
                            )))
                        }
                    };
                    set_once("bloom", &mut bloom, b)?;
                }
                "crc.v.atsm" => set_once("crc.v.atsm", &mut crc_v, parse_hex_u64(value)?)?,
                "crc.lambda.atsm" => {
                    set_once("crc.lambda.atsm", &mut crc_lambda, parse_hex_u64(value)?)?
                }
                "shards" => set_once("shards", &mut shard_count, parse_usize(key, value)?)?,
                shard_key => parse_shard_key(shard_key, value, &mut slots)?,
            }
        }

        let version =
            version.ok_or_else(|| AtsError::Corrupt("manifest missing version".into()))?;
        if u64_from_usize(version) != u64::from(SHARDED_STORE_VERSION) {
            return Err(AtsError::Corrupt(format!(
                "unsupported store format version {version} (expected {SHARDED_STORE_VERSION})"
            )));
        }
        let require = |what: &str, v: Option<usize>| {
            v.ok_or_else(|| AtsError::Corrupt(format!("manifest missing {what}")))
        };
        let rows = require("rows", rows)?;
        let deltas = require("deltas", deltas)?;
        let shard_count = require("shards", shard_count)?;
        if shard_count == 0 {
            return Err(AtsError::Corrupt("manifest declares zero shards".into()));
        }
        if slots.len() != shard_count || slots.keys().enumerate().any(|(want, &got)| want != got) {
            return Err(AtsError::Corrupt(format!(
                "manifest declares {shard_count} shards but defines indices {:?}",
                slots.keys().collect::<Vec<_>>()
            )));
        }
        let mut shards = Vec::with_capacity(shard_count);
        let mut next_start = 0usize;
        let mut delta_sum = 0usize;
        for (i, slot) in slots {
            let entry = slot.finish(i)?;
            if entry.start != next_start || entry.end <= entry.start {
                return Err(AtsError::Corrupt(format!(
                    "shard {i} range {}..{} is not contiguous from row {next_start}",
                    entry.start, entry.end
                )));
            }
            next_start = entry.end;
            delta_sum = delta_sum
                .checked_add(entry.deltas)
                .ok_or_else(|| AtsError::Corrupt("shard delta counts overflow usize".into()))?;
            shards.push(entry);
        }
        if next_start != rows {
            return Err(AtsError::Corrupt(format!(
                "shard ranges cover 0..{next_start} but manifest declares {rows} rows"
            )));
        }
        if delta_sum != deltas {
            return Err(AtsError::Corrupt(format!(
                "shard delta counts sum to {delta_sum} but manifest declares {deltas}"
            )));
        }
        Ok(ShardedManifest {
            method: method.ok_or_else(|| AtsError::Corrupt("manifest missing method".into()))?,
            rows,
            cols: require("cols", cols)?,
            k: require("k", k)?,
            deltas,
            bloom: bloom.ok_or_else(|| AtsError::Corrupt("manifest missing bloom flag".into()))?,
            crc_v: crc_v.ok_or_else(|| AtsError::Corrupt("manifest missing crc.v.atsm".into()))?,
            crc_lambda: crc_lambda
                .ok_or_else(|| AtsError::Corrupt("manifest missing crc.lambda.atsm".into()))?,
            shards,
            source_version: SHARDED_STORE_VERSION,
        })
    }

    /// Read `dir/manifest.txt` and parse it as either format.
    ///
    /// A missing directory surfaces as the underlying I/O error ("clean
    /// absence"); a directory that exists but has no manifest is a
    /// corrupt or pre-v2 store.
    pub fn read(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        let path = dir.join(MANIFEST_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && dir.is_dir() => {
                return Err(AtsError::Corrupt(format!(
                    "store at {} has no {MANIFEST_FILE} (not an ats store)",
                    dir.display()
                )));
            }
            Err(e) => return Err(e.into()),
        };
        Self::parse(&text)
    }
}

/// Pre-checksum-validated manifest body (everything before the
/// `manifest-crc` line), shared by the v2 and v3 parsers.
fn checked_manifest_head(text: &str) -> Result<&str> {
    let crc_line_start = text
        .rfind("manifest-crc=")
        .ok_or_else(|| AtsError::Corrupt("manifest missing self-checksum".into()))?;
    let head = text
        .get(..crc_line_start)
        .ok_or_else(|| AtsError::internal("manifest-crc offset off a char boundary"))?;
    let tail = text
        .get(crc_line_start..)
        .ok_or_else(|| AtsError::internal("manifest-crc offset off a char boundary"))?;
    let tail = tail.strip_suffix('\n').unwrap_or(tail);
    let stored_crc = parse_hex_u64(
        tail.strip_prefix("manifest-crc=")
            .ok_or_else(|| AtsError::Corrupt("malformed manifest-crc line".into()))?,
    )?;
    let computed = hash_bytes(head.as_bytes());
    if stored_crc != computed {
        return Err(AtsError::Corrupt(format!(
            "manifest self-checksum mismatch: stored {stored_crc:#x}, computed {computed:#x}"
        )));
    }
    Ok(head)
}

/// Version tag of a manifest, read without validating anything else —
/// used to dispatch between the v2 and v3 parsers (each of which then
/// re-validates the version strictly).
fn sniff_version(text: &str) -> Result<usize> {
    for line in text.lines() {
        if let Some(value) = line.trim().strip_prefix("ats-store-version=") {
            return parse_usize("ats-store-version", value);
        }
    }
    Err(AtsError::Corrupt("manifest missing version".into()))
}

/// Partially-parsed fields of one `shard.N.*` key group.
#[derive(Default)]
struct ShardSlot {
    range: Option<(usize, usize)>,
    deltas: Option<usize>,
    crc_u: Option<u64>,
    crc_deltas: Option<u64>,
    crc_synopsis: Option<u64>,
    append_sse: Option<f64>,
}

impl ShardSlot {
    fn finish(self, index: usize) -> Result<ShardEntry> {
        let missing =
            |what: &str| AtsError::Corrupt(format!("manifest missing shard.{index}.{what}"));
        let (start, end) = self.range.ok_or_else(|| missing("rows"))?;
        Ok(ShardEntry {
            start,
            end,
            deltas: self.deltas.ok_or_else(|| missing("deltas"))?,
            crc_u: self.crc_u.ok_or_else(|| missing("crc.u"))?,
            crc_deltas: self.crc_deltas.ok_or_else(|| missing("crc.deltas"))?,
            crc_synopsis: self.crc_synopsis,
            append_sse: self.append_sse,
        })
    }
}

/// Parse one `shard.<index>.<field>=<value>` manifest line into `slots`.
fn parse_shard_key(
    key: &str,
    value: &str,
    slots: &mut std::collections::BTreeMap<usize, ShardSlot>,
) -> Result<()> {
    let unknown = || AtsError::Corrupt(format!("unknown manifest key {key:?}"));
    let rest = key.strip_prefix("shard.").ok_or_else(unknown)?;
    let (index, field) = rest.split_once('.').ok_or_else(unknown)?;
    let index: usize = index.parse().map_err(|_| unknown())?;
    let slot = slots.entry(index).or_default();
    match field {
        "rows" => {
            let (a, b) = value.split_once("..").ok_or_else(|| {
                AtsError::Corrupt(format!("shard range {value:?} is not START..END"))
            })?;
            let range = (parse_usize(key, a)?, parse_usize(key, b)?);
            set_once(key, &mut slot.range, range)
        }
        "deltas" => set_once(key, &mut slot.deltas, parse_usize(key, value)?),
        "crc.u" => set_once(key, &mut slot.crc_u, parse_hex_u64(value)?),
        "crc.deltas" => set_once(key, &mut slot.crc_deltas, parse_hex_u64(value)?),
        "crc.synopsis" => set_once(key, &mut slot.crc_synopsis, parse_hex_u64(value)?),
        "append-sse" => set_once(
            key,
            &mut slot.append_sse,
            f64::from_bits(parse_hex_u64(value)?),
        ),
        _ => Err(unknown()),
    }
}

/// Validate a store directory of either format: parse the manifest
/// (normalizing v2 into a single-shard view) and cross-check the shared
/// `V/Λ` CRCs plus every shard's `U` and delta CRCs against the bytes
/// on disk.
///
/// Returns the normalized manifest on success. A missing directory
/// propagates as an I/O error; anything else is [`AtsError::Corrupt`].
pub fn validate_sharded_store_dir(dir: impl AsRef<Path>) -> Result<ShardedManifest> {
    let dir = dir.as_ref();
    let manifest = ShardedManifest::read(dir)?;
    let mut checks: Vec<(PathBuf, u64, String)> = vec![
        (dir.join("v.atsm"), manifest.crc_v, "v.atsm".to_string()),
        (
            dir.join("lambda.atsm"),
            manifest.crc_lambda,
            "lambda.atsm".to_string(),
        ),
    ];
    for (i, s) in manifest.shards.iter().enumerate() {
        let shard_dir = manifest.shard_dir(dir, i);
        checks.push((
            shard_dir.join("u.atsm"),
            s.crc_u,
            format!("shard {i} u.atsm"),
        ));
        checks.push((
            shard_dir.join("deltas.bin"),
            s.crc_deltas,
            format!("shard {i} deltas.bin"),
        ));
        if let Some(crc) = s.crc_synopsis {
            checks.push((
                shard_dir.join(crate::synopsis::SYNOPSIS_FILE),
                crc,
                format!("shard {i} synopsis.bin"),
            ));
        }
    }
    for (path, expected, what) in checks {
        let got = match file_crc(&path) {
            Ok(c) => c,
            Err(AtsError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(AtsError::Corrupt(format!(
                    "store component {what} is missing from {}",
                    dir.display()
                )));
            }
            Err(e) => return Err(e),
        };
        if got != expected {
            return Err(AtsError::Corrupt(format!(
                "store component {what} checksum mismatch: manifest {expected:#x}, file {got:#x}"
            )));
        }
    }
    Ok(manifest)
}

/// Name of the subdirectory holding time block `index` inside a v4 store
/// directory (`tblock-0000`, `tblock-0001`, …).
pub fn tblock_dir_name(index: usize) -> String {
    format!("tblock-{index:04}")
}

/// One time block (column range) recorded in a v4 manifest. Each block
/// is a complete nested v3 store over its column slice, living in its
/// own `tblock-NNNN/` subdirectory; the top-level manifest pins the
/// block's column range, its reconstruction SSE, and the CRC of the
/// nested manifest (whose own CRCs transitively cover the block's
/// component files).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeBlockEntry {
    /// First (absolute) column of the block, inclusive.
    pub start: usize,
    /// One past the last (absolute) column of the block.
    pub end: usize,
    /// Sum of squared reconstruction errors of the block against its
    /// source slice, recorded at build/append time — the principled
    /// retrain trigger. `None` only for normalized v2/v3 stores, which
    /// never measured it.
    pub sse: Option<f64>,
    /// CRC of the nested `tblock-NNNN/manifest.txt` bytes.
    pub crc_manifest: u64,
}

impl TimeBlockEntry {
    /// Number of columns in the block.
    pub fn cols(&self) -> usize {
        self.end.saturating_sub(self.start)
    }
}

/// Parsed, validated contents of a time-blocked (v4) `manifest.txt` —
/// or a v2/v3 manifest normalized into a single-block view.
///
/// The v4 layout partitions the *time* axis into column blocks, each a
/// complete nested v3 store (own `V_b`/`Λ_b`, own row-range shards and
/// delta sets) over its column slice:
///
/// ```text
/// store/
///   manifest.txt                 # this document (block table + CRCs)
///   tblock-0000/                 # a full v3 store over cols 0..W
///     manifest.txt  v.atsm  lambda.atsm
///     shard-0000/ u.atsm deltas.bin
///     ...
///   tblock-0001/                 # cols W..2W
///   ...
/// ```
///
/// A v2 or v3 directory is exactly a one-block v4 store whose block
/// directory *is* the store directory — [`TimeBlockedManifest::read`]
/// normalizes it (`source_version` keeps the original tag).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeBlockedManifest {
    /// Compression method tag (`"svd"` or `"svdd"`), uniform across blocks.
    pub method: String,
    /// Total number of sequences (`N`) — every block covers all rows.
    pub rows: usize,
    /// Total sequence length (`M`) across all blocks.
    pub cols: usize,
    /// Whether delta tables carry Bloom filters (§4.2).
    pub bloom: bool,
    /// Time blocks, in ascending column order.
    pub blocks: Vec<TimeBlockEntry>,
    /// Format version the manifest was read from: 2 or 3 (normalized
    /// single-block view) or 4.
    pub source_version: u32,
}

impl TimeBlockedManifest {
    /// Directory holding block `index`'s nested store: the store
    /// directory itself for a normalized v2/v3 store, `tblock-NNNN/`
    /// for genuine v4.
    pub fn block_dir(&self, base: &Path, index: usize) -> PathBuf {
        if self.source_version == TIMEBLOCKED_STORE_VERSION {
            base.join(tblock_dir_name(index))
        } else {
            base.to_path_buf()
        }
    }

    /// Index of the block owning absolute column `col`, if in range.
    pub fn block_of_col(&self, col: usize) -> Option<usize> {
        self.blocks
            .iter()
            .position(|b| col >= b.start && col < b.end)
    }

    /// Serialize to the canonical v4 text form, including the trailing
    /// `manifest-crc` self-checksum line.
    pub fn encode(&self) -> String {
        let mut text = String::new();
        text.push_str(&format!("ats-store-version={TIMEBLOCKED_STORE_VERSION}\n"));
        text.push_str(&format!("method={}\n", self.method));
        text.push_str(&format!("rows={}\n", self.rows));
        text.push_str(&format!("cols={}\n", self.cols));
        text.push_str(&format!("bloom={}\n", self.bloom));
        text.push_str(&format!("tblocks={}\n", self.blocks.len()));
        for (i, b) in self.blocks.iter().enumerate() {
            text.push_str(&format!("tblock.{i}.cols={}..{}\n", b.start, b.end));
            if let Some(sse) = b.sse {
                text.push_str(&format!("tblock.{i}.sse={:016x}\n", sse.to_bits()));
            }
            text.push_str(&format!(
                "tblock.{i}.crc.manifest={:016x}\n",
                b.crc_manifest
            ));
        }
        let csum = hash_bytes(text.as_bytes());
        text.push_str(&format!("manifest-crc={csum:016x}\n"));
        text
    }

    /// Parse manifest text of any store format: v4 natively, v2/v3
    /// normalized into a single-block view whose nested-manifest CRC is
    /// the hash of the given text itself (the block directory *is* the
    /// store directory, so its manifest is this one).
    pub fn parse(text: &str) -> Result<Self> {
        match sniff_version(text)? {
            4 => Self::parse_v4(text),
            2 | 3 => Ok(Self::from_sharded(
                ShardedManifest::parse(text)?,
                hash_bytes(text.as_bytes()),
            )),
            v => Err(AtsError::Corrupt(format!(
                "unsupported store format version {v} (expected 2, 3, or {TIMEBLOCKED_STORE_VERSION})"
            ))),
        }
    }

    /// Normalize a v2/v3 manifest into the single-block view.
    pub fn from_sharded(m: ShardedManifest, crc_manifest: u64) -> Self {
        TimeBlockedManifest {
            method: m.method.clone(),
            rows: m.rows,
            cols: m.cols,
            bloom: m.bloom,
            blocks: vec![TimeBlockEntry {
                start: 0,
                end: m.cols,
                sse: None,
                crc_manifest,
            }],
            source_version: m.source_version,
        }
    }

    fn parse_v4(text: &str) -> Result<Self> {
        let head = checked_manifest_head(text)?;

        let mut version = None;
        let mut method = None;
        let mut rows = None;
        let mut cols = None;
        let mut bloom = None;
        let mut block_count = None;
        let mut slots: std::collections::BTreeMap<usize, TimeBlockSlot> =
            std::collections::BTreeMap::new();
        for line in head.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| AtsError::Corrupt(format!("malformed manifest line {line:?}")))?;
            match key {
                "ats-store-version" => {
                    set_once("ats-store-version", &mut version, parse_usize(key, value)?)?
                }
                "method" => set_once("method", &mut method, value.to_string())?,
                "rows" => set_once("rows", &mut rows, parse_usize(key, value)?)?,
                "cols" => set_once("cols", &mut cols, parse_usize(key, value)?)?,
                "bloom" => {
                    let b = match value {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(AtsError::Corrupt(format!(
                                "manifest bloom flag must be true|false, got {other:?}"
                            )))
                        }
                    };
                    set_once("bloom", &mut bloom, b)?;
                }
                "tblocks" => set_once("tblocks", &mut block_count, parse_usize(key, value)?)?,
                tblock_key => parse_tblock_key(tblock_key, value, &mut slots)?,
            }
        }

        let version =
            version.ok_or_else(|| AtsError::Corrupt("manifest missing version".into()))?;
        if u64_from_usize(version) != u64::from(TIMEBLOCKED_STORE_VERSION) {
            return Err(AtsError::Corrupt(format!(
                "unsupported store format version {version} (expected {TIMEBLOCKED_STORE_VERSION})"
            )));
        }
        let require = |what: &str, v: Option<usize>| {
            v.ok_or_else(|| AtsError::Corrupt(format!("manifest missing {what}")))
        };
        let rows = require("rows", rows)?;
        let cols = require("cols", cols)?;
        let block_count = require("tblocks", block_count)?;
        if block_count == 0 {
            return Err(AtsError::Corrupt(
                "manifest declares zero time blocks".into(),
            ));
        }
        if slots.len() != block_count || slots.keys().enumerate().any(|(want, &got)| want != got) {
            return Err(AtsError::Corrupt(format!(
                "manifest declares {block_count} time blocks but defines indices {:?}",
                slots.keys().collect::<Vec<_>>()
            )));
        }
        let mut blocks = Vec::new();
        let mut next_start = 0usize;
        for (i, slot) in slots {
            let entry = slot.finish(i)?;
            if entry.start != next_start || entry.end <= entry.start {
                return Err(AtsError::Corrupt(format!(
                    "time block {i} range {}..{} is not contiguous from column {next_start}",
                    entry.start, entry.end
                )));
            }
            next_start = entry.end;
            blocks.push(entry);
        }
        if next_start != cols {
            return Err(AtsError::Corrupt(format!(
                "time block ranges cover 0..{next_start} but manifest declares {cols} columns"
            )));
        }
        Ok(TimeBlockedManifest {
            method: method.ok_or_else(|| AtsError::Corrupt("manifest missing method".into()))?,
            rows,
            cols,
            bloom: bloom.ok_or_else(|| AtsError::Corrupt("manifest missing bloom flag".into()))?,
            blocks,
            source_version: TIMEBLOCKED_STORE_VERSION,
        })
    }

    /// Read `dir/manifest.txt` and parse it as any store format,
    /// normalizing v2/v3 into the single-block view.
    pub fn read(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        let path = dir.join(MANIFEST_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && dir.is_dir() => {
                return Err(AtsError::Corrupt(format!(
                    "store at {} has no {MANIFEST_FILE} (not an ats store)",
                    dir.display()
                )));
            }
            Err(e) => return Err(e.into()),
        };
        Self::parse(&text)
    }

    /// Read every block's nested manifest, cross-checking each file's
    /// CRC against the top-level entry and its geometry against the
    /// block table (all rows, exactly the block's columns, the same
    /// method). The nested manifests' own CRCs cover the component
    /// files, so a match here pins the whole block tree.
    pub fn read_blocks(&self, base: impl AsRef<Path>) -> Result<Vec<ShardedManifest>> {
        let base = base.as_ref();
        let mut out = Vec::new();
        for (i, b) in self.blocks.iter().enumerate() {
            let dir = self.block_dir(base, i);
            let path = dir.join(MANIFEST_FILE);
            let bytes = match fs::read(&path) {
                Ok(t) => t,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    return Err(AtsError::Corrupt(format!(
                        "time block {i} manifest is missing from {}",
                        base.display()
                    )));
                }
                Err(e) => return Err(e.into()),
            };
            let got = hash_bytes(&bytes);
            if got != b.crc_manifest {
                return Err(AtsError::Corrupt(format!(
                    "time block {i} manifest checksum mismatch: manifest {:#x}, file {got:#x}",
                    b.crc_manifest
                )));
            }
            let text = String::from_utf8(bytes)
                .map_err(|_| AtsError::Corrupt(format!("time block {i} manifest is not UTF-8")))?;
            let nested = ShardedManifest::parse(&text)?;
            if nested.rows != self.rows {
                return Err(AtsError::Corrupt(format!(
                    "time block {i} covers {} rows but the store declares {}",
                    nested.rows, self.rows
                )));
            }
            if nested.cols != b.cols() {
                return Err(AtsError::Corrupt(format!(
                    "time block {i} holds {} columns but the block table declares {}..{}",
                    nested.cols, b.start, b.end
                )));
            }
            if nested.method != self.method {
                return Err(AtsError::Corrupt(format!(
                    "time block {i} method {:?} differs from the store's {:?}",
                    nested.method, self.method
                )));
            }
            out.push(nested);
        }
        Ok(out)
    }
}

/// Partially-parsed fields of one `tblock.N.*` key group.
#[derive(Default)]
struct TimeBlockSlot {
    range: Option<(usize, usize)>,
    sse: Option<f64>,
    crc_manifest: Option<u64>,
}

impl TimeBlockSlot {
    fn finish(self, index: usize) -> Result<TimeBlockEntry> {
        let missing =
            |what: &str| AtsError::Corrupt(format!("manifest missing tblock.{index}.{what}"));
        let (start, end) = self.range.ok_or_else(|| missing("cols"))?;
        Ok(TimeBlockEntry {
            start,
            end,
            sse: self.sse,
            crc_manifest: self.crc_manifest.ok_or_else(|| missing("crc.manifest"))?,
        })
    }
}

/// Parse one `tblock.<index>.<field>=<value>` manifest line into `slots`.
fn parse_tblock_key(
    key: &str,
    value: &str,
    slots: &mut std::collections::BTreeMap<usize, TimeBlockSlot>,
) -> Result<()> {
    let unknown = || AtsError::Corrupt(format!("unknown manifest key {key:?}"));
    let rest = key.strip_prefix("tblock.").ok_or_else(unknown)?;
    let (index, field) = rest.split_once('.').ok_or_else(unknown)?;
    let index: usize = index.parse().map_err(|_| unknown())?;
    let slot = slots.entry(index).or_default();
    match field {
        "cols" => {
            let (a, b) = value.split_once("..").ok_or_else(|| {
                AtsError::Corrupt(format!("time block range {value:?} is not START..END"))
            })?;
            let range = (parse_usize(key, a)?, parse_usize(key, b)?);
            set_once(key, &mut slot.range, range)
        }
        "sse" => set_once(key, &mut slot.sse, f64::from_bits(parse_hex_u64(value)?)),
        "crc.manifest" => set_once(key, &mut slot.crc_manifest, parse_hex_u64(value)?),
        _ => Err(unknown()),
    }
}

/// Validate a store directory of any format: parse the top manifest
/// (normalizing v2/v3 into a single-block view), CRC-check every block's
/// nested manifest against it, and then run the full per-component
/// validation of every block's nested store.
///
/// Returns the normalized manifest and the per-block nested manifests.
/// A missing directory propagates as an I/O error; anything else is
/// [`AtsError::Corrupt`].
pub fn validate_timeblocked_store_dir(
    dir: impl AsRef<Path>,
) -> Result<(TimeBlockedManifest, Vec<ShardedManifest>)> {
    let dir = dir.as_ref();
    let manifest = TimeBlockedManifest::read(dir)?;
    let blocks = manifest.read_blocks(dir)?;
    for i in 0..manifest.blocks.len() {
        validate_sharded_store_dir(manifest.block_dir(dir, i))?;
    }
    Ok((manifest, blocks))
}

/// Fill a sharded manifest's CRCs from the component files staged under
/// `dir` (the v3 layout: `v.atsm`/`lambda.atsm` at the top,
/// `shard-NNNN/{u.atsm,deltas.bin}` per shard), stamp it v3, and write
/// `dir/manifest.txt`. Shared by [`StoreWriter::commit_sharded`] and the
/// per-block staging of a v4 save. Returns the filled manifest.
pub fn write_sharded_manifest_into(
    dir: &Path,
    mut manifest: ShardedManifest,
) -> Result<ShardedManifest> {
    let staged_crc = |path: &Path, what: &str| -> Result<u64> {
        match file_crc(path) {
            Ok(c) => Ok(c),
            Err(AtsError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Err(
                AtsError::InvalidArgument(format!("commit without staged component {what}")),
            ),
            Err(e) => Err(e),
        }
    };
    manifest.crc_v = staged_crc(&dir.join("v.atsm"), "v.atsm")?;
    manifest.crc_lambda = staged_crc(&dir.join("lambda.atsm"), "lambda.atsm")?;
    for (i, s) in manifest.shards.iter_mut().enumerate() {
        let shard = dir.join(shard_dir_name(i));
        s.crc_u = staged_crc(&shard.join("u.atsm"), &format!("shard {i} u.atsm"))?;
        s.crc_deltas = staged_crc(&shard.join("deltas.bin"), &format!("shard {i} deltas.bin"))?;
        // The synopsis is optional (legacy stores have none): pin it in
        // the manifest exactly when the emitter staged one.
        let synopsis = shard.join(crate::synopsis::SYNOPSIS_FILE);
        s.crc_synopsis = if synopsis.exists() {
            Some(staged_crc(&synopsis, &format!("shard {i} synopsis.bin"))?)
        } else {
            None
        };
    }
    manifest.source_version = SHARDED_STORE_VERSION;
    fs::write(dir.join(MANIFEST_FILE), manifest.encode())?;
    Ok(manifest)
}

/// Crash-safe store-directory writer: stage every component in a hidden
/// sibling temp directory, then swap it into place atomically.
///
/// ```text
/// begin(dir)   -> create  <parent>/.<name>.tmp-<pid>
/// (write components into writer.path())
/// commit(m)    -> CRC components, write manifest, fsync everything,
///                 rename old dir aside, rename temp -> dir, fsync parent
/// drop w/o commit -> temp directory removed, target untouched
/// ```
///
/// A crash before the final rename leaves the previous store (or nothing,
/// if there was none) at `dir`; a crash inside the swap window leaves
/// `dir` absent — a clean, detectable absence, never a torn store.
pub struct StoreWriter {
    tmp: PathBuf,
    final_dir: PathBuf,
    committed: bool,
}

impl StoreWriter {
    /// Start a save targeting `final_dir`. Any stale temp directory from
    /// a previous crashed save of the same target is cleared.
    pub fn begin(final_dir: impl AsRef<Path>) -> Result<Self> {
        let final_dir = final_dir.as_ref().to_path_buf();
        let name = final_dir
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| {
                AtsError::InvalidArgument(format!(
                    "store path {} has no usable directory name",
                    final_dir.display()
                ))
            })?
            .to_string();
        if final_dir.exists() && !is_replaceable(&final_dir) {
            return Err(AtsError::InvalidArgument(format!(
                "{} exists and is not a store directory; refusing to replace it",
                final_dir.display()
            )));
        }
        let parent = parent_of(&final_dir);
        fs::create_dir_all(&parent)?;
        let tmp = parent.join(format!(".{name}.tmp-{}", std::process::id()));
        if tmp.exists() {
            fs::remove_dir_all(&tmp)?;
        }
        fs::create_dir_all(&tmp)?;
        Ok(StoreWriter {
            tmp,
            final_dir,
            committed: false,
        })
    }

    /// The staging directory to write component files into.
    pub fn path(&self) -> &Path {
        &self.tmp
    }

    /// Finish the save: fill the manifest's component CRCs from the files
    /// staged in [`StoreWriter::path`], write it, fsync every file and the
    /// directory, and atomically swap the staged directory into place.
    pub fn commit(mut self, mut manifest: StoreManifest) -> Result<()> {
        for (crc, name) in manifest.crcs.iter_mut().zip(COMPONENT_FILES) {
            let path = self.tmp.join(name);
            *crc = match file_crc(&path) {
                Ok(c) => c,
                Err(AtsError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    return Err(AtsError::InvalidArgument(format!(
                        "commit without staged component {name}"
                    )));
                }
                Err(e) => return Err(e),
            };
        }
        fs::write(self.tmp.join(MANIFEST_FILE), manifest.encode())?;
        self.swap_into_place()
    }

    /// Finish a sharded (v3) save: fill the manifest's shared and
    /// per-shard CRCs from the files staged under
    /// [`StoreWriter::path`] (`v.atsm` / `lambda.atsm` at the top,
    /// `shard-NNNN/{u.atsm,deltas.bin}` per shard), write it, fsync the
    /// whole staged tree, and atomically swap it into place.
    pub fn commit_sharded(mut self, manifest: ShardedManifest) -> Result<()> {
        write_sharded_manifest_into(&self.tmp, manifest)?;
        self.swap_into_place()
    }

    /// Finish a time-blocked (v4) save. The staged tree must hold one
    /// `tblock-NNNN/` directory per manifest block, each already a
    /// complete nested v3 store (manifest written during staging via
    /// [`write_sharded_manifest_into`]). Fills each block's
    /// nested-manifest CRC, writes the top-level manifest, fsyncs the
    /// whole staged tree, and atomically swaps it into place — so a
    /// torn multi-block commit never exposes a half-written store.
    pub fn commit_timeblocked(mut self, mut manifest: TimeBlockedManifest) -> Result<()> {
        for (i, b) in manifest.blocks.iter_mut().enumerate() {
            let path = self.tmp.join(tblock_dir_name(i)).join(MANIFEST_FILE);
            b.crc_manifest = match file_crc(&path) {
                Ok(c) => c,
                Err(AtsError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    return Err(AtsError::InvalidArgument(format!(
                        "commit without staged time block {i} manifest"
                    )));
                }
                Err(e) => return Err(e),
            };
        }
        manifest.source_version = TIMEBLOCKED_STORE_VERSION;
        fs::write(self.tmp.join(MANIFEST_FILE), manifest.encode())?;
        self.swap_into_place()
    }

    /// Shared commit tail: fsync every staged byte (recursing into
    /// shard subdirectories), then rename the staged directory into
    /// place, retiring any previous store.
    fn swap_into_place(&mut self) -> Result<()> {
        // Durability point: every staged byte reaches disk before the
        // rename can expose the new directory.
        fsync_tree(&self.tmp)?;

        let parent = parent_of(&self.final_dir);
        let name = self
            .final_dir
            .file_name()
            .ok_or_else(|| {
                AtsError::InvalidArgument("store path has no final directory name".into())
            })?
            .to_string_lossy();
        let retired = parent.join(format!(".{name}.old-{}", std::process::id()));
        if retired.exists() {
            fs::remove_dir_all(&retired)?;
        }
        if self.final_dir.exists() {
            fs::rename(&self.final_dir, &retired)?;
        }
        fs::rename(&self.tmp, &self.final_dir)?;
        self.committed = true;
        if retired.exists() {
            let _ = fs::remove_dir_all(&retired);
        }
        sync_dir(&parent)?;
        Ok(())
    }
}

/// fsync every regular file under `dir` (recursively) and every
/// directory on the way back up — the durability sweep a sharded save
/// needs before its atomic rename.
fn fsync_tree(dir: &Path) -> Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            fsync_tree(&path)?;
        } else {
            File::open(&path)?.sync_all()?;
        }
    }
    sync_dir(dir)
}

impl Drop for StoreWriter {
    fn drop(&mut self) {
        if !self.committed {
            let _ = fs::remove_dir_all(&self.tmp);
        }
    }
}

fn parent_of(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if p.as_os_str().is_empty() => PathBuf::from("."),
        Some(p) => p.to_path_buf(),
        None => PathBuf::from("."),
    }
}

/// A target we may replace: an empty directory, or something that looks
/// like a store (has a manifest or a `U` file). Anything else is user
/// data we refuse to clobber.
fn is_replaceable(dir: &Path) -> bool {
    if !dir.is_dir() {
        return false;
    }
    // ats-lint: allow(slice-index) — literal index 0 into the fixed-size COMPONENT_FILES const
    if dir.join(MANIFEST_FILE).exists() || dir.join(COMPONENT_FILES[0]).exists() {
        return true;
    }
    fs::read_dir(dir)
        .map(|mut d| d.next().is_none())
        .unwrap_or(false)
}

fn sync_dir(dir: &Path) -> Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> StoreManifest {
        StoreManifest {
            method: "svdd".into(),
            rows: 200,
            cols: 21,
            k: 5,
            deltas: 37,
            bloom: true,
            crcs: [1, 2, 3, 4],
        }
    }

    fn stage_components(dir: &Path) {
        for (i, name) in COMPONENT_FILES.iter().enumerate() {
            std::fs::write(dir.join(name), format!("component {i} payload")).unwrap();
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let m = manifest();
        assert_eq!(StoreManifest::parse(&m.encode()).unwrap(), m);
    }

    #[test]
    fn manifest_bitflip_detected_everywhere() {
        let text = manifest().encode();
        for i in 0..text.len() {
            let mut bytes = text.clone().into_bytes();
            bytes[i] ^= 0x01;
            let Ok(s) = String::from_utf8(bytes) else {
                continue; // non-UTF8 flips fail at read_to_string instead
            };
            assert!(
                StoreManifest::parse(&s).is_err(),
                "flip at byte {i} accepted: {s:?}"
            );
        }
    }

    #[test]
    fn manifest_missing_or_duplicate_keys_rejected() {
        let m = manifest();
        let text = m.encode();
        // Drop each line in turn (re-checksum so only the schema check fires).
        let lines: Vec<&str> = text.trim_end().lines().collect();
        for skip in 0..lines.len() - 1 {
            let mut body = String::new();
            for (i, l) in lines[..lines.len() - 1].iter().enumerate() {
                if i != skip {
                    body.push_str(l);
                    body.push('\n');
                }
            }
            let csum = ats_common::hash::hash_bytes(body.as_bytes());
            body.push_str(&format!("manifest-crc={csum:016x}\n"));
            assert!(
                StoreManifest::parse(&body).is_err(),
                "missing line {:?} accepted",
                lines[skip]
            );
        }
        // Duplicate a line.
        let mut body: String = lines[..lines.len() - 1].join("\n");
        body.push('\n');
        body.push_str(lines[1]);
        body.push('\n');
        let csum = ats_common::hash::hash_bytes(body.as_bytes());
        body.push_str(&format!("manifest-crc={csum:016x}\n"));
        assert!(StoreManifest::parse(&body).is_err(), "duplicate accepted");
    }

    #[test]
    fn manifest_wrong_version_rejected() {
        let text = manifest().encode().replace(
            &format!("ats-store-version={STORE_VERSION}"),
            "ats-store-version=1",
        );
        let body = &text[..text.rfind("manifest-crc=").unwrap()];
        let csum = ats_common::hash::hash_bytes(body.as_bytes());
        let text = format!("{body}manifest-crc={csum:016x}\n");
        let err = StoreManifest::parse(&text).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn commit_swaps_atomically_and_validates() {
        let t = ats_common::TestDir::new("ats-storedir");
        let target = t.file("store");

        let w = StoreWriter::begin(&target).unwrap();
        stage_components(w.path());
        w.commit(manifest()).unwrap();
        let m = validate_store_dir(&target).unwrap();
        assert_eq!(m.method, "svdd");
        assert_ne!(m.crcs, [1, 2, 3, 4], "commit recomputes real CRCs");

        // Replace with new contents: old store fully retired.
        let w = StoreWriter::begin(&target).unwrap();
        for name in COMPONENT_FILES {
            std::fs::write(w.path().join(name), b"second generation").unwrap();
        }
        let mut m2 = manifest();
        m2.deltas = 99;
        w.commit(m2).unwrap();
        let got = validate_store_dir(&target).unwrap();
        assert_eq!(got.deltas, 99);
        // No temp/retired litter left next to the store.
        let names: Vec<String> = std::fs::read_dir(t.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["store".to_string()], "{names:?}");
    }

    #[test]
    fn abandoned_writer_leaves_no_trace() {
        let t = ats_common::TestDir::new("ats-storedir");
        let target = t.file("store");
        {
            let w = StoreWriter::begin(&target).unwrap();
            stage_components(w.path());
            // dropped without commit
        }
        assert!(!target.exists());
        assert_eq!(std::fs::read_dir(t.path()).unwrap().count(), 0);
    }

    #[test]
    fn commit_without_all_components_refused() {
        let t = ats_common::TestDir::new("ats-storedir");
        let w = StoreWriter::begin(t.file("store")).unwrap();
        std::fs::write(w.path().join("u.atsm"), b"only one").unwrap();
        assert!(w.commit(manifest()).is_err());
        assert!(!t.file("store").exists());
    }

    #[test]
    fn refuses_to_replace_non_store_directory() {
        let t = ats_common::TestDir::new("ats-storedir");
        let target = t.file("precious");
        std::fs::create_dir_all(&target).unwrap();
        std::fs::write(target.join("thesis.tex"), b"years of work").unwrap();
        assert!(StoreWriter::begin(&target).is_err());
        assert!(target.join("thesis.tex").exists());
    }

    #[test]
    fn validate_rejects_missing_and_corrupt_components() {
        let t = ats_common::TestDir::new("ats-storedir");
        let target = t.file("store");
        let w = StoreWriter::begin(&target).unwrap();
        stage_components(w.path());
        w.commit(manifest()).unwrap();

        for name in COMPONENT_FILES {
            // Bit-flip.
            let path = target.join(name);
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[0] ^= 0x80;
            std::fs::write(&path, &bytes).unwrap();
            let err = validate_store_dir(&target).unwrap_err();
            assert!(matches!(err, AtsError::Corrupt(_)), "{name}: {err}");
            bytes[0] ^= 0x80;
            std::fs::write(&path, &bytes).unwrap();

            // Truncation.
            std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
            assert!(validate_store_dir(&target).is_err(), "{name} truncated");
            std::fs::write(&path, &bytes).unwrap();

            // Deletion.
            std::fs::remove_file(&path).unwrap();
            let err = validate_store_dir(&target).unwrap_err();
            assert!(matches!(err, AtsError::Corrupt(_)), "{name} deleted: {err}");
            std::fs::write(&path, &bytes).unwrap();
        }
        validate_store_dir(&target).unwrap();
    }

    #[test]
    fn missing_dir_is_io_not_corrupt() {
        let t = ats_common::TestDir::new("ats-storedir");
        let err = validate_store_dir(t.file("never-saved")).unwrap_err();
        assert!(matches!(err, AtsError::Io(_)), "{err}");
    }

    fn sharded_manifest() -> ShardedManifest {
        ShardedManifest {
            method: "svdd".into(),
            rows: 200,
            cols: 21,
            k: 5,
            deltas: 37,
            bloom: true,
            crc_v: 11,
            crc_lambda: 12,
            shards: vec![
                ShardEntry {
                    start: 0,
                    end: 96,
                    deltas: 20,
                    crc_u: 21,
                    crc_deltas: 22,
                    crc_synopsis: Some(23),
                    append_sse: None,
                },
                ShardEntry {
                    start: 96,
                    end: 200,
                    deltas: 17,
                    crc_u: 31,
                    crc_deltas: 32,
                    crc_synopsis: None,
                    append_sse: Some(0.125),
                },
            ],
            source_version: SHARDED_STORE_VERSION,
        }
    }

    fn stage_sharded_components(dir: &Path, shards: usize) {
        for (i, name) in SHARED_FILES.iter().enumerate() {
            std::fs::write(dir.join(name), format!("shared {i} payload")).unwrap();
        }
        for s in 0..shards {
            let shard = dir.join(shard_dir_name(s));
            std::fs::create_dir_all(&shard).unwrap();
            for (i, name) in SHARD_FILES.iter().enumerate() {
                std::fs::write(shard.join(name), format!("shard {s} file {i} payload")).unwrap();
            }
        }
    }

    #[test]
    fn sharded_manifest_roundtrip_preserves_append_sse_bits() {
        let m = sharded_manifest();
        let parsed = ShardedManifest::parse(&m.encode()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.shards[1].append_sse, Some(0.125));
    }

    #[test]
    fn sharded_manifest_bitflip_detected_everywhere() {
        let text = sharded_manifest().encode();
        for i in 0..text.len() {
            let mut bytes = text.clone().into_bytes();
            bytes[i] ^= 0x01;
            let Ok(s) = String::from_utf8(bytes) else {
                continue;
            };
            assert!(
                ShardedManifest::parse(&s).is_err(),
                "flip at byte {i} accepted: {s:?}"
            );
        }
    }

    #[test]
    fn v2_manifest_parses_as_single_shard_view() {
        let m = manifest();
        let sharded = ShardedManifest::parse(&m.encode()).unwrap();
        assert_eq!(sharded.source_version, STORE_VERSION);
        assert_eq!(sharded.shards.len(), 1);
        assert_eq!(sharded.shards[0].start, 0);
        assert_eq!(sharded.shards[0].end, m.rows);
        assert_eq!(sharded.shards[0].deltas, m.deltas);
        assert_eq!(sharded.shards[0].crc_u, m.crcs[0]);
        assert_eq!(sharded.crc_v, m.crcs[1]);
        assert_eq!(sharded.crc_lambda, m.crcs[2]);
        assert_eq!(sharded.shards[0].crc_deltas, m.crcs[3]);
        // A v2 store's components live at the top level.
        let base = Path::new("store");
        assert_eq!(sharded.shard_dir(base, 0), base);
    }

    fn reencode(body: &str) -> String {
        let csum = ats_common::hash::hash_bytes(body.as_bytes());
        format!("{body}manifest-crc={csum:016x}\n")
    }

    #[test]
    fn sharded_manifest_geometry_violations_rejected() {
        let good = sharded_manifest();
        // Gap between shards.
        let mut m = good.clone();
        m.shards[1].start = 100;
        let text = reencode(&m.encode()[..m.encode().rfind("manifest-crc=").unwrap()]);
        assert!(ShardedManifest::parse(&text).is_err(), "gap accepted");
        // Delta counts don't sum to total.
        let mut m = good.clone();
        m.shards[0].deltas = 21;
        let text = reencode(&m.encode()[..m.encode().rfind("manifest-crc=").unwrap()]);
        assert!(ShardedManifest::parse(&text).is_err(), "bad sum accepted");
        // Last shard doesn't reach `rows`.
        let mut m = good.clone();
        m.shards[1].end = 150;
        let text = reencode(&m.encode()[..m.encode().rfind("manifest-crc=").unwrap()]);
        assert!(
            ShardedManifest::parse(&text).is_err(),
            "short cover accepted"
        );
        // Empty shard.
        let mut m = good.clone();
        m.shards[0].end = 0;
        m.shards[1].start = 0;
        let text = reencode(&m.encode()[..m.encode().rfind("manifest-crc=").unwrap()]);
        assert!(
            ShardedManifest::parse(&text).is_err(),
            "empty shard accepted"
        );
        // Unknown shard field.
        let body = good
            .encode()
            .replace("shard.0.deltas=", "shard.0.unknowns=");
        let text = reencode(&body[..body.rfind("manifest-crc=").unwrap()]);
        assert!(
            ShardedManifest::parse(&text).is_err(),
            "unknown key accepted"
        );
    }

    #[test]
    fn shard_of_row_routes_to_owner() {
        let m = sharded_manifest();
        assert_eq!(m.shard_of_row(0), Some(0));
        assert_eq!(m.shard_of_row(95), Some(0));
        assert_eq!(m.shard_of_row(96), Some(1));
        assert_eq!(m.shard_of_row(199), Some(1));
        assert_eq!(m.shard_of_row(200), None);
    }

    #[test]
    fn commit_sharded_swaps_atomically_and_validates() {
        let t = ats_common::TestDir::new("ats-storedir");
        let target = t.file("store");

        let w = StoreWriter::begin(&target).unwrap();
        stage_sharded_components(w.path(), 2);
        w.commit_sharded(sharded_manifest()).unwrap();
        let m = validate_sharded_store_dir(&target).unwrap();
        assert_eq!(m.source_version, SHARDED_STORE_VERSION);
        assert_eq!(m.shards.len(), 2);
        assert_ne!(m.crc_v, 11, "commit recomputes real CRCs");
        assert_eq!(m.shards[1].append_sse, Some(0.125));

        // Replacing a sharded store with a differently-sharded one
        // leaves no stale shard directories behind.
        let w = StoreWriter::begin(&target).unwrap();
        stage_sharded_components(w.path(), 1);
        let mut m1 = sharded_manifest();
        m1.shards = vec![ShardEntry {
            start: 0,
            end: 200,
            deltas: 37,
            crc_u: 0,
            crc_deltas: 0,
            crc_synopsis: None,
            append_sse: None,
        }];
        w.commit_sharded(m1).unwrap();
        let got = validate_sharded_store_dir(&target).unwrap();
        assert_eq!(got.shards.len(), 1);
        assert!(!target.join(shard_dir_name(1)).exists(), "stale shard dir");
    }

    #[test]
    fn commit_sharded_without_staged_shard_refused() {
        let t = ats_common::TestDir::new("ats-storedir");
        let w = StoreWriter::begin(t.file("store")).unwrap();
        stage_sharded_components(w.path(), 1); // manifest declares 2
        let err = w.commit_sharded(sharded_manifest()).unwrap_err();
        assert!(matches!(err, AtsError::InvalidArgument(_)), "{err}");
        assert!(!t.file("store").exists());
    }

    #[test]
    fn validate_sharded_rejects_per_shard_corruption() {
        let t = ats_common::TestDir::new("ats-storedir");
        let target = t.file("store");
        let w = StoreWriter::begin(&target).unwrap();
        stage_sharded_components(w.path(), 2);
        w.commit_sharded(sharded_manifest()).unwrap();

        let victim = target.join(shard_dir_name(1)).join("u.atsm");
        let mut bytes = std::fs::read(&victim).unwrap();
        bytes[0] ^= 0x80;
        std::fs::write(&victim, &bytes).unwrap();
        let err = validate_sharded_store_dir(&target).unwrap_err();
        assert!(matches!(err, AtsError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("shard 1"), "{err}");

        std::fs::remove_file(&victim).unwrap();
        let err = validate_sharded_store_dir(&target).unwrap_err();
        assert!(matches!(err, AtsError::Corrupt(_)), "{err}");
    }

    #[test]
    fn staged_synopsis_is_pinned_and_corruption_detected() {
        // commit_sharded autodetects a staged synopsis.bin per shard:
        // shard 0 gets one (pinned by CRC), shard 1 stays legacy (None).
        let t = ats_common::TestDir::new("ats-storedir");
        let target = t.file("store");
        let w = StoreWriter::begin(&target).unwrap();
        stage_sharded_components(w.path(), 2);
        std::fs::write(
            w.path().join(shard_dir_name(0)).join("synopsis.bin"),
            b"synopsis payload",
        )
        .unwrap();
        w.commit_sharded(sharded_manifest()).unwrap();

        let m = validate_sharded_store_dir(&target).unwrap();
        assert!(m.shards[0].crc_synopsis.is_some());
        assert_eq!(m.shards[1].crc_synopsis, None);

        // Truncate, bitflip, delete: each must surface as Corrupt — a
        // synopsis must never silently degrade to an unpruned store.
        let victim = target.join(shard_dir_name(0)).join("synopsis.bin");
        let original = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &original[..original.len() - 1]).unwrap();
        assert!(matches!(
            validate_sharded_store_dir(&target),
            Err(AtsError::Corrupt(_))
        ));
        let mut bytes = original.clone();
        bytes[3] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();
        let err = validate_sharded_store_dir(&target).unwrap_err();
        assert!(err.to_string().contains("shard 0 synopsis.bin"), "{err}");
        std::fs::remove_file(&victim).unwrap();
        let err = validate_sharded_store_dir(&target).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
        std::fs::write(&victim, &original).unwrap();
        validate_sharded_store_dir(&target).unwrap();
    }

    #[test]
    fn validate_sharded_accepts_v2_directory() {
        let t = ats_common::TestDir::new("ats-storedir");
        let target = t.file("store");
        let w = StoreWriter::begin(&target).unwrap();
        stage_components(w.path());
        w.commit(manifest()).unwrap();
        let m = validate_sharded_store_dir(&target).unwrap();
        assert_eq!(m.source_version, STORE_VERSION);
        assert_eq!(m.shards.len(), 1);
    }

    fn timeblocked_manifest() -> TimeBlockedManifest {
        TimeBlockedManifest {
            method: "svdd".into(),
            rows: 200,
            cols: 21,
            bloom: true,
            blocks: vec![
                TimeBlockEntry {
                    start: 0,
                    end: 12,
                    sse: Some(0.5),
                    crc_manifest: 41,
                },
                TimeBlockEntry {
                    start: 12,
                    end: 21,
                    sse: Some(0.25),
                    crc_manifest: 42,
                },
            ],
            source_version: TIMEBLOCKED_STORE_VERSION,
        }
    }

    /// Stage one complete nested v3 store per block width under `dir`,
    /// writing each block's filled nested manifest.
    fn stage_timeblocked(dir: &Path, widths: &[usize]) {
        for (i, w) in widths.iter().enumerate() {
            let bdir = dir.join(tblock_dir_name(i));
            std::fs::create_dir_all(&bdir).unwrap();
            stage_sharded_components(&bdir, 2);
            let mut nested = sharded_manifest();
            nested.cols = *w;
            write_sharded_manifest_into(&bdir, nested).unwrap();
        }
    }

    #[test]
    fn timeblocked_manifest_roundtrip_preserves_sse_bits() {
        let m = timeblocked_manifest();
        let parsed = TimeBlockedManifest::parse(&m.encode()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.blocks[0].sse.unwrap().to_bits(), 0.5f64.to_bits());
    }

    #[test]
    fn timeblocked_manifest_bitflip_detected_everywhere() {
        let text = timeblocked_manifest().encode();
        for i in 0..text.len() {
            let mut bytes = text.clone().into_bytes();
            bytes[i] ^= 0x01;
            let Ok(s) = String::from_utf8(bytes) else {
                continue;
            };
            assert!(
                TimeBlockedManifest::parse(&s).is_err(),
                "flip at byte {i} accepted: {s:?}"
            );
        }
    }

    #[test]
    fn timeblocked_manifest_geometry_violations_rejected() {
        // Gap between blocks.
        let mut m = timeblocked_manifest();
        m.blocks[1].start = 13;
        assert!(TimeBlockedManifest::parse(&m.encode()).is_err());
        // Overlap.
        let mut m = timeblocked_manifest();
        m.blocks[1].start = 11;
        assert!(TimeBlockedManifest::parse(&m.encode()).is_err());
        // Not covering all columns.
        let mut m = timeblocked_manifest();
        m.blocks[1].end = 20;
        assert!(TimeBlockedManifest::parse(&m.encode()).is_err());
        // Empty block.
        let mut m = timeblocked_manifest();
        m.blocks[0].end = 0;
        assert!(TimeBlockedManifest::parse(&m.encode()).is_err());
        // Zero blocks.
        let mut m = timeblocked_manifest();
        m.blocks.clear();
        assert!(TimeBlockedManifest::parse(&m.encode()).is_err());
    }

    #[test]
    fn v3_manifest_parses_as_single_block_view() {
        let sharded = sharded_manifest();
        let text = sharded.encode();
        let m = TimeBlockedManifest::parse(&text).unwrap();
        assert_eq!(m.source_version, SHARDED_STORE_VERSION);
        assert_eq!(m.rows, sharded.rows);
        assert_eq!(m.cols, sharded.cols);
        assert_eq!(m.blocks.len(), 1);
        assert_eq!(m.blocks[0].start, 0);
        assert_eq!(m.blocks[0].end, sharded.cols);
        assert_eq!(m.blocks[0].sse, None);
        assert_eq!(
            m.blocks[0].crc_manifest,
            ats_common::hash::hash_bytes(text.as_bytes())
        );
        // The single block's components live in the store directory itself.
        let base = Path::new("store");
        assert_eq!(m.block_dir(base, 0), base);
        assert_eq!(m.block_of_col(0), Some(0));
        assert_eq!(m.block_of_col(sharded.cols), None);
    }

    #[test]
    fn commit_timeblocked_swaps_atomically_and_validates() {
        let t = ats_common::TestDir::new("ats-storedir");
        let target = t.file("store");
        let w = StoreWriter::begin(&target).unwrap();
        stage_timeblocked(w.path(), &[12, 9]);
        w.commit_timeblocked(timeblocked_manifest()).unwrap();

        let (m, nested) = validate_timeblocked_store_dir(&target).unwrap();
        assert_eq!(m.source_version, TIMEBLOCKED_STORE_VERSION);
        assert_eq!(m.blocks.len(), 2);
        assert_eq!(nested.len(), 2);
        assert_ne!(
            m.blocks[0].crc_manifest, 41,
            "commit recomputes nested CRCs"
        );
        assert_eq!(nested[0].cols, 12);
        assert_eq!(nested[1].cols, 9);
        assert_eq!(m.block_of_col(11), Some(0));
        assert_eq!(m.block_of_col(12), Some(1));
        // Genuine v4: blocks live in tblock-NNNN subdirectories.
        assert_eq!(m.block_dir(&target, 1), target.join("tblock-0001"));
        // No temp litter next to the store.
        let names: Vec<String> = std::fs::read_dir(t.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["store".to_string()], "{names:?}");
    }

    #[test]
    fn commit_timeblocked_without_staged_block_refused() {
        let t = ats_common::TestDir::new("ats-storedir");
        let target = t.file("store");
        let w = StoreWriter::begin(&target).unwrap();
        // Only block 0 staged; the manifest declares two.
        stage_timeblocked(w.path(), &[12]);
        let err = w.commit_timeblocked(timeblocked_manifest()).unwrap_err();
        assert!(matches!(err, AtsError::InvalidArgument(_)), "{err}");
        assert!(err.to_string().contains("time block 1"), "{err}");
        assert!(!target.exists());
    }

    #[test]
    fn timeblocked_validate_detects_nested_tampering() {
        let t = ats_common::TestDir::new("ats-storedir");
        let target = t.file("store");
        let w = StoreWriter::begin(&target).unwrap();
        stage_timeblocked(w.path(), &[12, 9]);
        w.commit_timeblocked(timeblocked_manifest()).unwrap();

        // Corrupt one byte of a nested component: per-block validation fails.
        let victim = target
            .join(tblock_dir_name(1))
            .join(shard_dir_name(0))
            .join("u.atsm");
        let mut bytes = std::fs::read(&victim).unwrap();
        bytes[0] ^= 0x01;
        std::fs::write(&victim, &bytes).unwrap();
        assert!(validate_timeblocked_store_dir(&target).is_err());
        bytes[0] ^= 0x01;
        std::fs::write(&victim, &bytes).unwrap();
        validate_timeblocked_store_dir(&target).unwrap();

        // Rewrite a nested manifest (self-consistent but different):
        // the top-level nested-manifest CRC catches the swap.
        let nested_path = target.join(tblock_dir_name(0)).join(MANIFEST_FILE);
        let mut nested = ShardedManifest::read(target.join(tblock_dir_name(0))).unwrap();
        nested.k += 1;
        std::fs::write(&nested_path, nested.encode()).unwrap();
        let err = validate_timeblocked_store_dir(&target).unwrap_err();
        assert!(matches!(err, AtsError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("time block 0"), "{err}");

        // A whole missing block directory is corruption, not a crash.
        std::fs::remove_dir_all(target.join(tblock_dir_name(0))).unwrap();
        assert!(validate_timeblocked_store_dir(&target).is_err());
    }
}
