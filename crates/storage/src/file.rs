//! Matrix files: positioned row reads and buffered sequential scans.
//!
//! [`MatrixFileWriter`] streams rows out to disk without buffering the
//! whole matrix; [`MatrixFile`] reads them back either one row at a time
//! by position (the query path: `pread` at `header.row_offset(i)`) or as
//! a buffered sequential scan (the pass path used by the compression
//! algorithms, which reads a chunk of rows per syscall). Scans longer
//! than one chunk run double-buffered: a reader thread fetches chunk
//! `c+1` while the caller decodes and consumes chunk `c`, overlapping
//! disk I/O with compute.

use crate::format::{Header, HEADER_LEN};
use crate::iostats::IoStats;
use crate::source::RowSource;
use ats_common::codec::u64_from_usize;
use ats_common::{AtsError, Result};
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// Number of rows fetched per syscall during sequential scans.
const SCAN_CHUNK_ROWS: usize = 256;

/// Chunk buffers in flight during a double-buffered scan: one being
/// consumed, one being read ahead.
const READAHEAD_BUFFERS: usize = 2;

/// Streaming writer for `.atsm` matrix files.
///
/// Rows are appended one at a time; [`MatrixFileWriter::finish`] patches
/// the header (which carries the final row count and checksum) and syncs.
pub struct MatrixFileWriter {
    out: BufWriter<File>,
    path: PathBuf,
    cols: usize,
    rows_written: usize,
    f32_cells: bool,
    /// Scratch for encoding one row before a single `write_all` — avoids
    /// a `BufWriter` call per cell on the streaming-build hot path.
    scratch: Vec<u8>,
}

impl MatrixFileWriter {
    /// Create (truncating) a matrix file with `cols` columns of `f64`
    /// cells.
    pub fn create(path: impl AsRef<Path>, cols: usize) -> Result<Self> {
        Self::create_inner(path, cols, false)
    }

    /// Create a file storing cells quantized to `f32` (half the space,
    /// ~7 decimal digits — the "b bytes per number" knob of §5.1).
    pub fn create_f32(path: impl AsRef<Path>, cols: usize) -> Result<Self> {
        Self::create_inner(path, cols, true)
    }

    fn create_inner(path: impl AsRef<Path>, cols: usize, f32_cells: bool) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        let mut out = BufWriter::new(file);
        // Placeholder header; patched in finish().
        out.write_all(&[0u8; HEADER_LEN])?;
        Ok(MatrixFileWriter {
            out,
            path,
            cols,
            rows_written: 0,
            f32_cells,
            scratch: Vec::new(),
        })
    }

    /// Append one row. Errors if the length differs from `cols`.
    pub fn append_row(&mut self, row: &[f64]) -> Result<()> {
        if row.len() != self.cols {
            return Err(AtsError::dims(
                "MatrixFileWriter::append_row",
                (1, row.len()),
                (1, self.cols),
            ));
        }
        self.scratch.clear();
        encode_cells(row, self.f32_cells, &mut self.scratch);
        self.out.write_all(&self.scratch)?;
        self.rows_written += 1;
        Ok(())
    }

    /// Append several rows from a flat row-major slice whose length must
    /// be a multiple of `cols`. The whole batch is encoded into one
    /// buffer and written with a single `write_all` — the fast path for
    /// streaming builds that synthesize rows in chunks.
    pub fn append_rows(&mut self, rows: &[f64]) -> Result<()> {
        if self.cols == 0 || !rows.len().is_multiple_of(self.cols) {
            return Err(AtsError::dims(
                "MatrixFileWriter::append_rows",
                (1, rows.len()),
                (1, self.cols.max(1)),
            ));
        }
        self.scratch.clear();
        encode_cells(rows, self.f32_cells, &mut self.scratch);
        self.out.write_all(&self.scratch)?;
        self.rows_written += rows.len() / self.cols;
        Ok(())
    }

    /// Number of rows appended so far.
    pub fn rows_written(&self) -> usize {
        self.rows_written
    }

    /// Finalize: flush data, write the real header, sync, and return it.
    pub fn finish(mut self) -> Result<Header> {
        let header = if self.f32_cells {
            Header::new_f32(self.rows_written, self.cols)
        } else {
            Header::new(self.rows_written, self.cols)
        };
        self.out.flush()?;
        let mut file = self
            .out
            .into_inner()
            .map_err(|e| AtsError::Io(std::io::Error::other(format!("flush failed: {e}"))))?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header.encode())?;
        file.sync_all()?;
        let _ = &self.path;
        Ok(header)
    }
}

/// Read-only handle to a `.atsm` matrix file.
///
/// All reads are positioned (`pread`), so a `MatrixFile` is freely
/// shareable across threads — the parallel pass in `ats-compress` scans
/// disjoint row ranges of one handle concurrently.
pub struct MatrixFile {
    file: File,
    header: Header,
    stats: Arc<IoStats>,
}

impl MatrixFile {
    /// Open and validate a matrix file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_stats(path, IoStats::new())
    }

    /// Open with caller-provided I/O counters.
    pub fn open_with_stats(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        let mut file = File::open(path.as_ref())?;
        let mut buf = [0u8; HEADER_LEN];
        file.read_exact(&mut buf)?;
        let header = Header::decode(&buf)?;
        // Cross-check the header's implied size (checked `rows·cols·cell`
        // arithmetic) against the actual file length: shorter means a
        // truncated write, longer means trailing garbage — both corrupt.
        let expected = header.checked_file_len()?;
        let actual = file.metadata()?.len();
        if actual < expected {
            return Err(AtsError::Corrupt(format!(
                "file truncated: {actual} bytes < expected {expected}"
            )));
        }
        if actual > expected {
            return Err(AtsError::Corrupt(format!(
                "file has {} trailing bytes past the {expected} the header implies",
                actual - expected
            )));
        }
        Ok(MatrixFile {
            file,
            header,
            stats,
        })
    }

    /// The parsed header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Number of rows (`N`).
    pub fn rows(&self) -> usize {
        self.header.rows
    }

    /// Number of columns (`M`).
    pub fn cols(&self) -> usize {
        self.header.cols
    }

    /// The I/O counters this handle reports into.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        #[cfg(unix)]
        {
            self.file.read_exact_at(buf, offset)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::Read as _;
            let mut f = &self.file;
            let mut f2 = f.try_clone()?;
            f2.seek(SeekFrom::Start(offset))?;
            f2.read_exact(buf)?;
            let _ = &mut f;
        }
        Ok(())
    }

    /// Raw positioned read at an absolute file offset, with no stats
    /// accounting — used by the buffer pool, which does its own.
    pub(crate) fn raw_read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.read_exact_at(buf, offset)
    }

    /// Positioned read of row `i` into `out` (length must be `cols`).
    /// One physical read.
    pub fn read_row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
        if i >= self.header.rows {
            return Err(AtsError::oob("row", i, self.header.rows));
        }
        if out.len() != self.header.cols {
            return Err(AtsError::dims(
                "read_row_into",
                (1, out.len()),
                (1, self.header.cols),
            ));
        }
        self.stats.record_logical();
        let mut buf = vec![0u8; self.header.row_bytes()];
        self.read_exact_at(&mut buf, self.header.row_offset(i))?;
        self.stats.record_physical(u64_from_usize(buf.len()));
        decode_cells(&buf, self.header.is_f32(), out);
        Ok(())
    }

    /// Positioned read of row `i`, allocating.
    pub fn read_row(&self, i: usize) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.header.cols];
        self.read_row_into(i, &mut out)?;
        Ok(out)
    }

    /// Buffered sequential scan of rows `[start, end)`, invoking
    /// `f(row_index, row)` for each. Reads a fixed-size chunk of rows per
    /// physical read; scans spanning more than one chunk run
    /// double-buffered (a reader thread prefetches the next chunk while
    /// this thread decodes the current one), so passes overlap disk I/O
    /// with compute. Rows are always delivered in order and the chunk
    /// partitioning — hence the physical/logical I/O accounting — is
    /// identical to the single-buffered path.
    pub fn scan_range(
        &self,
        start: usize,
        end: usize,
        f: &mut dyn FnMut(usize, &[f64]) -> Result<()>,
    ) -> Result<()> {
        if start > end || end > self.header.rows {
            return Err(AtsError::InvalidArgument(format!(
                "scan_range [{start}, {end}) out of 0..{}",
                self.header.rows
            )));
        }
        if self.header.cols == 0 || start == end {
            return Ok(());
        }
        if end - start > SCAN_CHUNK_ROWS {
            return self.scan_range_readahead(start, end, f);
        }
        let row_bytes = self.header.row_bytes();
        let mut buf = vec![0u8; row_bytes * (end - start)];
        let mut row = vec![0.0f64; self.header.cols];
        self.read_exact_at(&mut buf, self.header.row_offset(start))?;
        self.stats.record_physical(u64_from_usize(buf.len()));
        for (r, row_bytes_chunk) in buf.chunks_exact(row_bytes).enumerate() {
            self.stats.record_logical();
            decode_cells(row_bytes_chunk, self.header.is_f32(), &mut row);
            f(start + r, &row)?;
        }
        Ok(())
    }

    /// The multi-chunk scan path: a scoped reader thread `pread`s chunks
    /// into a small pool of recycled buffers and hands them over a
    /// bounded channel; this thread decodes and runs the callback. If
    /// the callback fails early the channels disconnect and the reader
    /// exits on its next send/receive.
    fn scan_range_readahead(
        &self,
        start: usize,
        end: usize,
        f: &mut dyn FnMut(usize, &[f64]) -> Result<()>,
    ) -> Result<()> {
        let row_bytes = self.header.row_bytes();
        let mut row = vec![0.0f64; self.header.cols];
        std::thread::scope(|scope| -> Result<()> {
            type Filled = Result<(usize, usize, Vec<u8>)>;
            let (filled_tx, filled_rx) = mpsc::sync_channel::<Filled>(READAHEAD_BUFFERS);
            let (empty_tx, empty_rx) = mpsc::sync_channel::<Vec<u8>>(READAHEAD_BUFFERS);
            for _ in 0..READAHEAD_BUFFERS {
                let _ = empty_tx.send(vec![0u8; row_bytes * SCAN_CHUNK_ROWS]);
            }
            scope.spawn(move || {
                let mut i = start;
                while i < end {
                    let chunk = SCAN_CHUNK_ROWS.min(end - i);
                    // A closed channel means the consumer bailed; just stop.
                    let Ok(mut buf) = empty_rx.recv() else { return };
                    let read = buf
                        .get_mut(..chunk * row_bytes)
                        .ok_or_else(|| AtsError::internal("readahead buffer too small"))
                        .and_then(|bytes| {
                            self.read_exact_at(bytes, self.header.row_offset(i))?;
                            self.stats.record_physical(u64_from_usize(bytes.len()));
                            Ok(())
                        });
                    match read {
                        Ok(()) => {
                            if filled_tx.send(Ok((i, chunk, buf))).is_err() {
                                return;
                            }
                        }
                        Err(e) => {
                            let _ = filled_tx.send(Err(e));
                            return;
                        }
                    }
                    i += chunk;
                }
            });
            let mut next = start;
            while next < end {
                let (i, chunk, buf) = filled_rx
                    .recv()
                    .map_err(|_| AtsError::internal("readahead reader exited early"))??;
                debug_assert_eq!(i, next);
                let bytes = buf
                    .get(..chunk * row_bytes)
                    .ok_or_else(|| AtsError::internal("readahead chunk short"))?;
                for (r, row_bytes_chunk) in bytes.chunks_exact(row_bytes).enumerate() {
                    self.stats.record_logical();
                    decode_cells(row_bytes_chunk, self.header.is_f32(), &mut row);
                    f(i + r, &row)?;
                }
                next = i + chunk;
                // Reader may already be done; a closed channel is fine.
                let _ = empty_tx.send(buf);
            }
            Ok(())
        })
    }
}

/// Encode cells to their on-disk little-endian form, appending to `out`.
pub(crate) fn encode_cells(cells: &[f64], is_f32: bool, out: &mut Vec<u8>) {
    if is_f32 {
        out.reserve(cells.len() * 4);
        for &v in cells {
            out.extend_from_slice(&(v as f32).to_le_bytes());
        }
    } else {
        out.reserve(cells.len() * 8);
        for &v in cells {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

pub(crate) fn decode_cells(buf: &[u8], is_f32: bool, out: &mut [f64]) {
    // `chunks_exact` guarantees the width, so the failed-conversion arms
    // are dead; skipping them keeps this hot loop free of panics.
    if is_f32 {
        for (o, chunk) in out.iter_mut().zip(buf.chunks_exact(4)) {
            if let Ok(arr) = <[u8; 4]>::try_from(chunk) {
                *o = f64::from(f32::from_le_bytes(arr));
            }
        }
    } else {
        for (o, chunk) in out.iter_mut().zip(buf.chunks_exact(8)) {
            if let Ok(arr) = <[u8; 8]>::try_from(chunk) {
                *o = f64::from_le_bytes(arr);
            }
        }
    }
}

/// Convenience: write an in-memory matrix to a file in one call.
pub fn write_matrix(path: impl AsRef<Path>, m: &ats_linalg::Matrix) -> Result<Header> {
    let mut w = MatrixFileWriter::create(path, m.cols())?;
    for row in m.iter_rows() {
        w.append_row(row)?;
    }
    w.finish()
}

/// Stream any [`RowSource`] into a matrix file without materializing it:
/// one sequential pass, `O(M)` memory. This is how `ats generate --out`
/// writes datasets far larger than RAM from the lazy generators.
pub fn write_source(path: impl AsRef<Path>, source: &dyn RowSource) -> Result<Header> {
    let mut w = MatrixFileWriter::create(path, source.cols())?;
    source.for_each_row(&mut |_, row| w.append_row(row))?;
    w.finish()
}

/// Convenience: read an entire file into an in-memory matrix.
pub fn read_matrix(path: impl AsRef<Path>) -> Result<ats_linalg::Matrix> {
    let f = MatrixFile::open(path)?;
    let mut m = ats_linalg::Matrix::zeros(f.rows(), f.cols());
    f.scan_range(0, f.rows(), &mut |i, row| {
        m.row_mut(i).copy_from_slice(row);
        Ok(())
    })?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_linalg::Matrix;

    fn tmpdir() -> ats_common::TestDir {
        ats_common::TestDir::new("ats-storage-test")
    }

    fn sample_matrix(n: usize, m: usize) -> Matrix {
        Matrix::from_fn(n, m, |i, j| (i * 1000 + j) as f64 * 0.5 - 3.0)
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = tmpdir();
        let path = dir.file("roundtrip.atsm");
        let m = sample_matrix(37, 11);
        let h = write_matrix(&path, &m).unwrap();
        assert_eq!(h.rows, 37);
        assert_eq!(h.cols, 11);
        let back = read_matrix(&path).unwrap();
        assert!(back.approx_eq(&m, 0.0));
    }

    #[test]
    fn positioned_row_read() {
        let dir = tmpdir();
        let path = dir.file("pos.atsm");
        let m = sample_matrix(20, 7);
        write_matrix(&path, &m).unwrap();
        let f = MatrixFile::open(&path).unwrap();
        for i in [0usize, 7, 19] {
            assert_eq!(f.read_row(i).unwrap(), m.row(i));
        }
        assert!(f.read_row(20).is_err());
    }

    #[test]
    fn physical_reads_counted_one_per_row_query() {
        let dir = tmpdir();
        let path = dir.file("count.atsm");
        write_matrix(&path, &sample_matrix(10, 4)).unwrap();
        let stats = IoStats::new();
        let f = MatrixFile::open_with_stats(&path, Arc::clone(&stats)).unwrap();
        f.read_row(3).unwrap();
        f.read_row(7).unwrap();
        // The paper's claim: each cell/row query = one disk access.
        assert_eq!(stats.physical_reads(), 2);
        assert_eq!(stats.logical_reads(), 2);
    }

    #[test]
    fn scan_visits_all_rows_in_order() {
        let dir = tmpdir();
        let path = dir.file("scan.atsm");
        let m = sample_matrix(1000, 5); // > SCAN_CHUNK_ROWS to cross chunks
        write_matrix(&path, &m).unwrap();
        let f = MatrixFile::open(&path).unwrap();
        let mut seen = Vec::new();
        f.scan_range(0, 1000, &mut |i, row| {
            assert_eq!(row, m.row(i));
            seen.push(i);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
        // Chunked: far fewer physical reads than rows.
        assert!(f.stats().physical_reads() <= 4 + 1);
    }

    #[test]
    fn scan_subrange() {
        let dir = tmpdir();
        let path = dir.file("sub.atsm");
        let m = sample_matrix(50, 3);
        write_matrix(&path, &m).unwrap();
        let f = MatrixFile::open(&path).unwrap();
        let mut seen = Vec::new();
        f.scan_range(10, 20, &mut |i, _| {
            seen.push(i);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, (10..20).collect::<Vec<_>>());
        assert!(f.scan_range(20, 10, &mut |_, _| Ok(())).is_err());
        assert!(f.scan_range(0, 51, &mut |_, _| Ok(())).is_err());
    }

    #[test]
    fn scan_propagates_callback_error() {
        let dir = tmpdir();
        let path = dir.file("cberr.atsm");
        write_matrix(&path, &sample_matrix(10, 2)).unwrap();
        let f = MatrixFile::open(&path).unwrap();
        let r = f.scan_range(0, 10, &mut |i, _| {
            if i == 5 {
                Err(AtsError::Numerical("boom".into()))
            } else {
                Ok(())
            }
        });
        assert!(r.is_err());
    }

    #[test]
    fn readahead_scan_propagates_error_and_stops() {
        // > SCAN_CHUNK_ROWS so the double-buffered path runs; failing in
        // the middle must surface the error without hanging the reader.
        let dir = tmpdir();
        let path = dir.file("rahead-err.atsm");
        write_matrix(&path, &sample_matrix(700, 3)).unwrap();
        let f = MatrixFile::open(&path).unwrap();
        let mut visited = 0usize;
        let r = f.scan_range(0, 700, &mut |i, _| {
            visited += 1;
            if i == 300 {
                Err(AtsError::Numerical("mid-scan".into()))
            } else {
                Ok(())
            }
        });
        assert!(r.is_err());
        assert_eq!(visited, 301);
    }

    #[test]
    fn readahead_matches_single_buffer_content() {
        let dir = tmpdir();
        let path = dir.file("rahead.atsm");
        let m = sample_matrix(600, 4); // crosses chunk boundary mid-file
        write_matrix(&path, &m).unwrap();
        let f = MatrixFile::open(&path).unwrap();
        let mut rows = 0usize;
        f.scan_range(100, 500, &mut |i, row| {
            assert_eq!(row, m.row(i));
            rows += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(rows, 400);
    }

    #[test]
    fn append_rows_batch() {
        let dir = tmpdir();
        let path = dir.file("batch.atsm");
        let m = sample_matrix(10, 4);
        let mut w = MatrixFileWriter::create(&path, 4).unwrap();
        // First three rows in one batch, rest one by one.
        w.append_rows(&m.as_slice()[..12]).unwrap();
        assert_eq!(w.rows_written(), 3);
        for i in 3..10 {
            w.append_row(m.row(i)).unwrap();
        }
        assert!(w.append_rows(&[1.0, 2.0, 3.0]).is_err()); // not a multiple of cols
        w.finish().unwrap();
        let back = read_matrix(&path).unwrap();
        assert!(back.approx_eq(&m, 0.0));
    }

    #[test]
    fn trailing_garbage_detected_on_open() {
        let dir = tmpdir();
        let path = dir.file("trail.atsm");
        write_matrix(&path, &sample_matrix(5, 3)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 16]);
        std::fs::write(&path, &bytes).unwrap();
        let err = match MatrixFile::open(&path) {
            Err(e) => e,
            Ok(_) => panic!("trailing garbage accepted"),
        };
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn write_source_streams_any_rowsource() {
        let dir = tmpdir();
        let a = dir.file("src-a.atsm");
        let b = dir.file("src-b.atsm");
        let m = sample_matrix(40, 6);
        write_matrix(&a, &m).unwrap();
        let h = write_source(&b, &m).unwrap();
        assert_eq!(h.rows, 40);
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    }

    #[test]
    fn wrong_row_length_rejected_on_write() {
        let dir = tmpdir();
        let path = dir.file("badrow.atsm");
        let mut w = MatrixFileWriter::create(&path, 3).unwrap();
        assert!(w.append_row(&[1.0, 2.0]).is_err());
        assert!(w.append_row(&[1.0, 2.0, 3.0]).is_ok());
        assert_eq!(w.rows_written(), 1);
    }

    #[test]
    fn truncated_file_detected_on_open() {
        let dir = tmpdir();
        let path = dir.file("trunc.atsm");
        write_matrix(&path, &sample_matrix(10, 4)).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 8]).unwrap();
        assert!(MatrixFile::open(&path).is_err());
    }

    #[test]
    fn f32_quantized_roundtrip() {
        let dir = tmpdir();
        let path = dir.file("f32.atsm");
        let m = sample_matrix(12, 6);
        let mut w = MatrixFileWriter::create_f32(&path, 6).unwrap();
        for row in m.iter_rows() {
            w.append_row(row).unwrap();
        }
        let h = w.finish().unwrap();
        assert!(h.is_f32());
        let f = MatrixFile::open(&path).unwrap();
        for i in 0..12 {
            let row = f.read_row(i).unwrap();
            for (a, b) in row.iter().zip(m.row(i)) {
                assert!((a - b).abs() < 1e-3, "f32 quantization error too large");
            }
        }
        // File is about half the size of an f64 file.
        let len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(len, HEADER_LEN as u64 + 12 * 6 * 4);
    }

    #[test]
    fn empty_matrix_file() {
        let dir = tmpdir();
        let path = dir.file("empty.atsm");
        let w = MatrixFileWriter::create(&path, 5).unwrap();
        let h = w.finish().unwrap();
        assert_eq!(h.rows, 0);
        let f = MatrixFile::open(&path).unwrap();
        assert_eq!(f.rows(), 0);
        f.scan_range(0, 0, &mut |_, _| panic!("no rows")).unwrap();
    }

    #[test]
    fn concurrent_positioned_reads() {
        let dir = tmpdir();
        let path = dir.file("conc.atsm");
        let m = sample_matrix(100, 8);
        write_matrix(&path, &m).unwrap();
        let f = Arc::new(MatrixFile::open(&path).unwrap());
        std::thread::scope(|s| {
            for t in 0..4 {
                let f = Arc::clone(&f);
                let m = &m;
                s.spawn(move || {
                    for i in (t..100).step_by(4) {
                        assert_eq!(f.read_row(i).unwrap(), m.row(i));
                    }
                });
            }
        });
    }
}
