//! Per-shard zone-map synopses: tiny min/max/sum/count tiles over the
//! *reconstructed* matrix, persisted next to `U` so selective `where`
//! scans can prune whole tiles without touching a single `U` page.
//!
//! The synopsis partitions a shard's local `rows × cols` rectangle into
//! fixed [`ROW_BLOCK`]`×`[`COL_BLOCK`] tiles (edge tiles are smaller)
//! and stores, per tile, the exact min/max/sum/count of the values the
//! store would serve — i.e. the SVD reconstruction *after* delta
//! patching. Tracking deltas exactly at emit time (rather than widening
//! bounds by the largest |δ|) keeps the bounds tight and makes the
//! pruning argument trivial: a tile's `[min, max]` interval contains
//! every value a query could ever reconstruct from it, so a predicate
//! that is false on the whole interval is false on every cell.
//!
//! `NaN` poisons a tile's bounds (`min`/`max` become `NaN`); the query
//! layer treats non-finite bounds as "maybe" and reconstructs the tile,
//! so pruning stays sound on pathological data.
//!
//! On disk (`synopsis.bin`, one per shard, CRC-pinned by the manifest):
//! an 8-byte magic, five `u64` header fields (rows, cols, row_block,
//! col_block, tile count), then 32 bytes per tile (`f64` min, `f64`
//! max, `f64` sum, `u64` count), all little-endian. The decoder is
//! total: truncated, oversized-count, and trailing-garbage images all
//! yield [`AtsError::Corrupt`], never a panic or an attacker-sized
//! allocation.

use ats_common::codec::{get_f64, get_u64, put_f64, put_u64, u64_from_usize, usize_from_u64};
use ats_common::{AtsError, Result};

/// File name of the per-shard synopsis component inside a shard
/// directory (sibling of `u.atsm` / `deltas.bin`).
pub const SYNOPSIS_FILE: &str = "synopsis.bin";

/// Tile height in rows. Matches the query engine's blocked-kernel row
/// chunk (`AGG_BLOCK_ROWS`), so a straddling tile reconstructs through
/// one kernel call per tile-row, not ragged fragments.
pub const ROW_BLOCK: usize = 8;

/// Tile width in columns.
pub const COL_BLOCK: usize = 16;

const SYNOPSIS_MAGIC: &[u8; 8] = b"ATSSYNO1";

/// Encoded size of one tile record: min, max, sum (`f64`) + count (`u64`).
const TILE_BYTES: usize = 32;

/// Header: magic + rows + cols + row_block + col_block + tile count.
const HEADER_BYTES: usize = 48;

/// Exact statistics of one tile of reconstructed values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileStat {
    /// Smallest served value in the tile (`NaN` if any cell is `NaN`).
    pub min: f64,
    /// Largest served value in the tile (`NaN` if any cell is `NaN`).
    pub max: f64,
    /// Sum of the tile's values (diagnostic; not used for pruning).
    pub sum: f64,
    /// Number of cells in the tile.
    pub count: u64,
}

/// Zone-map synopsis of one shard: a row-major grid of [`TileStat`]s
/// over the shard's local `rows × cols` rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSynopsis {
    rows: usize,
    cols: usize,
    row_block: usize,
    col_block: usize,
    tiles: Vec<TileStat>,
}

/// Tile-grid shape for a `rows × cols` rectangle under `rb × cb` tiles.
fn grid(rows: usize, cols: usize, rb: usize, cb: usize) -> (usize, usize) {
    (rows.div_ceil(rb), cols.div_ceil(cb))
}

impl ShardSynopsis {
    /// Shard height in rows (local, i.e. `end - start`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Shard width in columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Tile height in rows.
    pub fn row_block(&self) -> usize {
        self.row_block
    }

    /// Tile width in columns.
    pub fn col_block(&self) -> usize {
        self.col_block
    }

    /// Number of tile rows in the grid.
    pub fn tile_rows(&self) -> usize {
        grid(self.rows, self.cols, self.row_block, self.col_block).0
    }

    /// Number of tile columns in the grid.
    pub fn tile_cols(&self) -> usize {
        grid(self.rows, self.cols, self.row_block, self.col_block).1
    }

    /// All tiles, row-major.
    pub fn tiles(&self) -> &[TileStat] {
        &self.tiles
    }

    /// The tile covering local rows `tr·row_block ..` and columns
    /// `tc·col_block ..`, or `None` outside the grid.
    pub fn tile(&self, tr: usize, tc: usize) -> Option<&TileStat> {
        let (_, tcols) = grid(self.rows, self.cols, self.row_block, self.col_block);
        if tr >= self.tile_rows() || tc >= tcols {
            return None;
        }
        self.tiles.get(tr * tcols + tc)
    }

    /// Encoded byte size of this synopsis (header + tiles).
    pub fn storage_bytes(&self) -> usize {
        HEADER_BYTES + self.tiles.len() * TILE_BYTES
    }

    /// Serialize into the `synopsis.bin` byte image.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.storage_bytes());
        buf.extend_from_slice(SYNOPSIS_MAGIC);
        put_u64(&mut buf, u64_from_usize(self.rows));
        put_u64(&mut buf, u64_from_usize(self.cols));
        put_u64(&mut buf, u64_from_usize(self.row_block));
        put_u64(&mut buf, u64_from_usize(self.col_block));
        put_u64(&mut buf, u64_from_usize(self.tiles.len()));
        for t in &self.tiles {
            put_f64(&mut buf, t.min);
            put_f64(&mut buf, t.max);
            put_f64(&mut buf, t.sum);
            put_u64(&mut buf, t.count);
        }
        buf
    }

    /// Parse a `synopsis.bin` byte image.
    ///
    /// Total on every input: the claimed tile count is validated against
    /// both the payload bytes actually present and the count the header's
    /// own geometry implies *before* any allocation is sized, and the
    /// per-tile cell counts must tile the rectangle exactly.
    pub fn decode(buf: &[u8]) -> Result<ShardSynopsis> {
        if buf.len() < HEADER_BYTES || buf.get(..8) != Some(SYNOPSIS_MAGIC.as_slice()) {
            return Err(AtsError::Corrupt("bad synopsis file header".into()));
        }
        let rows = usize_from_u64(get_u64(buf, 8)?, "synopsis row count")?;
        let cols = usize_from_u64(get_u64(buf, 16)?, "synopsis column count")?;
        let row_block = usize_from_u64(get_u64(buf, 24)?, "synopsis row block")?;
        let col_block = usize_from_u64(get_u64(buf, 32)?, "synopsis column block")?;
        let count_raw = get_u64(buf, 40)?;
        if rows == 0 || cols == 0 || row_block == 0 || col_block == 0 {
            return Err(AtsError::Corrupt(format!(
                "synopsis geometry {rows}x{cols} in {row_block}x{col_block} tiles is degenerate"
            )));
        }
        // Validate the count against the bytes actually present *before*
        // sizing any allocation: a corrupt count must not trigger a
        // multi-GB `Vec::with_capacity` only to fail at the first tile.
        let remaining = buf.len() - HEADER_BYTES;
        if count_raw > u64_from_usize(remaining / TILE_BYTES) {
            return Err(AtsError::Corrupt(format!(
                "synopsis file claims {count_raw} tiles but holds only {remaining} payload bytes"
            )));
        }
        let (trows, tcols) = grid(rows, cols, row_block, col_block);
        let expected = trows.checked_mul(tcols).ok_or_else(|| {
            AtsError::Corrupt(format!(
                "synopsis tile grid {trows}x{tcols} overflows a tile count"
            ))
        })?;
        let count = usize_from_u64(count_raw, "synopsis tile count")?;
        if count != expected {
            return Err(AtsError::Corrupt(format!(
                "synopsis file claims {count} tiles, geometry {rows}x{cols} in \
                 {row_block}x{col_block} tiles implies {expected}"
            )));
        }
        let mut tiles = Vec::with_capacity(count);
        let mut p = HEADER_BYTES;
        let mut cells = 0u64;
        for _ in 0..count {
            let t = TileStat {
                min: get_f64(buf, p)?,
                max: get_f64(buf, p + 8)?,
                sum: get_f64(buf, p + 16)?,
                count: get_u64(buf, p + 24)?,
            };
            p += TILE_BYTES;
            cells = cells
                .checked_add(t.count)
                .ok_or_else(|| AtsError::Corrupt("synopsis cell counts overflow a u64".into()))?;
            tiles.push(t);
        }
        if p != buf.len() {
            return Err(AtsError::Corrupt(format!(
                "synopsis file has {} trailing bytes after {count} tiles",
                buf.len() - p
            )));
        }
        let total = u64_from_usize(rows)
            .checked_mul(u64_from_usize(cols))
            .ok_or_else(|| AtsError::Corrupt("synopsis rows*cols overflows a u64".into()))?;
        if cells != total {
            return Err(AtsError::Corrupt(format!(
                "synopsis tile counts sum to {cells} cells, geometry {rows}x{cols} has {total}"
            )));
        }
        Ok(ShardSynopsis {
            rows,
            cols,
            row_block,
            col_block,
            tiles,
        })
    }
}

/// Streaming builder: fed one local row of *served* values at a time (in
/// row order, reconstructed and delta-patched exactly as queries would),
/// it accumulates the tile grid without ever holding more than one row.
#[derive(Debug)]
pub struct SynopsisBuilder {
    rows: usize,
    cols: usize,
    next_row: usize,
    tcols: usize,
    tiles: Vec<TileStat>,
}

impl SynopsisBuilder {
    /// Start a synopsis of a `rows × cols` shard under the default
    /// [`ROW_BLOCK`]`×`[`COL_BLOCK`] tile geometry.
    pub fn new(rows: usize, cols: usize) -> Result<SynopsisBuilder> {
        if rows == 0 || cols == 0 {
            return Err(AtsError::InvalidArgument(format!(
                "cannot build a synopsis of an empty {rows}x{cols} shard"
            )));
        }
        let (trows, tcols) = grid(rows, cols, ROW_BLOCK, COL_BLOCK);
        Ok(SynopsisBuilder {
            rows,
            cols,
            next_row: 0,
            tcols,
            tiles: vec![
                TileStat {
                    min: f64::INFINITY,
                    max: f64::NEG_INFINITY,
                    sum: 0.0,
                    count: 0,
                };
                trows * tcols
            ],
        })
    }

    /// Fold the next local row's served values into the grid. Rows must
    /// arrive in order, exactly `rows` of them, each `cols` wide.
    pub fn push_row(&mut self, values: &[f64]) -> Result<()> {
        if self.next_row >= self.rows {
            return Err(AtsError::InvalidArgument(format!(
                "synopsis already holds all {} rows",
                self.rows
            )));
        }
        if values.len() != self.cols {
            return Err(AtsError::dims(
                "SynopsisBuilder::push_row",
                (1, values.len()),
                (1, self.cols),
            ));
        }
        let tr = self.next_row / ROW_BLOCK;
        for (j, &v) in values.iter().enumerate() {
            // ats-lint: allow(slice-index) — tr < tile_rows (next_row < rows checked above), j / COL_BLOCK < tcols (j < cols)
            let t = &mut self.tiles[tr * self.tcols + j / COL_BLOCK];
            // f64::min/max would *discard* a NaN already in the bound, so
            // poison explicitly: once any cell is NaN the bounds stay NaN
            // and the query layer falls back to reconstructing the tile.
            if v.is_nan() || t.min.is_nan() {
                t.min = f64::NAN;
                t.max = f64::NAN;
            } else {
                t.min = t.min.min(v);
                t.max = t.max.max(v);
            }
            t.sum += v;
            t.count += 1;
        }
        self.next_row += 1;
        Ok(())
    }

    /// Finish the synopsis; errors unless exactly `rows` rows arrived.
    pub fn finish(self) -> Result<ShardSynopsis> {
        if self.next_row != self.rows {
            return Err(AtsError::InvalidArgument(format!(
                "synopsis got {} of {} rows",
                self.next_row, self.rows
            )));
        }
        Ok(ShardSynopsis {
            rows: self.rows,
            cols: self.cols,
            row_block: ROW_BLOCK,
            col_block: COL_BLOCK,
            tiles: self.tiles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic "served values" for an r×c shard.
    fn served(rows: usize, cols: usize) -> Vec<Vec<f64>> {
        (0..rows)
            .map(|i| {
                (0..cols)
                    .map(|j| ((i * 31 + j * 7) % 23) as f64 - 11.0)
                    .collect()
            })
            .collect()
    }

    fn build(rows: usize, cols: usize) -> ShardSynopsis {
        let mut b = SynopsisBuilder::new(rows, cols).unwrap();
        for row in served(rows, cols) {
            b.push_row(&row).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn builder_matches_naive_tile_stats() {
        for (rows, cols) in [(1, 1), (8, 16), (17, 33), (24, 16), (9, 5)] {
            let s = build(rows, cols);
            let data = served(rows, cols);
            assert_eq!(s.tile_rows(), rows.div_ceil(ROW_BLOCK));
            assert_eq!(s.tile_cols(), cols.div_ceil(COL_BLOCK));
            let mut cells = 0u64;
            for tr in 0..s.tile_rows() {
                for tc in 0..s.tile_cols() {
                    let t = s.tile(tr, tc).unwrap();
                    let (mut mn, mut mx, mut sum, mut n) =
                        (f64::INFINITY, f64::NEG_INFINITY, 0.0, 0u64);
                    let rband = tr * ROW_BLOCK..((tr + 1) * ROW_BLOCK).min(rows);
                    let cband = tc * COL_BLOCK..((tc + 1) * COL_BLOCK).min(cols);
                    for row in &data[rband] {
                        for &v in &row[cband.clone()] {
                            mn = mn.min(v);
                            mx = mx.max(v);
                            sum += v;
                            n += 1;
                        }
                    }
                    assert_eq!(t.min.to_bits(), mn.to_bits(), "({rows},{cols}) [{tr},{tc}]");
                    assert_eq!(t.max.to_bits(), mx.to_bits());
                    assert_eq!(t.sum.to_bits(), sum.to_bits());
                    assert_eq!(t.count, n);
                    cells += n;
                }
            }
            assert_eq!(cells, (rows * cols) as u64);
            assert!(s.tile(s.tile_rows(), 0).is_none());
            assert!(s.tile(0, s.tile_cols()).is_none());
        }
    }

    #[test]
    fn nan_poisons_tile_bounds_permanently() {
        let mut b = SynopsisBuilder::new(3, 2).unwrap();
        b.push_row(&[1.0, 2.0]).unwrap();
        b.push_row(&[f64::NAN, 3.0]).unwrap();
        // A later finite value must not un-poison the bounds (f64::min
        // would silently drop the NaN).
        b.push_row(&[5.0, 4.0]).unwrap();
        let s = b.finish().unwrap();
        let t = s.tile(0, 0).unwrap();
        assert!(t.min.is_nan() && t.max.is_nan());
        assert_eq!(t.count, 6);
    }

    #[test]
    fn builder_rejects_misuse() {
        assert!(SynopsisBuilder::new(0, 5).is_err());
        assert!(SynopsisBuilder::new(5, 0).is_err());
        let mut b = SynopsisBuilder::new(2, 3).unwrap();
        assert!(b.push_row(&[1.0, 2.0]).is_err()); // wrong width
        b.push_row(&[1.0, 2.0, 3.0]).unwrap();
        let half = b;
        assert!(half.finish().is_err()); // short a row
        let mut b = SynopsisBuilder::new(1, 3).unwrap();
        b.push_row(&[1.0, 2.0, 3.0]).unwrap();
        assert!(b.push_row(&[1.0, 2.0, 3.0]).is_err()); // too many rows
    }

    #[test]
    fn roundtrip_is_bitwise() {
        for (rows, cols) in [(1, 1), (8, 16), (17, 33), (100, 7)] {
            let s = build(rows, cols);
            let bytes = s.encode();
            assert_eq!(bytes.len(), s.storage_bytes());
            let back = ShardSynopsis::decode(&bytes).unwrap();
            assert_eq!(back.rows(), rows);
            assert_eq!(back.cols(), cols);
            assert_eq!(back.tiles().len(), s.tiles().len());
            for (a, b) in s.tiles().iter().zip(back.tiles()) {
                assert_eq!(a.min.to_bits(), b.min.to_bits());
                assert_eq!(a.max.to_bits(), b.max.to_bits());
                assert_eq!(a.sum.to_bits(), b.sum.to_bits());
                assert_eq!(a.count, b.count);
            }
            assert_eq!(back.encode(), bytes);
        }
    }

    #[test]
    fn nan_bounds_survive_the_disk_roundtrip() {
        let mut b = SynopsisBuilder::new(2, 2).unwrap();
        b.push_row(&[f64::NAN, 1.0]).unwrap();
        b.push_row(&[2.0, 3.0]).unwrap();
        let s = b.finish().unwrap();
        let back = ShardSynopsis::decode(&s.encode()).unwrap();
        assert!(back.tile(0, 0).unwrap().min.is_nan());
    }

    #[test]
    fn corrupt_tile_count_rejected_without_allocation() {
        // An image claiming billions of tiles must be rejected by the
        // length check, not by a multi-GB `Vec::with_capacity` attempt.
        let mut buf = Vec::new();
        buf.extend_from_slice(SYNOPSIS_MAGIC);
        for v in [1u64 << 40, 1 << 40, 8, 16, u64::MAX / 2] {
            put_u64(&mut buf, v);
        }
        buf.extend_from_slice(&[0u8; 64]); // a few payload bytes
        let err = ShardSynopsis::decode(&buf).unwrap_err();
        assert!(matches!(err, AtsError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("tiles"), "{err}");
    }

    #[test]
    fn tile_count_must_match_geometry() {
        // Right amount of payload, wrong count for the claimed dims.
        let s = build(8, 16); // exactly 1 tile
        let mut buf = s.encode();
        // Claim 2 tiles and append one more tile's bytes.
        buf[40..48].copy_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&[0u8; TILE_BYTES]);
        let err = ShardSynopsis::decode(&buf).unwrap_err();
        assert!(matches!(err, AtsError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("implies"), "{err}");
    }

    #[test]
    fn cell_counts_must_tile_the_rectangle() {
        let s = build(8, 16);
        let mut buf = s.encode();
        let off = buf.len() - 8; // the single tile's count field
        buf[off..].copy_from_slice(&127u64.to_le_bytes());
        let err = ShardSynopsis::decode(&buf).unwrap_err();
        assert!(err.to_string().contains("sum to"), "{err}");
    }

    #[test]
    fn degenerate_geometry_rejected() {
        for zero_at in 0..4 {
            let mut buf = Vec::new();
            buf.extend_from_slice(SYNOPSIS_MAGIC);
            for (i, v) in [4u64, 4, 8, 16].iter().enumerate() {
                put_u64(&mut buf, if i == zero_at { 0 } else { *v });
            }
            put_u64(&mut buf, 0);
            let err = ShardSynopsis::decode(&buf).unwrap_err();
            assert!(err.to_string().contains("degenerate"), "{err}");
        }
    }

    #[test]
    fn every_strict_prefix_errors() {
        let bytes = build(17, 33).encode();
        for len in 0..bytes.len() {
            assert!(
                ShardSynopsis::decode(&bytes[..len]).is_err(),
                "prefix of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = build(8, 16).encode();
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            ShardSynopsis::decode(&bytes),
            Err(AtsError::Corrupt(_))
        ));
    }

    #[test]
    fn byte_soup_never_panics() {
        // Deterministic pseudo-random soups of assorted lengths: decode
        // must return (almost surely an error), never panic.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for len in [0usize, 7, 8, 47, 48, 49, 80, 333] {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (state >> 56) as u8;
            }
            let _ = ShardSynopsis::decode(&buf);
        }
    }
}
