//! The [`CompressedMatrix`] trait and the shared space accounting.
//!
//! The paper compares methods at equal *space*, expressed as `s%` — the
//! compressed size as a percentage of the uncompressed `N × M × b` bytes
//! (`b` bytes per stored number; §5.1 and Eq. 9). [`SpaceBudget`]
//! centralizes that arithmetic so every method and every experiment
//! counts bytes the same way.

use ats_common::Result;

/// Bytes per stored number used throughout the experiments (`b` in §5.1).
/// We store `f64`s, so 8.
pub const BYTES_PER_NUMBER: usize = 8;

/// A lossy-compressed `N × M` matrix supporting `O(k)` random access to
/// any cell — the paper's definition of a representation that "supports
/// ad hoc querying".
pub trait CompressedMatrix: Send + Sync {
    /// Number of rows (`N`).
    fn rows(&self) -> usize;

    /// Number of columns (`M`).
    fn cols(&self) -> usize;

    /// Reconstruct the value of cell `(i, j)`.
    fn cell(&self, i: usize, j: usize) -> Result<f64>;

    /// Reconstruct row `i` into `out` (length `M`). The default calls
    /// [`CompressedMatrix::cell`] per column; implementations override
    /// this with something that amortizes per-row work.
    fn row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
        if i >= self.rows() {
            return Err(ats_common::AtsError::oob("row", i, self.rows()));
        }
        if out.len() != self.cols() {
            return Err(ats_common::AtsError::dims(
                "row_into",
                (1, out.len()),
                (1, self.cols()),
            ));
        }
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.cell(i, j)?;
        }
        Ok(())
    }

    /// Reconstruct the selected cells of row `i`: `out[t] = x̂[i][cols[t]]`.
    ///
    /// The batch entry point for "many cells of one row": implementations
    /// that page `U` from disk override this to fetch the row's `U` vector
    /// once and reuse it for every requested column (the batched-query I/O
    /// bound: one `U`-row fetch per *distinct* row, not per cell). Column
    /// indices may repeat and arrive in any order; results land in request
    /// order. The default calls [`CompressedMatrix::cell`] per entry and is
    /// bitwise identical to the per-cell loop — overrides must preserve
    /// that (canonical ascending-component accumulation per cell).
    fn cells_in_row(&self, i: usize, cols: &[usize], out: &mut [f64]) -> Result<()> {
        if i >= self.rows() {
            return Err(ats_common::AtsError::oob("row", i, self.rows()));
        }
        if out.len() != cols.len() {
            return Err(ats_common::AtsError::dims(
                "cells_in_row",
                (1, out.len()),
                (1, cols.len()),
            ));
        }
        for (&j, o) in cols.iter().zip(out.iter_mut()) {
            *o = self.cell(i, j)?;
        }
        Ok(())
    }

    /// Reconstruct several full rows back to back: row `rows[r]` lands in
    /// `out[r·M .. (r+1)·M]`.
    ///
    /// The batch entry point for blocked aggregate evaluation: overrides
    /// route through a multi-row kernel (several reconstruction
    /// accumulators sharing one sweep over `V`) and validate *all* row
    /// indices before touching `out`, so a bad index never leaves partial
    /// work. Rows may repeat and arrive in any order. The default calls
    /// [`CompressedMatrix::row_into`] per row; overrides must stay bitwise
    /// identical to it.
    fn rows_into(&self, rows: &[usize], out: &mut [f64]) -> Result<()> {
        let m = self.cols();
        if out.len() != rows.len() * m {
            return Err(ats_common::AtsError::dims(
                "rows_into",
                (rows.len(), m),
                (out.len() / m.max(1), m),
            ));
        }
        let n = self.rows();
        for &i in rows {
            if i >= n {
                return Err(ats_common::AtsError::oob("row", i, n));
            }
        }
        if m == 0 {
            return Ok(());
        }
        for (&i, orow) in rows.iter().zip(out.chunks_mut(m)) {
            self.row_into(i, orow)?;
        }
        Ok(())
    }

    /// Bytes consumed by the compressed representation, at
    /// [`BYTES_PER_NUMBER`] bytes per stored number plus any auxiliary
    /// structures (delta tables, assignment arrays, Bloom filters).
    fn storage_bytes(&self) -> usize;

    /// Short method name for experiment output (`"svd"`, `"svdd"`, …).
    fn method_name(&self) -> &'static str;

    /// Space ratio `s` = compressed bytes / uncompressed bytes (Eq. 9).
    fn space_ratio(&self) -> f64 {
        let total = self.rows() * self.cols() * BYTES_PER_NUMBER;
        if total == 0 {
            0.0
        } else {
            self.storage_bytes() as f64 / total as f64
        }
    }

    /// Start rows of this matrix's row-range shards, ascending (the
    /// first is always 0). Monolithic implementations — the default —
    /// return an empty vec, which query engines treat as "one shard";
    /// sharded stores return one entry per shard so aggregates can be
    /// partitioned by owning shard and merged in shard order.
    fn shard_starts(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Start columns of this matrix's time blocks, ascending (the first
    /// is always 0). Single-decomposition implementations — the default
    /// — return an empty vec, which query engines treat as "one block";
    /// time-blocked stores return one entry per column block so range
    /// queries can prune non-overlapping blocks and merge per-block
    /// partials in block order.
    fn time_block_starts(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Borrow time block `b` as a compressed matrix over its own column
    /// slice (all rows, columns rebased to 0). `None` for
    /// single-decomposition implementations and out-of-range indices.
    fn time_block(&self, b: usize) -> Option<&dyn CompressedMatrix> {
        let _ = b;
        None
    }

    /// Borrow the zone-map synopsis of row-range shard `shard` (indices
    /// follow [`CompressedMatrix::shard_starts`]; a monolithic store is
    /// shard 0). The tiles bound the *served* values — reconstruction
    /// plus deltas — so a query engine may prune any tile whose bounds
    /// prove a predicate false without touching `U`. `None` — the
    /// default — means "no synopsis here": legacy stores, out-of-range
    /// indices, and implementations that never emit synopses all fall
    /// back to the exact scan.
    fn shard_synopsis(&self, shard: usize) -> Option<&ats_storage::ShardSynopsis> {
        let _ = shard;
        None
    }
}

/// Per-block space budget for a time-blocked build: the same global
/// fraction, floored so that a narrow column block can always afford at
/// least a rank-1 decomposition (Eq. 9 with `k = 1` over `n × m_b`).
/// Without the floor, splitting a viable global budget across B blocks
/// can leave a thin block with `max_svd_k = 0` and fail the build.
pub fn block_budget(global: SpaceBudget, n: usize, m_b: usize) -> SpaceBudget {
    if n == 0 || m_b == 0 {
        return global;
    }
    let rank1 = (n + m_b + 1) as f64 / (n * m_b) as f64;
    SpaceBudget {
        fraction: global.fraction.max(rank1 * (1.0 + 1e-9)),
    }
}

/// A space budget expressed the way the paper sweeps it: a fraction of
/// the uncompressed dataset size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceBudget {
    /// Target compressed size as a fraction of the original (e.g. `0.10`
    /// for the paper's "10% storage").
    pub fraction: f64,
}

impl SpaceBudget {
    /// Budget from a percentage (`10.0` → fraction `0.10`).
    pub fn from_percent(pct: f64) -> Self {
        SpaceBudget {
            fraction: pct / 100.0,
        }
    }

    /// Total byte allowance for an `n × m` dataset.
    pub fn bytes(&self, n: usize, m: usize) -> usize {
        (self.fraction * (n * m * BYTES_PER_NUMBER) as f64).floor() as usize
    }

    /// Largest `k` such that a rank-`k` SVD fits: Eq. 9 —
    /// `(N·k + k + k·M) · b ≤ fraction · N·M·b`, i.e.
    /// `k ≤ fraction·N·M / (N + M + 1)`.
    pub fn max_svd_k(&self, n: usize, m: usize) -> usize {
        if n == 0 || m == 0 {
            return 0;
        }
        let k = (self.fraction * (n * m) as f64 / (n + m + 1) as f64).floor() as usize;
        k.min(m)
    }

    /// Largest per-row coefficient count for DCT: `N·k·b ≤ fraction·N·M·b`.
    pub fn max_dct_k(&self, m: usize) -> usize {
        ((self.fraction * m as f64).floor() as usize).min(m)
    }

    /// Largest cluster count `k` for VQ storage
    /// `(k·M + N)·b ≤ fraction·N·M·b`.
    pub fn max_clusters(&self, n: usize, m: usize) -> usize {
        if m == 0 {
            return 0;
        }
        let numer = self.fraction * (n * m) as f64 - n as f64;
        if numer <= 0.0 {
            0
        } else {
            ((numer / m as f64).floor() as usize).min(n)
        }
    }

    /// Number of outlier deltas affordable after spending
    /// `svd_bytes` on the principal components, with each delta costing
    /// `delta_bytes` (`γ_k` in §4.2).
    pub fn deltas_affordable(
        &self,
        n: usize,
        m: usize,
        svd_bytes: usize,
        delta_bytes: usize,
    ) -> usize {
        let total = self.bytes(n, m);
        total.saturating_sub(svd_bytes) / delta_bytes.max(1)
    }
}

/// Bytes of a rank-`k` SVD of an `n × m` matrix (Eq. 9 numerator).
pub fn svd_bytes(n: usize, m: usize, k: usize) -> usize {
    (n * k + k + k * m) * BYTES_PER_NUMBER
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_conversion() {
        let b = SpaceBudget::from_percent(10.0);
        assert!((b.fraction - 0.1).abs() < 1e-12);
    }

    #[test]
    fn bytes_budget() {
        let b = SpaceBudget::from_percent(10.0);
        // 1000 x 100 doubles = 800_000 bytes; 10% = 80_000
        assert_eq!(b.bytes(1000, 100), 80_000);
    }

    #[test]
    fn max_svd_k_respects_eq9() {
        let b = SpaceBudget::from_percent(10.0);
        let (n, m) = (2000usize, 366usize);
        let k = b.max_svd_k(n, m);
        assert!(svd_bytes(n, m, k) <= b.bytes(n, m));
        assert!(svd_bytes(n, m, k + 1) > b.bytes(n, m));
        // s ≈ k/M (paper's approximation): k ≈ 0.1*366 ≈ 36 for N >> M
        assert!((30..=37).contains(&k), "k = {k}");
    }

    #[test]
    fn max_svd_k_clamped_to_m() {
        let b = SpaceBudget { fraction: 10.0 }; // absurd budget
        assert_eq!(b.max_svd_k(100, 20), 20);
        assert_eq!(b.max_svd_k(0, 20), 0);
    }

    #[test]
    fn max_dct_k() {
        let b = SpaceBudget::from_percent(25.0);
        assert_eq!(b.max_dct_k(128), 32);
        assert_eq!(SpaceBudget { fraction: 2.0 }.max_dct_k(10), 10);
    }

    #[test]
    fn max_clusters_accounting() {
        let b = SpaceBudget::from_percent(10.0);
        let (n, m) = (2000usize, 100usize);
        let k = b.max_clusters(n, m);
        // (k*M + N)*8 ≤ 0.1*N*M*8
        assert!((k * m + n) * BYTES_PER_NUMBER <= b.bytes(n, m));
        assert!(((k + 1) * m + n) * BYTES_PER_NUMBER > b.bytes(n, m));
    }

    #[test]
    fn max_clusters_zero_when_assignment_alone_blows_budget() {
        // With fraction so small that even the N-entry assignment array
        // does not fit, no clusters are affordable.
        let b = SpaceBudget { fraction: 0.001 };
        assert_eq!(b.max_clusters(1000, 10), 0);
    }

    #[test]
    fn block_budget_floors_at_rank_one() {
        let g = SpaceBudget::from_percent(15.0);
        // Wide block: global fraction already affords k ≥ 1, unchanged.
        assert_eq!(block_budget(g, 100, 50), g);
        assert!(block_budget(g, 100, 50).max_svd_k(100, 50) >= 1);
        // Narrow block (100×4 at 15%): global fraction gives k = 0;
        // the floor raises it to exactly rank 1.
        assert_eq!(g.max_svd_k(100, 4), 0);
        let b = block_budget(g, 100, 4);
        assert_eq!(b.max_svd_k(100, 4), 1);
    }

    #[test]
    fn deltas_affordable_subtracts_svd_cost() {
        let b = SpaceBudget::from_percent(10.0);
        let (n, m) = (1000usize, 100usize);
        let sb = svd_bytes(n, m, 5);
        let g = b.deltas_affordable(n, m, sb, 16);
        assert_eq!(g, (b.bytes(n, m) - sb) / 16);
        // SVD over budget => zero deltas, no underflow panic.
        assert_eq!(b.deltas_affordable(n, m, usize::MAX / 2, 16), 0);
    }
}
