//! Batched appends via a persistent Gram cache (extension).
//!
//! The paper assumes "there are no updates on the data matrix, or they
//! are so rare that they can be batched and performed off-line" (§1).
//! The naive off-line rebuild re-runs both passes over *all* rows. But
//! the pass-1 state is just the Gram matrix `C = XᵀX`, and `C` is a sum
//! over rows — so keeping `C` around makes an append cheap:
//!
//! 1. ingest only the **new** rows into the cached `C` (`C += Xₙₑᵥᵥᵀ Xₙₑᵥᵥ`);
//! 2. eigendecompose the updated `C` (in-memory, `O(M³)`);
//! 3. one pass over all rows emits the new `U`.
//!
//! Net effect: a rebuild costs **one** pass over the full data instead
//! of two, and the expensive similarity accumulation is incremental.
//! [`GramCache`] also serializes to the `.atsm` matrix format so the
//! cache survives restarts.

use crate::gram::compute_gram_parallel;
use crate::method::SpaceBudget;
use crate::svd::{project_row, reconstruct_row, SvdCompressed};
use ats_common::{AtsError, Result};
use ats_linalg::{sym_eigen, vecops, Matrix};
use ats_storage::RowSource;
use std::path::Path;

/// An incrementally-maintained Gram matrix `C = XᵀX` with a row count.
#[derive(Debug, Clone)]
pub struct GramCache {
    c: Matrix,
    rows_seen: usize,
}

impl GramCache {
    /// Empty cache for `M`-column data.
    pub fn new(cols: usize) -> Self {
        GramCache {
            c: Matrix::zeros(cols, cols),
            rows_seen: 0,
        }
    }

    /// Build a cache from an initial source (one pass).
    pub fn from_source<S: RowSource + ?Sized>(source: &S, threads: usize) -> Result<Self> {
        let c = compute_gram_parallel(source, threads.max(1))?;
        Ok(GramCache {
            c,
            rows_seen: source.rows(),
        })
    }

    /// Number of columns (`M`).
    pub fn cols(&self) -> usize {
        self.c.rows()
    }

    /// Rows ingested so far.
    pub fn rows_seen(&self) -> usize {
        self.rows_seen
    }

    /// Ingest a batch of appended rows (one pass over the batch only).
    pub fn ingest<S: RowSource + ?Sized>(&mut self, batch: &S, threads: usize) -> Result<()> {
        if batch.cols() != self.cols() {
            return Err(AtsError::dims(
                "GramCache::ingest",
                (batch.rows(), batch.cols()),
                (batch.rows(), self.cols()),
            ));
        }
        let add = compute_gram_parallel(batch, threads.max(1))?;
        for (acc, v) in self.c.as_mut_slice().iter_mut().zip(add.as_slice()) {
            *acc += v;
        }
        self.rows_seen += batch.rows();
        Ok(())
    }

    /// Ingest a single appended row.
    pub fn ingest_row(&mut self, row: &[f64]) -> Result<()> {
        if row.len() != self.cols() {
            return Err(AtsError::dims(
                "GramCache::ingest_row",
                (1, row.len()),
                (1, self.cols()),
            ));
        }
        let m = self.cols();
        for j in 0..m {
            let xj = row[j];
            if xj == 0.0 {
                continue;
            }
            // Same widened update as pass 1's `accumulate_row`, so batch
            // and row ingestion stay arithmetically identical.
            vecops::axpy(xj, row, self.c.row_mut(j));
        }
        self.rows_seen += 1;
        Ok(())
    }

    /// Finish: compress `full` (which must contain exactly the ingested
    /// rows) to `k` components using the cached `C` — **one** pass.
    pub fn compress<S: RowSource + ?Sized>(&self, full: &S, k: usize) -> Result<SvdCompressed> {
        if full.rows() != self.rows_seen || full.cols() != self.cols() {
            return Err(AtsError::InvalidArgument(format!(
                "cache covers {} rows x {} cols but source is {} x {}",
                self.rows_seen,
                self.cols(),
                full.rows(),
                full.cols()
            )));
        }
        if k == 0 {
            return Err(AtsError::Budget("k = 0 stores nothing".into()));
        }
        let m = self.cols();
        let eig = sym_eigen(&self.c)?;
        let lambda_all: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let lmax = lambda_all.first().copied().unwrap_or(0.0);
        let rank = lambda_all
            .iter()
            .take_while(|&&s| s > 1e-6 * lmax.max(1e-300))
            .count();
        let k = k.min(rank.max(1)).min(m);
        let lambda = lambda_all[..k].to_vec();
        let mut v = Matrix::zeros(m, k);
        for j in 0..k {
            for i in 0..m {
                v[(i, j)] = eig.vectors[(i, j)];
            }
        }
        let mut u = Matrix::zeros(full.rows(), k);
        full.for_each_row(&mut |i, row| {
            project_row(row, &v, &lambda, u.row_mut(i));
            Ok(())
        })?;
        Ok(SvdCompressed::from_parts(u, lambda, v))
    }

    /// Budgeted variant of [`GramCache::compress`].
    pub fn compress_budget<S: RowSource + ?Sized>(
        &self,
        full: &S,
        budget: SpaceBudget,
    ) -> Result<SvdCompressed> {
        let k = budget.max_svd_k(full.rows(), full.cols());
        if k == 0 {
            return Err(AtsError::Budget("budget holds no component".into()));
        }
        self.compress(full, k)
    }

    /// Persist the cache (`C` plus the row count encoded as an extra
    /// trailing row) as an `.atsm` file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let m = self.cols();
        let mut with_count = Matrix::zeros(m + 1, m);
        for i in 0..m {
            with_count.row_mut(i).copy_from_slice(self.c.row(i));
        }
        with_count[(m, 0)] = self.rows_seen as f64;
        ats_storage::file::write_matrix(path, &with_count)?;
        Ok(())
    }

    /// Load a cache saved by [`GramCache::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let with_count = ats_storage::file::read_matrix(path)?;
        let m = with_count.cols();
        if with_count.rows() != m + 1 {
            return Err(AtsError::Corrupt(format!(
                "gram cache file should be {}x{m}, found {}x{m}",
                m + 1,
                with_count.rows()
            )));
        }
        let rows_seen = with_count[(m, 0)] as usize;
        let mut c = Matrix::zeros(m, m);
        for i in 0..m {
            c.row_mut(i).copy_from_slice(with_count.row(i));
        }
        Ok(GramCache { c, rows_seen })
    }
}

/// Project a batch of appended rows onto **frozen** global factors
/// `(V, Λ)` without touching pass 1: returns the batch's rows of
/// `U = X V Λ⁻¹` (Eq. 11) plus the sum of squared reconstruction errors
/// the frozen factors incur on the batch.
///
/// This is the cheap half of the §1 batched-update story: a sharded
/// store lands new rows in a fresh shard under the *current* `V/Λ`
/// (no deltas, no re-optimization) and records the returned SSE in the
/// shard's manifest entry, so the error of deferring the rebuild is
/// tracked rather than silent. A later full rebuild — fed by the
/// [`GramCache`] the caller keeps ingesting the same batches into —
/// re-optimizes `V`, `k_opt`, and the delta budget globally.
pub fn project_frozen<S: RowSource + ?Sized>(
    batch: &S,
    v: &Matrix,
    lambda: &[f64],
) -> Result<(Matrix, f64)> {
    let (n, m) = (batch.rows(), batch.cols());
    if v.rows() != m || v.cols() != lambda.len() {
        return Err(AtsError::dims(
            "project_frozen",
            (v.rows(), v.cols()),
            (m, lambda.len()),
        ));
    }
    if n == 0 {
        return Err(AtsError::InvalidArgument("empty append batch".into()));
    }
    let mut u = Matrix::zeros(n, lambda.len());
    let mut sse = 0.0f64;
    let mut recon = vec![0.0; m];
    batch.for_each_row(&mut |i, row| {
        project_row(row, v, lambda, u.row_mut(i));
        reconstruct_row(u.row(i), lambda, v, &mut recon);
        for (&x, &r) in row.iter().zip(&recon) {
            let e = x - r;
            sse = vecops::fmadd(e, e, sse);
        }
        Ok(())
    })?;
    Ok((u, sse))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::CompressedMatrix;
    use rand::{Rng, SeedableRng};

    fn random(n: usize, m: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, m, |_, _| rng.gen_range(-3.0..3.0))
    }

    fn concat(a: &Matrix, b: &Matrix) -> Matrix {
        let mut rows: Vec<Vec<f64>> = a.iter_rows().map(|r| r.to_vec()).collect();
        rows.extend(b.iter_rows().map(|r| r.to_vec()));
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn incremental_equals_full_rebuild() {
        let old = random(60, 8, 1);
        let new = random(20, 8, 2);
        let full = concat(&old, &new);

        let mut cache = GramCache::from_source(&old, 1).unwrap();
        cache.ingest(&new, 1).unwrap();
        let inc = cache.compress(&full, 4).unwrap();
        let scratch = SvdCompressed::compress(&full, 4, 1).unwrap();
        for i in (0..80).step_by(7) {
            for j in 0..8 {
                assert!(
                    (inc.cell(i, j).unwrap() - scratch.cell(i, j).unwrap()).abs() < 1e-8,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn ingest_row_equals_batch() {
        let batch = random(10, 5, 3);
        let mut a = GramCache::new(5);
        a.ingest(&batch, 1).unwrap();
        let mut b = GramCache::new(5);
        for row in batch.iter_rows() {
            b.ingest_row(row).unwrap();
        }
        assert_eq!(a.rows_seen(), b.rows_seen());
        assert!(a.c.approx_eq(&b.c, 1e-9));
    }

    #[test]
    fn single_pass_for_rebuild() {
        let dir = ats_common::TestDir::new("ats-append");
        let full = random(100, 6, 4);
        let path = dir.file("full.atsm");
        ats_storage::file::write_matrix(&path, &full).unwrap();

        let cache = GramCache::from_source(&full, 1).unwrap();
        let f = ats_storage::MatrixFile::open(&path).unwrap();
        cache.compress(&f, 3).unwrap();
        assert_eq!(
            f.stats().logical_reads(),
            100,
            "rebuild with a cache should cost one pass, not two"
        );
    }

    #[test]
    fn dimension_and_coverage_checks() {
        let mut cache = GramCache::new(5);
        assert!(cache.ingest(&random(3, 4, 5), 1).is_err());
        assert!(cache.ingest_row(&[0.0; 4]).is_err());
        cache.ingest(&random(10, 5, 6), 1).unwrap();
        // source with mismatched row count rejected
        assert!(cache.compress(&random(9, 5, 7), 2).is_err());
        assert!(cache.compress(&random(10, 5, 7), 0).is_err());
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = ats_common::TestDir::new("ats-gramsave");
        let data = random(30, 7, 8);
        let cache = GramCache::from_source(&data, 1).unwrap();
        let path = dir.file("cache.atsm");
        cache.save(&path).unwrap();
        let back = GramCache::load(&path).unwrap();
        assert_eq!(back.rows_seen(), 30);
        assert_eq!(back.cols(), 7);
        assert!(back.c.approx_eq(&cache.c, 0.0));
        // and it still compresses identically
        let a = cache.compress(&data, 3).unwrap();
        let b = back.compress(&data, 3).unwrap();
        assert!((a.cell(5, 5).unwrap() - b.cell(5, 5).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn project_frozen_matches_svd_projection() {
        let old = random(60, 8, 10);
        let svd = SvdCompressed::compress(&old, 4, 1).unwrap();
        // Re-projecting the training rows themselves must reproduce
        // their U rows exactly (same Eq. 11 arithmetic)...
        let (u, sse) = project_frozen(&old, svd.v(), svd.lambda()).unwrap();
        assert_eq!(u.as_slice(), svd.u().as_slice());
        // ...and the SSE must equal the SVD's own residual.
        let mut want = 0.0;
        let mut recon = vec![0.0; 8];
        for i in 0..60 {
            svd.row_into(i, &mut recon).unwrap();
            for (a, b) in recon.iter().zip(old.row(i)) {
                want += (a - b) * (a - b);
            }
        }
        assert!(
            (sse - want).abs() <= 1e-9 * want.max(1.0),
            "{sse} vs {want}"
        );

        // New rows project with finite, recorded error.
        let fresh = random(10, 8, 11);
        let (u2, sse2) = project_frozen(&fresh, svd.v(), svd.lambda()).unwrap();
        assert_eq!(u2.rows(), 10);
        assert!(sse2.is_finite() && sse2 > 0.0);
    }

    #[test]
    fn project_frozen_rejects_bad_shapes() {
        let old = random(20, 6, 12);
        let svd = SvdCompressed::compress(&old, 3, 1).unwrap();
        assert!(project_frozen(&random(5, 7, 13), svd.v(), svd.lambda()).is_err());
        assert!(project_frozen(&Matrix::zeros(0, 6), svd.v(), svd.lambda()).is_err());
    }

    #[test]
    fn budgeted_compress() {
        let data = random(200, 10, 9);
        let cache = GramCache::from_source(&data, 1).unwrap();
        let budget = SpaceBudget::from_percent(20.0);
        let c = cache.compress_budget(&data, budget).unwrap();
        assert!(c.storage_bytes() <= budget.bytes(200, 10));
        assert!(cache
            .compress_budget(&data, SpaceBudget { fraction: 1e-9 })
            .is_err());
    }
}
