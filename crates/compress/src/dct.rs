//! Row-wise Discrete Cosine Transform compression (§2.3).
//!
//! The paper uses the DCT as the representative spectral baseline
//! "because it is very close to optimal when the data is correlated".
//! Each row is transformed independently with the orthonormal DCT-II and
//! only the `k` lowest-frequency coefficients are kept, so storage is
//! `N·k` numbers and any cell is reconstructed in `O(k)` from its row's
//! coefficients — the same random-access contract as SVD, but with a
//! *fixed* basis instead of the data-optimal one (which is exactly why
//! the paper expects it to lose, §2.3).
//!
//! The transform here is the direct `O(M²)` form; `M` is a few hundred
//! in this problem, and compression is offline.

use crate::method::{CompressedMatrix, SpaceBudget, BYTES_PER_NUMBER};
use ats_common::{AtsError, Result};
use ats_linalg::Matrix;
use ats_storage::RowSource;

/// Orthonormal DCT-II basis value: `basis(t, j)` is the `t`-th basis
/// function evaluated at sample `j`, for length `m`.
///
/// `X_t = basis_scale(t) · Σ_j x_j cos(π t (2j+1) / 2m)`, with scaling
/// chosen so the transform matrix is orthonormal (inverse = transpose).
#[inline]
fn basis(t: usize, j: usize, m: usize) -> f64 {
    let scale = if t == 0 {
        (1.0 / m as f64).sqrt()
    } else {
        (2.0 / m as f64).sqrt()
    };
    scale * ((std::f64::consts::PI * t as f64 * (2 * j + 1) as f64) / (2.0 * m as f64)).cos()
}

/// Forward DCT-II of one row, writing the first `k` coefficients.
pub fn dct_forward(row: &[f64], out: &mut [f64]) {
    let m = row.len();
    for (t, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (j, &x) in row.iter().enumerate() {
            acc += x * basis(t, j, m);
        }
        *o = acc;
    }
}

/// Inverse of the orthonormal DCT-II from `k ≤ M` coefficients, sampled
/// at position `j`.
#[inline]
pub fn dct_inverse_at(coeffs: &[f64], j: usize, m: usize) -> f64 {
    coeffs
        .iter()
        .enumerate()
        .map(|(t, &c)| c * basis(t, j, m))
        .sum()
}

/// A matrix compressed by keeping `k` low-frequency DCT coefficients per
/// row.
#[derive(Debug, Clone)]
pub struct DctCompressed {
    /// `N × k` coefficient matrix.
    coeffs: Matrix,
    /// Original row length `M`.
    m: usize,
}

impl DctCompressed {
    /// Single-pass compression keeping `k` coefficients per row.
    pub fn compress<S: RowSource + ?Sized>(source: &S, k: usize) -> Result<Self> {
        let (n, m) = (source.rows(), source.cols());
        if k == 0 || k > m {
            return Err(AtsError::InvalidArgument(format!(
                "DCT coefficient count k={k} must be in 1..={m}"
            )));
        }
        let mut coeffs = Matrix::zeros(n, k);
        source.for_each_row(&mut |i, row| {
            dct_forward(row, coeffs.row_mut(i));
            Ok(())
        })?;
        Ok(DctCompressed { coeffs, m })
    }

    /// Compression at a space budget: `k = ⌊fraction · M⌋` (storage is
    /// `N·k` numbers).
    pub fn compress_budget<S: RowSource + ?Sized>(source: &S, budget: SpaceBudget) -> Result<Self> {
        let k = budget.max_dct_k(source.cols());
        if k == 0 {
            return Err(AtsError::Budget(format!(
                "budget {:.3}% cannot hold even one DCT coefficient per row",
                budget.fraction * 100.0
            )));
        }
        Self::compress(source, k)
    }

    /// Number of retained coefficients per row.
    pub fn k(&self) -> usize {
        self.coeffs.cols()
    }
}

impl CompressedMatrix for DctCompressed {
    fn rows(&self) -> usize {
        self.coeffs.rows()
    }

    fn cols(&self) -> usize {
        self.m
    }

    fn cell(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows() {
            return Err(AtsError::oob("row", i, self.rows()));
        }
        if j >= self.m {
            return Err(AtsError::oob("column", j, self.m));
        }
        Ok(dct_inverse_at(self.coeffs.row(i), j, self.m))
    }

    fn row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
        if i >= self.rows() {
            return Err(AtsError::oob("row", i, self.rows()));
        }
        if out.len() != self.m {
            return Err(AtsError::dims(
                "DctCompressed::row_into",
                (1, out.len()),
                (1, self.m),
            ));
        }
        let c = self.coeffs.row(i);
        for (j, o) in out.iter_mut().enumerate() {
            *o = dct_inverse_at(c, j, self.m);
        }
        Ok(())
    }

    fn storage_bytes(&self) -> usize {
        self.rows() * self.k() * BYTES_PER_NUMBER
    }

    fn method_name(&self) -> &'static str {
        "dct"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn full_transform_is_lossless() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = Matrix::from_fn(10, 16, |_, _| rng.gen_range(-5.0..5.0));
        let c = DctCompressed::compress(&x, 16).unwrap();
        for i in 0..10 {
            for j in 0..16 {
                assert!(
                    (c.cell(i, j).unwrap() - x[(i, j)]).abs() < 1e-9,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn basis_is_orthonormal() {
        let m = 12;
        for t1 in 0..m {
            for t2 in 0..m {
                let dot: f64 = (0..m).map(|j| basis(t1, j, m) * basis(t2, j, m)).sum();
                let expect = if t1 == t2 { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-10, "t1={t1} t2={t2} dot={dot}");
            }
        }
    }

    #[test]
    fn constant_signal_needs_one_coefficient() {
        let x = Matrix::from_fn(3, 20, |i, _| (i + 1) as f64);
        let c = DctCompressed::compress(&x, 1).unwrap();
        for i in 0..3 {
            for j in 0..20 {
                assert!((c.cell(i, j).unwrap() - (i + 1) as f64).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn smooth_signal_compresses_well() {
        // A slow sinusoid: energy concentrated in low frequencies.
        let m = 64;
        let x = Matrix::from_fn(5, m, |i, j| {
            ((i + 1) as f64) * (2.0 * std::f64::consts::PI * j as f64 / m as f64).sin()
        });
        let c = DctCompressed::compress(&x, 8).unwrap();
        let mut sse = 0.0;
        let mut energy = 0.0;
        let mut row = vec![0.0; m];
        for i in 0..5 {
            c.row_into(i, &mut row).unwrap();
            for (a, b) in row.iter().zip(x.row(i)) {
                sse += (a - b) * (a - b);
                energy += b * b;
            }
        }
        assert!(sse / energy < 1e-2, "relative error {}", sse / energy);
    }

    #[test]
    fn error_decreases_with_k() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        // random walk rows: the DCT-friendly case (stocks)
        let x = Matrix::from_fn(8, 32, |_, _| rng.gen_range(-1.0..1.0));
        let mut walk = x.clone();
        for i in 0..8 {
            let r = walk.row_mut(i);
            for j in 1..32 {
                r[j] += r[j - 1];
            }
        }
        let mut prev = f64::INFINITY;
        for k in [1, 2, 4, 8, 16, 32] {
            let c = DctCompressed::compress(&walk, k).unwrap();
            let mut sse = 0.0;
            let mut row = vec![0.0; 32];
            for i in 0..8 {
                c.row_into(i, &mut row).unwrap();
                for (a, b) in row.iter().zip(walk.row(i)) {
                    sse += (a - b) * (a - b);
                }
            }
            assert!(sse <= prev + 1e-9);
            prev = sse;
        }
    }

    #[test]
    fn budget_accounting() {
        let x = Matrix::from_fn(100, 40, |i, j| (i + j) as f64);
        let b = SpaceBudget::from_percent(25.0);
        let c = DctCompressed::compress_budget(&x, b).unwrap();
        assert_eq!(c.k(), 10);
        assert!(c.storage_bytes() <= b.bytes(100, 40));
        assert_eq!(c.method_name(), "dct");
        assert!(DctCompressed::compress_budget(&x, SpaceBudget { fraction: 0.001 }).is_err());
    }

    #[test]
    fn invalid_k_rejected() {
        let x = Matrix::from_fn(4, 8, |_, _| 1.0);
        assert!(DctCompressed::compress(&x, 0).is_err());
        assert!(DctCompressed::compress(&x, 9).is_err());
    }

    #[test]
    fn oob_checked() {
        let x = Matrix::from_fn(4, 8, |i, j| (i * j) as f64);
        let c = DctCompressed::compress(&x, 4).unwrap();
        assert!(c.cell(4, 0).is_err());
        assert!(c.cell(0, 8).is_err());
        let mut wrong = vec![0.0; 7];
        assert!(c.row_into(0, &mut wrong).is_err());
    }
}
