//! Zero-customer flagging (§6.2's "practical issue").
//!
//! "We observed that there were several customers that did not make any
//! purchases at all. An 'engineering' solution in this case is to flag
//! all these customers, and build a Bloom filter, to help detect them
//! quickly." [`ZeroRowIndex`] is that structure: one streaming pass
//! records which rows are entirely zero; queries answer through a Bloom
//! filter first (definitive *no* for the overwhelming majority of
//! non-zero customers) and fall back to a sorted-ID exact check on a
//! filter hit. Wrapping any [`CompressedMatrix`] with
//! [`ZeroAwareMatrix`] then short-circuits reconstruction for zero rows
//! — both faster (no U fetch) and *exact* for those rows.

use crate::method::CompressedMatrix;
use ats_common::{BloomFilter, Result};
use ats_storage::RowSource;

/// An index of the all-zero rows of a matrix.
#[derive(Debug, Clone)]
pub struct ZeroRowIndex {
    /// Sorted IDs of all-zero rows (exact).
    zero_rows: Vec<u32>,
    /// Fast negative filter in front of the binary search.
    bloom: BloomFilter,
}

impl ZeroRowIndex {
    /// Build in one streaming pass.
    pub fn build<S: RowSource + ?Sized>(source: &S) -> Result<Self> {
        let mut zero_rows: Vec<u32> = Vec::new();
        source.for_each_row(&mut |i, row| {
            if row.iter().all(|&v| v == 0.0) {
                zero_rows.push(i as u32);
            }
            Ok(())
        })?;
        let mut bloom = BloomFilter::with_capacity(zero_rows.len().max(1), 0.01);
        for &r in &zero_rows {
            bloom.insert(u64::from(r));
        }
        Ok(ZeroRowIndex { zero_rows, bloom })
    }

    /// Whether row `i` is entirely zero. Exact (the Bloom filter only
    /// accelerates the common negative case).
    #[inline]
    pub fn is_zero_row(&self, i: usize) -> bool {
        let key = i as u64;
        if key > u64::from(u32::MAX) || !self.bloom.contains(key) {
            return false;
        }
        self.zero_rows.binary_search(&(i as u32)).is_ok()
    }

    /// Number of flagged rows.
    pub fn len(&self) -> usize {
        self.zero_rows.len()
    }

    /// Whether no rows are flagged.
    pub fn is_empty(&self) -> bool {
        self.zero_rows.is_empty()
    }

    /// Memory consumed (IDs + Bloom bits).
    pub fn storage_bytes(&self) -> usize {
        self.zero_rows.len() * 4 + self.bloom.storage_bytes()
    }
}

/// A [`CompressedMatrix`] wrapper that answers zero rows exactly without
/// touching the inner representation.
pub struct ZeroAwareMatrix<C> {
    inner: C,
    index: ZeroRowIndex,
}

impl<C: CompressedMatrix> ZeroAwareMatrix<C> {
    /// Wrap `inner`, using a prebuilt index.
    pub fn new(inner: C, index: ZeroRowIndex) -> Self {
        ZeroAwareMatrix { inner, index }
    }

    /// The zero-row index.
    pub fn index(&self) -> &ZeroRowIndex {
        &self.index
    }

    /// The wrapped representation.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: CompressedMatrix> CompressedMatrix for ZeroAwareMatrix<C> {
    fn rows(&self) -> usize {
        self.inner.rows()
    }
    fn cols(&self) -> usize {
        self.inner.cols()
    }
    fn cell(&self, i: usize, j: usize) -> Result<f64> {
        if i < self.rows() && j < self.cols() && self.index.is_zero_row(i) {
            return Ok(0.0);
        }
        self.inner.cell(i, j)
    }
    fn row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
        if i < self.rows() && out.len() == self.cols() && self.index.is_zero_row(i) {
            out.fill(0.0);
            return Ok(());
        }
        self.inner.row_into(i, out)
    }
    fn storage_bytes(&self) -> usize {
        self.inner.storage_bytes() + self.index.storage_bytes()
    }
    fn method_name(&self) -> &'static str {
        self.inner.method_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::SvdCompressed;
    use ats_linalg::Matrix;

    fn with_zero_rows() -> Matrix {
        Matrix::from_fn(50, 10, |i, j| {
            if i % 7 == 0 {
                0.0 // every 7th customer made no calls
            } else {
                ((i % 5) + 1) as f64 * (j + 1) as f64
            }
        })
    }

    #[test]
    fn index_finds_exactly_the_zero_rows() {
        let x = with_zero_rows();
        let idx = ZeroRowIndex::build(&x).unwrap();
        assert_eq!(idx.len(), 8); // rows 0, 7, 14, ..., 49
        for i in 0..50 {
            assert_eq!(idx.is_zero_row(i), i % 7 == 0, "row {i}");
        }
        assert!(!idx.is_zero_row(1_000_000));
    }

    #[test]
    fn empty_index_when_no_zero_rows() {
        let x = Matrix::from_fn(10, 3, |i, j| (i + j + 1) as f64);
        let idx = ZeroRowIndex::build(&x).unwrap();
        assert!(idx.is_empty());
        assert!((0..10).all(|i| !idx.is_zero_row(i)));
    }

    #[test]
    fn wrapper_makes_zero_rows_exact() {
        let x = with_zero_rows();
        // k=1 SVD reconstructs zero rows imperfectly in general; the
        // wrapper must fix them to exactly 0.
        let svd = SvdCompressed::compress(&x, 1, 1).unwrap();
        let idx = ZeroRowIndex::build(&x).unwrap();
        let wrapped = ZeroAwareMatrix::new(svd, idx);
        for j in 0..10 {
            assert_eq!(wrapped.cell(7, j).unwrap(), 0.0);
            assert_eq!(wrapped.cell(14, j).unwrap(), 0.0);
        }
        let mut row = vec![1.0; 10];
        wrapped.row_into(21, &mut row).unwrap();
        assert!(row.iter().all(|&v| v == 0.0));
        // non-zero rows still answered by the inner matrix
        assert!(wrapped.cell(1, 5).unwrap() != 0.0);
        assert_eq!(wrapped.method_name(), "svd");
        assert!(wrapped.storage_bytes() > wrapped.inner().storage_bytes());
    }

    #[test]
    fn wrapper_propagates_oob() {
        let x = with_zero_rows();
        let svd = SvdCompressed::compress(&x, 1, 1).unwrap();
        let idx = ZeroRowIndex::build(&x).unwrap();
        let wrapped = ZeroAwareMatrix::new(svd, idx);
        assert!(wrapped.cell(50, 0).is_err());
        assert!(wrapped.cell(0, 10).is_err());
    }

    #[test]
    fn all_zero_matrix() {
        let x = Matrix::zeros(20, 4);
        let idx = ZeroRowIndex::build(&x).unwrap();
        assert_eq!(idx.len(), 20);
        assert!(idx.storage_bytes() > 0);
    }
}
