//! f32-quantized SVD storage (extension).
//!
//! The paper charges `b` bytes per stored number (§5.1) and stores
//! doubles. Since `U` and `V` hold *unit-vector coordinates* (all in
//! `[−1, 1]`), they carry far less dynamic range than raw data, and an
//! `f32` representation (b = 4) halves their footprint — which at a
//! fixed byte budget buys roughly **twice the principal components**.
//! This module implements that trade and lets the ablation experiment
//! measure whether the quantization noise or the extra components win
//! (spoiler, as for most datasets: the components win).
//!
//! `Λ` stays f64 (it is `k` numbers; its magnitude spans the data's full
//! range and quantizing it would scale whole components).

use crate::gram::compute_gram_parallel;
use crate::method::{CompressedMatrix, SpaceBudget};
use crate::svd::project_row;
use ats_common::{AtsError, Result};
use ats_linalg::sym_eigen;
use ats_storage::RowSource;

/// Bytes per quantized number.
const QUANT_BYTES: usize = 4;
/// Bytes per `Λ` entry (kept at full precision).
const LAMBDA_BYTES: usize = 8;

/// A truncated SVD whose `U` and `V` factors are stored as `f32`.
#[derive(Debug, Clone)]
pub struct QuantizedSvd {
    /// `N × k`, row-major, f32.
    u: Vec<f32>,
    /// `M × k`, row-major, f32.
    v: Vec<f32>,
    lambda: Vec<f64>,
    n: usize,
    m: usize,
}

impl QuantizedSvd {
    /// Two-pass build, like [`crate::svd::SvdCompressed::compress`], but
    /// quantizing the factors to f32 as they are produced.
    pub fn compress<S: RowSource + ?Sized>(source: &S, k: usize, threads: usize) -> Result<Self> {
        let (n, m) = (source.rows(), source.cols());
        if k == 0 || k > m {
            return Err(AtsError::InvalidArgument(format!(
                "component count k={k} must be in 1..={m}"
            )));
        }
        let c = compute_gram_parallel(source, threads.max(1))?;
        let eig = sym_eigen(&c)?;
        let lambda_all: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        // Clamp k to the numerical rank: noise singular values
        // (σ ≈ sqrt(eps)·σ₁ from the Gram route) would produce huge
        // U coordinates that can overflow f32.
        let lmax = lambda_all.first().copied().unwrap_or(0.0);
        let rank = lambda_all
            .iter()
            .take_while(|&&s| s > 1e-6 * lmax.max(1e-300))
            .count();
        let k = k.min(rank.max(1)).min(m);
        let lambda: Vec<f64> = lambda_all[..k].to_vec();
        let mut v64 = ats_linalg::Matrix::zeros(m, k);
        for j in 0..k {
            for i in 0..m {
                v64[(i, j)] = eig.vectors[(i, j)];
            }
        }
        let v: Vec<f32> = v64.as_slice().iter().map(|&x| x as f32).collect();

        let mut u = vec![0.0f32; n * k];
        let mut u_row = vec![0.0f64; k];
        source.for_each_row(&mut |i, row| {
            project_row(row, &v64, &lambda, &mut u_row);
            for (dst, &src) in u[i * k..(i + 1) * k].iter_mut().zip(&u_row) {
                *dst = src as f32;
            }
            Ok(())
        })?;
        Ok(QuantizedSvd { u, v, lambda, n, m })
    }

    /// Build at a space budget: with 4-byte factors,
    /// `(N·k + k·M)·4 + k·8 ≤ budget`, i.e. roughly twice the `k` of the
    /// f64 form.
    pub fn compress_budget<S: RowSource + ?Sized>(
        source: &S,
        budget: SpaceBudget,
        threads: usize,
    ) -> Result<Self> {
        let (n, m) = (source.rows(), source.cols());
        let k = Self::max_k(budget, n, m);
        if k == 0 {
            return Err(AtsError::Budget(format!(
                "budget {:.3}% cannot hold even one quantized component",
                budget.fraction * 100.0
            )));
        }
        Self::compress(source, k, threads)
    }

    /// Largest `k` fitting the budget under quantized accounting.
    pub fn max_k(budget: SpaceBudget, n: usize, m: usize) -> usize {
        if n == 0 || m == 0 {
            return 0;
        }
        let per_k = ((n + m) * QUANT_BYTES + LAMBDA_BYTES) as f64;
        ((budget.bytes(n, m) as f64 / per_k).floor() as usize).min(m)
    }

    /// Retained component count.
    pub fn k(&self) -> usize {
        self.lambda.len()
    }
}

impl CompressedMatrix for QuantizedSvd {
    fn rows(&self) -> usize {
        self.n
    }

    fn cols(&self) -> usize {
        self.m
    }

    fn cell(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.n {
            return Err(AtsError::oob("row", i, self.n));
        }
        if j >= self.m {
            return Err(AtsError::oob("column", j, self.m));
        }
        let k = self.k();
        let ui = &self.u[i * k..(i + 1) * k];
        let vj = &self.v[j * k..(j + 1) * k];
        Ok(ui
            .iter()
            .zip(vj)
            .zip(&self.lambda)
            .map(|((&u, &v), &l)| l * f64::from(u) * f64::from(v))
            .sum())
    }

    fn row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
        if i >= self.n {
            return Err(AtsError::oob("row", i, self.n));
        }
        if out.len() != self.m {
            return Err(AtsError::dims(
                "QuantizedSvd::row_into",
                (1, out.len()),
                (1, self.m),
            ));
        }
        let k = self.k();
        let ui = &self.u[i * k..(i + 1) * k];
        let coef: Vec<f64> = ui
            .iter()
            .zip(&self.lambda)
            .map(|(&u, &l)| l * f64::from(u))
            .collect();
        for (j, o) in out.iter_mut().enumerate() {
            let vj = &self.v[j * k..(j + 1) * k];
            *o = coef.iter().zip(vj).map(|(&c, &v)| c * f64::from(v)).sum();
        }
        Ok(())
    }

    fn storage_bytes(&self) -> usize {
        (self.n * self.k() + self.m * self.k()) * QUANT_BYTES + self.k() * LAMBDA_BYTES
    }

    fn method_name(&self) -> &'static str {
        "svd-f32"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::SvdCompressed;
    use ats_linalg::Matrix;
    use rand::{Rng, SeedableRng};

    fn data(n: usize, m: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(n, 3, |_, _| rng.gen_range(0.0..2.0));
        let b = Matrix::from_fn(3, m, |_, _| rng.gen_range(0.0..2.0));
        a.matmul(&b).unwrap()
    }

    #[test]
    fn quantization_noise_is_small() {
        let x = data(100, 16, 1);
        let q = QuantizedSvd::compress(&x, 3, 1).unwrap();
        let f = SvdCompressed::compress(&x, 3, 1).unwrap();
        for i in (0..100).step_by(9) {
            for j in 0..16 {
                let a = q.cell(i, j).unwrap();
                let b = f.cell(i, j).unwrap();
                assert!(
                    (a - b).abs() < 1e-4 * b.abs().max(1.0),
                    "({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn half_the_bytes_per_component() {
        let x = data(200, 20, 2);
        let q = QuantizedSvd::compress(&x, 3, 1).unwrap();
        let f = SvdCompressed::compress(&x, 3, 1).unwrap();
        // same k: quantized ≈ half the storage (Λ overhead aside)
        assert!(q.storage_bytes() < f.storage_bytes() * 6 / 10);
    }

    #[test]
    fn budget_buys_more_components() {
        let budget = SpaceBudget::from_percent(10.0);
        let (n, m) = (2000usize, 100usize);
        let k32 = QuantizedSvd::max_k(budget, n, m);
        let k64 = budget.max_svd_k(n, m);
        assert!(
            k32 >= 2 * k64 - 1,
            "quantization should ~double k: {k32} vs {k64}"
        );
    }

    #[test]
    fn quantized_beats_f64_at_equal_budget_on_rich_data() {
        // Data with > k64 meaningful components: more PCs beat precision.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Matrix::from_fn(400, 12, |_, _| rng.gen_range(-1.0..1.0));
        let b = Matrix::from_fn(12, 40, |_, _| rng.gen_range(-1.0..1.0));
        let x = a.matmul(&b).unwrap();
        let budget = SpaceBudget::from_percent(3.0);
        let q = QuantizedSvd::compress_budget(&x, budget, 1).unwrap();
        let f = SvdCompressed::compress_budget(&x, budget, 1).unwrap();
        assert!(q.k() > f.k());
        let sse = |c: &dyn CompressedMatrix| {
            let mut t = 0.0;
            let mut row = vec![0.0; 40];
            for i in 0..400 {
                c.row_into(i, &mut row).unwrap();
                for (p, q) in row.iter().zip(x.row(i)) {
                    t += (p - q) * (p - q);
                }
            }
            t
        };
        assert!(
            sse(&q) < sse(&f),
            "more quantized components should win: {} vs {}",
            sse(&q),
            sse(&f)
        );
        assert!(q.storage_bytes() <= budget.bytes(400, 40));
    }

    #[test]
    fn bounds_and_errors() {
        let x = data(20, 8, 4);
        let q = QuantizedSvd::compress(&x, 2, 1).unwrap();
        assert!(q.cell(20, 0).is_err());
        assert!(q.cell(0, 8).is_err());
        assert!(QuantizedSvd::compress(&x, 0, 1).is_err());
        assert!(QuantizedSvd::compress(&x, 9, 1).is_err());
        assert_eq!(q.method_name(), "svd-f32");
    }
}
