//! Uniform row sampling (§5.2's comparison point for aggregate queries).
//!
//! "Estimates of answers to aggregate queries can be obtained through
//! sampling. (Note that sampling is not likely to be able to provide
//! estimates of individual cell values…)". This module implements that
//! baseline honestly: a uniform-without-replacement sample of rows, kept
//! verbatim. Aggregates over a query's selected rows are estimated from
//! the sampled rows that fall inside the selection, scaled by the
//! sampling fraction; cell queries fall back to the sample's column mean
//! — deliberately poor, which is §5.2's point.

use crate::method::{CompressedMatrix, SpaceBudget, BYTES_PER_NUMBER};
use ats_common::{AtsError, Result};
use ats_linalg::Matrix;
use ats_storage::RowSource;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A uniform row sample of a matrix.
#[derive(Debug, Clone)]
pub struct SampleCompressed {
    /// The sampled rows, in ascending original-index order.
    sample: Matrix,
    /// Original index of each sampled row.
    indices: Vec<u32>,
    /// Fast membership: original row -> position in `sample`.
    lookup: HashMap<u32, u32>,
    /// Column means of the sample (the cell-query fallback).
    col_means: Vec<f64>,
    rows: usize,
}

impl SampleCompressed {
    /// Sample `sample_size` rows uniformly without replacement
    /// (single pass; reservoir sampling, then one scan to materialize).
    pub fn compress<S: RowSource + ?Sized>(
        source: &S,
        sample_size: usize,
        seed: u64,
    ) -> Result<Self> {
        let (n, m) = (source.rows(), source.cols());
        if sample_size == 0 || sample_size > n {
            return Err(AtsError::InvalidArgument(format!(
                "sample size {sample_size} must be in 1..={n}"
            )));
        }
        // Choose indices by reservoir over 0..n (cheap, no data access).
        let mut rng = StdRng::seed_from_u64(seed);
        let mut chosen: Vec<u32> = (0..sample_size as u32).collect();
        for i in sample_size..n {
            let j = rng.gen_range(0..=i);
            if j < sample_size {
                chosen[j] = i as u32;
            }
        }
        chosen.sort_unstable();
        let lookup: HashMap<u32, u32> = chosen
            .iter()
            .enumerate()
            .map(|(pos, &orig)| (orig, pos as u32))
            .collect();

        let mut sample = Matrix::zeros(sample_size, m);
        let mut next = 0usize;
        source.for_each_row(&mut |i, row| {
            if next < chosen.len() && chosen[next] as usize == i {
                sample.row_mut(next).copy_from_slice(row);
                next += 1;
            }
            Ok(())
        })?;
        debug_assert_eq!(next, sample_size);

        let col_means: Vec<f64> = (0..m)
            .map(|j| sample.col(j).iter().sum::<f64>() / sample_size as f64)
            .collect();

        Ok(SampleCompressed {
            sample,
            indices: chosen,
            lookup,
            col_means,
            rows: n,
        })
    }

    /// Sample sized to a space budget: each kept row costs `M + 1`
    /// numbers (the row plus its index), so
    /// `sample_size = ⌊fraction · N·M / (M+1)⌋`.
    pub fn compress_budget<S: RowSource + ?Sized>(
        source: &S,
        budget: SpaceBudget,
        seed: u64,
    ) -> Result<Self> {
        let (n, m) = (source.rows(), source.cols());
        let size = ((budget.fraction * (n * m) as f64 / (m + 1) as f64).floor() as usize)
            .min(source.rows());
        if size == 0 {
            return Err(AtsError::Budget(format!(
                "budget {:.3}% holds no complete row",
                budget.fraction * 100.0
            )));
        }
        Self::compress(source, size, seed)
    }

    /// Number of sampled rows.
    pub fn sample_size(&self) -> usize {
        self.indices.len()
    }

    /// Sampling fraction `|sample| / N`.
    pub fn fraction(&self) -> f64 {
        self.sample_size() as f64 / self.rows as f64
    }

    /// Estimate `Σ x[i][j]` over `rows × cols` via Horvitz–Thompson
    /// scaling: sum over sampled rows inside the selection, divided by
    /// the sampling fraction.
    pub fn estimate_sum(&self, rows: &[usize], cols: &[usize]) -> f64 {
        let mut s = 0.0;
        for &i in rows {
            if let Some(&pos) = self.lookup.get(&(i as u32)) {
                let row = self.sample.row(pos as usize);
                for &j in cols {
                    s += row[j];
                }
            }
        }
        s / self.fraction()
    }

    /// Estimate the average over the selection.
    pub fn estimate_avg(&self, rows: &[usize], cols: &[usize]) -> f64 {
        let cells = rows.len() * cols.len();
        if cells == 0 {
            return 0.0;
        }
        self.estimate_sum(rows, cols) / cells as f64
    }
}

impl CompressedMatrix for SampleCompressed {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.col_means.len()
    }

    /// Sampled rows are exact; everything else falls back to the sample's
    /// column mean — sampling cannot reconstruct individual cells (§5.2).
    fn cell(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows {
            return Err(AtsError::oob("row", i, self.rows));
        }
        if j >= self.cols() {
            return Err(AtsError::oob("column", j, self.cols()));
        }
        Ok(match self.lookup.get(&(i as u32)) {
            Some(&pos) => self.sample[(pos as usize, j)],
            None => self.col_means[j],
        })
    }

    /// Sample rows plus the index array.
    fn storage_bytes(&self) -> usize {
        (self.sample_size() * self.cols() + self.sample_size()) * BYTES_PER_NUMBER
    }

    fn method_name(&self) -> &'static str {
        "sampling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, m: usize) -> Matrix {
        Matrix::from_fn(n, m, |i, j| (i % 13) as f64 + (j % 5) as f64)
    }

    #[test]
    fn sampled_rows_exact() {
        let x = data(100, 6);
        let s = SampleCompressed::compress(&x, 20, 1).unwrap();
        assert_eq!(s.sample_size(), 20);
        for (pos, &orig) in s.indices.iter().enumerate() {
            for j in 0..6 {
                assert_eq!(
                    s.cell(orig as usize, j).unwrap(),
                    x[(orig as usize, j)],
                    "sampled row {orig} pos {pos}"
                );
            }
        }
    }

    #[test]
    fn unsampled_rows_fall_back_to_mean() {
        let x = data(50, 4);
        let s = SampleCompressed::compress(&x, 10, 2).unwrap();
        let unsampled = (0..50)
            .find(|i| !s.lookup.contains_key(&(*i as u32)))
            .unwrap();
        let got = s.cell(unsampled, 2).unwrap();
        assert_eq!(got, s.col_means[2]);
    }

    #[test]
    fn indices_unique_and_sorted() {
        let x = data(200, 3);
        let s = SampleCompressed::compress(&x, 50, 3).unwrap();
        for w in s.indices.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn estimate_sum_unbiased_on_full_selection() {
        // Selecting *all* rows and columns: the HT estimator's expectation
        // equals the true sum; with a deterministic seed check it is close.
        let x = data(500, 4);
        let s = SampleCompressed::compress(&x, 250, 4).unwrap();
        let rows: Vec<usize> = (0..500).collect();
        let cols: Vec<usize> = (0..4).collect();
        let truth: f64 = x.as_slice().iter().sum();
        let est = s.estimate_sum(&rows, &cols);
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.10, "relative error {rel}");
    }

    #[test]
    fn estimate_avg_consistent_with_sum() {
        let x = data(100, 5);
        let s = SampleCompressed::compress(&x, 40, 5).unwrap();
        let rows = [1usize, 3, 5, 7];
        let cols = [0usize, 2];
        let sum = s.estimate_sum(&rows, &cols);
        let avg = s.estimate_avg(&rows, &cols);
        assert!((avg - sum / 8.0).abs() < 1e-12);
        assert_eq!(s.estimate_avg(&[], &[]), 0.0);
    }

    #[test]
    fn full_sample_is_lossless() {
        let x = data(30, 4);
        let s = SampleCompressed::compress(&x, 30, 6).unwrap();
        for i in 0..30 {
            for j in 0..4 {
                assert_eq!(s.cell(i, j).unwrap(), x[(i, j)]);
            }
        }
        assert!((s.fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_sizes_rejected() {
        let x = data(10, 2);
        assert!(SampleCompressed::compress(&x, 0, 1).is_err());
        assert!(SampleCompressed::compress(&x, 11, 1).is_err());
    }

    #[test]
    fn budget_sizing() {
        let x = data(100, 10);
        let b = SpaceBudget::from_percent(10.0);
        let s = SampleCompressed::compress_budget(&x, b, 7).unwrap();
        // ⌊0.1 · 1000 / 11⌋ = 9 rows (each row costs M+1 = 11 numbers)
        assert_eq!(s.sample_size(), 9);
        assert_eq!(s.storage_bytes(), (90 + 9) * 8);
        assert!(s.storage_bytes() <= b.bytes(100, 10));
        assert!(SampleCompressed::compress_budget(&x, SpaceBudget { fraction: 0.001 }, 7).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let x = data(100, 3);
        let a = SampleCompressed::compress(&x, 30, 9).unwrap();
        let b = SampleCompressed::compress(&x, 30, 9).unwrap();
        assert_eq!(a.indices, b.indices);
        let c = SampleCompressed::compress(&x, 30, 10).unwrap();
        assert_ne!(a.indices, c.indices);
    }

    #[test]
    fn method_name() {
        let x = data(10, 2);
        let s = SampleCompressed::compress(&x, 5, 1).unwrap();
        assert_eq!(s.method_name(), "sampling");
        assert_eq!(s.rows(), 10);
        assert_eq!(s.cols(), 2);
    }
}
