//! Lossless LZ compression (the §2.1 reference point).
//!
//! The paper reports that "the Lempel-Ziv (gzip) algorithm had a space
//! requirement of s ≈ 25%" on its datasets — and then argues such
//! compression is useless for ad hoc queries because any access requires
//! decompressing everything. To reproduce that reference row without a
//! gzip dependency, this module implements the same family from scratch:
//!
//! - an **LZSS** stage — greedy longest-match parsing over a 32 KiB
//!   sliding window with a hash-chain match finder (the LZ77 core of
//!   gzip's deflate), emitting a byte-aligned token stream;
//! - a **canonical Huffman** stage — an order-0 entropy coder over the
//!   token bytes with a 256-entry code-length table in the header.
//!
//! [`compress`]/[`decompress`] compose the two. The implementation
//! favours clarity over speed; it exists to measure *space*, and its
//! "decompress everything to read anything" API is itself the point the
//! paper makes about lossless methods.

use ats_common::codec::{get_u64, put_u64};
use ats_common::{AtsError, Result};

const MAGIC: &[u8; 6] = b"ATSLZ1";
const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 255;
const HASH_BITS: u32 = 15;
const MAX_CHAIN: usize = 64;

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

// ---------------------------------------------------------------- LZSS --

/// LZSS-encode `input` into a byte-aligned token stream:
/// groups of 8 tokens preceded by a control byte (bit set = match),
/// literals are 1 byte, matches are `offset:u16le, len-MIN_MATCH:u8`.
pub fn lzss_encode(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    let mut head = vec![-1i64; 1 << HASH_BITS];
    let mut prev = vec![-1i64; n.max(1)];

    let mut ctrl_pos = 0usize; // index of the pending control byte
    let mut ctrl_bits = 0u8;
    let mut ntok = 0u8;
    out.push(0); // first control byte placeholder

    let flush_group = |out: &mut Vec<u8>, ctrl_pos: &mut usize, bits: &mut u8, n: &mut u8| {
        out[*ctrl_pos] = *bits;
        *ctrl_pos = out.len();
        out.push(0);
        *bits = 0;
        *n = 0;
    };

    let mut i = 0usize;
    while i < n {
        // Find the longest match at i via the hash chain.
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash4(&input[i..]);
            let mut cand = head[h];
            let mut chain = 0usize;
            while cand >= 0 && chain < MAX_CHAIN {
                let c = cand as usize;
                if i - c > WINDOW {
                    break;
                }
                let limit = (n - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < limit && input[c + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - c;
                    if l == limit {
                        break;
                    }
                }
                cand = prev[c];
                chain += 1;
            }
        }

        if best_len >= MIN_MATCH {
            ctrl_bits |= 1 << ntok;
            out.extend_from_slice(&(best_off as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Insert hash entries for every position the match covers.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= n {
                    let h = hash4(&input[i..]);
                    prev[i] = head[h];
                    head[h] = i as i64;
                }
                i += 1;
            }
        } else {
            out.push(input[i]);
            if i + MIN_MATCH <= n {
                let h = hash4(&input[i..]);
                prev[i] = head[h];
                head[h] = i as i64;
            }
            i += 1;
        }
        ntok += 1;
        if ntok == 8 {
            flush_group(&mut out, &mut ctrl_pos, &mut ctrl_bits, &mut ntok);
        }
    }
    out[ctrl_pos] = ctrl_bits;
    if ntok == 0 && out.len() == ctrl_pos + 1 && n > 0 {
        // trailing placeholder already the live control byte — nothing to do
    }
    out
}

/// Decode an LZSS token stream produced by [`lzss_encode`]; `raw_len` is
/// the exact original length (tokens beyond it are a corruption error).
pub fn lzss_decode(tokens: &[u8], raw_len: usize) -> Result<Vec<u8>> {
    let mut out: Vec<u8> = Vec::with_capacity(raw_len);
    let mut p = 0usize;
    while out.len() < raw_len {
        if p >= tokens.len() {
            return Err(AtsError::Corrupt("LZSS stream truncated".into()));
        }
        let ctrl = tokens[p];
        p += 1;
        for bit in 0..8 {
            if out.len() >= raw_len {
                break;
            }
            if ctrl & (1 << bit) != 0 {
                if p + 3 > tokens.len() {
                    return Err(AtsError::Corrupt("LZSS match truncated".into()));
                }
                let off = u16::from_le_bytes([tokens[p], tokens[p + 1]]) as usize;
                let len = tokens[p + 2] as usize + MIN_MATCH;
                p += 3;
                if off == 0 || off > out.len() {
                    return Err(AtsError::Corrupt(format!(
                        "LZSS offset {off} out of range at {}",
                        out.len()
                    )));
                }
                let start = out.len() - off;
                for l in 0..len {
                    let b = out[start + l];
                    out.push(b);
                }
            } else {
                if p >= tokens.len() {
                    return Err(AtsError::Corrupt("LZSS literal truncated".into()));
                }
                out.push(tokens[p]);
                p += 1;
            }
        }
    }
    if out.len() != raw_len {
        return Err(AtsError::Corrupt(format!(
            "LZSS decoded {} bytes, expected {raw_len}",
            out.len()
        )));
    }
    Ok(out)
}

// ------------------------------------------------------------- Huffman --

/// Build Huffman code lengths for 256 byte symbols from frequencies,
/// by constructing the tree with a tiny binary heap.
fn huffman_lengths(freq: &[u64; 256]) -> [u8; 256] {
    let mut lengths = [0u8; 256];
    let symbols: Vec<usize> = (0..256).filter(|&s| freq[s] > 0).collect();
    match symbols.len() {
        0 => return lengths,
        1 => {
            lengths[symbols[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    // Node arena: (freq, left, right); leaves have left == right == NONE.
    const NONE: usize = usize::MAX;
    let mut nodes: Vec<(u64, usize, usize)> = Vec::with_capacity(symbols.len() * 2);
    let mut heap: Vec<(u64, usize)> = Vec::with_capacity(symbols.len());
    for &s in &symbols {
        nodes.push((freq[s], NONE, s)); // leaf: store symbol in .2
        heap.push((freq[s], nodes.len() - 1));
    }
    heap.sort_unstable_by_key(|e| std::cmp::Reverse(e.0)); // treat as a max-last stack
                                                           // simple O(n²)-ish merge loop (n ≤ 256: negligible)
    while heap.len() > 1 {
        heap.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
        // The loop guard proves two pops succeed; the else arm is dead.
        let (Some(a), Some(b)) = (heap.pop(), heap.pop()) else {
            break;
        };
        nodes.push((a.0 + b.0, a.1, b.1));
        heap.push((a.0 + b.0, nodes.len() - 1));
    }
    // Depth-first assign lengths.
    let root = heap[0].1;
    let mut stack = vec![(root, 0u8)];
    while let Some((idx, depth)) = stack.pop() {
        let (_, left, right) = nodes[idx];
        if left == NONE {
            lengths[right] = depth.max(1);
        } else {
            stack.push((left, depth + 1));
            stack.push((right, depth + 1));
        }
    }
    lengths
}

/// Canonical codes from lengths: symbols sorted by (length, value).
fn canonical_codes(lengths: &[u8; 256]) -> [(u64, u8); 256] {
    let mut codes = [(0u64, 0u8); 256];
    let mut symbols: Vec<usize> = (0..256).filter(|&s| lengths[s] > 0).collect();
    symbols.sort_by_key(|&s| (lengths[s], s));
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for &s in &symbols {
        let l = lengths[s];
        code <<= l - prev_len;
        codes[s] = (code, l);
        code += 1;
        prev_len = l;
    }
    codes
}

struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            acc: 0,
            nbits: 0,
        }
    }
    #[inline]
    fn put(&mut self, code: u64, len: u8) {
        // MSB-first within the code, appended LSB-first to the stream.
        for i in (0..len).rev() {
            let bit = (code >> i) & 1;
            self.acc |= bit << self.nbits;
            self.nbits += 1;
            if self.nbits == 64 {
                self.out.extend_from_slice(&self.acc.to_le_bytes());
                self.acc = 0;
                self.nbits = 0;
            }
        }
    }
    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let bytes = self.acc.to_le_bytes();
            self.out
                .extend_from_slice(&bytes[..self.nbits.div_ceil(8) as usize]);
        }
        self.out
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }
    #[inline]
    fn bit(&mut self) -> Result<u32> {
        if self.nbits == 0 {
            if self.pos >= self.data.len() {
                return Err(AtsError::Corrupt("Huffman bitstream truncated".into()));
            }
            self.acc = u64::from(self.data[self.pos]);
            self.pos += 1;
            self.nbits = 8;
        }
        let b = (self.acc & 1) as u32;
        self.acc >>= 1;
        self.nbits -= 1;
        Ok(b)
    }
}

/// Huffman-encode `input`: 256-byte length table + bit stream.
pub fn huffman_encode(input: &[u8]) -> Vec<u8> {
    let mut freq = [0u64; 256];
    for &b in input {
        freq[b as usize] += 1;
    }
    let lengths = huffman_lengths(&freq);
    let codes = canonical_codes(&lengths);
    let mut out = Vec::with_capacity(input.len() / 2 + 300);
    put_u64(&mut out, input.len() as u64);
    out.extend_from_slice(&lengths);
    let mut bw = BitWriter::new();
    for &b in input {
        let (code, len) = codes[b as usize];
        bw.put(code, len);
    }
    out.extend_from_slice(&bw.finish());
    out
}

/// Decode a [`huffman_encode`] payload.
pub fn huffman_decode(data: &[u8]) -> Result<Vec<u8>> {
    if data.len() < 8 + 256 {
        return Err(AtsError::Corrupt("Huffman header truncated".into()));
    }
    let raw_len = get_u64(data, 0)? as usize;
    let mut lengths = [0u8; 256];
    lengths.copy_from_slice(&data[8..264]);
    if raw_len == 0 {
        return Ok(Vec::new());
    }
    // Rebuild the canonical decode tree.
    let codes = canonical_codes(&lengths);
    #[derive(Clone)]
    struct Node {
        child: [i32; 2],
        symbol: i32,
    }
    let mut tree = vec![Node {
        child: [-1, -1],
        symbol: -1,
    }];
    let mut live_symbols = 0usize;
    for (s, &(code, len)) in codes.iter().enumerate() {
        if len == 0 {
            continue;
        }
        live_symbols += 1;
        let mut at = 0usize;
        for i in (0..len).rev() {
            let bit = ((code >> i) & 1) as usize;
            if tree[at].child[bit] < 0 {
                tree.push(Node {
                    child: [-1, -1],
                    symbol: -1,
                });
                let newidx = (tree.len() - 1) as i32;
                tree[at].child[bit] = newidx;
            }
            at = tree[at].child[bit] as usize;
        }
        tree[at].symbol = s as i32;
    }
    if live_symbols == 0 {
        return Err(AtsError::Corrupt(
            "Huffman table empty but data expected".into(),
        ));
    }
    let mut br = BitReader::new(&data[264..]);
    let mut out = Vec::with_capacity(raw_len);
    while out.len() < raw_len {
        let mut at = 0usize;
        loop {
            if tree[at].symbol >= 0 {
                out.push(tree[at].symbol as u8);
                break;
            }
            let bit = br.bit()? as usize;
            let next = tree[at].child[bit];
            if next < 0 {
                return Err(AtsError::Corrupt("invalid Huffman code".into()));
            }
            at = next as usize;
        }
    }
    Ok(out)
}

// ----------------------------------------------------------- container --

/// Compress: LZSS then Huffman, with a small container header.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let tokens = lzss_encode(input);
    let entropy = huffman_encode(&tokens);
    let mut out = Vec::with_capacity(entropy.len() + 22);
    out.extend_from_slice(MAGIC);
    put_u64(&mut out, input.len() as u64);
    out.extend_from_slice(&entropy);
    out
}

/// Decompress a [`compress`] container.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    if data.len() < 14 || &data[..6] != MAGIC {
        return Err(AtsError::Corrupt("not an ATSLZ1 container".into()));
    }
    let raw_len = get_u64(data, 6)? as usize;
    let tokens = huffman_decode(&data[14..])?;
    lzss_decode(&tokens, raw_len)
}

/// Compression ratio of [`compress`] on `input` (compressed/original).
pub fn ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    compress(input).len() as f64 / input.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_empty() {
        let c = compress(b"");
        assert_eq!(decompress(&c).unwrap(), b"");
    }

    #[test]
    fn roundtrip_single_byte() {
        let c = compress(b"x");
        assert_eq!(decompress(&c).unwrap(), b"x");
    }

    #[test]
    fn roundtrip_repetitive() {
        let input: Vec<u8> = b"abcabcabcabc"
            .iter()
            .cycle()
            .take(10_000)
            .copied()
            .collect();
        let c = compress(&input);
        assert_eq!(decompress(&c).unwrap(), input);
        assert!(
            c.len() < input.len() / 10,
            "repetitive text should crush: {} of {}",
            c.len(),
            input.len()
        );
    }

    #[test]
    fn roundtrip_all_same() {
        let input = vec![7u8; 5000];
        let c = compress(&input);
        assert_eq!(decompress(&c).unwrap(), input);
        assert!(c.len() < 600);
    }

    #[test]
    fn roundtrip_random_binary() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let input: Vec<u8> = (0..20_000).map(|_| rng.gen()).collect();
        let c = compress(&input);
        assert_eq!(decompress(&c).unwrap(), input);
        // incompressible: should not balloon much
        assert!(c.len() < input.len() + input.len() / 8 + 512);
    }

    #[test]
    fn csv_like_text_compresses_well() {
        // The kind of byte stream the paper gzipped: numeric records.
        let mut text = String::new();
        for i in 0..2000 {
            text.push_str(&format!("{},{},{},{},{}\n", i, i % 7, 100.25, 0, i * 3));
        }
        let r = ratio(text.as_bytes());
        assert!(r < 0.35, "CSV ratio {r} worse than expected");
    }

    #[test]
    fn lzss_layer_alone_roundtrips() {
        let input = b"the quick brown fox jumps over the lazy dog; the quick brown fox again";
        let t = lzss_encode(input);
        assert_eq!(lzss_decode(&t, input.len()).unwrap(), input);
    }

    #[test]
    fn huffman_layer_alone_roundtrips() {
        let input = b"mississippi river mississippi delta";
        let e = huffman_encode(input);
        assert_eq!(huffman_decode(&e).unwrap(), input);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut c = compress(b"hello world hello world");
        c[0] = b'X';
        assert!(decompress(&c).is_err());
        assert!(decompress(&[]).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let c = compress(b"some reasonably long input string for truncation testing, repeated: some reasonably long input");
        for cut in [10usize, c.len() / 2, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn bad_offset_rejected() {
        // Handcraft a token stream whose first token is a match (invalid:
        // nothing emitted yet).
        let tokens = vec![0b0000_0001u8, 5, 0, 0]; // match offset 5 len 4
        assert!(lzss_decode(&tokens, 4).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn roundtrip_arbitrary(input in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let c = compress(&input);
            prop_assert_eq!(decompress(&c).unwrap(), input);
        }

        #[test]
        fn roundtrip_structured(
            seed in any::<u64>(),
            n in 0usize..2000,
        ) {
            // byte streams with long runs and repeats — LZ's happy path
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut input = Vec::with_capacity(n);
            while input.len() < n {
                let run = rng.gen_range(1..32usize).min(n - input.len());
                let b: u8 = rng.gen_range(0..8);
                input.extend(std::iter::repeat_n(b, run));
            }
            let c = compress(&input);
            prop_assert_eq!(decompress(&c).unwrap(), input);
        }
    }
}
