//! # ats-compress
//!
//! The compression methods studied by Korn, Jagadish & Faloutsos
//! (SIGMOD 1997): the proposed SVD / SVDD family and every baseline the
//! paper compares against.
//!
//! All lossy methods implement [`method::CompressedMatrix`] — reconstruct
//! any cell in `O(k)` without touching the rest of the dataset — and are
//! built from a [`ats_storage::RowSource`] in a fixed number of
//! sequential passes, never materializing the full matrix:
//!
//! | module | method | paper § | passes |
//! |---|---|---|---|
//! | [`svd`] | plain SVD, top-`k` PCs | §3–4.1 | 2 |
//! | [`svdd`] | SVD with Deltas (the contribution) | §4.2 | 3 |
//! | [`dct`] | row-wise DCT, top-`k` coefficients | §2.3 | 1 |
//! | [`cluster`] | hierarchical (complete-linkage) + k-means VQ | §2.2 | in-memory |
//! | [`dwt`] | row-wise Haar wavelets, top-`k` coefficients | §2.3 | 1 |
//! | [`quantized`] | f32-quantized SVD factors (extension) | §5.1's `b` | 2 |
//! | [`sampling`] | uniform row sampling (aggregates only) | §5.2 | 1 |
//! | [`lz`] | LZSS + canonical Huffman (lossless reference) | §2.1 | n/a |
//!
//! Supporting pieces: [`append`] (the batched-update path of §1: a
//! persistent Gram cache turning rebuilds into a single pass), [`gram`] (the streaming pass-1 Gram accumulation of
//! Fig. 2, serial and multi-threaded), [`delta`] (the open-addressing
//! outlier store with optional Bloom filter of §4.2), and
//! [`method::SpaceBudget`] (the `s%` space accounting of Eq. 9 that all
//! experiments share), and [`zeroflag`] (§6.2's Bloom-fronted all-zero
//! customer index).

pub mod append;
pub mod cluster;
pub mod dct;
pub mod delta;
pub mod dwt;
pub mod gram;
pub mod lz;
pub mod method;
pub mod quantized;
pub mod sampling;
pub mod svd;
pub mod svdd;
pub mod zeroflag;

pub use append::{project_frozen, GramCache};
pub use delta::DeltaStore;
pub use gram::{shard_ranges, GRAM_BLOCK_ROWS};
pub use method::{block_budget, CompressedMatrix, SpaceBudget};
pub use svd::SvdCompressed;
pub use svdd::{SvddCompressed, SvddOptions};
