//! Clustering / vector-quantization compression (§2.2).
//!
//! The paper's clustering baseline stores `k` cluster representatives
//! (centroids) plus, per customer, the index of its cluster — so a cell
//! is reconstructed as "find the cluster-representative for the `i`-th
//! customer, and return its `j`-th entry". Storage is
//! `k·M + N` numbers.
//!
//! Two algorithms are provided:
//!
//! - [`hierarchical_complete`] — agglomerative hierarchical clustering
//!   with **complete linkage** ("the 'element-to-cluster' distance
//!   function to be the maximum distance between the element and the
//!   members of the cluster", §2.2), implemented with the
//!   nearest-neighbour-chain algorithm and the Lance–Williams update, so
//!   it is `O(N²)` time / `O(N²)` memory — faithful to the paper's
//!   quadratic 'S'-package method, including its inability to scale
//!   (§5.3 notes it gave up beyond N = 3000);
//! - [`kmeans`] — Lloyd iterations with k-means++ seeding: the "faster,
//!   approximate" alternative the paper discusses, usable at scale.

use crate::method::{CompressedMatrix, SpaceBudget, BYTES_PER_NUMBER};
use ats_common::{AtsError, Result};
use ats_linalg::{vecops, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Guard rail mirroring the paper's observation that the quadratic
/// hierarchical method stops being practical: refuse pathological sizes.
const HIERARCHICAL_MAX_N: usize = 20_000;

/// Squared Euclidean distance between two rows (shared with the test
/// oracle).
#[cfg(test)]
pub(crate) fn super_dist(x: &Matrix, a: u32, b: u32) -> f64 {
    vecops::dist2_sq(x.row(a as usize), x.row(b as usize))
}

/// One dendrogram merge: the two cluster *slots* joined and the complete-
/// linkage height (squared Euclidean) at which they joined.
#[derive(Debug, Clone, Copy)]
struct Merge {
    a: u32,
    b: u32,
    height: f64,
}

/// Build the full complete-linkage dendrogram with the nearest-neighbour-
/// chain algorithm: `O(N²)` time, `O(N²)` memory.
///
/// NN-chain emits merges in **non-monotone order** (it finds reciprocal
/// nearest neighbours locally), so the caller must sort by height before
/// cutting — complete linkage is monotone (no inversions), so the sorted
/// sequence is exactly the greedy agglomeration order.
fn nn_chain_dendrogram(x: &Matrix) -> Result<Vec<Merge>> {
    let n = x.rows();
    // Distance matrix (squared Euclidean — complete linkage only compares
    // distances, so squaring is harmless and saves N² square roots).
    let mut dist = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = vecops::dist2_sq(x.row(i), x.row(j));
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }

    let mut active: Vec<bool> = vec![true; n];
    let mut merges: Vec<Merge> = Vec::with_capacity(n.saturating_sub(1));
    let mut chain: Vec<usize> = Vec::with_capacity(n);

    while merges.len() + 1 < n {
        if chain.is_empty() {
            let start = active
                .iter()
                .position(|&a| a)
                .ok_or_else(|| AtsError::internal("nn-chain: no active cluster remains"))?;
            chain.push(start);
        }
        loop {
            let Some(&top) = chain.last() else {
                return Err(AtsError::internal("nn-chain: chain emptied mid-walk"));
            };
            // nearest active neighbour of `top`
            let mut best = usize::MAX;
            let mut best_d = f64::INFINITY;
            for c in 0..n {
                if c != top && active[c] {
                    let d = dist[top * n + c];
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
            }
            debug_assert_ne!(best, usize::MAX);
            if chain.len() >= 2 && chain[chain.len() - 2] == best {
                // Reciprocal nearest neighbours: merge `top` and `best`.
                chain.pop();
                chain.pop();
                let (a, b) = (top.min(best), top.max(best));
                // Lance–Williams for complete linkage: d(ab, c) = max.
                for c in 0..n {
                    if c != a && c != b && active[c] {
                        let d = dist[a * n + c].max(dist[b * n + c]);
                        dist[a * n + c] = d;
                        dist[c * n + a] = d;
                    }
                }
                active[b] = false;
                merges.push(Merge {
                    a: a as u32,
                    b: b as u32,
                    height: best_d,
                });
                break;
            }
            chain.push(best);
        }
    }
    Ok(merges)
}

/// Agglomerative complete-linkage clustering, cut at `k` clusters.
/// Returns per-row cluster assignments in `0..k`.
pub fn hierarchical_complete(x: &Matrix, k: usize) -> Result<Vec<u32>> {
    let n = x.rows();
    if k == 0 || k > n {
        return Err(AtsError::InvalidArgument(format!(
            "cluster count k={k} must be in 1..={n}"
        )));
    }
    if n > HIERARCHICAL_MAX_N {
        return Err(AtsError::InvalidArgument(format!(
            "hierarchical clustering is O(N²); N={n} exceeds the {HIERARCHICAL_MAX_N} guard \
             (the paper's §5.3 scale-up failure, reproduced) — use kmeans instead"
        )));
    }
    if k == n {
        return Ok((0..n as u32).collect());
    }

    let mut merges = nn_chain_dendrogram(x)?;
    // Cut the dendrogram: apply the n−k lowest merges. Stable sort keeps
    // a child merge before its equal-height parent (NN-chain necessarily
    // records children first), so the replay is always consistent.
    merges.sort_by(|p, q| {
        p.height
            .partial_cmp(&q.height)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // Union-find replay.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut i: u32) -> u32 {
        while parent[i as usize] != i {
            parent[i as usize] = parent[parent[i as usize] as usize]; // halve
            i = parent[i as usize];
        }
        i
    }
    for m in merges.iter().take(n - k) {
        let ra = find(&mut parent, m.a);
        let rb = find(&mut parent, m.b);
        parent[rb.max(ra) as usize] = rb.min(ra);
    }

    // Compact root labels to 0..k in first-appearance order.
    let mut label_of_root: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let mut assignment = vec![0u32; n];
    for i in 0..n as u32 {
        let root = find(&mut parent, i);
        let next = label_of_root.len() as u32;
        let label = *label_of_root.entry(root).or_insert(next);
        assignment[i as usize] = label;
    }
    debug_assert_eq!(label_of_root.len(), k);
    Ok(assignment)
}

/// Lloyd's k-means with k-means++ seeding. Returns assignments in `0..k`.
pub fn kmeans(x: &Matrix, k: usize, max_iters: usize, seed: u64) -> Result<Vec<u32>> {
    let (n, m) = x.shape();
    if k == 0 || k > n {
        return Err(AtsError::InvalidArgument(format!(
            "cluster count k={k} must be in 1..={n}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids = Matrix::zeros(k, m);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(x.row(first));
    let mut d2: Vec<f64> = (0..n)
        .map(|i| vecops::dist2_sq(x.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = d2.iter().sum();
        let pick = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
            }
            idx
        };
        centroids.row_mut(c).copy_from_slice(x.row(pick));
        for (i, d) in d2.iter_mut().enumerate() {
            *d = d.min(vecops::dist2_sq(x.row(i), centroids.row(c)));
        }
    }

    let mut assignment = vec![0u32; n];
    for _ in 0..max_iters.max(1) {
        // Assign.
        let mut changed = false;
        for (i, slot) in assignment.iter_mut().enumerate() {
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let d = vecops::dist2_sq(x.row(i), centroids.row(c));
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            if *slot != best {
                *slot = best;
                changed = true;
            }
        }
        // Update.
        let mut counts = vec![0usize; k];
        let mut sums = Matrix::zeros(k, m);
        for (i, &a) in assignment.iter().enumerate() {
            let c = a as usize;
            counts[c] += 1;
            vecops::add_assign(sums.row_mut(c), x.row(i));
        }
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                let inv = 1.0 / count as f64;
                let (s, d) = (sums.row(c).to_vec(), centroids.row_mut(c));
                for (dst, v) in d.iter_mut().zip(s) {
                    *dst = v * inv;
                }
            } else {
                // Re-seed an empty cluster at a random point.
                let pick = rng.gen_range(0..n);
                centroids.row_mut(c).copy_from_slice(x.row(pick));
            }
        }
        if !changed {
            break;
        }
    }
    Ok(assignment)
}

/// Which clustering algorithm builds the codebook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterAlgo {
    /// Complete-linkage agglomerative (the paper's §2.2 choice).
    Hierarchical,
    /// Lloyd k-means with k-means++ seeding (the scalable alternative).
    KMeans {
        /// Maximum Lloyd iterations.
        max_iters: usize,
        /// RNG seed.
        seed: u64,
    },
}

/// A matrix compressed by vector quantization: `k` centroids + an
/// assignment array.
#[derive(Debug, Clone)]
pub struct ClusterCompressed {
    centroids: Matrix,
    assignment: Vec<u32>,
    m: usize,
}

impl ClusterCompressed {
    /// Cluster `x` into `k` clusters with the chosen algorithm and store
    /// centroids as representatives.
    ///
    /// Clustering needs all pairwise geometry, so this method takes the
    /// matrix in memory — mirroring the paper, where clustering is the
    /// one method that could not stream (§5.3).
    pub fn compress(x: &Matrix, k: usize, algo: ClusterAlgo) -> Result<Self> {
        let assignment = match algo {
            ClusterAlgo::Hierarchical => hierarchical_complete(x, k)?,
            ClusterAlgo::KMeans { max_iters, seed } => kmeans(x, k, max_iters, seed)?,
        };
        let m = x.cols();
        let mut centroids = Matrix::zeros(k, m);
        let mut counts = vec![0usize; k];
        for (i, &a) in assignment.iter().enumerate() {
            let c = a as usize;
            counts[c] += 1;
            vecops::add_assign(centroids.row_mut(c), x.row(i));
        }
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                vecops::scale(centroids.row_mut(c), 1.0 / count as f64);
            }
        }
        Ok(ClusterCompressed {
            centroids,
            assignment,
            m,
        })
    }

    /// Compress at a space budget: the largest `k` with
    /// `(k·M + N)·b ≤ budget`.
    pub fn compress_budget(x: &Matrix, budget: SpaceBudget, algo: ClusterAlgo) -> Result<Self> {
        let k = budget.max_clusters(x.rows(), x.cols());
        if k == 0 {
            return Err(AtsError::Budget(format!(
                "budget {:.3}% cannot hold the assignment array plus one centroid",
                budget.fraction * 100.0
            )));
        }
        Self::compress(x, k, algo)
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Cluster assignment of each row.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The centroid ("cluster representative") matrix.
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }
}

impl CompressedMatrix for ClusterCompressed {
    fn rows(&self) -> usize {
        self.assignment.len()
    }

    fn cols(&self) -> usize {
        self.m
    }

    fn cell(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows() {
            return Err(AtsError::oob("row", i, self.rows()));
        }
        if j >= self.m {
            return Err(AtsError::oob("column", j, self.m));
        }
        Ok(self.centroids[(self.assignment[i] as usize, j)])
    }

    fn row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
        if i >= self.rows() {
            return Err(AtsError::oob("row", i, self.rows()));
        }
        if out.len() != self.m {
            return Err(AtsError::dims(
                "ClusterCompressed::row_into",
                (1, out.len()),
                (1, self.m),
            ));
        }
        out.copy_from_slice(self.centroids.row(self.assignment[i] as usize));
        Ok(())
    }

    /// §5.1: `(b·k·M) + (N·b)` bytes.
    fn storage_bytes(&self) -> usize {
        (self.k() * self.m + self.rows()) * BYTES_PER_NUMBER
    }

    fn method_name(&self) -> &'static str {
        "cluster"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs of 2-d points.
    fn blobs() -> (Matrix, Vec<usize>) {
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 8.0)];
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..20 {
                rows.push(vec![
                    cx + rng.gen_range(-0.5..0.5),
                    cy + rng.gen_range(-0.5..0.5),
                ]);
                truth.push(c);
            }
        }
        (Matrix::from_rows(rows).unwrap(), truth)
    }

    fn clusters_match_truth(assign: &[u32], truth: &[usize], k: usize) -> bool {
        // every truth-cluster maps to exactly one assigned label
        for c in 0..k {
            let labels: std::collections::HashSet<u32> = truth
                .iter()
                .zip(assign)
                .filter(|(&t, _)| t == c)
                .map(|(_, &a)| a)
                .collect();
            if labels.len() != 1 {
                return false;
            }
        }
        true
    }

    #[test]
    fn hierarchical_recovers_blobs() {
        let (x, truth) = blobs();
        let assign = hierarchical_complete(&x, 3).unwrap();
        assert!(clusters_match_truth(&assign, &truth, 3));
    }

    #[test]
    fn kmeans_recovers_blobs() {
        let (x, truth) = blobs();
        let assign = kmeans(&x, 3, 50, 7).unwrap();
        assert!(clusters_match_truth(&assign, &truth, 3));
    }

    #[test]
    fn hierarchical_k_equals_n_is_identity() {
        let (x, _) = blobs();
        let assign = hierarchical_complete(&x, x.rows()).unwrap();
        let unique: std::collections::HashSet<u32> = assign.iter().copied().collect();
        assert_eq!(unique.len(), x.rows());
    }

    #[test]
    fn hierarchical_k_one_merges_everything() {
        let (x, _) = blobs();
        let assign = hierarchical_complete(&x, 1).unwrap();
        assert!(assign.iter().all(|&a| a == 0));
    }

    #[test]
    fn invalid_k_rejected() {
        let (x, _) = blobs();
        assert!(hierarchical_complete(&x, 0).is_err());
        assert!(hierarchical_complete(&x, x.rows() + 1).is_err());
        assert!(kmeans(&x, 0, 10, 1).is_err());
    }

    #[test]
    fn scale_guard_matches_paper_limitation() {
        let big = Matrix::zeros(HIERARCHICAL_MAX_N + 1, 2);
        assert!(hierarchical_complete(&big, 2).is_err());
    }

    #[test]
    fn compressed_cells_are_centroids() {
        let (x, _) = blobs();
        let c = ClusterCompressed::compress(&x, 3, ClusterAlgo::Hierarchical).unwrap();
        // reconstruction error is small because blobs are tight
        let mut row = vec![0.0; 2];
        for i in 0..x.rows() {
            c.row_into(i, &mut row).unwrap();
            for (a, b) in row.iter().zip(x.row(i)) {
                assert!((a - b).abs() < 1.2, "row {i}: {a} vs {b}");
            }
        }
        assert_eq!(c.k(), 3);
        assert_eq!(c.method_name(), "cluster");
    }

    #[test]
    fn centroid_is_member_mean() {
        let x =
            Matrix::from_rows(vec![vec![0.0, 0.0], vec![2.0, 2.0], vec![100.0, 100.0]]).unwrap();
        let c = ClusterCompressed::compress(&x, 2, ClusterAlgo::Hierarchical).unwrap();
        // the two nearby points share a cluster; its centroid is (1, 1)
        let a0 = c.assignment()[0];
        assert_eq!(a0, c.assignment()[1]);
        assert_ne!(a0, c.assignment()[2]);
        assert!((c.cell(0, 0).unwrap() - 1.0).abs() < 1e-12);
        assert!((c.cell(2, 1).unwrap() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn storage_formula() {
        let (x, _) = blobs();
        let c = ClusterCompressed::compress(&x, 3, ClusterAlgo::Hierarchical).unwrap();
        assert_eq!(c.storage_bytes(), (3 * 2 + 60) * 8);
    }

    #[test]
    fn budget_constructor() {
        let (x, _) = blobs();
        let b = SpaceBudget::from_percent(60.0);
        let c = ClusterCompressed::compress_budget(&x, b, ClusterAlgo::Hierarchical).unwrap();
        assert!(c.storage_bytes() <= b.bytes(60, 2));
        assert!(ClusterCompressed::compress_budget(
            &x,
            SpaceBudget { fraction: 0.01 },
            ClusterAlgo::Hierarchical
        )
        .is_err());
    }

    /// Greedy O(N³) complete linkage — an independently-written oracle.
    fn naive_complete(x: &Matrix, k: usize) -> Vec<Vec<u32>> {
        let n = x.rows();
        let mut clusters: Vec<Vec<u32>> = (0..n as u32).map(|i| vec![i]).collect();
        while clusters.len() > k {
            let mut best = (0usize, 1usize);
            let mut bd = f64::INFINITY;
            for i in 0..clusters.len() {
                for j in (i + 1)..clusters.len() {
                    let mut mx = 0.0f64;
                    for &a in &clusters[i] {
                        for &b in &clusters[j] {
                            mx = mx.max(crate::cluster::super_dist(x, a, b));
                        }
                    }
                    if mx < bd {
                        bd = mx;
                        best = (i, j);
                    }
                }
            }
            let merged = clusters.remove(best.1);
            clusters[best.0].extend(merged);
        }
        for c in &mut clusters {
            c.sort_unstable();
        }
        clusters.sort();
        clusters
    }

    fn groups_from_assign(assign: &[u32], k: usize) -> Vec<Vec<u32>> {
        let mut c = vec![Vec::new(); k];
        for (i, &a) in assign.iter().enumerate() {
            c[a as usize].push(i as u32);
        }
        for g in &mut c {
            g.sort_unstable();
        }
        c.sort();
        c
    }

    #[test]
    fn nn_chain_matches_greedy_oracle() {
        for seed in 0..15u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(5..20);
            let x = Matrix::from_fn(n, 3, |_, _| rng.gen_range(-5.0..5.0));
            for k in 1..=n.min(5) {
                let fast = groups_from_assign(&hierarchical_complete(&x, k).unwrap(), k);
                let slow = naive_complete(&x, k);
                assert_eq!(fast, slow, "seed={seed} n={n} k={k}");
            }
        }
    }

    #[test]
    fn kmeans_deterministic_per_seed() {
        let (x, _) = blobs();
        let a = kmeans(&x, 3, 30, 11).unwrap();
        let b = kmeans(&x, 3, 30, 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn identical_points_single_cluster_kmeans() {
        let x = Matrix::from_fn(10, 3, |_, _| 5.0);
        let assign = kmeans(&x, 2, 10, 1).unwrap();
        // all points identical: whatever the labels, centroids must equal the point
        let c = ClusterCompressed::compress(
            &x,
            2,
            ClusterAlgo::KMeans {
                max_iters: 10,
                seed: 1,
            },
        )
        .unwrap();
        for i in 0..10 {
            assert!((c.cell(i, 0).unwrap() - 5.0).abs() < 1e-12);
        }
        assert_eq!(assign.len(), 10);
    }
}
