//! The SVDD outlier store (§4.2).
//!
//! SVDD keeps `(row, column, delta)` triplets for the worst-reconstructed
//! cells "in a hash table, where the key is the combination of
//! `row·M + column`, that is, the order of the cell in the row-major
//! scanning", optionally fronted by "a main-memory Bloom filter, which
//! would predict the majority of non-outliers, and thus save several
//! probes into the hash table". [`DeltaStore`] is exactly that: an
//! open-addressing (linear-probing) hash table over `u64` cell ordinals
//! built once from the chosen outliers, plus the optional Bloom filter.
//!
//! Space accounting (a delta costs [`DELTA_BYTES`]) matches the paper's
//! "`O(b)` bytes for each delta stored".

use ats_common::hash::hash_u64;
use ats_common::{AtsError, BloomFilter, Result};

/// Bytes charged per stored delta: a packed 8-byte cell ordinal plus an
/// 8-byte delta value.
pub const DELTA_BYTES: usize = 16;

const EMPTY: u64 = u64::MAX;

/// Immutable open-addressing hash table of cell deltas.
#[derive(Debug, Clone)]
pub struct DeltaStore {
    /// Slot keys (cell ordinal `row·M + col`), `EMPTY` for vacant.
    keys: Vec<u64>,
    /// Slot values (deltas), parallel to `keys`.
    values: Vec<f64>,
    mask: u64,
    len: usize,
    cols: u64,
    bloom: Option<BloomFilter>,
}

impl DeltaStore {
    /// Build from `(row, col, delta)` triplets for an `N × M` matrix.
    ///
    /// `with_bloom` attaches the §4.2 Bloom filter sized for a ~1% false
    /// positive rate. Duplicate cells are rejected. The table is sized at
    /// load factor ≤ 0.7 so probes stay short.
    pub fn build(
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
        with_bloom: bool,
    ) -> Result<Self> {
        let triplets: Vec<(usize, usize, f64)> = triplets.into_iter().collect();
        let n = triplets.len();
        let capacity = ((n as f64 / 0.7).ceil() as usize)
            .max(8)
            .next_power_of_two();
        let mut store = DeltaStore {
            keys: vec![EMPTY; capacity],
            values: vec![0.0; capacity],
            mask: capacity as u64 - 1,
            len: 0,
            cols: cols as u64,
            bloom: if with_bloom {
                Some(BloomFilter::with_capacity(n.max(1), 0.01))
            } else {
                None
            },
        };
        for (row, col, delta) in triplets {
            if col >= cols {
                return Err(AtsError::oob("delta column", col, cols));
            }
            let key = row as u64 * store.cols + col as u64;
            store.insert(key, delta)?;
        }
        Ok(store)
    }

    fn insert(&mut self, key: u64, delta: f64) -> Result<()> {
        debug_assert_ne!(key, EMPTY, "cell ordinal cannot be the sentinel");
        let mut slot = (hash_u64(key, 0) & self.mask) as usize;
        loop {
            if self.keys[slot] == EMPTY {
                self.keys[slot] = key;
                self.values[slot] = delta;
                self.len += 1;
                if let Some(b) = &mut self.bloom {
                    b.insert(key);
                }
                return Ok(());
            }
            if self.keys[slot] == key {
                return Err(AtsError::InvalidArgument(format!(
                    "duplicate delta for cell ordinal {key}"
                )));
            }
            slot = (slot + 1) & self.mask as usize;
        }
    }

    /// Probe for a delta at cell `(i, j)`. The Bloom filter (when
    /// present) short-circuits the common non-outlier case.
    #[inline]
    pub fn probe(&self, i: usize, j: usize) -> Option<f64> {
        let key = i as u64 * self.cols + j as u64;
        if let Some(b) = &self.bloom {
            if !b.contains(key) {
                return None;
            }
        }
        let mut slot = (hash_u64(key, 0) & self.mask) as usize;
        loop {
            let k = self.keys[slot];
            if k == key {
                return Some(self.values[slot]);
            }
            if k == EMPTY {
                return None;
            }
            slot = (slot + 1) & self.mask as usize;
        }
    }

    /// Number of stored deltas (the paper's `γ`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no deltas.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the Bloom filter is attached.
    pub fn has_bloom(&self) -> bool {
        self.bloom.is_some()
    }

    /// Bytes charged against the space budget: [`DELTA_BYTES`] per delta.
    /// (The Bloom filter is main-memory metadata in the paper's model and
    /// is reported separately by [`DeltaStore::bloom_bytes`].)
    pub fn storage_bytes(&self) -> usize {
        self.len * DELTA_BYTES
    }

    /// Memory consumed by the optional Bloom filter.
    pub fn bloom_bytes(&self) -> usize {
        self.bloom.as_ref().map_or(0, |b| b.storage_bytes())
    }

    /// Iterate stored `(row, col, delta)` triplets (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.keys
            .iter()
            .zip(&self.values)
            .filter(|(&k, _)| k != EMPTY)
            .map(move |(&k, &v)| ((k / self.cols) as usize, (k % self.cols) as usize, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_probe() {
        let store =
            DeltaStore::build(10, vec![(0, 1, 2.5), (3, 7, -1.0), (99, 9, 0.125)], false).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.probe(0, 1), Some(2.5));
        assert_eq!(store.probe(3, 7), Some(-1.0));
        assert_eq!(store.probe(99, 9), Some(0.125));
        assert_eq!(store.probe(0, 2), None);
        assert_eq!(store.probe(4, 7), None);
    }

    #[test]
    fn empty_store() {
        let store = DeltaStore::build(5, vec![], true).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.probe(0, 0), None);
        assert_eq!(store.storage_bytes(), 0);
    }

    #[test]
    fn duplicate_cell_rejected() {
        let r = DeltaStore::build(10, vec![(1, 1, 1.0), (1, 1, 2.0)], false);
        assert!(r.is_err());
    }

    #[test]
    fn column_bound_checked() {
        assert!(DeltaStore::build(10, vec![(0, 10, 1.0)], false).is_err());
    }

    #[test]
    fn bloom_agrees_with_table() {
        let triplets: Vec<(usize, usize, f64)> =
            (0..500).map(|i| (i * 3, i % 20, i as f64)).collect();
        let with = DeltaStore::build(20, triplets.clone(), true).unwrap();
        let without = DeltaStore::build(20, triplets, false).unwrap();
        assert!(with.has_bloom() && !without.has_bloom());
        for i in 0..1600 {
            for j in 0..20 {
                assert_eq!(with.probe(i, j), without.probe(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn dense_load_many_keys() {
        // Stress the linear probing: 10_000 deltas, all retrievable.
        let triplets: Vec<(usize, usize, f64)> = (0..10_000usize)
            .map(|i| (i / 366, i % 366, (i as f64) * 0.5 - 7.0))
            .collect();
        let store = DeltaStore::build(366, triplets.clone(), true).unwrap();
        assert_eq!(store.len(), 10_000);
        for &(r, c, d) in &triplets {
            assert_eq!(store.probe(r, c), Some(d));
        }
    }

    #[test]
    fn iter_returns_all_triplets() {
        let mut triplets = vec![(0usize, 0usize, 1.0), (5, 3, 2.0), (2, 9, 3.0)];
        let store = DeltaStore::build(10, triplets.clone(), false).unwrap();
        let mut got: Vec<_> = store.iter().collect();
        got.sort_by_key(|a| (a.0, a.1));
        triplets.sort_by_key(|a| (a.0, a.1));
        assert_eq!(got, triplets);
    }

    #[test]
    fn storage_accounting() {
        let store = DeltaStore::build(10, vec![(0, 0, 1.0), (1, 1, 2.0)], true).unwrap();
        assert_eq!(store.storage_bytes(), 2 * DELTA_BYTES);
        assert!(store.bloom_bytes() > 0);
    }

    #[test]
    fn large_row_indices_no_overflow() {
        // row * M + col for big N must not collide or wrap surprisingly.
        let store = DeltaStore::build(
            366,
            vec![(10_000_000, 365, 9.0), (10_000_001, 0, 8.0)],
            false,
        )
        .unwrap();
        assert_eq!(store.probe(10_000_000, 365), Some(9.0));
        assert_eq!(store.probe(10_000_001, 0), Some(8.0));
        assert_eq!(store.probe(10_000_000, 364), None);
    }
}
