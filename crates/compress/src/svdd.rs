//! SVDD — SVD with Deltas (§4.2): the paper's contribution.
//!
//! Plain SVD has excellent *average* error but terrible *worst-case*
//! error: a handful of cells (spiky customer-days) reconstruct wildly
//! wrong, and the worst case grows with `N` (Table 4). SVDD trades some
//! principal components for explicit `(row, col, delta)` corrections on
//! exactly those cells, solving:
//!
//! > **Given** a space budget `s%`, **find** the cutoff `k_opt`
//! > minimizing total reconstruction error when the leftover space holds
//! > `γ_k` cell deltas.
//!
//! The build is the paper's **three-pass algorithm** (Fig. 5):
//!
//! 1. **Pass 1** — accumulate `C = XᵀX`, eigendecompose, keep `k_max`
//!    eigenvectors; size `γ_k` for every candidate `k`; create one
//!    bounded priority queue per candidate.
//! 2. **Pass 2** — for each row, compute its projections once and sweep
//!    the reconstruction cumulatively in `k`, offering each cell's
//!    squared error to every candidate queue and accumulating per-`k`
//!    SSE. Pick `k_opt` minimizing `SSE_k − (error mass of the γ_k kept
//!    outliers)`.
//! 3. **Pass 3** — emit `U` truncated to `k_opt` (Eq. 11) and freeze the
//!    winning queue into the [`DeltaStore`] (hash table + Bloom filter).
//!
//! All three passes are row-partitioned across `threads` workers: pass 1
//! sums per-worker partial Gram matrices ([`compute_gram_parallel`]),
//! pass 2 gives each worker private per-candidate [`TopK`] queues and SSE
//! accumulators over a disjoint row range (merged with [`TopK::merge`]
//! and a sum — the retained outlier set is identical to a single scan),
//! and pass 3 hands each worker a disjoint `&mut` band of `U`. Each pass
//! still reads every row exactly once, so the Fig. 5 I/O bound (three
//! sequential passes) is preserved at any thread count.
//!
//! The naive alternative (Fig. 4) — recompute an SVD per candidate `k` —
//! is provided as [`SvddCompressed::compress_naive`] for tests and the
//! ablation benchmark.

use crate::delta::{DeltaStore, DELTA_BYTES};
use crate::gram::{compute_gram_parallel, compute_gram_sharded, GRAM_BLOCK_ROWS};
use crate::method::{svd_bytes, CompressedMatrix, SpaceBudget};
use crate::svd::{emit_u, SvdCompressed};
use ats_common::{AtsError, Result, TopK};
use ats_linalg::{sym_eigen, vecops, Matrix};
use ats_storage::RowSource;

/// Options for [`SvddCompressed::compress`].
#[derive(Debug, Clone)]
pub struct SvddOptions {
    /// The space budget the compressed form must fit in.
    pub budget: SpaceBudget,
    /// Upper bound on candidate cutoffs; defaults to the largest `k`
    /// the budget could hold with zero deltas (`k_max` in the paper).
    pub k_max: Option<usize>,
    /// Attach the §4.2 Bloom filter in front of the delta hash table.
    pub with_bloom: bool,
    /// Worker threads for all three passes.
    pub threads: usize,
    /// Soft cap on the total number of queue entries across all candidate
    /// `k` values during pass 2. If exceeded, the candidate set is
    /// thinned (smallest-`k` candidates, which have the largest `γ_k`,
    /// are dropped first). Bounds pass-2 memory on huge datasets.
    ///
    /// With `threads > 1` each worker holds a private copy of the queues
    /// (a merge needs full-capacity shards to stay exact), so the peak
    /// entry count is `threads ×` this cap. Thinning itself depends only
    /// on the γ sizes, never on `threads`, so the candidate set — and
    /// hence `k_opt` — is the same at any thread count.
    pub max_queue_entries: usize,
}

impl SvddOptions {
    /// Defaults for a given budget.
    pub fn new(budget: SpaceBudget) -> Self {
        SvddOptions {
            budget,
            k_max: None,
            with_bloom: true,
            threads: 1,
            max_queue_entries: 8_000_000,
        }
    }
}

/// Per-candidate diagnostics from the `k_opt` search.
#[derive(Debug, Clone, Copy)]
pub struct KCandidate {
    /// Candidate cutoff.
    pub k: usize,
    /// Outliers affordable at this cutoff (`γ_k`).
    pub gamma: usize,
    /// Total squared reconstruction error before deltas.
    pub sse_raw: f64,
    /// Squared error remaining after the `γ_k` kept outliers are patched.
    pub sse_after_deltas: f64,
}

/// A matrix compressed by SVD-with-deltas.
#[derive(Debug, Clone)]
pub struct SvddCompressed {
    svd: SvdCompressed,
    deltas: DeltaStore,
    candidates: Vec<KCandidate>,
}

/// Queue item: (row, col, delta).
type Outlier = (u32, u32, f64);

/// One worker's pass-2 output: a bounded queue per candidate `k` plus
/// per-candidate SSE partials, kept **per [`GRAM_BLOCK_ROWS`]-row block**
/// (`blocks[b][ci]` covers rows `start + b·B .. start + (b+1)·B`). Folding
/// the blocks in ascending global row order reproduces the same summation
/// order for every block-aligned partitioning of the scan, which is what
/// makes the `k_opt` choice bit-identical between a monolithic and a
/// sharded build.
type Pass2Shard = (Vec<TopK<Outlier>>, Vec<Vec<f64>>);

/// Pass-2 kernel over rows `[start, end)`: offer every cell's squared
/// reconstruction error to private per-candidate queues and accumulate
/// per-candidate SSE. Each worker of the parallel pass runs this over its
/// own disjoint range; the serial path runs it once over `[0, n)`.
///
/// Per-cell errors depend only on the row, so shards produce exactly the
/// values a single scan would. SSE is accumulated per fixed 32-row block
/// and each cell is offered with its global ordinal as a tie-break rank,
/// so as long as every worker range starts on a block boundary, the
/// folded SSE *and* the retained outlier set are bit-identical for any
/// partitioning of the rows — across thread counts and shard counts.
///
/// `candidate_ks` is ascending in `k`, so the cumulative-k sweep walks
/// the candidates directly, accumulating each span `(k_prev, k]` once and
/// never touching components beyond the largest candidate. Rows of all
/// zeros reconstruct exactly at every `k` and are skipped outright, and
/// zero-error cells are never offered (they would burn delta slots on
/// no-op corrections).
fn pass2_range<S: RowSource + ?Sized>(
    source: &S,
    v_full: &Matrix,
    candidate_ks: &[(usize, usize)],
    start: usize,
    end: usize,
) -> Result<Pass2Shard> {
    let k_hi = candidate_ks.last().map_or(0, |&(k, _)| k);
    let mut queues: Vec<TopK<Outlier>> = candidate_ks
        .iter()
        .map(|&(_, gamma)| TopK::new(gamma))
        .collect();
    let num_blocks = (end - start).div_ceil(GRAM_BLOCK_ROWS).max(1);
    let mut sse_blocks = vec![vec![0.0f64; candidate_ks.len()]; num_blocks];
    let mut proj = vec![0.0f64; k_hi];
    source.scan_range(start, end, &mut |i, row| {
        // proj[j] = x · v_j = λ_j u_{i,j}
        proj.fill(0.0);
        let mut all_zero = true;
        for (l, &xl) in row.iter().enumerate() {
            if xl == 0.0 {
                continue;
            }
            all_zero = false;
            // Widened axpy: same op (`p += x_l · v_{l,j}`), same
            // ascending-j order, bitwise unchanged.
            vecops::axpy(xl, &v_full.row(l)[..k_hi], &mut proj);
        }
        if all_zero {
            return Ok(());
        }
        let block = (i - start) / GRAM_BLOCK_ROWS;
        let ord_base = (i as u64) * (row.len() as u64);
        for (j, &x) in row.iter().enumerate() {
            let v_row = v_full.row(j);
            let mut acc = 0.0f64;
            let mut k_prev = 0usize;
            let ord = ord_base + j as u64;
            for (ci, &(k, _)) in candidate_ks.iter().enumerate() {
                // `acc` carries across candidate spans, so this MUST stay
                // an incremental scalar chain — a per-span dot would
                // reassociate the sum and break the bitwise equivalence
                // between sharded and monolithic builds.
                for t in k_prev..k {
                    acc = vecops::fmadd(proj[t], v_row[t], acc);
                }
                k_prev = k;
                let err = x - acc;
                let sq = err * err;
                sse_blocks[block][ci] += sq;
                if sq > 0.0 && queues[ci].would_accept_ranked(sq, ord) {
                    queues[ci].offer_ranked(sq, ord, (i as u32, j as u32, err));
                }
            }
        }
        Ok(())
    })?;
    Ok((queues, sse_blocks))
}

/// Fold one worker's per-block SSE partials into the global accumulator.
/// Callers fold workers in ascending row order, so the overall summation
/// order is "block 0, block 1, …" no matter how the scan was partitioned.
fn fold_sse(sse: &mut [f64], blocks: Vec<Vec<f64>>) {
    for block in blocks {
        for (a, s) in sse.iter_mut().zip(block) {
            *a += s;
        }
    }
}

/// Pass-1 epilogue shared by the monolithic and sharded builds: truncate
/// the eigendecomposition of `c` to `(Λ, V)` with `k_max` components.
fn factorize(c: &Matrix, m: usize, k_max: usize) -> Result<(Vec<f64>, Matrix)> {
    let eig = sym_eigen(c)?;
    let lambda_all: Vec<f64> = eig
        .values
        .iter()
        .take(k_max)
        .map(|&l| l.max(0.0).sqrt())
        .collect();
    let mut v_full = Matrix::zeros(m, k_max);
    for j in 0..k_max {
        for i in 0..m {
            v_full[(i, j)] = eig.vectors[(i, j)];
        }
    }
    Ok((lambda_all, v_full))
}

/// Candidate sizing and thinning, shared by both builds. Depends only on
/// dimensions, budget, and `max_queue_entries` — never on the row
/// partition or thread count, so `k_opt`'s candidate set is identical
/// for any sharding.
fn size_candidates(
    n: usize,
    m: usize,
    opts: &SvddOptions,
    k_max: usize,
) -> Result<Vec<(usize, usize)>> {
    // γ_k for every candidate k (k where the SVD alone busts the
    // budget are infeasible).
    let mut candidate_ks: Vec<(usize, usize)> = (1..=k_max)
        .filter_map(|k| {
            let sb = svd_bytes(n, m, k);
            if sb > opts.budget.bytes(n, m) {
                None
            } else {
                Some((k, opts.budget.deltas_affordable(n, m, sb, DELTA_BYTES)))
            }
        })
        .collect();
    if candidate_ks.is_empty() {
        return Err(AtsError::Budget(
            "no feasible cutoff k under this budget".into(),
        ));
    }
    // Thin candidates if the queues would take too much memory:
    // drop the largest-γ candidate (always among the smallest k)
    // until the rest fit, always keeping at least one. Sorting a
    // drop order once is O(C log C) where the old repeated
    // max-scan-and-remove was O(C²); ties drop the larger k first,
    // exactly as the repeated scan did.
    let mut total: usize = candidate_ks.iter().map(|&(_, g)| g).sum();
    if total > opts.max_queue_entries && candidate_ks.len() > 1 {
        let mut order: Vec<usize> = (0..candidate_ks.len()).collect();
        order.sort_by(|&a, &b| {
            let (ka, ga) = candidate_ks[a];
            let (kb, gb) = candidate_ks[b];
            gb.cmp(&ga).then(kb.cmp(&ka))
        });
        let mut keep = vec![true; candidate_ks.len()];
        let mut remaining = candidate_ks.len();
        for &i in &order {
            if total <= opts.max_queue_entries || remaining == 1 {
                break;
            }
            keep[i] = false;
            remaining -= 1;
            total -= candidate_ks[i].1;
        }
        let mut idx = 0usize;
        candidate_ks.retain(|_| {
            let kept = keep.get(idx).copied().unwrap_or(true);
            idx += 1;
            kept
        });
    }
    Ok(candidate_ks)
}

impl SvddCompressed {
    /// Shared guard + `k_max` sizing for both builds.
    fn check_dims(source: &(impl RowSource + ?Sized), opts: &SvddOptions) -> Result<usize> {
        let (n, m) = (source.rows(), source.cols());
        if n == 0 || m == 0 {
            return Err(AtsError::InvalidArgument("empty matrix".into()));
        }
        let budget_k_max = opts.budget.max_svd_k(n, m);
        let k_max = opts.k_max.unwrap_or(budget_k_max).min(m);
        if k_max == 0 {
            return Err(AtsError::Budget(format!(
                "budget {:.3}% cannot hold even one principal component",
                opts.budget.fraction * 100.0
            )));
        }
        Ok(k_max)
    }

    /// The paper's three-pass build (Fig. 5).
    pub fn compress<S: RowSource + ?Sized>(source: &S, opts: &SvddOptions) -> Result<Self> {
        let (n, m) = (source.rows(), source.cols());
        let k_max = Self::check_dims(source, opts)?;

        // ---- Pass 1: Gram, eigendecomposition, candidate sizing ----
        let c = compute_gram_parallel(source, opts.threads.max(1))?;
        let (lambda_all, v_full) = factorize(&c, m, k_max)?;
        let candidate_ks = size_candidates(n, m, opts, k_max)?;

        // ---- Pass 2: per-cell errors for every candidate k ----
        // Row-partitioned across workers: each scans a disjoint range
        // with private queues and SSE, merged afterwards in worker order.
        // Worker boundaries are rounded up to block multiples so the
        // blocked SSE fold (and hence k_opt) is thread-count invariant.
        let threads = opts.threads.max(1);
        let (queues, sse) = if threads <= 1 || n < 2 * threads {
            let (qs, blocks) = pass2_range(source, &v_full, &candidate_ks, 0, n)?;
            let mut sse = vec![0.0f64; candidate_ks.len()];
            fold_sse(&mut sse, blocks);
            (qs, sse)
        } else {
            let chunk = n.div_ceil(threads).next_multiple_of(GRAM_BLOCK_ROWS);
            let shards: Vec<Result<Pass2Shard>> = crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let start = t * chunk;
                    let end = ((t + 1) * chunk).min(n);
                    if start >= end {
                        continue;
                    }
                    let v_full = &v_full;
                    let candidate_ks = &candidate_ks;
                    handles.push(
                        scope.spawn(move |_| pass2_range(source, v_full, candidate_ks, start, end)),
                    );
                }
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => r,
                        Err(_) => Err(AtsError::internal("svdd pass-2 worker panicked")),
                    })
                    .collect()
            })
            .map_err(|_| AtsError::internal("svdd pass-2 thread scope panicked"))?;
            let mut queues: Vec<TopK<Outlier>> = candidate_ks
                .iter()
                .map(|&(_, gamma)| TopK::new(gamma))
                .collect();
            let mut sse = vec![0.0f64; candidate_ks.len()];
            for shard in shards {
                let (qs, blocks) = shard?;
                for (acc, q) in queues.iter_mut().zip(qs) {
                    acc.merge(q);
                }
                fold_sse(&mut sse, blocks);
            }
            (queues, sse)
        };

        Self::finish(
            source,
            &v_full,
            &lambda_all,
            &candidate_ks,
            queues,
            &sse,
            opts,
            threads,
        )
    }

    /// Sharded three-pass build: same algorithm as [`Self::compress`],
    /// restructured along the row-range `ranges` so the store layer can
    /// partition `U` and the delta set per shard.
    ///
    /// - **Pass 1** accumulates one mergeable Gram partial per fixed
    ///   32-row block and folds in global block order
    ///   ([`compute_gram_sharded`]), so `V/Λ` are **bit-identical** for
    ///   any block-aligned partition — `shards(1)` and `shards(4)` see
    ///   the same factors.
    /// - **Pass 2** keeps per-shard `TopK` heaps and per-block SSE
    ///   partials, merged globally in shard order with [`TopK::merge`]:
    ///   per-cell errors depend only on the row and the (identical)
    ///   factors, cells are ranked by their global ordinal so boundary
    ///   ties resolve the same way under any partitioning, and the SSE
    ///   folds in fixed block order — so `k_opt` and the delta set are
    ///   chosen globally and **bit-identically** to the monolithic
    ///   (`shards(1)`) build.
    /// - **Pass 3** emits `U` over disjoint row bands (bitwise
    ///   independent of both partitioning and threads); the caller
    ///   slices it per shard.
    pub fn compress_sharded<S: RowSource + ?Sized>(
        source: &S,
        opts: &SvddOptions,
        ranges: &[(usize, usize)],
    ) -> Result<Self> {
        let (n, m) = (source.rows(), source.cols());
        let k_max = Self::check_dims(source, opts)?;
        let threads = opts.threads.max(1);

        // ---- Pass 1: blocked Gram fold, eigendecomposition ----
        let c = compute_gram_sharded(source, ranges, threads)?;
        let (lambda_all, v_full) = factorize(&c, m, k_max)?;
        let candidate_ks = size_candidates(n, m, opts, k_max)?;

        // ---- Pass 2: one heap set per shard, merged in shard order ----
        // Shards short on parallelism are subdivided so ~`threads` jobs
        // run at once; jobs execute in waves and always merge in
        // ascending row order. Sub-job boundaries are rounded up to block
        // multiples, so with block-aligned `ranges` (what [`shard_ranges`]
        // produces) every job starts on a block boundary and the blocked
        // SSE fold — hence the `k_opt` choice and the retained delta set —
        // is bit-identical for every shard count and thread count.
        let mut jobs: Vec<(usize, usize)> = Vec::new();
        for &(start, end) in ranges {
            let split = threads.div_ceil(ranges.len().max(1)).max(1);
            let len = end - start;
            let split = split.min(len);
            let chunk = len.div_ceil(split.max(1)).next_multiple_of(GRAM_BLOCK_ROWS);
            let mut s = start;
            while s < end {
                let e = (s + chunk).min(end);
                jobs.push((s, e));
                s = e;
            }
        }
        let mut queues: Vec<TopK<Outlier>> = candidate_ks
            .iter()
            .map(|&(_, gamma)| TopK::new(gamma))
            .collect();
        let mut sse = vec![0.0f64; candidate_ks.len()];
        let run_jobs = |wave: &[(usize, usize)]| -> Vec<Result<Pass2Shard>> {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = wave
                    .iter()
                    .map(|&(start, end)| {
                        let v_full = &v_full;
                        let candidate_ks = &candidate_ks;
                        scope.spawn(move |_| pass2_range(source, v_full, candidate_ks, start, end))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => r,
                        Err(_) => Err(AtsError::internal("svdd pass-2 worker panicked")),
                    })
                    .collect()
            })
            .unwrap_or_else(|_| vec![Err(AtsError::internal("svdd pass-2 thread scope panicked"))])
        };
        if threads <= 1 {
            for &(start, end) in &jobs {
                let (qs, blocks) = pass2_range(source, &v_full, &candidate_ks, start, end)?;
                for (acc, q) in queues.iter_mut().zip(qs) {
                    acc.merge(q);
                }
                fold_sse(&mut sse, blocks);
            }
        } else {
            for wave in jobs.chunks(threads) {
                for shard in run_jobs(wave) {
                    let (qs, blocks) = shard?;
                    for (acc, q) in queues.iter_mut().zip(qs) {
                        acc.merge(q);
                    }
                    fold_sse(&mut sse, blocks);
                }
            }
        }

        Self::finish(
            source,
            &v_full,
            &lambda_all,
            &candidate_ks,
            queues,
            &sse,
            opts,
            threads,
        )
    }

    /// Shared tail of both builds: pick `k_opt`, emit `U` (pass 3), and
    /// freeze the winning queue into the delta store.
    #[allow(clippy::too_many_arguments)]
    fn finish<S: RowSource + ?Sized>(
        source: &S,
        v_full: &Matrix,
        lambda_all: &[f64],
        candidate_ks: &[(usize, usize)],
        mut queues: Vec<TopK<Outlier>>,
        sse: &[f64],
        opts: &SvddOptions,
        threads: usize,
    ) -> Result<Self> {
        let (n, m) = (source.rows(), source.cols());
        // Pick k_opt: smallest residual after the kept outliers go exact.
        let mut candidates = Vec::with_capacity(candidate_ks.len());
        let mut best = 0usize;
        let mut best_eps = f64::INFINITY;
        for (ci, &(k, gamma)) in candidate_ks.iter().enumerate() {
            let eps = sse[ci] - queues[ci].priority_sum();
            candidates.push(KCandidate {
                k,
                gamma,
                sse_raw: sse[ci],
                sse_after_deltas: eps,
            });
            if eps < best_eps {
                best_eps = eps;
                best = ci;
            }
        }
        let (k_opt, _) = candidate_ks[best];
        let winner = queues.swap_remove(best);

        // ---- Pass 3: emit U truncated to k_opt ----
        let lambda = lambda_all[..k_opt].to_vec();
        let mut v = Matrix::zeros(m, k_opt);
        for j in 0..k_opt {
            for i in 0..m {
                v[(i, j)] = v_full[(i, j)];
            }
        }
        let mut u = Matrix::zeros(n, k_opt);
        emit_u(source, &v, &lambda, &mut u, threads)?;

        let deltas = DeltaStore::build(
            m,
            winner
                .into_sorted_vec()
                .into_iter()
                .map(|(_, (r, c, d))| (r as usize, c as usize, d)),
            opts.with_bloom,
        )?;

        Ok(SvddCompressed {
            svd: SvdCompressed::from_parts(u, lambda, v),
            deltas,
            candidates,
        })
    }

    /// The straightforward, inefficient algorithm of Fig. 4: one full SVD
    /// compression and one full error pass **per candidate `k`**
    /// (`3·k_max` passes total). Exists to validate the 3-pass algorithm
    /// and to measure its speedup; picks the same `k_opt` up to ties.
    pub fn compress_naive<S: RowSource + ?Sized>(source: &S, opts: &SvddOptions) -> Result<Self> {
        let (n, m) = (source.rows(), source.cols());
        let k_max = opts.k_max.unwrap_or(opts.budget.max_svd_k(n, m)).min(m);
        if k_max == 0 {
            return Err(AtsError::Budget("budget too small".into()));
        }
        let mut best: Option<(f64, SvdCompressed, TopK<Outlier>, Vec<KCandidate>)> = None;
        let mut all_candidates = Vec::new();
        for k in 1..=k_max {
            let sb = svd_bytes(n, m, k);
            if sb > opts.budget.bytes(n, m) {
                continue;
            }
            let gamma = opts.budget.deltas_affordable(n, m, sb, DELTA_BYTES);
            let svd = SvdCompressed::compress(source, k, opts.threads.max(1))?;
            let mut queue: TopK<Outlier> = TopK::new(gamma);
            let mut sse_raw = 0.0;
            let mut recon = vec![0.0; m];
            source.for_each_row(&mut |i, row| {
                svd.row_into(i, &mut recon)?;
                for (j, (&x, &r)) in row.iter().zip(recon.iter()).enumerate() {
                    let err = x - r;
                    let sq = err * err;
                    sse_raw += sq;
                    // Same zero-error guard as the 3-pass kernel, so both
                    // algorithms keep comparable delta sets.
                    if sq > 0.0 && queue.would_accept(sq) {
                        queue.offer(sq, (i as u32, j as u32, err));
                    }
                }
                Ok(())
            })?;
            let eps = sse_raw - queue.priority_sum();
            all_candidates.push(KCandidate {
                k,
                gamma,
                sse_raw,
                sse_after_deltas: eps,
            });
            let better = best.as_ref().is_none_or(|(b, ..)| eps < *b);
            if better {
                best = Some((eps, svd, queue, all_candidates.clone()));
            }
        }
        let (_, svd, queue, _) =
            best.ok_or_else(|| AtsError::Budget("no feasible cutoff k".into()))?;
        let deltas = DeltaStore::build(
            m,
            queue
                .into_sorted_vec()
                .into_iter()
                .map(|(_, (r, c, d))| (r as usize, c as usize, d)),
            opts.with_bloom,
        )?;
        Ok(SvddCompressed {
            svd,
            deltas,
            candidates: all_candidates,
        })
    }

    /// The chosen cutoff `k_opt`.
    pub fn k_opt(&self) -> usize {
        self.svd.k()
    }

    /// Number of stored deltas (`γ_{k_opt}` actually used).
    pub fn num_deltas(&self) -> usize {
        self.deltas.len()
    }

    /// The underlying truncated SVD.
    pub fn svd(&self) -> &SvdCompressed {
        &self.svd
    }

    /// The delta store.
    pub fn deltas(&self) -> &DeltaStore {
        &self.deltas
    }

    /// Diagnostics of the `k_opt` search (one entry per candidate `k`).
    pub fn candidates(&self) -> &[KCandidate] {
        &self.candidates
    }
}

impl CompressedMatrix for SvddCompressed {
    fn rows(&self) -> usize {
        self.svd.rows()
    }

    fn cols(&self) -> usize {
        self.svd.cols()
    }

    /// SVD reconstruction (Eq. 12) plus one hash probe; outlier cells
    /// "enjoy error-free reconstruction" (§4.2).
    fn cell(&self, i: usize, j: usize) -> Result<f64> {
        let base = self.svd.cell(i, j)?;
        Ok(match self.deltas.probe(i, j) {
            Some(delta) => base + delta,
            None => base,
        })
    }

    fn row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
        self.svd.row_into(i, out)?;
        // patch any outliers in this row
        for (j, o) in out.iter_mut().enumerate() {
            if let Some(delta) = self.deltas.probe(i, j) {
                *o += delta;
            }
        }
        Ok(())
    }

    /// SVD multi-cell kernel plus one delta probe per requested cell,
    /// probed in request order after the kernel pass.
    fn cells_in_row(&self, i: usize, cols: &[usize], out: &mut [f64]) -> Result<()> {
        self.svd.cells_in_row(i, cols, out)?;
        for (&j, o) in cols.iter().zip(out.iter_mut()) {
            if let Some(delta) = self.deltas.probe(i, j) {
                *o += delta;
            }
        }
        Ok(())
    }

    /// SVD blocked multi-row kernel, then outlier patches row by row in
    /// ascending column order — the same probe order as
    /// [`CompressedMatrix::row_into`] per row.
    fn rows_into(&self, rows: &[usize], out: &mut [f64]) -> Result<()> {
        self.svd.rows_into(rows, out)?;
        let m = self.cols();
        if m == 0 {
            return Ok(());
        }
        for (&i, orow) in rows.iter().zip(out.chunks_mut(m)) {
            for (j, o) in orow.iter_mut().enumerate() {
                if let Some(delta) = self.deltas.probe(i, j) {
                    *o += delta;
                }
            }
        }
        Ok(())
    }

    fn storage_bytes(&self) -> usize {
        self.svd.storage_bytes() + self.deltas.storage_bytes()
    }

    fn method_name(&self) -> &'static str {
        "svdd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// Low-rank data + a few huge spikes: the shape SVDD is built for.
    fn spiky_matrix(n: usize, m: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(n, 2, |_, _| rng.gen_range(0.0..2.0));
        let b = Matrix::from_fn(2, m, |_, _| rng.gen_range(0.0..2.0));
        let mut x = a.matmul(&b).unwrap();
        for _ in 0..(n * m / 50).max(3) {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..m);
            x[(i, j)] += rng.gen_range(50.0..200.0);
        }
        x
    }

    fn sse(c: &dyn CompressedMatrix, x: &Matrix) -> f64 {
        let mut total = 0.0;
        let mut row = vec![0.0; x.cols()];
        for i in 0..x.rows() {
            c.row_into(i, &mut row).unwrap();
            for (a, b) in row.iter().zip(x.row(i)) {
                total += (a - b) * (a - b);
            }
        }
        total
    }

    fn max_err(c: &dyn CompressedMatrix, x: &Matrix) -> f64 {
        let mut worst = 0.0f64;
        let mut row = vec![0.0; x.cols()];
        for i in 0..x.rows() {
            c.row_into(i, &mut row).unwrap();
            for (a, b) in row.iter().zip(x.row(i)) {
                worst = worst.max((a - b).abs());
            }
        }
        worst
    }

    #[test]
    fn beats_plain_svd_at_equal_space() {
        let x = spiky_matrix(120, 20, 1);
        let budget = SpaceBudget::from_percent(20.0);
        let svdd = SvddCompressed::compress(&x, &SvddOptions::new(budget)).unwrap();
        let svd = SvdCompressed::compress_budget(&x, budget, 1).unwrap();
        assert!(svdd.storage_bytes() <= budget.bytes(120, 20));
        let (e_svdd, e_svd) = (sse(&svdd, &x), sse(&svd, &x));
        assert!(
            e_svdd <= e_svd * 1.0001,
            "SVDD {e_svdd} worse than SVD {e_svd}"
        );
        // Worst case must be dramatically better (Fig. 7/Table 3 shape).
        assert!(max_err(&svdd, &x) < max_err(&svd, &x));
    }

    #[test]
    fn outlier_cells_reconstruct_exactly() {
        let x = spiky_matrix(60, 10, 2);
        let svdd = SvddCompressed::compress(&x, &SvddOptions::new(SpaceBudget::from_percent(25.0)))
            .unwrap();
        assert!(svdd.num_deltas() > 0, "no deltas kept");
        for (i, j, _) in svdd.deltas().iter() {
            let got = svdd.cell(i, j).unwrap();
            assert!(
                (got - x[(i, j)]).abs() < 1e-9,
                "outlier ({i},{j}) not exact: {got} vs {}",
                x[(i, j)]
            );
        }
    }

    #[test]
    fn respects_budget() {
        // N ≫ M so even a 5% budget affords a component (Eq. 1's regime).
        let x = spiky_matrix(500, 30, 3);
        for pct in [5.0, 10.0, 20.0, 40.0] {
            let b = SpaceBudget::from_percent(pct);
            let svdd = SvddCompressed::compress(&x, &SvddOptions::new(b)).unwrap();
            assert!(
                svdd.storage_bytes() <= b.bytes(500, 30),
                "{pct}%: {} > {}",
                svdd.storage_bytes(),
                b.bytes(500, 30)
            );
        }
    }

    #[test]
    fn matches_naive_algorithm() {
        let x = spiky_matrix(50, 8, 4);
        let opts = SvddOptions::new(SpaceBudget::from_percent(30.0));
        let fast = SvddCompressed::compress(&x, &opts).unwrap();
        let naive = SvddCompressed::compress_naive(&x, &opts).unwrap();
        // Same candidate diagnostics...
        assert_eq!(fast.candidates().len(), naive.candidates().len());
        for (a, b) in fast.candidates().iter().zip(naive.candidates()) {
            assert_eq!(a.k, b.k);
            assert_eq!(a.gamma, b.gamma);
            assert!(
                (a.sse_raw - b.sse_raw).abs() <= 1e-6 * a.sse_raw.max(1.0),
                "k={}: {} vs {}",
                a.k,
                a.sse_raw,
                b.sse_raw
            );
        }
        // ...and the same chosen cutoff.
        assert_eq!(fast.k_opt(), naive.k_opt());
        assert!((sse(&fast, &x) - sse(&naive, &x)).abs() < 1e-6 * sse(&fast, &x).max(1.0));
    }

    #[test]
    fn three_passes_exactly() {
        let dir = ats_common::TestDir::new("ats-svdd3p");
        let path = dir.file("x.atsm");
        let x = spiky_matrix(80, 10, 5);
        ats_storage::file::write_matrix(&path, &x).unwrap();
        let f = ats_storage::MatrixFile::open(&path).unwrap();
        SvddCompressed::compress(&f, &SvddOptions::new(SpaceBudget::from_percent(20.0))).unwrap();
        assert_eq!(
            f.stats().logical_reads(),
            3 * 80,
            "Fig. 5 promises exactly three passes"
        );
    }

    #[test]
    fn tiny_budget_uses_all_space_for_pcs() {
        // §5.1: "for very small storage sizes ... it turned out best to
        // devote all the available storage to keeping as many principal
        // components as possible". With a budget of ~1 PC, k_opt is k_max
        // and γ is tiny/zero.
        let x = spiky_matrix(1500, 80, 6);
        let b = SpaceBudget::from_percent(1.5); // fits exactly one PC
        assert_eq!(b.max_svd_k(1500, 80), 1);
        let svdd = SvddCompressed::compress(&x, &SvddOptions::new(b)).unwrap();
        assert_eq!(svdd.k_opt(), 1);
        assert!(svdd.storage_bytes() <= b.bytes(1500, 80));
    }

    #[test]
    fn budget_too_small_errors() {
        let x = spiky_matrix(50, 10, 7);
        let r = SvddCompressed::compress(&x, &SvddOptions::new(SpaceBudget { fraction: 1e-7 }));
        assert!(matches!(r, Err(AtsError::Budget(_))));
    }

    #[test]
    fn bloom_filter_optional_and_equivalent() {
        let x = spiky_matrix(60, 12, 8);
        let b = SpaceBudget::from_percent(25.0);
        let mut o1 = SvddOptions::new(b);
        o1.with_bloom = true;
        let mut o2 = SvddOptions::new(b);
        o2.with_bloom = false;
        let c1 = SvddCompressed::compress(&x, &o1).unwrap();
        let c2 = SvddCompressed::compress(&x, &o2).unwrap();
        assert!(c1.deltas().has_bloom());
        assert!(!c2.deltas().has_bloom());
        for i in (0..60).step_by(7) {
            for j in 0..12 {
                assert_eq!(c1.cell(i, j).unwrap(), c2.cell(i, j).unwrap());
            }
        }
    }

    #[test]
    fn queue_thinning_still_works() {
        let x = spiky_matrix(100, 16, 9);
        let mut opts = SvddOptions::new(SpaceBudget::from_percent(30.0));
        opts.max_queue_entries = 50; // absurdly small: forces thinning
        let svdd = SvddCompressed::compress(&x, &opts).unwrap();
        assert!(!svdd.candidates().is_empty());
        assert!(svdd.storage_bytes() <= opts.budget.bytes(100, 16));
    }

    #[test]
    fn candidate_diagnostics_consistent() {
        let x = spiky_matrix(80, 10, 10);
        let svdd = SvddCompressed::compress(&x, &SvddOptions::new(SpaceBudget::from_percent(20.0)))
            .unwrap();
        for c in svdd.candidates() {
            assert!(c.sse_after_deltas <= c.sse_raw + 1e-9);
            assert!(c.sse_after_deltas >= -1e-6);
        }
        // k_opt is the argmin of sse_after_deltas
        let best = svdd
            .candidates()
            .iter()
            .min_by(|a, b| a.sse_after_deltas.partial_cmp(&b.sse_after_deltas).unwrap())
            .unwrap();
        assert_eq!(best.k, svdd.k_opt());
    }

    #[test]
    fn empty_matrix_rejected() {
        let x = Matrix::zeros(0, 0);
        assert!(
            SvddCompressed::compress(&x, &SvddOptions::new(SpaceBudget::from_percent(10.0)))
                .is_err()
        );
    }

    /// Delta set as a sorted, comparable list of (row, col, delta).
    fn sorted_deltas(c: &SvddCompressed) -> Vec<(usize, usize, f64)> {
        let mut d: Vec<_> = c.deltas().iter().collect();
        d.sort_by_key(|a| (a.0, a.1));
        d
    }

    /// Both builds kept the *same cells*, with corrections equal up to
    /// the tiny pass-1 jitter (parallel Gram summation reassociates
    /// floating-point adds, perturbing the eigenvectors in the last ULPs).
    fn assert_same_delta_set(a: &SvddCompressed, b: &SvddCompressed, ctx: &str) {
        let (da, db) = (sorted_deltas(a), sorted_deltas(b));
        let pos = |d: &[(usize, usize, f64)]| d.iter().map(|&(i, j, _)| (i, j)).collect::<Vec<_>>();
        assert_eq!(pos(&da), pos(&db), "{ctx}: different cells kept");
        for (x, y) in da.iter().zip(&db) {
            assert!(
                (x.2 - y.2).abs() <= 1e-8 * y.2.abs().max(1.0),
                "{ctx}: delta at ({}, {}) diverged: {} vs {}",
                x.0,
                x.1,
                x.2,
                y.2
            );
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        // Odd N to exercise ragged chunks at every thread count.
        let x = spiky_matrix(203, 12, 12);
        let opts = SvddOptions::new(SpaceBudget::from_percent(20.0));
        let serial = SvddCompressed::compress(&x, &opts).unwrap();
        for threads in [2, 3, 4, 8] {
            let mut par_opts = opts.clone();
            par_opts.threads = threads;
            let par = SvddCompressed::compress(&x, &par_opts).unwrap();
            // Same cutoff and the *identical* delta set: per-cell errors
            // don't depend on the partitioning, so the merged queues
            // retain exactly the cells one queue would.
            assert_eq!(par.k_opt(), serial.k_opt(), "threads={threads}");
            assert_same_delta_set(&par, &serial, &format!("threads={threads}"));
            // SSE only differs by summation order at the merge points.
            assert_eq!(par.candidates().len(), serial.candidates().len());
            for (a, b) in par.candidates().iter().zip(serial.candidates()) {
                assert_eq!(a.k, b.k);
                assert_eq!(a.gamma, b.gamma);
                assert!(
                    (a.sse_raw - b.sse_raw).abs() <= 1e-8 * b.sse_raw.max(1.0),
                    "threads={threads} k={}: {} vs {}",
                    a.k,
                    a.sse_raw,
                    b.sse_raw
                );
            }
        }
    }

    #[test]
    fn more_threads_than_rows_falls_back() {
        let x = spiky_matrix(6, 8, 13);
        let b = SpaceBudget::from_percent(40.0);
        let serial = SvddCompressed::compress(&x, &SvddOptions::new(b)).unwrap();
        let mut opts = SvddOptions::new(b);
        opts.threads = 64;
        let par = SvddCompressed::compress(&x, &opts).unwrap();
        assert_eq!(par.k_opt(), serial.k_opt());
        // n < 2·threads: every pass falls back to the serial path, so the
        // result is bitwise identical.
        assert_eq!(sorted_deltas(&par), sorted_deltas(&serial));
    }

    #[test]
    fn parallel_thinning_independent_of_threads() {
        let x = spiky_matrix(100, 16, 9);
        let mut opts = SvddOptions::new(SpaceBudget::from_percent(30.0));
        opts.max_queue_entries = 50; // forces thinning
        let serial = SvddCompressed::compress(&x, &opts).unwrap();
        opts.threads = 4;
        let par = SvddCompressed::compress(&x, &opts).unwrap();
        // The candidate set (hence γ sizing and k_opt) never depends on
        // the thread count, only on the γ totals.
        let ks = |c: &SvddCompressed| c.candidates().iter().map(|c| c.k).collect::<Vec<_>>();
        assert_eq!(ks(&par), ks(&serial));
        assert_eq!(par.k_opt(), serial.k_opt());
    }

    #[test]
    fn parallel_build_from_disk_still_three_passes() {
        let dir = ats_common::TestDir::new("ats-svdd3p-par");
        let path = dir.file("x.atsm");
        let x = spiky_matrix(80, 10, 5);
        ats_storage::file::write_matrix(&path, &x).unwrap();
        let f = ats_storage::MatrixFile::open(&path).unwrap();
        let mut opts = SvddOptions::new(SpaceBudget::from_percent(20.0));
        opts.threads = 4;
        let par = SvddCompressed::compress(&f, &opts).unwrap();
        // Disjoint worker ranges still read every row exactly once per
        // pass — the Fig. 5 I/O bound holds at any thread count.
        assert_eq!(f.stats().logical_reads(), 3 * 80);
        let serial =
            SvddCompressed::compress(&x, &SvddOptions::new(SpaceBudget::from_percent(20.0)))
                .unwrap();
        assert_eq!(par.k_opt(), serial.k_opt());
        assert_same_delta_set(&par, &serial, "disk vs memory");
    }

    #[test]
    fn sharded_build_is_partition_invariant() {
        // The property the sharded store depends on: the same input and
        // budget produce the same k_opt, the bitwise-identical delta
        // set, and the bitwise-identical U for ANY shard count and
        // thread count — pass 1's blocked fold makes V/Λ bit-identical,
        // and everything downstream is deterministic given the factors.
        let x = spiky_matrix(203, 12, 14);
        let opts = SvddOptions::new(SpaceBudget::from_percent(20.0));
        let mono = SvddCompressed::compress_sharded(&x, &opts, &crate::gram::shard_ranges(203, 1))
            .unwrap();
        for r in [2, 4, 6] {
            for threads in [1, 3] {
                let mut o = opts.clone();
                o.threads = threads;
                let ranges = crate::gram::shard_ranges(203, r);
                let s = SvddCompressed::compress_sharded(&x, &o, &ranges).unwrap();
                let ctx = format!("shards={r} threads={threads}");
                assert_eq!(s.k_opt(), mono.k_opt(), "{ctx}");
                assert_eq!(sorted_deltas(&s), sorted_deltas(&mono), "{ctx}");
                assert_eq!(
                    s.svd().u().as_slice(),
                    mono.svd().u().as_slice(),
                    "{ctx}: U not bit-identical"
                );
                assert_eq!(s.svd().lambda(), mono.svd().lambda(), "{ctx}");
                assert_eq!(s.svd().v().as_slice(), mono.svd().v().as_slice(), "{ctx}");
            }
        }
    }

    #[test]
    fn sharded_build_is_partition_invariant_under_ties() {
        // Highly structured data: whole row classes repeat, so thousands
        // of cells tie *exactly* on reconstruction error and the TopK
        // boundary falls inside a tie class. The ordinal tie-break and
        // the blocked SSE fold must still keep k_opt, the retained cell
        // set, and the SSE bit-identical across partitionings.
        let x = Matrix::from_fn(300, 28, |i, j| {
            ((i % 5) + 1) as f64 * if j % 7 < 5 { 2.0 } else { 0.2 }
        });
        let opts = SvddOptions::new(SpaceBudget::from_percent(15.0));
        let mono = SvddCompressed::compress_sharded(&x, &opts, &crate::gram::shard_ranges(300, 1))
            .unwrap();
        for r in [2, 4, 5] {
            for threads in [1, 3] {
                let mut o = opts.clone();
                o.threads = threads;
                let ranges = crate::gram::shard_ranges(300, r);
                let s = SvddCompressed::compress_sharded(&x, &o, &ranges).unwrap();
                let ctx = format!("shards={r} threads={threads}");
                assert_eq!(s.k_opt(), mono.k_opt(), "{ctx}");
                assert_eq!(sorted_deltas(&s), sorted_deltas(&mono), "{ctx}");
                for (a, b) in s.candidates().iter().zip(mono.candidates()) {
                    assert_eq!(a.sse_raw.to_bits(), b.sse_raw.to_bits(), "{ctx} k={}", a.k);
                    assert_eq!(
                        a.sse_after_deltas.to_bits(),
                        b.sse_after_deltas.to_bits(),
                        "{ctx} k={}",
                        a.k
                    );
                }
            }
        }
    }

    #[test]
    fn method_name_and_ratio() {
        let x = spiky_matrix(50, 10, 11);
        let b = SpaceBudget::from_percent(20.0);
        let svdd = SvddCompressed::compress(&x, &SvddOptions::new(b)).unwrap();
        assert_eq!(svdd.method_name(), "svdd");
        assert!(svdd.space_ratio() <= 0.2 + 1e-9);
        assert!(svdd.space_ratio() > 0.0);
    }
}
